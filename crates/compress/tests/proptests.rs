//! Property-based tests: every codec must roundtrip every representable
//! stream, and hybrid selection must never lose to a single scheme.

use boss_compress::{best_scheme, codec_for, encoded_size, Error, Scheme, ALL_SCHEMES};
use proptest::prelude::*;

fn roundtrip_ok(scheme: Scheme, values: &[u32]) {
    let codec = codec_for(scheme);
    let mut buf = Vec::new();
    let info = codec.encode(values, &mut buf).unwrap();
    let mut out = Vec::new();
    codec.decode(&buf, &info, &mut out).unwrap();
    assert_eq!(out, values, "scheme {scheme}");
}

/// Value streams shaped like real d-gap distributions: mostly small with
/// occasional large jumps.
fn gap_stream() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(
        prop_oneof![
            4 => 0u32..16,
            3 => 0u32..256,
            2 => 0u32..65536,
            1 => 0u32..(1 << 27),
        ],
        0..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bp_roundtrips(values in prop::collection::vec(any::<u32>(), 0..300)) {
        roundtrip_ok(Scheme::Bp, &values);
    }

    #[test]
    fn vb_roundtrips(values in prop::collection::vec(any::<u32>(), 0..300)) {
        roundtrip_ok(Scheme::Vb, &values);
    }

    #[test]
    fn pfd_roundtrips(values in prop::collection::vec(any::<u32>(), 0..300)) {
        roundtrip_ok(Scheme::OptPfd, &values);
    }

    #[test]
    fn s8b_roundtrips(values in prop::collection::vec(any::<u32>(), 0..300)) {
        roundtrip_ok(Scheme::S8b, &values);
    }

    #[test]
    fn s16_roundtrips_or_rejects(values in prop::collection::vec(any::<u32>(), 0..300)) {
        let codec = codec_for(Scheme::S16);
        let mut buf = Vec::new();
        match codec.encode(&values, &mut buf) {
            Ok(info) => {
                prop_assert!(values.iter().all(|&v| v < (1 << 28)));
                let mut out = Vec::new();
                codec.decode(&buf, &info, &mut out).unwrap();
                prop_assert_eq!(out, values);
            }
            Err(Error::ValueTooLarge { .. }) => {
                prop_assert!(values.iter().any(|&v| v >= (1 << 28)));
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
        }
    }

    #[test]
    fn all_schemes_roundtrip_gap_streams(values in gap_stream()) {
        for s in ALL_SCHEMES {
            roundtrip_ok(s, &values);
        }
    }

    #[test]
    fn hybrid_never_loses(values in gap_stream()) {
        let choice = best_scheme(&values);
        for s in ALL_SCHEMES {
            if let Ok(sz) = encoded_size(s, &values) {
                prop_assert!(choice.bytes <= sz, "hybrid {} beats {s} ({sz})", choice.bytes);
            }
        }
    }

    #[test]
    fn decoding_random_garbage_never_panics(
        data in prop::collection::vec(any::<u8>(), 0..128),
        count in 0u16..256,
        bit_width in 0u8..=40,
        exception_offset in 0u16..200,
    ) {
        for s in ALL_SCHEMES {
            let info = boss_compress::BlockInfo { count, bit_width, exception_offset };
            // Must return Ok or Err, never panic or loop forever.
            let _ = codec_for(s).decode(&data, &info, &mut Vec::new());
        }
    }
}
