//! Property tests for the word-level unpack kernels: for random value
//! streams across **all** bit widths 0–32 and lengths 1–128, every kernel
//! is bit-equal to the seed per-value `bitio` path, and the rerouted
//! BP/OptPFD decoders are bit-equal to their retained reference oracles.

use boss_compress::unpack::{
    prefix_sum_d1, unpack, unpack_d1, unpack_d1_reference, unpack_reference,
};
use boss_compress::{codec_for, BitWriter, Scheme};
use proptest::prelude::*;

fn pack(values: &[u32], width: u32) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = BitWriter::new(&mut buf);
    for &v in values {
        w.write(v, width);
    }
    w.finish();
    buf
}

fn mask(width: u32) -> u32 {
    if width == 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    }
}

/// Raw 32-bit values plus a length in 1..=128; each test masks them down
/// to the width under test so all widths see dense, varied bit patterns.
fn raw_stream() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(any::<u32>(), 1..129)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kernels_match_bitio_reference_for_all_widths(raw in raw_stream()) {
        for width in 0..=32u32 {
            let values: Vec<u32> = raw.iter().map(|&v| v & mask(width)).collect();
            let buf = pack(&values, width);
            let mut fast = Vec::new();
            unpack(&buf, values.len(), width, &mut fast).unwrap();
            let mut slow = Vec::new();
            unpack_reference(&buf, values.len(), width, &mut slow).unwrap();
            prop_assert_eq!(&fast, &slow, "width {}", width);
            prop_assert_eq!(&fast, &values, "width {}", width);
        }
    }

    #[test]
    fn fused_d1_matches_reference_for_all_widths(raw in raw_stream(), base in any::<u32>()) {
        for width in 0..=32u32 {
            let gaps: Vec<u32> = raw.iter().map(|&v| v & mask(width)).collect();
            let buf = pack(&gaps, width);
            let mut fused = Vec::new();
            unpack_d1(&buf, gaps.len(), width, base, &mut fused).unwrap();
            let mut slow = Vec::new();
            unpack_d1_reference(&buf, gaps.len(), width, base, &mut slow).unwrap();
            prop_assert_eq!(&fused, &slow, "width {}", width);
            // And the two-pass formulation agrees.
            let mut two_pass = Vec::new();
            unpack(&buf, gaps.len(), width, &mut two_pass).unwrap();
            prefix_sum_d1(base, &mut two_pass);
            prop_assert_eq!(&fused, &two_pass, "width {}", width);
        }
    }

    #[test]
    fn bp_decode_matches_its_reference_oracle(raw in raw_stream()) {
        for width in 0..=32u32 {
            let values: Vec<u32> = raw.iter().map(|&v| v & mask(width)).collect();
            let codec = codec_for(Scheme::Bp);
            let mut data = Vec::new();
            let info = codec.encode(&values, &mut data).unwrap();
            let mut fast = Vec::new();
            codec.decode(&data, &info, &mut fast).unwrap();
            let mut slow = Vec::new();
            codec.decode_reference(&data, &info, &mut slow).unwrap();
            prop_assert_eq!(&fast, &slow);
            prop_assert_eq!(&fast, &values);
        }
    }

    #[test]
    fn pfd_decode_matches_its_reference_oracle(raw in raw_stream()) {
        // Mix of small values and outliers so the exception path is live.
        let values: Vec<u32> = raw
            .iter()
            .enumerate()
            .map(|(i, &v)| if i % 7 == 3 { v } else { v & 0x1F })
            .collect();
        let codec = codec_for(Scheme::OptPfd);
        let mut data = Vec::new();
        let info = codec.encode(&values, &mut data).unwrap();
        let mut fast = Vec::new();
        codec.decode(&data, &info, &mut fast).unwrap();
        let mut slow = Vec::new();
        codec.decode_reference(&data, &info, &mut slow).unwrap();
        prop_assert_eq!(&fast, &slow);
        prop_assert_eq!(&fast, &values);
    }

    #[test]
    fn decode_d1_agrees_across_all_codecs(raw in raw_stream(), base in any::<u32>()) {
        // The fused (BP) and default (everything else) decode_d1 paths all
        // equal decode + prefix sum.
        let gaps: Vec<u32> = raw.iter().map(|&v| v & 0xFFFF).collect();
        for scheme in [Scheme::Bp, Scheme::OptPfd, Scheme::Vb, Scheme::S16, Scheme::S8b] {
            let codec = codec_for(scheme);
            let mut data = Vec::new();
            let Ok(info) = codec.encode(&gaps, &mut data) else {
                continue;
            };
            let mut d1 = Vec::new();
            codec.decode_d1(&data, &info, base, &mut d1).unwrap();
            let mut expect = Vec::new();
            codec.decode(&data, &info, &mut expect).unwrap();
            prefix_sum_d1(base, &mut expect);
            prop_assert_eq!(&d1, &expect, "scheme {}", scheme);
        }
    }
}

#[test]
fn truncation_behavior_matches_reference() {
    // Both paths must reject the same truncated inputs (exact `need`
    // payloads may differ; the variant must not).
    for width in 1..=32u32 {
        let values: Vec<u32> = (0..128u32).map(|v| v & mask(width)).collect();
        let buf = pack(&values, width);
        let short = &buf[..buf.len() - 1];
        let fast = unpack(short, values.len(), width, &mut Vec::new());
        let slow = unpack_reference(short, values.len(), width, &mut Vec::new());
        assert!(
            matches!(fast, Err(boss_compress::Error::Truncated { .. })),
            "width {width}"
        );
        assert!(
            matches!(slow, Err(boss_compress::Error::Truncated { .. })),
            "width {width}"
        );
    }
}
