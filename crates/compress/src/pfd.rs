//! OptPForDelta: pack the low `b` bits of every value; values that do not
//! fit in `b` bits are *exceptions* whose remaining high bits live in a
//! patch area at the end of the block. The bit width is chosen per block to
//! minimize the total encoded size (the "Opt" in OptPFD).
//!
//! Layout: `[packed count×b bits][exceptions: (index: u16, high: u32)*]`.
//! The number of exceptions is recovered from the exception offset and the
//! total length; the index's block metadata stores the offset, matching the
//! paper's 12-bit "offset of the first exception value and index" field.

use crate::bitio::{bits_for, BitReader, BitWriter};
use crate::{check_count, check_len, unpack, BlockInfo, Codec, Error, Scheme};

/// The OptPFD codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptPfd;

const EXCEPTION_BYTES: usize = 6; // u16 index + u32 high bits

fn encoded_len(values: &[u32], b: u32) -> usize {
    let packed = (values.len() * b as usize).div_ceil(8);
    let exceptions = values.iter().filter(|&&v| bits_for(v) > b).count();
    packed + exceptions * EXCEPTION_BYTES
}

/// Chooses the bit width minimizing the encoded size.
fn best_width(values: &[u32]) -> u32 {
    let max_width = values.iter().copied().map(bits_for).max().unwrap_or(0);
    (0..=max_width)
        .min_by_key(|&b| (encoded_len(values, b), b))
        .unwrap_or(0)
}

impl Codec for OptPfd {
    fn scheme(&self) -> Scheme {
        Scheme::OptPfd
    }

    fn encode(&self, values: &[u32], out: &mut Vec<u8>) -> Result<BlockInfo, Error> {
        let count = check_len(values)?;
        let base = out.len();
        let b = best_width(values);
        let mask = if b == 32 { u32::MAX } else { (1u32 << b) - 1 };
        let mut w = BitWriter::new(out);
        let mut exceptions: Vec<(u16, u32)> = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            w.write(v & mask, b);
            if bits_for(v) > b {
                exceptions.push((i as u16, if b == 32 { 0 } else { v >> b }));
            }
        }
        w.finish();
        let exception_offset = out.len() - base;
        if exception_offset > u16::MAX as usize {
            return Err(Error::Corrupt {
                reason: "OptPFD packed area exceeds offset field",
            });
        }
        for (idx, high) in exceptions {
            out.extend_from_slice(&idx.to_le_bytes());
            out.extend_from_slice(&high.to_le_bytes());
        }
        Ok(BlockInfo {
            count,
            bit_width: b as u8,
            exception_offset: exception_offset as u16,
        })
    }

    fn decode(&self, data: &[u8], info: &BlockInfo, out: &mut Vec<u32>) -> Result<(), Error> {
        let (b, exc_off) = check_header(data, info)?;
        let base = out.len();
        unpack::unpack(&data[..exc_off], info.count as usize, b, out)?;
        apply_exceptions(&data[exc_off..], b, info.count as usize, &mut out[base..])
    }

    fn decode_reference(
        &self,
        data: &[u8],
        info: &BlockInfo,
        out: &mut Vec<u32>,
    ) -> Result<(), Error> {
        let (b, exc_off) = check_header(data, info)?;
        let base = out.len();
        let mut r = BitReader::new(&data[..exc_off]);
        out.reserve(info.count as usize);
        for _ in 0..info.count {
            out.push(r.read(b)?);
        }
        apply_exceptions(&data[exc_off..], b, info.count as usize, &mut out[base..])
    }
}

fn check_header(data: &[u8], info: &BlockInfo) -> Result<(u32, usize), Error> {
    check_count(info)?;
    let b = u32::from(info.bit_width);
    if b > 32 {
        return Err(Error::Corrupt {
            reason: "OptPFD bit width above 32",
        });
    }
    let exc_off = info.exception_offset as usize;
    if exc_off > data.len() {
        return Err(Error::Truncated {
            have: data.len(),
            need: exc_off,
        });
    }
    Ok((b, exc_off))
}

/// Patches the exception area's high bits back into the unpacked low bits.
/// The prefix sum cannot be fused through this step, which is why OptPFD
/// keeps the default two-pass [`Codec::decode_d1`].
fn apply_exceptions(patch: &[u8], b: u32, count: usize, out: &mut [u32]) -> Result<(), Error> {
    if !patch.len().is_multiple_of(EXCEPTION_BYTES) {
        return Err(Error::Corrupt {
            reason: "OptPFD exception area misaligned",
        });
    }
    for chunk in patch.chunks_exact(EXCEPTION_BYTES) {
        let idx = u16::from_le_bytes([chunk[0], chunk[1]]) as usize;
        let high = u32::from_le_bytes([chunk[2], chunk[3], chunk[4], chunk[5]]);
        if idx >= count {
            return Err(Error::Corrupt {
                reason: "OptPFD exception index out of range",
            });
        }
        if b < 32 {
            let shifted = high.checked_shl(b).ok_or(Error::Corrupt {
                reason: "OptPFD exception high bits overflow",
            })?;
            out[idx] |= shifted;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u32]) -> (BlockInfo, Vec<u8>) {
        let mut buf = Vec::new();
        let info = OptPfd.encode(values, &mut buf).unwrap();
        let mut out = Vec::new();
        OptPfd.decode(&buf, &info, &mut out).unwrap();
        assert_eq!(out, values);
        (info, buf)
    }

    #[test]
    fn uniform_small_values_no_exceptions() {
        let values = vec![5u32; 128];
        let (info, buf) = roundtrip(&values);
        assert_eq!(
            info.exception_offset as usize,
            buf.len(),
            "no exception area"
        );
        assert_eq!(info.bit_width, 3);
    }

    #[test]
    fn outliers_become_exceptions() {
        let mut values = vec![3u32; 128];
        values[7] = 1_000_000;
        values[100] = 2_000_000;
        let (info, buf) = roundtrip(&values);
        assert!(info.bit_width <= 3, "width chosen for the majority");
        assert_eq!(
            buf.len() - info.exception_offset as usize,
            2 * EXCEPTION_BYTES
        );
    }

    #[test]
    fn opt_width_beats_plain_bp_on_outliers() {
        let mut values = vec![3u32; 128];
        values[0] = u32::MAX;
        let mut pfd_buf = Vec::new();
        OptPfd.encode(&values, &mut pfd_buf).unwrap();
        let mut bp_buf = Vec::new();
        crate::BitPacking.encode(&values, &mut bp_buf).unwrap();
        assert!(pfd_buf.len() < bp_buf.len());
    }

    #[test]
    fn all_large_values() {
        let values: Vec<u32> = (0..128).map(|i| u32::MAX - i).collect();
        let (info, _) = roundtrip(&values);
        assert_eq!(info.bit_width, 32);
    }

    #[test]
    fn zeros() {
        let (info, buf) = roundtrip(&[0u32; 64]);
        assert_eq!(info.bit_width, 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn corrupt_exception_index_rejected() {
        let mut buf = Vec::new();
        let mut values = vec![1u32; 16];
        values[3] = 1 << 20;
        let info = OptPfd.encode(&values, &mut buf).unwrap();
        // Point the exception at an impossible position.
        let off = info.exception_offset as usize;
        buf[off] = 0xFF;
        buf[off + 1] = 0xFF;
        let err = OptPfd.decode(&buf, &info, &mut Vec::new()).unwrap_err();
        assert!(matches!(err, Error::Corrupt { .. }));
    }

    #[test]
    fn misaligned_exception_area_rejected() {
        let mut buf = Vec::new();
        let info = OptPfd.encode(&[1u32; 16], &mut buf).unwrap();
        buf.push(0xAB); // stray byte
        let err = OptPfd.decode(&buf, &info, &mut Vec::new()).unwrap_err();
        assert!(matches!(err, Error::Corrupt { .. }));
    }

    #[test]
    fn truncated_before_exception_area() {
        let mut values = vec![2u32; 128];
        values[5] = 99999;
        let mut buf = Vec::new();
        let info = OptPfd.encode(&values, &mut buf).unwrap();
        let short = &buf[..4];
        let err = OptPfd.decode(short, &info, &mut Vec::new()).unwrap_err();
        assert!(matches!(err, Error::Truncated { .. }));
    }
}
