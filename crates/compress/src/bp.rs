//! Bit-Packing: all values of a block stored with the bit width of the
//! largest value.

use crate::bitio::{bits_for, BitWriter};
use crate::{check_len, unpack, BlockInfo, Codec, Error, Scheme};

/// The BP codec (Lemire & Boytsov style frame-of-reference packing, without
/// the SIMD layout — the simulator cares about sizes, not host speed).
#[derive(Debug, Clone, Copy, Default)]
pub struct BitPacking;

impl Codec for BitPacking {
    fn scheme(&self) -> Scheme {
        Scheme::Bp
    }

    fn encode(&self, values: &[u32], out: &mut Vec<u8>) -> Result<BlockInfo, Error> {
        let count = check_len(values)?;
        let width = values.iter().copied().map(bits_for).max().unwrap_or(0);
        let mut w = BitWriter::new(out);
        for &v in values {
            w.write(v, width);
        }
        w.finish();
        Ok(BlockInfo {
            count,
            bit_width: width as u8,
            exception_offset: 0,
        })
    }

    fn decode(&self, data: &[u8], info: &BlockInfo, out: &mut Vec<u32>) -> Result<(), Error> {
        let width = u32::from(info.bit_width);
        if width > 32 {
            return Err(Error::Corrupt {
                reason: "BP bit width above 32",
            });
        }
        unpack::unpack(data, info.count as usize, width, out)
    }

    fn decode_reference(
        &self,
        data: &[u8],
        info: &BlockInfo,
        out: &mut Vec<u32>,
    ) -> Result<(), Error> {
        let width = u32::from(info.bit_width);
        if width > 32 {
            return Err(Error::Corrupt {
                reason: "BP bit width above 32",
            });
        }
        unpack::unpack_reference(data, info.count as usize, width, out)
    }

    fn decode_d1(
        &self,
        data: &[u8],
        info: &BlockInfo,
        base: u32,
        out: &mut Vec<u32>,
    ) -> Result<(), Error> {
        let width = u32::from(info.bit_width);
        if width > 32 {
            return Err(Error::Corrupt {
                reason: "BP bit width above 32",
            });
        }
        unpack::unpack_d1(data, info.count as usize, width, base, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u32]) -> (BlockInfo, Vec<u8>) {
        let mut buf = Vec::new();
        let info = BitPacking.encode(values, &mut buf).unwrap();
        let mut out = Vec::new();
        BitPacking.decode(&buf, &info, &mut out).unwrap();
        assert_eq!(out, values);
        (info, buf)
    }

    #[test]
    fn all_zeros_cost_nothing() {
        let (info, buf) = roundtrip(&[0; 128]);
        assert_eq!(info.bit_width, 0);
        assert!(buf.is_empty());
    }

    #[test]
    fn width_is_max_value_width() {
        let (info, buf) = roundtrip(&[1, 2, 3, 255]);
        assert_eq!(info.bit_width, 8);
        assert_eq!(buf.len(), 4);
    }

    #[test]
    fn full_width_values() {
        let (info, _) = roundtrip(&[u32::MAX, 0, 12345]);
        assert_eq!(info.bit_width, 32);
    }

    #[test]
    fn truncated_data_errors() {
        let mut buf = Vec::new();
        let info = BitPacking.encode(&[300; 128], &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let err = BitPacking.decode(&buf, &info, &mut Vec::new()).unwrap_err();
        assert!(matches!(err, Error::Truncated { .. }));
    }

    #[test]
    fn corrupt_width_rejected() {
        let info = BlockInfo {
            count: 1,
            bit_width: 40,
            exception_offset: 0,
        };
        let err = BitPacking
            .decode(&[0u8; 8], &info, &mut Vec::new())
            .unwrap_err();
        assert!(matches!(err, Error::Corrupt { .. }));
    }

    #[test]
    fn size_is_ceil_of_count_times_width() {
        let values = vec![7u32; 100]; // 3 bits each -> 300 bits -> 38 bytes
        let mut buf = Vec::new();
        BitPacking.encode(&values, &mut buf).unwrap();
        assert_eq!(buf.len(), 38);
    }
}
