//! Word-level bulk bit-unpacking kernels.
//!
//! The seed decoders pulled packed values out one at a time through
//! [`BitReader`](crate::BitReader), refilling a bit accumulator byte by
//! byte — fine for a size model, far too slow for the functional hot path
//! once batches run wide. These kernels instead read one unaligned
//! little-endian `u64` per value: value `i` of width `W` starts at bit
//! `i * W`, so its byte address is `bit >> 3` and its in-byte shift is
//! `bit & 7`. Because the shift is at most 7 and `W ≤ 32`, every value
//! fits inside a single 8-byte window (`7 + 32 = 39 ≤ 64` bits) and no
//! cross-word carry handling is needed.
//!
//! One monomorphized kernel exists per bit width 0–32 (dispatched through
//! a function-pointer table), with the main loop unrolled 4×. Values whose
//! 8-byte window would run past the input use a zero-padded tail load.
//!
//! [`unpack_d1`] additionally fuses the d-gap prefix sum into the unpack
//! loop, turning gap streams directly into absolute docIDs without a
//! second pass over the output.
//!
//! The original per-value path survives as [`unpack_reference`] /
//! [`unpack_d1_reference`]: the property tests hold every kernel bit-equal
//! to it across all widths and lengths.

use crate::bitio::BitReader;
use crate::Error;

/// Loads 8 bytes little-endian starting at `byte`; caller guarantees the
/// window is in bounds.
#[inline(always)]
fn load_word(data: &[u8], byte: usize) -> u64 {
    // Infallible: callers bound-check the 8-byte window before calling.
    #[allow(clippy::expect_used)]
    u64::from_le_bytes(data[byte..byte + 8].try_into().expect("8-byte window"))
}

/// Loads up to 8 bytes little-endian starting at `byte`, zero-padding past
/// the end of `data`.
#[inline(always)]
fn load_tail(data: &[u8], byte: usize) -> u64 {
    let mut buf = [0u8; 8];
    let n = (data.len() - byte).min(8);
    buf[..n].copy_from_slice(&data[byte..byte + n]);
    u64::from_le_bytes(buf)
}

/// Number of leading values whose full 8-byte load window fits in `data`.
#[inline(always)]
fn fast_count(len: usize, count: usize, width: u32) -> usize {
    if len < 8 {
        return 0;
    }
    // Value i is fast iff (i * width) / 8 + 8 <= len, i.e.
    // i * width <= (len - 8) * 8 + 7.
    count.min(((len - 8) * 8 + 7) / width as usize + 1)
}

/// Plain unpack kernel for one compile-time width.
fn unpack_w<const W: u32>(data: &[u8], count: usize, out: &mut Vec<u32>) {
    if W == 0 {
        out.resize(out.len() + count, 0);
        return;
    }
    let mask: u64 = (1u64 << W) - 1;
    out.reserve(count);
    let fast = fast_count(data.len(), count, W);
    let mut i = 0;
    while i + 4 <= fast {
        let b0 = i * W as usize;
        let b1 = b0 + W as usize;
        let b2 = b1 + W as usize;
        let b3 = b2 + W as usize;
        let v0 = (load_word(data, b0 >> 3) >> (b0 & 7)) & mask;
        let v1 = (load_word(data, b1 >> 3) >> (b1 & 7)) & mask;
        let v2 = (load_word(data, b2 >> 3) >> (b2 & 7)) & mask;
        let v3 = (load_word(data, b3 >> 3) >> (b3 & 7)) & mask;
        out.extend_from_slice(&[v0 as u32, v1 as u32, v2 as u32, v3 as u32]);
        i += 4;
    }
    while i < fast {
        let bit = i * W as usize;
        out.push(((load_word(data, bit >> 3) >> (bit & 7)) & mask) as u32);
        i += 1;
    }
    while i < count {
        let bit = i * W as usize;
        out.push(((load_tail(data, bit >> 3) >> (bit & 7)) & mask) as u32);
        i += 1;
    }
}

/// Fused d-gap kernel: emits `base + prefix_sum(gaps)` (wrapping).
fn unpack_d1_w<const W: u32>(data: &[u8], count: usize, base: u32, out: &mut Vec<u32>) {
    let mut prev = base;
    if W == 0 {
        out.resize(out.len() + count, prev);
        return;
    }
    let mask: u64 = (1u64 << W) - 1;
    out.reserve(count);
    let fast = fast_count(data.len(), count, W);
    let mut i = 0;
    while i + 4 <= fast {
        let b0 = i * W as usize;
        let b1 = b0 + W as usize;
        let b2 = b1 + W as usize;
        let b3 = b2 + W as usize;
        let v0 = (load_word(data, b0 >> 3) >> (b0 & 7)) & mask;
        let v1 = (load_word(data, b1 >> 3) >> (b1 & 7)) & mask;
        let v2 = (load_word(data, b2 >> 3) >> (b2 & 7)) & mask;
        let v3 = (load_word(data, b3 >> 3) >> (b3 & 7)) & mask;
        let d0 = prev.wrapping_add(v0 as u32);
        let d1 = d0.wrapping_add(v1 as u32);
        let d2 = d1.wrapping_add(v2 as u32);
        let d3 = d2.wrapping_add(v3 as u32);
        out.extend_from_slice(&[d0, d1, d2, d3]);
        prev = d3;
        i += 4;
    }
    while i < fast {
        let bit = i * W as usize;
        prev = prev.wrapping_add(((load_word(data, bit >> 3) >> (bit & 7)) & mask) as u32);
        out.push(prev);
        i += 1;
    }
    while i < count {
        let bit = i * W as usize;
        prev = prev.wrapping_add(((load_tail(data, bit >> 3) >> (bit & 7)) & mask) as u32);
        out.push(prev);
        i += 1;
    }
}

type UnpackFn = fn(&[u8], usize, &mut Vec<u32>);
type UnpackD1Fn = fn(&[u8], usize, u32, &mut Vec<u32>);

macro_rules! width_table {
    ($f:ident) => {
        [
            $f::<0>, $f::<1>, $f::<2>, $f::<3>, $f::<4>, $f::<5>, $f::<6>, $f::<7>, $f::<8>,
            $f::<9>, $f::<10>, $f::<11>, $f::<12>, $f::<13>, $f::<14>, $f::<15>, $f::<16>,
            $f::<17>, $f::<18>, $f::<19>, $f::<20>, $f::<21>, $f::<22>, $f::<23>, $f::<24>,
            $f::<25>, $f::<26>, $f::<27>, $f::<28>, $f::<29>, $f::<30>, $f::<31>, $f::<32>,
        ]
    };
}

static UNPACK: [UnpackFn; 33] = width_table!(unpack_w);
static UNPACK_D1: [UnpackD1Fn; 33] = width_table!(unpack_d1_w);

/// Bytes needed to hold `count` values of `width` bits.
#[inline]
pub fn packed_bytes(count: usize, width: u32) -> usize {
    (count * width as usize).div_ceil(8)
}

fn check_input(data: &[u8], count: usize, width: u32) -> Result<(), Error> {
    if width > 32 {
        return Err(Error::Corrupt {
            reason: "bit width above 32",
        });
    }
    if count > crate::MAX_BLOCK_VALUES {
        return Err(Error::Corrupt {
            reason: "block descriptor claims more values than a block can hold",
        });
    }
    let need = packed_bytes(count, width);
    if data.len() < need {
        return Err(Error::Truncated {
            have: data.len(),
            need,
        });
    }
    Ok(())
}

/// Appends `count` values of `width` bits from `data` (LSB-first layout,
/// identical to [`BitReader`]) to `out`, using the word-level kernels.
///
/// # Errors
///
/// [`Error::Corrupt`] when `width > 32`; [`Error::Truncated`] when `data`
/// holds fewer than `count * width` bits.
pub fn unpack(data: &[u8], count: usize, width: u32, out: &mut Vec<u32>) -> Result<(), Error> {
    check_input(data, count, width)?;
    UNPACK[width as usize](data, count, out);
    Ok(())
}

/// Like [`unpack`], but treats the packed values as d-gaps and appends the
/// running (wrapping) prefix sum seeded with `base` — i.e. absolute docIDs.
///
/// # Errors
///
/// Same conditions as [`unpack`].
pub fn unpack_d1(
    data: &[u8],
    count: usize,
    width: u32,
    base: u32,
    out: &mut Vec<u32>,
) -> Result<(), Error> {
    check_input(data, count, width)?;
    UNPACK_D1[width as usize](data, count, base, out);
    Ok(())
}

/// In-place wrapping prefix sum seeded with `base`, for codecs whose gap
/// decode cannot be fused (e.g. OptPFD, which patches exceptions after
/// unpacking).
#[inline]
pub fn prefix_sum_d1(base: u32, values: &mut [u32]) {
    let mut prev = base;
    for v in values {
        prev = prev.wrapping_add(*v);
        *v = prev;
    }
}

/// The seed per-value decode path: one [`BitReader::read`] per value.
/// Kept as the reference oracle for the kernels.
///
/// # Errors
///
/// Same conditions as [`unpack`]: corrupt width/count are rejected up
/// front, truncation either up front or mid-value.
pub fn unpack_reference(
    data: &[u8],
    count: usize,
    width: u32,
    out: &mut Vec<u32>,
) -> Result<(), Error> {
    check_input(data, count, width)?;
    let mut r = BitReader::new(data);
    out.reserve(count);
    for _ in 0..count {
        out.push(r.read(width)?);
    }
    Ok(())
}

/// Reference for [`unpack_d1`]: per-value reads plus a scalar prefix sum.
///
/// # Errors
///
/// Same conditions as [`unpack_reference`].
pub fn unpack_d1_reference(
    data: &[u8],
    count: usize,
    width: u32,
    base: u32,
    out: &mut Vec<u32>,
) -> Result<(), Error> {
    check_input(data, count, width)?;
    let mut r = BitReader::new(data);
    out.reserve(count);
    let mut prev = base;
    for _ in 0..count {
        prev = prev.wrapping_add(r.read(width)?);
        out.push(prev);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::BitWriter;

    fn pack(values: &[u32], width: u32) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = BitWriter::new(&mut buf);
        for &v in values {
            w.write(v, width);
        }
        w.finish();
        buf
    }

    #[test]
    fn matches_reference_for_every_width() {
        for width in 0..=32u32 {
            let mask = if width == 32 {
                u32::MAX
            } else {
                (1u32 << width) - 1
            };
            let values: Vec<u32> = (0..128u32)
                .map(|i| i.wrapping_mul(2654435761) & mask)
                .collect();
            let buf = pack(&values, width);
            let mut fast = Vec::new();
            unpack(&buf, values.len(), width, &mut fast).unwrap();
            let mut slow = Vec::new();
            unpack_reference(&buf, values.len(), width, &mut slow).unwrap();
            assert_eq!(fast, slow, "width {width}");
            assert_eq!(fast, values, "width {width}");
        }
    }

    #[test]
    fn d1_matches_unfused() {
        for width in [1u32, 5, 13, 32] {
            let mask = if width == 32 {
                u32::MAX
            } else {
                (1u32 << width) - 1
            };
            let gaps: Vec<u32> = (0..100u32).map(|i| (i * 7919) & mask).collect();
            let buf = pack(&gaps, width);
            for base in [0u32, 1, u32::MAX - 5] {
                let mut fused = Vec::new();
                unpack_d1(&buf, gaps.len(), width, base, &mut fused).unwrap();
                let mut two_pass = Vec::new();
                unpack(&buf, gaps.len(), width, &mut two_pass).unwrap();
                prefix_sum_d1(base, &mut two_pass);
                assert_eq!(fused, two_pass, "width {width} base {base}");
            }
        }
    }

    #[test]
    fn short_inputs_use_tail_loads() {
        // 3 values × 3 bits = 2 bytes: no 8-byte window ever fits.
        let values = [5u32, 2, 7];
        let buf = pack(&values, 3);
        assert_eq!(buf.len(), 2);
        let mut out = Vec::new();
        unpack(&buf, 3, 3, &mut out).unwrap();
        assert_eq!(out, values);
    }

    #[test]
    fn truncated_and_corrupt_inputs_rejected() {
        let err = unpack(&[0u8; 3], 128, 13, &mut Vec::new()).unwrap_err();
        assert!(matches!(err, Error::Truncated { .. }));
        let err = unpack(&[0u8; 8], 1, 33, &mut Vec::new()).unwrap_err();
        assert!(matches!(err, Error::Corrupt { .. }));
        let err = unpack_d1(&[0u8; 3], 128, 13, 0, &mut Vec::new()).unwrap_err();
        assert!(matches!(err, Error::Truncated { .. }));
    }

    #[test]
    fn width_zero_emits_zeros_and_bases() {
        let mut out = Vec::new();
        unpack(&[], 5, 0, &mut out).unwrap();
        assert_eq!(out, [0; 5]);
        let mut out = Vec::new();
        unpack_d1(&[], 4, 0, 42, &mut out).unwrap();
        assert_eq!(out, [42; 4]);
    }

    #[test]
    fn appends_without_clobbering() {
        let values = [9u32, 8, 7];
        let buf = pack(&values, 4);
        let mut out = vec![1, 2];
        unpack(&buf, 3, 4, &mut out).unwrap();
        assert_eq!(out, [1, 2, 9, 8, 7]);
    }
}
