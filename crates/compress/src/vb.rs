//! Variable-Byte: 7-bit payload groups, MSB set on the final byte of each
//! value (the classic Cutting–Pedersen encoding the paper's Figure 8
//! programs into the BOSS decompression module).

use crate::{check_len, BlockInfo, Codec, Error, Scheme};

/// The VB codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct VariableByte;

impl Codec for VariableByte {
    fn scheme(&self) -> Scheme {
        Scheme::Vb
    }

    fn encode(&self, values: &[u32], out: &mut Vec<u8>) -> Result<BlockInfo, Error> {
        let count = check_len(values)?;
        for &v in values {
            let mut v = v;
            loop {
                let payload = (v & 0x7F) as u8;
                v >>= 7;
                if v == 0 {
                    out.push(payload | 0x80); // terminator byte
                    break;
                }
                out.push(payload);
            }
        }
        Ok(BlockInfo {
            count,
            bit_width: 0,
            exception_offset: 0,
        })
    }

    fn decode(&self, data: &[u8], info: &BlockInfo, out: &mut Vec<u32>) -> Result<(), Error> {
        let mut pos = 0usize;
        out.reserve(info.count as usize);
        for _ in 0..info.count {
            let mut v: u32 = 0;
            let mut shift = 0u32;
            loop {
                let Some(&b) = data.get(pos) else {
                    return Err(Error::Truncated {
                        have: data.len(),
                        need: pos + 1,
                    });
                };
                pos += 1;
                if shift >= 35 {
                    return Err(Error::Corrupt {
                        reason: "VB value wider than 32 bits",
                    });
                }
                let payload = u32::from(b & 0x7F);
                if shift == 28 && payload > 0xF {
                    return Err(Error::Corrupt {
                        reason: "VB value wider than 32 bits",
                    });
                }
                v |= payload << shift;
                shift += 7;
                if b & 0x80 != 0 {
                    break;
                }
            }
            out.push(v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u32]) -> Vec<u8> {
        let mut buf = Vec::new();
        let info = VariableByte.encode(values, &mut buf).unwrap();
        let mut out = Vec::new();
        VariableByte.decode(&buf, &info, &mut out).unwrap();
        assert_eq!(out, values);
        buf
    }

    #[test]
    fn small_values_one_byte_each() {
        let buf = roundtrip(&[0, 1, 127, 64]);
        assert_eq!(buf.len(), 4);
    }

    #[test]
    fn boundaries() {
        roundtrip(&[127, 128, 16383, 16384, 2097151, 2097152, u32::MAX]);
    }

    #[test]
    fn byte_counts_match_widths() {
        let mut buf = Vec::new();
        VariableByte.encode(&[128], &mut buf).unwrap();
        assert_eq!(buf.len(), 2);
        buf.clear();
        VariableByte.encode(&[u32::MAX], &mut buf).unwrap();
        assert_eq!(buf.len(), 5);
    }

    #[test]
    fn truncated_errors() {
        let mut buf = Vec::new();
        let info = VariableByte.encode(&[1_000_000, 2], &mut buf).unwrap();
        buf.truncate(2);
        let err = VariableByte
            .decode(&buf, &info, &mut Vec::new())
            .unwrap_err();
        assert!(matches!(err, Error::Truncated { .. }));
    }

    #[test]
    fn overwide_value_is_corrupt() {
        // Six continuation bytes with no terminator within 32 bits.
        let data = [0x7F, 0x7F, 0x7F, 0x7F, 0x7F, 0xFF];
        let info = BlockInfo {
            count: 1,
            bit_width: 0,
            exception_offset: 0,
        };
        let err = VariableByte
            .decode(&data, &info, &mut Vec::new())
            .unwrap_err();
        assert!(matches!(err, Error::Corrupt { .. }));
    }
}
