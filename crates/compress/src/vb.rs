//! Variable-Byte: 7-bit payload groups, MSB set on the final byte of each
//! value (the classic Cutting–Pedersen encoding the paper's Figure 8
//! programs into the BOSS decompression module).

use crate::{check_count, check_len, BlockInfo, Codec, Error, Scheme};

/// The VB codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct VariableByte;

impl Codec for VariableByte {
    fn scheme(&self) -> Scheme {
        Scheme::Vb
    }

    fn encode(&self, values: &[u32], out: &mut Vec<u8>) -> Result<BlockInfo, Error> {
        let count = check_len(values)?;
        for &v in values {
            let mut v = v;
            loop {
                let payload = (v & 0x7F) as u8;
                v >>= 7;
                if v == 0 {
                    out.push(payload | 0x80); // terminator byte
                    break;
                }
                out.push(payload);
            }
        }
        Ok(BlockInfo {
            count,
            bit_width: 0,
            exception_offset: 0,
        })
    }

    fn decode(&self, data: &[u8], info: &BlockInfo, out: &mut Vec<u32>) -> Result<(), Error> {
        let count = check_count(info)?;
        out.reserve(count);
        let mut pos = 0usize;
        let mut i = 0usize;
        // Fast path: while an 8-byte word is in bounds, locate the
        // terminator with one trailing-zeros over the MSB mask and merge
        // the 7-bit payload groups branchlessly — the only data-dependent
        // branch per value is the rare 5-byte/overwide case.
        const MSBS: u64 = 0x8080_8080_8080_8080;
        const PAYLOADS: u64 = 0x0000_007F_7F7F_7F7F;
        while i < count && pos + 8 <= data.len() {
            // Infallible: the loop condition keeps the 8-byte window in bounds.
            #[allow(clippy::expect_used)]
            let word = u64::from_le_bytes(data[pos..pos + 8].try_into().expect("8 bytes"));
            let tz = (word & MSBS).trailing_zeros();
            if tz >= 39 {
                if tz > 39 {
                    // No terminator within 5 bytes: the reference reports
                    // Corrupt here (either at the byte-4 payload check or
                    // at the sixth byte, which is in bounds).
                    return Err(Error::Corrupt {
                        reason: "VB value wider than 32 bits",
                    });
                }
                // Legal 5-byte value; byte 4 carries at most 4 bits.
                let payload = (word >> 32) & 0x7F;
                if payload > 0xF {
                    return Err(Error::Corrupt {
                        reason: "VB value wider than 32 bits",
                    });
                }
                let w = word & PAYLOADS;
                let v = (w & 0x7F)
                    | ((w >> 1) & (0x7F << 7))
                    | ((w >> 2) & (0x7F << 14))
                    | ((w >> 3) & (0x7F << 21))
                    | (payload << 28);
                out.push(v as u32);
                pos += 5;
            } else {
                // tz = 8*len - 1 for a terminator in bytes 0..=3.
                let len = (tz as usize >> 3) + 1;
                let w = word & (u64::MAX >> (63 - tz)) & PAYLOADS;
                let v = (w & 0x7F)
                    | ((w >> 1) & (0x7F << 7))
                    | ((w >> 2) & (0x7F << 14))
                    | ((w >> 3) & (0x7F << 21));
                out.push(v as u32);
                pos += len;
            }
            i += 1;
        }
        // Tail: per-byte bounds-checked loop, identical to the reference.
        for _ in i..count {
            let mut v: u32 = 0;
            let mut shift = 0u32;
            loop {
                let Some(&b) = data.get(pos) else {
                    return Err(Error::Truncated {
                        have: data.len(),
                        need: pos + 1,
                    });
                };
                pos += 1;
                if shift >= 35 {
                    return Err(Error::Corrupt {
                        reason: "VB value wider than 32 bits",
                    });
                }
                let payload = u32::from(b & 0x7F);
                if shift == 28 && payload > 0xF {
                    return Err(Error::Corrupt {
                        reason: "VB value wider than 32 bits",
                    });
                }
                v |= payload << shift;
                shift += 7;
                if b & 0x80 != 0 {
                    break;
                }
            }
            out.push(v);
        }
        Ok(())
    }

    fn decode_reference(
        &self,
        data: &[u8],
        info: &BlockInfo,
        out: &mut Vec<u32>,
    ) -> Result<(), Error> {
        let mut pos = 0usize;
        out.reserve(check_count(info)?);
        for _ in 0..info.count {
            let mut v: u32 = 0;
            let mut shift = 0u32;
            loop {
                let Some(&b) = data.get(pos) else {
                    return Err(Error::Truncated {
                        have: data.len(),
                        need: pos + 1,
                    });
                };
                pos += 1;
                if shift >= 35 {
                    return Err(Error::Corrupt {
                        reason: "VB value wider than 32 bits",
                    });
                }
                let payload = u32::from(b & 0x7F);
                if shift == 28 && payload > 0xF {
                    return Err(Error::Corrupt {
                        reason: "VB value wider than 32 bits",
                    });
                }
                v |= payload << shift;
                shift += 7;
                if b & 0x80 != 0 {
                    break;
                }
            }
            out.push(v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u32]) -> Vec<u8> {
        let mut buf = Vec::new();
        let info = VariableByte.encode(values, &mut buf).unwrap();
        let mut out = Vec::new();
        VariableByte.decode(&buf, &info, &mut out).unwrap();
        assert_eq!(out, values);
        buf
    }

    #[test]
    fn small_values_one_byte_each() {
        let buf = roundtrip(&[0, 1, 127, 64]);
        assert_eq!(buf.len(), 4);
    }

    #[test]
    fn boundaries() {
        roundtrip(&[127, 128, 16383, 16384, 2097151, 2097152, u32::MAX]);
    }

    #[test]
    fn byte_counts_match_widths() {
        let mut buf = Vec::new();
        VariableByte.encode(&[128], &mut buf).unwrap();
        assert_eq!(buf.len(), 2);
        buf.clear();
        VariableByte.encode(&[u32::MAX], &mut buf).unwrap();
        assert_eq!(buf.len(), 5);
    }

    #[test]
    fn truncated_errors() {
        let mut buf = Vec::new();
        let info = VariableByte.encode(&[1_000_000, 2], &mut buf).unwrap();
        buf.truncate(2);
        let err = VariableByte
            .decode(&buf, &info, &mut Vec::new())
            .unwrap_err();
        assert!(matches!(err, Error::Truncated { .. }));
    }

    #[test]
    fn kernel_matches_reference_on_random_streams() {
        let mut state = 0xdead_beef_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        for len in [1usize, 2, 5, 100, 128, 333] {
            let values: Vec<u32> = (0..len)
                .map(|_| {
                    let r = next();
                    match r % 8 {
                        0..=4 => r % 128,
                        5 => r % 16384,
                        6 => r % 2097152,
                        _ => r,
                    }
                })
                .collect();
            let mut buf = Vec::new();
            let info = VariableByte.encode(&values, &mut buf).unwrap();
            let mut fast = Vec::new();
            VariableByte.decode(&buf, &info, &mut fast).unwrap();
            let mut slow = Vec::new();
            VariableByte
                .decode_reference(&buf, &info, &mut slow)
                .unwrap();
            assert_eq!(fast, slow, "len {len}");
            assert_eq!(fast, values, "len {len}");
        }
    }

    #[test]
    fn truncated_five_byte_value_errors_like_reference() {
        // A 5-byte value whose terminator byte is cut off: both paths
        // report the same error shape.
        let mut buf = Vec::new();
        let info = VariableByte.encode(&[u32::MAX], &mut buf).unwrap();
        buf.truncate(4);
        let fast = VariableByte
            .decode(&buf, &info, &mut Vec::new())
            .unwrap_err();
        let slow = VariableByte
            .decode_reference(&buf, &info, &mut Vec::new())
            .unwrap_err();
        assert_eq!(format!("{fast}"), format!("{slow}"));
        assert!(matches!(fast, Error::Truncated { .. }));
    }

    #[test]
    fn overwide_value_is_corrupt() {
        // Six continuation bytes with no terminator within 32 bits.
        let data = [0x7F, 0x7F, 0x7F, 0x7F, 0x7F, 0xFF];
        let info = BlockInfo {
            count: 1,
            bit_width: 0,
            exception_offset: 0,
        };
        let err = VariableByte
            .decode(&data, &info, &mut Vec::new())
            .unwrap_err();
        assert!(matches!(err, Error::Corrupt { .. }));
    }
}
