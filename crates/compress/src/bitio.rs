//! Little-endian bit-level readers/writers shared by the packed codecs.

use crate::Error;

/// Appends values of arbitrary bit width (0..=32) to a byte buffer,
/// least-significant bit first.
#[derive(Debug)]
pub struct BitWriter<'a> {
    out: &'a mut Vec<u8>,
    cur: u64,
    filled: u32,
}

impl<'a> BitWriter<'a> {
    /// Starts writing at the end of `out`.
    pub fn new(out: &'a mut Vec<u8>) -> Self {
        BitWriter {
            out,
            cur: 0,
            filled: 0,
        }
    }

    /// Writes the low `bits` bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 32` or if `value` has bits set above `bits`
    /// (debug builds only for the latter).
    pub fn write(&mut self, value: u32, bits: u32) {
        assert!(bits <= 32, "bit width {bits} out of range");
        debug_assert!(
            bits == 32 || u64::from(value) < (1u64 << bits),
            "value {value} wider than {bits} bits"
        );
        self.cur |= u64::from(value) << self.filled;
        self.filled += bits;
        while self.filled >= 8 {
            self.out.push((self.cur & 0xFF) as u8);
            self.cur >>= 8;
            self.filled -= 8;
        }
    }

    /// Flushes any partial byte (zero-padded).
    pub fn finish(mut self) {
        if self.filled > 0 {
            self.out.push((self.cur & 0xFF) as u8);
            self.cur = 0;
            self.filled = 0;
        }
    }
}

/// Reads values of arbitrary bit width (0..=32) from a byte slice,
/// least-significant bit first (the inverse of [`BitWriter`]).
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    cur: u64,
    avail: u32,
}

impl<'a> BitReader<'a> {
    /// Starts reading at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            cur: 0,
            avail: 0,
        }
    }

    /// Reads `bits` bits as a `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Truncated`] when the underlying slice runs out.
    pub fn read(&mut self, bits: u32) -> Result<u32, Error> {
        assert!(bits <= 32, "bit width {bits} out of range");
        while self.avail < bits {
            let Some(&b) = self.data.get(self.pos) else {
                return Err(Error::Truncated {
                    have: self.data.len(),
                    need: self.pos + 1,
                });
            };
            self.cur |= u64::from(b) << self.avail;
            self.avail += 8;
            self.pos += 1;
        }
        let mask = if bits == 32 {
            u64::MAX >> 32
        } else {
            (1u64 << bits) - 1
        };
        let v = (self.cur & mask) as u32;
        self.cur >>= bits;
        self.avail -= bits;
        Ok(v)
    }

    /// Number of whole bytes consumed so far (including a partial tail byte).
    pub fn bytes_consumed(&self) -> usize {
        self.pos
    }
}

/// Number of bits needed to represent `v` (0 for `v == 0`).
pub(crate) fn bits_for(v: u32) -> u32 {
    32 - v.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut buf = Vec::new();
        let mut w = BitWriter::new(&mut buf);
        let samples = [
            (5u32, 3u32),
            (0, 1),
            (1023, 10),
            (0xFFFF_FFFF, 32),
            (1, 1),
            (77, 7),
        ];
        for &(v, b) in &samples {
            w.write(v, b);
        }
        w.finish();
        let mut r = BitReader::new(&buf);
        for &(v, b) in &samples {
            assert_eq!(r.read(b).unwrap(), v);
        }
    }

    #[test]
    fn zero_width_writes_nothing() {
        let mut buf = Vec::new();
        let mut w = BitWriter::new(&mut buf);
        for _ in 0..1000 {
            w.write(0, 0);
        }
        w.finish();
        assert!(buf.is_empty());
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read(0).unwrap(), 0);
    }

    #[test]
    fn truncated_read_errors() {
        let buf = vec![0xFFu8];
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read(8).unwrap(), 0xFF);
        assert!(matches!(r.read(1), Err(Error::Truncated { .. })));
    }

    #[test]
    fn bytes_consumed_tracks_position() {
        let buf = vec![0u8; 4];
        let mut r = BitReader::new(&buf);
        r.read(4).unwrap();
        assert_eq!(r.bytes_consumed(), 1);
        r.read(8).unwrap();
        assert_eq!(r.bytes_consumed(), 2);
    }

    #[test]
    fn writer_packs_densely() {
        let mut buf = Vec::new();
        let mut w = BitWriter::new(&mut buf);
        for _ in 0..8 {
            w.write(1, 1);
        }
        w.finish();
        assert_eq!(buf, vec![0xFF]);
    }

    #[test]
    fn bits_for_values() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u32::MAX), 32);
    }
}
