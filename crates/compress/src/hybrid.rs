//! Per-list hybrid scheme selection (the "Hybrid" bars of Figure 3) and
//! compression-ratio helpers.

use crate::{codec_for, Error, Scheme, ALL_SCHEMES, MAX_BLOCK_VALUES};

/// Outcome of trying every scheme on a value stream.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridChoice {
    /// The winning scheme.
    pub scheme: Scheme,
    /// Its encoded size in bytes.
    pub bytes: usize,
    /// Encoded size of every scheme, in [`ALL_SCHEMES`] order (`None` when
    /// the scheme cannot represent the stream, e.g. S16 above 28 bits).
    pub all_bytes: [Option<usize>; 5],
}

/// Encoded size of `values` under `scheme`, chunked into blocks of at most
/// [`MAX_BLOCK_VALUES`] values.
///
/// # Errors
///
/// Propagates codec errors (e.g. [`Error::ValueTooLarge`] for S16).
pub fn encoded_size(scheme: Scheme, values: &[u32]) -> Result<usize, Error> {
    let codec = codec_for(scheme);
    let mut total = 0usize;
    let mut buf = Vec::new();
    for chunk in values.chunks(MAX_BLOCK_VALUES.max(1)) {
        buf.clear();
        codec.encode(chunk, &mut buf)?;
        total += buf.len();
    }
    Ok(total)
}

/// Picks the scheme with the smallest encoded size for `values`.
///
/// Ties go to the earlier scheme in [`ALL_SCHEMES`]. Streams that some
/// scheme cannot represent simply exclude that scheme.
///
/// # Panics
///
/// Panics if *no* scheme can encode the stream, which cannot happen for
/// `u32` inputs (BP, VB, OptPFD and S8b are total).
pub fn best_scheme(values: &[u32]) -> HybridChoice {
    let mut all_bytes = [None; 5];
    let mut best: Option<(Scheme, usize)> = None;
    for (i, s) in ALL_SCHEMES.into_iter().enumerate() {
        if let Ok(sz) = encoded_size(s, values) {
            all_bytes[i] = Some(sz);
            if best.is_none_or(|(_, b)| sz < b) {
                best = Some((s, sz));
            }
        }
    }
    // Infallible: BitPacking and VariableByte encode every u32 slice, so
    // at least one candidate always lands in `best`.
    #[allow(clippy::expect_used)]
    let (scheme, bytes) = best.expect("at least one total codec must succeed");
    HybridChoice {
        scheme,
        bytes,
        all_bytes,
    }
}

/// Compression ratio: raw size (4 bytes/value) over encoded size.
/// Returns `f64::INFINITY` for zero encoded bytes (e.g. an all-zero BP
/// block) and 0.0 for an empty stream.
pub fn compression_ratio(raw_values: usize, encoded_bytes: usize) -> f64 {
    if raw_values == 0 {
        0.0
    } else if encoded_bytes == 0 {
        f64::INFINITY
    } else {
        (raw_values * 4) as f64 / encoded_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_is_minimal() {
        let values: Vec<u32> = (0..1000u32)
            .map(|i| i.wrapping_mul(2654435761) >> 20)
            .collect();
        let choice = best_scheme(&values);
        let best_bytes = choice.bytes;
        for sz in choice.all_bytes.iter().flatten() {
            assert!(best_bytes <= *sz);
        }
    }

    #[test]
    fn dense_ones_favor_word_aligned_schemes() {
        let values = vec![1u32; 10_000];
        let choice = best_scheme(&values);
        // 1-bit values: BP packs 8/byte; S8b packs 60 per 8 bytes (7.5/byte);
        // S16 packs 28 per 4 bytes (7/byte). BP should win.
        assert_eq!(choice.scheme, Scheme::Bp);
    }

    #[test]
    fn outliers_favor_pfd() {
        let mut values = vec![2u32; 10_000];
        for i in (0..values.len()).step_by(100) {
            values[i] = 1 << 30;
        }
        let choice = best_scheme(&values);
        assert_eq!(choice.scheme, Scheme::OptPfd);
    }

    #[test]
    fn s16_excluded_for_wide_values_but_choice_total() {
        let values = vec![1u32 << 29; 16];
        let choice = best_scheme(&values);
        assert!(
            choice.all_bytes[3].is_none(),
            "S16 cannot encode 29-bit values"
        );
        assert!(choice.all_bytes[0].is_some());
    }

    #[test]
    fn ratio_math() {
        assert!((compression_ratio(128, 128) - 4.0).abs() < 1e-12);
        assert_eq!(compression_ratio(0, 10), 0.0);
        assert!(compression_ratio(128, 0).is_infinite());
    }

    #[test]
    fn encoded_size_chunks_large_streams() {
        let values = vec![3u32; MAX_BLOCK_VALUES * 3 + 17];
        let sz = encoded_size(Scheme::Bp, &values).unwrap();
        // 2 bits each plus per-chunk padding.
        assert!(sz >= values.len() / 4);
        assert!(sz <= values.len() / 4 + 8);
    }
}
