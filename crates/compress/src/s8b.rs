//! Simple8b: each 64-bit word carries a 4-bit selector and 60 payload bits
//! (Anh & Moffat, "Index compression using 64-bit words"). Selectors 0 and 1
//! encode runs of 240/120 zeros with no payload, which is what makes S8b
//! excel on dense streams of 0-gaps.

use crate::{check_count, check_len, BlockInfo, Codec, Error, Scheme};

/// `(count, bits)` for selectors 2..=15. Selector 0 = 240 zeros,
/// selector 1 = 120 zeros.
const PACKED: [(u32, u32); 14] = [
    (60, 1),
    (30, 2),
    (20, 3),
    (15, 4),
    (12, 5),
    (10, 6),
    (8, 7),
    (7, 8),
    (6, 10),
    (5, 12),
    (4, 15),
    (3, 20),
    (2, 30),
    (1, 60),
];

/// Emits `N` fields of `BITS` bits from a 64-bit payload; monomorphized
/// per selector so the compiler fully unrolls each word, and staged
/// through a stack array so the `Vec` pays one capacity check per word
/// instead of one per value.
#[inline]
fn emit_run<const N: usize, const BITS: u32>(word: u64, out: &mut Vec<u32>) {
    let mask = (1u64 << BITS) - 1;
    let mut vals = [0u32; N];
    for (i, v) in vals.iter_mut().enumerate() {
        *v = ((word >> (i as u32 * BITS)) & mask) as u32;
    }
    out.extend_from_slice(&vals);
}

/// Decodes one full packed word (all `PACKED[sel - 2].0` values) with the
/// unrolled per-selector kernel. `sel` must be in `2..=15`.
#[inline]
fn decode_packed(sel: usize, word: u64, out: &mut Vec<u32>) {
    match sel {
        2 => emit_run::<60, 1>(word, out),
        3 => emit_run::<30, 2>(word, out),
        4 => emit_run::<20, 3>(word, out),
        5 => emit_run::<15, 4>(word, out),
        6 => emit_run::<12, 5>(word, out),
        7 => emit_run::<10, 6>(word, out),
        8 => emit_run::<8, 7>(word, out),
        9 => emit_run::<7, 8>(word, out),
        10 => emit_run::<6, 10>(word, out),
        11 => emit_run::<5, 12>(word, out),
        12 => emit_run::<4, 15>(word, out),
        13 => emit_run::<3, 20>(word, out),
        14 => emit_run::<2, 30>(word, out),
        _ => emit_run::<1, 60>(word, out),
    }
}

/// The S8b codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct Simple8b;

impl Codec for Simple8b {
    fn scheme(&self) -> Scheme {
        Scheme::S8b
    }

    fn encode(&self, values: &[u32], out: &mut Vec<u8>) -> Result<BlockInfo, Error> {
        let count = check_len(values)?;
        let mut rest = values;
        while !rest.is_empty() {
            let zeros = rest.iter().take_while(|&&v| v == 0).count();
            let (selector, take, packed) = if zeros >= 240 {
                (0u64, 240usize, None)
            } else if zeros >= 120 {
                (1u64, 120usize, None)
            } else {
                let mut choice = None;
                for (i, &(n, bits)) in PACKED.iter().enumerate() {
                    let prefix = &rest[..rest.len().min(n as usize)];
                    if prefix.iter().all(|&v| u64::from(v) < (1u64 << bits)) {
                        choice = Some((i as u64 + 2, prefix.len(), Some((n, bits))));
                        break;
                    }
                }
                choice.ok_or(Error::ValueTooLarge {
                    value: rest[0],
                    max: u32::MAX,
                })?
            };
            let mut word: u64 = selector << 60;
            if let Some((n, bits)) = packed {
                let mut shift = 0u32;
                for slot in 0..n as usize {
                    let v = rest.get(slot).copied().unwrap_or(0);
                    word |= u64::from(v) << shift;
                    shift += bits;
                }
            }
            out.extend_from_slice(&word.to_le_bytes());
            rest = &rest[take.min(rest.len())..];
        }
        Ok(BlockInfo {
            count,
            bit_width: 0,
            exception_offset: 0,
        })
    }

    fn decode(&self, data: &[u8], info: &BlockInfo, out: &mut Vec<u32>) -> Result<(), Error> {
        let mut remaining = check_count(info)?;
        let mut pos = 0usize;
        out.reserve(remaining);
        while remaining > 0 {
            let Some(bytes) = data.get(pos..pos + 8) else {
                return Err(Error::Truncated {
                    have: data.len(),
                    need: pos + 8,
                });
            };
            pos += 8;
            // Infallible: the let-else above proved the slice is 8 bytes.
            #[allow(clippy::expect_used)]
            let word = u64::from_le_bytes(bytes.try_into().expect("slice is 8 bytes"));
            let sel = (word >> 60) as usize;
            match sel {
                0 | 1 => {
                    let n = if sel == 0 { 240 } else { 120 };
                    let take = n.min(remaining);
                    out.extend(std::iter::repeat_n(0u32, take));
                    remaining -= take;
                }
                _ => {
                    let (n, bits) = PACKED[sel - 2];
                    if remaining >= n as usize {
                        // Full word: per-selector unrolled kernel, no
                        // per-value remaining checks.
                        decode_packed(sel, word, out);
                        remaining -= n as usize;
                    } else {
                        // Final partial word: the generic field walk.
                        let mask = (1u64 << bits) - 1;
                        let mut shift = 0u32;
                        for _ in 0..remaining {
                            out.push(((word >> shift) & mask) as u32);
                            shift += bits;
                        }
                        remaining = 0;
                    }
                }
            }
        }
        Ok(())
    }

    fn decode_reference(
        &self,
        data: &[u8],
        info: &BlockInfo,
        out: &mut Vec<u32>,
    ) -> Result<(), Error> {
        let mut remaining = check_count(info)?;
        let mut pos = 0usize;
        out.reserve(remaining);
        while remaining > 0 {
            let Some(bytes) = data.get(pos..pos + 8) else {
                return Err(Error::Truncated {
                    have: data.len(),
                    need: pos + 8,
                });
            };
            pos += 8;
            // Infallible: the let-else above proved the slice is 8 bytes.
            #[allow(clippy::expect_used)]
            let word = u64::from_le_bytes(bytes.try_into().expect("slice is 8 bytes"));
            let sel = (word >> 60) as usize;
            match sel {
                0 | 1 => {
                    let n = if sel == 0 { 240 } else { 120 };
                    let take = n.min(remaining);
                    out.extend(std::iter::repeat_n(0u32, take));
                    remaining -= take;
                }
                _ => {
                    let (n, bits) = PACKED[sel - 2];
                    let mask = (1u64 << bits) - 1;
                    let mut shift = 0u32;
                    for _ in 0..n {
                        if remaining == 0 {
                            break;
                        }
                        out.push(((word >> shift) & mask) as u32);
                        shift += bits;
                        remaining -= 1;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u32]) -> Vec<u8> {
        let mut buf = Vec::new();
        let info = Simple8b.encode(values, &mut buf).unwrap();
        let mut out = Vec::new();
        Simple8b.decode(&buf, &info, &mut out).unwrap();
        assert_eq!(out, values);
        buf
    }

    #[test]
    fn packed_layouts_fit_60_bits() {
        for &(n, b) in &PACKED {
            assert!(n * b <= 60, "{n}x{b}");
        }
    }

    #[test]
    fn ones_pack_60_per_word() {
        let buf = roundtrip(&[1u32; 120]);
        assert_eq!(buf.len(), 16, "two words of 60×1-bit");
    }

    #[test]
    fn long_zero_run_is_one_word() {
        let buf = roundtrip(&[0u32; 240]);
        assert_eq!(buf.len(), 8);
    }

    #[test]
    fn medium_zero_run() {
        let buf = roundtrip(&[0u32; 120]);
        assert_eq!(buf.len(), 8);
    }

    #[test]
    fn short_zero_run_uses_packed_selector() {
        let buf = roundtrip(&[0u32; 50]);
        assert_eq!(buf.len(), 8, "50 zeros fit one 60×1-bit word");
    }

    #[test]
    fn full_u32_values() {
        roundtrip(&[u32::MAX, 0, u32::MAX]);
    }

    #[test]
    fn mixed_stream() {
        let values: Vec<u32> = (0..500u32)
            .map(|i| if i % 7 == 0 { i * 1000 } else { i % 3 })
            .collect();
        roundtrip(&values);
    }

    #[test]
    fn truncated_errors() {
        let mut buf = Vec::new();
        let info = Simple8b.encode(&[9u32; 30], &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = Simple8b.decode(&buf, &info, &mut Vec::new()).unwrap_err();
        assert!(matches!(err, Error::Truncated { .. }));
    }

    #[test]
    fn zeros_then_values() {
        let mut v = vec![0u32; 240];
        v.extend([5, 6, 7]);
        roundtrip(&v);
    }

    #[test]
    fn kernel_matches_reference_on_random_streams() {
        let mut state = 0x9e37_79b9_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        for len in [1usize, 2, 59, 60, 61, 128, 240, 700] {
            let values: Vec<u32> = (0..len)
                .map(|_| {
                    let r = next();
                    match r % 8 {
                        0..=3 => 0,
                        4 => r % 4,
                        5 => r % 256,
                        6 => r % 65536,
                        _ => r,
                    }
                })
                .collect();
            let mut buf = Vec::new();
            let info = Simple8b.encode(&values, &mut buf).unwrap();
            let mut fast = Vec::new();
            Simple8b.decode(&buf, &info, &mut fast).unwrap();
            let mut slow = Vec::new();
            Simple8b.decode_reference(&buf, &info, &mut slow).unwrap();
            assert_eq!(fast, slow, "len {len}");
            assert_eq!(fast, values, "len {len}");
        }
    }
}
