//! Integer compression codecs for inverted indexes.
//!
//! Implements the five schemes evaluated by the BOSS paper (Section VI and
//! Figure 3) plus the per-list *hybrid* selection BOSS uses for its index:
//!
//! * [`BitPacking`] (BP) — fixed bit width per block,
//! * [`VariableByte`] (VB) — 7-bit payload groups with continuation bits,
//! * [`OptPfd`] (OptPForDelta) — packed low bits plus patched exceptions,
//!   with the bit width chosen to minimize the encoded size,
//! * [`Simple16`] (S16) — 28 payload bits per 32-bit word, 16 layouts,
//! * [`Simple8b`] (S8b) — 60 payload bits per 64-bit word, 16 layouts.
//!
//! All codecs implement the [`Codec`] trait: they encode a slice of `u32`
//! *gap* values (already delta-encoded by the index layer) into bytes and
//! decode them back exactly. Values of zero are legal everywhere (the index
//! layer produces 0-gaps for adjacent docIDs and `tf - 1` streams).
//!
//! # Example
//!
//! ```
//! use boss_compress::{Codec, Scheme, codec_for};
//!
//! # fn main() -> Result<(), boss_compress::Error> {
//! let gaps = [3u32, 0, 7, 120, 0, 2];
//! let codec = codec_for(Scheme::OptPfd);
//! let mut buf = Vec::new();
//! let info = codec.encode(&gaps, &mut buf)?;
//! let mut out = Vec::new();
//! codec.decode(&buf, &info, &mut out)?;
//! assert_eq!(out, gaps);
//! # Ok(())
//! # }
//! ```

// Decode paths consume untrusted (possibly corrupt) bytes; corruption
// must surface as typed errors, so panicking constructs need a
// per-site justification.
#![warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

mod bitio;
mod bp;
mod error;
mod gvb;
mod hybrid;
mod pfd;
mod s16;
mod s8b;
pub mod unpack;
mod vb;

pub use bitio::{BitReader, BitWriter};
pub use bp::BitPacking;
pub use error::Error;
pub use gvb::GroupVarint;
pub use hybrid::{best_scheme, compression_ratio, encoded_size, HybridChoice};
pub use pfd::OptPfd;
pub use s16::Simple16;
pub use s8b::Simple8b;
pub use vb::VariableByte;

use serde::{Deserialize, Serialize};

/// Identifier of a compression scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Bit-Packing.
    Bp,
    /// Variable-Byte.
    Vb,
    /// OptPForDelta.
    OptPfd,
    /// Simple16.
    S16,
    /// Simple8b.
    S8b,
    /// Group-Varint (extension; not part of the paper's evaluated set).
    GroupVarint,
}

/// All schemes, in the order the paper's Figure 3 lists them.
pub const ALL_SCHEMES: [Scheme; 5] = [
    Scheme::Bp,
    Scheme::Vb,
    Scheme::OptPfd,
    Scheme::S16,
    Scheme::S8b,
];

impl Scheme {
    /// The short name used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Bp => "BP",
            Scheme::Vb => "VB",
            Scheme::OptPfd => "OptPFD",
            Scheme::S16 => "S16",
            Scheme::S8b => "S8b",
            Scheme::GroupVarint => "GVB",
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Decode-relevant facts about one encoded block, mirroring the
/// per-block metadata fields BOSS keeps (Section IV-A): element count,
/// encoded bit width, and the offset of the exception area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BlockInfo {
    /// Number of encoded values (the paper allots 7 bits; blocks hold ≤128).
    pub count: u16,
    /// Encoded bit width (5 bits in the paper's metadata); meaning is
    /// scheme-specific and 0 where not applicable.
    pub bit_width: u8,
    /// Byte offset of the exception area within the block (12 bits in the
    /// paper's metadata); 0 when the scheme has no exceptions.
    pub exception_offset: u16,
}

/// A block compression scheme.
///
/// Implementations are stateless; the canonical instances are available via
/// [`codec_for`].
pub trait Codec: std::fmt::Debug + Send + Sync {
    /// Which scheme this codec implements.
    fn scheme(&self) -> Scheme;

    /// Encode `values` into `out` (appending) and return the block facts
    /// needed to decode.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooManyValues`] if `values.len()` exceeds the 4096
    /// values a single block descriptor can address, or
    /// [`Error::ValueTooLarge`] for codec-specific range limits.
    fn encode(&self, values: &[u32], out: &mut Vec<u8>) -> Result<BlockInfo, Error>;

    /// Decode exactly `info.count` values from `data` into `out` (appending).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Truncated`] or [`Error::Corrupt`] when `data` does
    /// not contain a valid encoding for `info`.
    fn decode(&self, data: &[u8], info: &BlockInfo, out: &mut Vec<u32>) -> Result<(), Error>;

    /// The seed per-value decode path, kept as the reference oracle for the
    /// word-level kernels in [`unpack`]. Codecs whose [`Codec::decode`] was
    /// rerouted through the kernels override this with the original
    /// implementation; for the rest the two paths are the same.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Codec::decode`].
    fn decode_reference(
        &self,
        data: &[u8],
        info: &BlockInfo,
        out: &mut Vec<u32>,
    ) -> Result<(), Error> {
        self.decode(data, info, out)
    }

    /// Decode `info.count` d-gap values and append their running
    /// (wrapping) prefix sum seeded with `base` — i.e. absolute docIDs.
    ///
    /// The default decodes then runs a second pass; BP fuses the prefix
    /// sum into its unpack loop.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Codec::decode`].
    fn decode_d1(
        &self,
        data: &[u8],
        info: &BlockInfo,
        base: u32,
        out: &mut Vec<u32>,
    ) -> Result<(), Error> {
        let start = out.len();
        self.decode(data, info, out)?;
        unpack::prefix_sum_d1(base, &mut out[start..]);
        Ok(())
    }
}

/// Largest number of values a single block may hold.
pub const MAX_BLOCK_VALUES: usize = 4096;

pub(crate) fn check_len(values: &[u32]) -> Result<u16, Error> {
    if values.len() > MAX_BLOCK_VALUES {
        return Err(Error::TooManyValues {
            got: values.len(),
            max: MAX_BLOCK_VALUES,
        });
    }
    Ok(values.len() as u16)
}

/// Decode-side guard on a block descriptor's claimed value count.
///
/// `BlockInfo::count` is a `u16` read back from (possibly corrupt) index
/// metadata, so it can claim up to 65535 values while a block may hold at
/// most [`MAX_BLOCK_VALUES`]. Every decode path validates the count with
/// this *before* reserving output space, so corrupt metadata surfaces as
/// [`Error::Corrupt`] instead of an oversized allocation.
///
/// # Errors
///
/// [`Error::Corrupt`] when `info.count` exceeds [`MAX_BLOCK_VALUES`].
pub fn check_count(info: &BlockInfo) -> Result<usize, Error> {
    let count = info.count as usize;
    if count > MAX_BLOCK_VALUES {
        return Err(Error::Corrupt {
            reason: "block descriptor claims more values than a block can hold",
        });
    }
    Ok(count)
}

/// Returns the canonical codec instance for `scheme`.
pub fn codec_for(scheme: Scheme) -> &'static dyn Codec {
    match scheme {
        Scheme::Bp => &BitPacking,
        Scheme::Vb => &VariableByte,
        Scheme::OptPfd => &OptPfd,
        Scheme::S16 => &Simple16,
        Scheme::S8b => &Simple8b,
        Scheme::GroupVarint => &GroupVarint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_labels() {
        assert_eq!(Scheme::Bp.label(), "BP");
        assert_eq!(Scheme::OptPfd.to_string(), "OptPFD");
        assert_eq!(ALL_SCHEMES.len(), 5);
    }

    #[test]
    fn codec_for_returns_matching_scheme() {
        for s in ALL_SCHEMES {
            assert_eq!(codec_for(s).scheme(), s);
        }
    }

    #[test]
    fn roundtrip_all_schemes_smoke() {
        let values: Vec<u32> = (0..128u32).map(|i| (i * 37) % 509).collect();
        for s in ALL_SCHEMES {
            let codec = codec_for(s);
            let mut buf = Vec::new();
            let info = codec.encode(&values, &mut buf).unwrap();
            assert_eq!(info.count as usize, values.len());
            let mut out = Vec::new();
            codec.decode(&buf, &info, &mut out).unwrap();
            assert_eq!(out, values, "scheme {s}");
        }
    }

    #[test]
    fn empty_block_roundtrips() {
        for s in ALL_SCHEMES {
            let codec = codec_for(s);
            let mut buf = Vec::new();
            let info = codec.encode(&[], &mut buf).unwrap();
            assert_eq!(info.count, 0);
            let mut out = Vec::new();
            codec.decode(&buf, &info, &mut out).unwrap();
            assert!(out.is_empty(), "scheme {s}");
        }
    }

    #[test]
    fn too_many_values_rejected() {
        let values = vec![1u32; MAX_BLOCK_VALUES + 1];
        for s in ALL_SCHEMES {
            let err = codec_for(s).encode(&values, &mut Vec::new()).unwrap_err();
            assert!(matches!(err, Error::TooManyValues { .. }), "scheme {s}");
        }
    }

    #[test]
    fn oversized_count_rejected_by_every_decoder_without_reserving() {
        // A corrupt descriptor claiming 65535 values must surface as
        // Error::Corrupt from every decode path, fast and reference, and
        // must never grow the output vector toward the bogus count.
        let info = BlockInfo {
            count: u16::MAX,
            bit_width: 1,
            exception_offset: 0,
        };
        let data = vec![0u8; 64];
        for s in ALL_SCHEMES {
            let codec = codec_for(s);
            let mut out = Vec::new();
            assert!(
                matches!(
                    codec.decode(&data, &info, &mut out),
                    Err(Error::Corrupt { .. })
                ),
                "scheme {s} fast"
            );
            assert_eq!(out.capacity(), 0, "scheme {s} reserved for corrupt count");
            assert!(
                matches!(
                    codec.decode_reference(&data, &info, &mut Vec::new()),
                    Err(Error::Corrupt { .. })
                ),
                "scheme {s} reference"
            );
            assert!(
                matches!(
                    codec.decode_d1(&data, &info, 0, &mut Vec::new()),
                    Err(Error::Corrupt { .. })
                ),
                "scheme {s} d1"
            );
        }
    }

    #[test]
    fn max_values_roundtrip() {
        let values: Vec<u32> = (0..MAX_BLOCK_VALUES as u32).map(|i| i % 97).collect();
        for s in ALL_SCHEMES {
            let codec = codec_for(s);
            let mut buf = Vec::new();
            let info = codec.encode(&values, &mut buf).unwrap();
            let mut out = Vec::new();
            codec.decode(&buf, &info, &mut out).unwrap();
            assert_eq!(out, values, "scheme {s}");
        }
    }
}
