//! Codec error type.

/// Errors produced by the compression codecs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// More values were supplied than one block descriptor can address.
    TooManyValues {
        /// Number of values supplied.
        got: usize,
        /// Maximum number of values per block.
        max: usize,
    },
    /// A value exceeds the representable range of the scheme.
    ValueTooLarge {
        /// The offending value.
        value: u32,
        /// The scheme's limit.
        max: u32,
    },
    /// The encoded data ended before all values were decoded.
    Truncated {
        /// Bytes that were available.
        have: usize,
        /// Bytes that were needed.
        need: usize,
    },
    /// The encoded data is structurally invalid (bad selector, impossible
    /// exception index, ...).
    Corrupt {
        /// Human-readable description of the inconsistency.
        reason: &'static str,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::TooManyValues { got, max } => {
                write!(f, "block holds {got} values but the limit is {max}")
            }
            Error::ValueTooLarge { value, max } => {
                write!(f, "value {value} exceeds the scheme limit {max}")
            }
            Error::Truncated { have, need } => {
                write!(f, "encoded data truncated: have {have} bytes, need {need}")
            }
            Error::Corrupt { reason } => write!(f, "corrupt encoded data: {reason}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::TooManyValues {
            got: 5000,
            max: 4096,
        };
        assert!(e.to_string().contains("5000"));
        let e = Error::Truncated { have: 3, need: 8 };
        assert!(e.to_string().contains("truncated"));
        let e = Error::Corrupt {
            reason: "bad selector",
        };
        assert!(e.to_string().contains("bad selector"));
        let e = Error::ValueTooLarge { value: 7, max: 3 };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<Error>();
    }
}
