//! Simple16: each 32-bit word carries a 4-bit selector and 28 payload bits
//! split into equal-width (or two-width) fields according to one of 16
//! layouts (Zhang, Long & Suel).

use crate::{check_count, check_len, BlockInfo, Codec, Error, Scheme};

/// The 16 Simple16 layouts as `(count, bits)` runs. Each layout's field
/// widths sum to exactly 28 bits.
const LAYOUTS: [&[(u32, u32)]; 16] = [
    &[(28, 1)],
    &[(7, 2), (14, 1)],
    &[(7, 1), (7, 2), (7, 1)],
    &[(14, 1), (7, 2)],
    &[(14, 2)],
    &[(1, 4), (8, 3)],
    &[(1, 3), (4, 4), (3, 3)],
    &[(7, 4)],
    &[(4, 5), (2, 4)],
    &[(2, 4), (4, 5)],
    &[(3, 6), (2, 5)],
    &[(2, 5), (3, 6)],
    &[(4, 7)],
    &[(1, 10), (2, 9)],
    &[(2, 14)],
    &[(1, 28)],
];

fn layout_count(layout: &[(u32, u32)]) -> u32 {
    layout.iter().map(|&(n, _)| n).sum()
}

/// Values held by each layout, indexed by selector.
const LAYOUT_COUNTS: [usize; 16] = [28, 21, 21, 21, 14, 9, 8, 7, 6, 6, 5, 5, 4, 3, 2, 1];

/// Emits `N` fields of `BITS` bits starting at `*shift`; monomorphized per
/// (run, width) pair so the compiler fully unrolls each run, and staged
/// through a stack array so the `Vec` pays one capacity check per run
/// instead of one per value.
#[inline]
fn emit_run<const N: usize, const BITS: u32>(word: u32, shift: &mut u32, out: &mut Vec<u32>) {
    let mask = (1u32 << BITS) - 1;
    let mut vals = [0u32; N];
    for (i, v) in vals.iter_mut().enumerate() {
        *v = (word >> (*shift + i as u32 * BITS)) & mask;
    }
    *shift += N as u32 * BITS;
    out.extend_from_slice(&vals);
}

/// Decodes one full word (all `LAYOUT_COUNTS[sel]` values) with the
/// unrolled per-selector kernel.
#[inline]
fn decode_word(sel: usize, word: u32, out: &mut Vec<u32>) {
    let s = &mut 0u32;
    match sel {
        0 => emit_run::<28, 1>(word, s, out),
        1 => {
            emit_run::<7, 2>(word, s, out);
            emit_run::<14, 1>(word, s, out);
        }
        2 => {
            emit_run::<7, 1>(word, s, out);
            emit_run::<7, 2>(word, s, out);
            emit_run::<7, 1>(word, s, out);
        }
        3 => {
            emit_run::<14, 1>(word, s, out);
            emit_run::<7, 2>(word, s, out);
        }
        4 => emit_run::<14, 2>(word, s, out),
        5 => {
            emit_run::<1, 4>(word, s, out);
            emit_run::<8, 3>(word, s, out);
        }
        6 => {
            emit_run::<1, 3>(word, s, out);
            emit_run::<4, 4>(word, s, out);
            emit_run::<3, 3>(word, s, out);
        }
        7 => emit_run::<7, 4>(word, s, out),
        8 => {
            emit_run::<4, 5>(word, s, out);
            emit_run::<2, 4>(word, s, out);
        }
        9 => {
            emit_run::<2, 4>(word, s, out);
            emit_run::<4, 5>(word, s, out);
        }
        10 => {
            emit_run::<3, 6>(word, s, out);
            emit_run::<2, 5>(word, s, out);
        }
        11 => {
            emit_run::<2, 5>(word, s, out);
            emit_run::<3, 6>(word, s, out);
        }
        12 => emit_run::<4, 7>(word, s, out),
        13 => {
            emit_run::<1, 10>(word, s, out);
            emit_run::<2, 9>(word, s, out);
        }
        14 => emit_run::<2, 14>(word, s, out),
        _ => emit_run::<1, 28>(word, s, out),
    }
}

/// Returns how many leading `values` fit layout `sel` (0 if the first field
/// already overflows).
fn fits(layout: &[(u32, u32)], values: &[u32]) -> bool {
    let mut i = 0usize;
    for &(n, bits) in layout {
        for _ in 0..n {
            match values.get(i) {
                Some(&v) if u64::from(v) < (1u64 << bits) => i += 1,
                // Fewer values than the layout holds: padding zeros fit.
                None => return true,
                Some(_) => return false,
            }
        }
    }
    true
}

/// The S16 codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct Simple16;

impl Codec for Simple16 {
    fn scheme(&self) -> Scheme {
        Scheme::S16
    }

    fn encode(&self, values: &[u32], out: &mut Vec<u8>) -> Result<BlockInfo, Error> {
        let count = check_len(values)?;
        let mut rest = values;
        while !rest.is_empty() {
            // Greedy: pick the densest layout (largest count first — the
            // table is ordered densest-first) whose widths fit.
            let mut chosen = None;
            for (sel, layout) in LAYOUTS.iter().enumerate() {
                if fits(layout, rest) {
                    chosen = Some((sel as u32, *layout));
                    break;
                }
            }
            let Some((sel, layout)) = chosen else {
                // Even 1×28 failed: the value needs more than 28 bits.
                return Err(Error::ValueTooLarge {
                    value: rest[0],
                    max: (1 << 28) - 1,
                });
            };
            let mut word: u32 = sel << 28;
            let mut shift = 0u32;
            let mut i = 0usize;
            for &(n, bits) in layout {
                for _ in 0..n {
                    let v = rest.get(i).copied().unwrap_or(0);
                    word |= v << shift;
                    shift += bits;
                    i += 1;
                }
            }
            out.extend_from_slice(&word.to_le_bytes());
            let take = (layout_count(layout) as usize).min(rest.len());
            rest = &rest[take..];
        }
        Ok(BlockInfo {
            count,
            bit_width: 0,
            exception_offset: 0,
        })
    }

    fn decode(&self, data: &[u8], info: &BlockInfo, out: &mut Vec<u32>) -> Result<(), Error> {
        let mut remaining = check_count(info)?;
        let mut pos = 0usize;
        out.reserve(remaining);
        while remaining > 0 {
            let Some(bytes) = data.get(pos..pos + 4) else {
                return Err(Error::Truncated {
                    have: data.len(),
                    need: pos + 4,
                });
            };
            pos += 4;
            let word = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
            let sel = (word >> 28) as usize;
            if remaining >= LAYOUT_COUNTS[sel] {
                // Full word: per-selector unrolled kernel, no per-value
                // remaining checks.
                decode_word(sel, word, out);
                remaining -= LAYOUT_COUNTS[sel];
            } else {
                // Final partial word: the generic field walk.
                let mut shift = 0u32;
                for &(n, bits) in LAYOUTS[sel] {
                    let mask = (1u32 << bits) - 1;
                    for _ in 0..n {
                        if remaining == 0 {
                            break;
                        }
                        out.push((word >> shift) & mask);
                        shift += bits;
                        remaining -= 1;
                    }
                }
            }
        }
        Ok(())
    }

    fn decode_reference(
        &self,
        data: &[u8],
        info: &BlockInfo,
        out: &mut Vec<u32>,
    ) -> Result<(), Error> {
        let mut remaining = check_count(info)?;
        let mut pos = 0usize;
        out.reserve(remaining);
        while remaining > 0 {
            let Some(bytes) = data.get(pos..pos + 4) else {
                return Err(Error::Truncated {
                    have: data.len(),
                    need: pos + 4,
                });
            };
            pos += 4;
            let word = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
            let sel = (word >> 28) as usize;
            let layout = LAYOUTS[sel];
            let mut shift = 0u32;
            for &(n, bits) in layout {
                let mask = (1u32 << bits) - 1;
                for _ in 0..n {
                    if remaining == 0 {
                        break;
                    }
                    out.push((word >> shift) & mask);
                    shift += bits;
                    remaining -= 1;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u32]) -> Vec<u8> {
        let mut buf = Vec::new();
        let info = Simple16.encode(values, &mut buf).unwrap();
        let mut out = Vec::new();
        Simple16.decode(&buf, &info, &mut out).unwrap();
        assert_eq!(out, values);
        buf
    }

    #[test]
    fn layouts_all_sum_to_28_bits() {
        for layout in &LAYOUTS {
            let bits: u32 = layout.iter().map(|&(n, b)| n * b).sum();
            assert_eq!(bits, 28);
        }
    }

    #[test]
    fn layout_counts_match_table() {
        for (sel, layout) in LAYOUTS.iter().enumerate() {
            assert_eq!(LAYOUT_COUNTS[sel], layout_count(layout) as usize, "{sel}");
        }
    }

    #[test]
    fn kernel_matches_reference_on_random_streams() {
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        for len in [1usize, 2, 27, 28, 29, 100, 128, 513] {
            let values: Vec<u32> = (0..len)
                .map(|_| {
                    let r = next();
                    match r % 8 {
                        0..=4 => r % 4,
                        5 => r % 128,
                        6 => r % 65536,
                        _ => r % (1 << 28),
                    }
                })
                .collect();
            let mut buf = Vec::new();
            let info = Simple16.encode(&values, &mut buf).unwrap();
            let mut fast = Vec::new();
            Simple16.decode(&buf, &info, &mut fast).unwrap();
            let mut slow = Vec::new();
            Simple16.decode_reference(&buf, &info, &mut slow).unwrap();
            assert_eq!(fast, slow, "len {len}");
            assert_eq!(fast, values, "len {len}");
        }
    }

    #[test]
    fn ones_pack_28_per_word() {
        let buf = roundtrip(&[1u32; 56]);
        assert_eq!(buf.len(), 8, "two words of 28×1-bit");
    }

    #[test]
    fn mixed_magnitudes() {
        roundtrip(&[0, 1, 100, 3, 7, 200_000, 1, 1, 1, 0, 50, 2]);
    }

    #[test]
    fn value_at_28_bit_limit() {
        roundtrip(&[(1 << 28) - 1]);
    }

    #[test]
    fn value_above_28_bits_rejected() {
        let err = Simple16.encode(&[1 << 28], &mut Vec::new()).unwrap_err();
        assert!(matches!(err, Error::ValueTooLarge { .. }));
    }

    #[test]
    fn truncated_errors() {
        let mut buf = Vec::new();
        let info = Simple16.encode(&[5u32; 40], &mut buf).unwrap();
        buf.truncate(buf.len() - 1);
        let err = Simple16.decode(&buf, &info, &mut Vec::new()).unwrap_err();
        assert!(matches!(err, Error::Truncated { .. }));
    }

    #[test]
    fn tail_shorter_than_layout() {
        // 3 ones: padded into one 28×1 word.
        let buf = roundtrip(&[1, 1, 1]);
        assert_eq!(buf.len(), 4);
    }
}
