//! Group-Varint (Google-style): groups of four values share one control
//! byte whose 2-bit fields give each value's byte length (1–4).
//!
//! Not one of the paper's five evaluated schemes — it ships as the
//! worked example of extending the codec set *and* the programmable
//! decompression module together (Section III-B's extensibility claim):
//! `boss-decomp` decodes it through a dedicated extractor flavor plus the
//! identity stage-2 program.

use crate::{check_count, check_len, BlockInfo, Codec, Error, Scheme};

/// The Group-Varint codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupVarint;

fn byte_len(v: u32) -> u32 {
    match v {
        0..=0xFF => 1,
        0x100..=0xFFFF => 2,
        0x1_0000..=0xFF_FFFF => 3,
        _ => 4,
    }
}

impl Codec for GroupVarint {
    fn scheme(&self) -> Scheme {
        Scheme::GroupVarint
    }

    fn encode(&self, values: &[u32], out: &mut Vec<u8>) -> Result<BlockInfo, Error> {
        let count = check_len(values)?;
        for group in values.chunks(4) {
            let mut ctrl = 0u8;
            for (i, &v) in group.iter().enumerate() {
                ctrl |= ((byte_len(v) - 1) as u8) << (i * 2);
            }
            out.push(ctrl);
            for &v in group {
                let n = byte_len(v) as usize;
                out.extend_from_slice(&v.to_le_bytes()[..n]);
            }
        }
        Ok(BlockInfo {
            count,
            bit_width: 0,
            exception_offset: 0,
        })
    }

    fn decode(&self, data: &[u8], info: &BlockInfo, out: &mut Vec<u32>) -> Result<(), Error> {
        let mut pos = 0usize;
        let mut remaining = check_count(info)?;
        out.reserve(remaining);
        while remaining > 0 {
            let Some(&ctrl) = data.get(pos) else {
                return Err(Error::Truncated {
                    have: data.len(),
                    need: pos + 1,
                });
            };
            pos += 1;
            let in_group = remaining.min(4);
            for i in 0..in_group {
                let n = (((ctrl >> (i * 2)) & 0b11) + 1) as usize;
                let Some(bytes) = data.get(pos..pos + n) else {
                    return Err(Error::Truncated {
                        have: data.len(),
                        need: pos + n,
                    });
                };
                pos += n;
                let mut buf = [0u8; 4];
                buf[..n].copy_from_slice(bytes);
                out.push(u32::from_le_bytes(buf));
            }
            remaining -= in_group;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u32]) -> Vec<u8> {
        let mut buf = Vec::new();
        let info = GroupVarint.encode(values, &mut buf).unwrap();
        let mut out = Vec::new();
        GroupVarint.decode(&buf, &info, &mut out).unwrap();
        assert_eq!(out, values);
        buf
    }

    #[test]
    fn small_values_five_bytes_per_group() {
        let buf = roundtrip(&[1, 2, 3, 4]);
        assert_eq!(buf.len(), 5, "1 control + 4x1 byte");
    }

    #[test]
    fn mixed_widths() {
        roundtrip(&[0, 255, 256, 65535, 65536, 0xFF_FFFF, 0x100_0000, u32::MAX]);
    }

    #[test]
    fn partial_tail_group() {
        let buf = roundtrip(&[300, 7]);
        assert_eq!(buf.len(), 1 + 2 + 1);
    }

    #[test]
    fn byte_length_boundaries() {
        assert_eq!(byte_len(0), 1);
        assert_eq!(byte_len(255), 1);
        assert_eq!(byte_len(256), 2);
        assert_eq!(byte_len(65536), 3);
        assert_eq!(byte_len(u32::MAX), 4);
    }

    #[test]
    fn truncated_errors() {
        let mut buf = Vec::new();
        let info = GroupVarint
            .encode(&[70000, 70000, 70000], &mut buf)
            .unwrap();
        buf.truncate(buf.len() - 2);
        assert!(matches!(
            GroupVarint.decode(&buf, &info, &mut Vec::new()),
            Err(Error::Truncated { .. })
        ));
        assert!(matches!(
            GroupVarint.decode(&[], &info, &mut Vec::new()),
            Err(Error::Truncated { .. })
        ));
    }

    #[test]
    fn not_in_paper_scheme_list() {
        assert!(!crate::ALL_SCHEMES.contains(&Scheme::GroupVarint));
    }
}
