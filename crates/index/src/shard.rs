//! Shard partitioning by docID interval (Section II-B: "the inverted
//! index is divided into multiple disjoint partitions, or *shards*,
//! according to the intervals of docIDs. Each leaf node holds a distinct
//! shard and operates only on its shard.").
//!
//! A [`ShardedIndex`] splits one logical corpus into `n` contiguous docID
//! intervals and builds an independent [`InvertedIndex`] per shard with
//! *local* docIDs. Leaf-node engines run unmodified on their shard; the
//! root merges their top-k lists after translating local hits back to
//! global docIDs via [`ShardedIndex::global_doc`].
//!
//! # Global scoring statistics
//!
//! Every shard is built with the **global** corpus statistics: the
//! parent's [`crate::Bm25`] scorer (global `N`, global `avgdl`), the
//! parent's per-term `idf`, and bit-copied slices of the parent's
//! per-document norms. Only the docIDs are local. A term's score for a
//! document is therefore the *same f32, bit for bit*, whether computed on
//! the shard or on the unsplit index — which is what makes a
//! scatter-gather merge of per-shard top-k lists exactly equal to the
//! single-device top-k at every shard count. Term ids stay in lexical
//! order on every shard (the same order the parent assigns), so engines
//! that sum term scores in ascending term-id order produce identical f32
//! sums on shard and parent alike.
//!
//! # No-panic contract
//!
//! Like the decode paths, the shard layer is driven by untrusted runtime
//! parameters (`--shards N` from a CLI); every failure must surface as a
//! typed [`Error`], never a panic.

use crate::index::TermInfo;
use crate::{Bm25, DocId, EncodedList, Error, InvertedIndex, PostingList, SearchHit};
use boss_compress::ALL_SCHEMES;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A corpus split into docID-interval shards.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedIndex {
    shards: Vec<InvertedIndex>,
    /// Global docID base of each shard (ascending); shard `i` covers
    /// `[bases[i], bases[i+1])` (the last runs to the corpus end).
    bases: Vec<DocId>,
    n_docs: u32,
}

impl ShardedIndex {
    /// Splits `index` into `n_shards` contiguous docID intervals (the
    /// first `n_docs % n_shards` intervals hold one extra document, so no
    /// interval is ever empty) and rebuilds each shard as a standalone
    /// index carrying the global scoring statistics (see the module
    /// docs). `split(index, 1)` reproduces the parent index exactly.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidShardCount`] when `n_shards` is zero or exceeds
    /// the corpus size; otherwise propagates per-shard decode/encode
    /// failures.
    pub fn split(index: &InvertedIndex, n_shards: u32) -> Result<Self, Error> {
        let n_docs = index.n_docs();
        if n_shards == 0 || n_shards > n_docs {
            return Err(Error::InvalidShardCount { n_shards, n_docs });
        }
        let n = n_shards as usize;
        // Balanced interval widths: base + 1 for the first `rem` shards.
        let (width, rem) = (n_docs / n_shards, (n_docs % n_shards) as usize);
        let mut bases = Vec::with_capacity(n);
        let mut next = 0u32;
        for i in 0..n {
            bases.push(next);
            next += width + u32::from(i < rem);
        }

        let bm25 = *index.bm25();
        let mut shards: Vec<InvertedIndex> = (0..n)
            .map(|i| {
                let base = bases[i] as usize;
                let end = if i + 1 < n {
                    bases[i + 1] as usize
                } else {
                    n_docs as usize
                };
                InvertedIndex {
                    vocab: HashMap::new(),
                    terms: Vec::new(),
                    lists: Vec::new(),
                    // Bit-copies of the parent's norms: shard scoring
                    // inputs are identical to global scoring inputs.
                    doc_norms: index.doc_norms()[base..end].to_vec(),
                    doc_lens: index.doc_lens()[base..end].to_vec(),
                    bm25,
                }
            })
            .collect();

        // Walk terms in the parent's (lexical) id order so every shard
        // assigns ids in the same relative order as the parent.
        for id in index.term_ids() {
            let info = index.term_info(id);
            let (docs, tfs) = index.list(id).decode_all()?;
            let mut lo = 0usize;
            for (s, shard) in shards.iter_mut().enumerate() {
                let end_doc = if s + 1 < n { bases[s + 1] } else { n_docs };
                let hi = lo + docs[lo..].partition_point(|&d| d < end_doc);
                if hi > lo {
                    let local: Vec<DocId> = docs[lo..hi].iter().map(|&d| d - bases[s]).collect();
                    let plist = PostingList::from_columns(local, tfs[lo..hi].to_vec())?;
                    let df = plist.len() as u32;
                    let encoded = encode_hybrid(&plist, &bm25, info.idf, &shard.doc_norms)?;
                    let tid = shard.terms.len() as u32;
                    shard.vocab.insert(info.text.clone(), tid);
                    shard.terms.push(TermInfo {
                        text: info.text.clone(),
                        df,
                        // Global idf, not the shard-local one: scores must
                        // be bit-identical to the unsplit index.
                        idf: info.idf,
                    });
                    shard.lists.push(encoded);
                }
                lo = hi;
            }
        }

        Ok(ShardedIndex {
            shards,
            bases,
            n_docs,
        })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total documents across shards.
    pub fn n_docs(&self) -> u32 {
        self.n_docs
    }

    /// The shard indexes, in docID-interval order.
    pub fn shards(&self) -> &[InvertedIndex] {
        &self.shards
    }

    /// One shard, or `None` when `i` is out of range.
    pub fn try_shard(&self, i: usize) -> Option<&InvertedIndex> {
        self.shards.get(i)
    }

    /// One shard.
    ///
    /// Out-of-range `i` is clamped to the last shard (the split
    /// guarantees at least one); use [`ShardedIndex::try_shard`] to
    /// detect the range error instead.
    pub fn shard(&self, i: usize) -> &InvertedIndex {
        // `split` never constructs an empty shard list, so the clamp
        // always lands on a valid index.
        &self.shards[i.min(self.shards.len().saturating_sub(1))]
    }

    /// Mutable access to one shard — a corruption-harness hook, same
    /// contract as [`crate::EncodedList::data_mut`]: mutations made
    /// through it must surface as typed errors or bit-correct decodes on
    /// *that shard only*; sibling shards share no storage and must stay
    /// byte-identical to an unmutated split.
    ///
    /// Out-of-range `i` is clamped to the last shard, mirroring
    /// [`ShardedIndex::shard`].
    pub fn shard_mut(&mut self, i: usize) -> &mut InvertedIndex {
        let last = self.shards.len().saturating_sub(1);
        &mut self.shards[i.min(last)]
    }

    /// The global docID base of each shard, ascending.
    pub fn bases(&self) -> &[DocId] {
        &self.bases
    }

    /// Translates a shard-local docID to the global docID. Out-of-range
    /// shard indices translate as the last shard.
    pub fn global_doc(&self, shard: usize, local: DocId) -> DocId {
        self.bases[shard.min(self.bases.len().saturating_sub(1))] + local
    }

    /// Merges per-shard hit lists — each already sorted by
    /// [`SearchHit::ranking_cmp`], as every engine returns them — into a
    /// global top-`k` via a k-way streaming merge, translating local
    /// docIDs to global ones.
    ///
    /// The merge order is a *total* order (score descending, global
    /// docID ascending; translated docIDs are globally unique), so the
    /// result is deterministic for any shard count and any tie pattern,
    /// and equals sorting the concatenation — without materializing it.
    pub fn merge_topk(&self, per_shard: &[Vec<SearchHit>], k: usize) -> Vec<SearchHit> {
        struct Head {
            hit: SearchHit,
            shard: usize,
            pos: usize,
        }
        impl PartialEq for Head {
            fn eq(&self, other: &Self) -> bool {
                self.cmp(other) == std::cmp::Ordering::Equal
            }
        }
        impl Eq for Head {}
        impl PartialOrd for Head {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Head {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // BinaryHeap is a max-heap; "greatest" must be the head
                // that ranks first, so compare in reverse ranking order.
                other.hit.ranking_cmp(&self.hit)
            }
        }

        let mut heap = std::collections::BinaryHeap::with_capacity(per_shard.len());
        for (s, hits) in per_shard.iter().enumerate() {
            if let Some(h) = hits.first() {
                heap.push(Head {
                    hit: SearchHit {
                        doc: self.global_doc(s, h.doc),
                        score: h.score,
                    },
                    shard: s,
                    pos: 0,
                });
            }
        }
        let mut out = Vec::with_capacity(k.min(per_shard.iter().map(Vec::len).sum()));
        while out.len() < k {
            let Some(head) = heap.pop() else { break };
            out.push(head.hit);
            if let Some(h) = per_shard[head.shard].get(head.pos + 1) {
                heap.push(Head {
                    hit: SearchHit {
                        doc: self.global_doc(head.shard, h.doc),
                        score: h.score,
                    },
                    shard: head.shard,
                    pos: head.pos + 1,
                });
            }
        }
        out
    }
}

/// Encodes a shard's posting list the way [`crate::IndexBuilder`] does
/// under its default hybrid policy: every stock scheme, keep the first
/// smallest. `bm25`, `idf`, and `norms` carry the *global* statistics.
fn encode_hybrid(
    plist: &PostingList,
    bm25: &Bm25,
    idf: f32,
    norms: &[f32],
) -> Result<EncodedList, Error> {
    let mut best: Option<EncodedList> = None;
    for s in ALL_SCHEMES {
        if let Ok(enc) = EncodedList::encode(plist, s, bm25, idf, norms) {
            if best
                .as_ref()
                .is_none_or(|b| enc.data_bytes() < b.data_bytes())
            {
                best = Some(enc);
            }
        }
    }
    best.ok_or(Error::CorruptMetadata {
        reason: "no compression scheme could encode a shard posting list",
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use crate::reference;
    use crate::{IndexBuilder, QueryExpr};

    fn corpus() -> InvertedIndex {
        let docs: Vec<String> = (0u32..300)
            .map(|i| {
                let mut t = String::from("base");
                if i % 2 == 0 {
                    t.push_str(" even");
                }
                if i % 3 == 0 {
                    t.push_str(" three three");
                }
                t
            })
            .collect();
        IndexBuilder::new()
            .add_documents(docs.iter().map(String::as_str))
            .build()
            .unwrap()
    }

    #[test]
    fn split_preserves_documents_and_postings() {
        let idx = corpus();
        let sharded = ShardedIndex::split(&idx, 4).unwrap();
        assert_eq!(sharded.n_shards(), 4);
        let total_docs: u32 = sharded.shards().iter().map(InvertedIndex::n_docs).sum();
        assert_eq!(total_docs, idx.n_docs());
        // Postings conserved per term.
        for term in ["even", "three", "base"] {
            let global_df = idx.term_info(idx.term_id(term).unwrap()).df;
            let shard_df: u32 = sharded
                .shards()
                .iter()
                .filter_map(|s| s.term_id(term).ok().map(|id| s.term_info(id).df))
                .sum();
            assert_eq!(shard_df, global_df, "{term}");
        }
    }

    #[test]
    fn local_docids_translate_back() {
        let idx = corpus();
        let sharded = ShardedIndex::split(&idx, 3).unwrap();
        // Reconstruct the global posting list of "even" from the shards.
        let mut global = Vec::new();
        for (si, shard) in sharded.shards().iter().enumerate() {
            if let Ok(id) = shard.term_id("even") {
                let (docs, _) = shard.list(id).decode_all().unwrap();
                global.extend(docs.into_iter().map(|d| sharded.global_doc(si, d)));
            }
        }
        let expect: Vec<u32> = (0..300).filter(|d| d % 2 == 0).collect();
        assert_eq!(global, expect);
    }

    #[test]
    fn shard_scores_are_bit_identical_to_global() {
        let idx = corpus();
        for n in [1u32, 2, 3, 4, 7] {
            let sharded = ShardedIndex::split(&idx, n).unwrap();
            let q = QueryExpr::and([QueryExpr::term("even"), QueryExpr::term("three")]);
            let global = reference::evaluate(&idx, &q, 1000).unwrap();
            let mut per_shard = Vec::new();
            for shard in sharded.shards() {
                match reference::evaluate(shard, &q, 1000) {
                    Ok(hits) => per_shard.push(hits),
                    Err(Error::UnknownTerm { .. }) => per_shard.push(Vec::new()),
                    Err(e) => panic!("{e}"),
                }
            }
            let merged = sharded.merge_topk(&per_shard, 1000);
            // Exact equality — docIDs *and* f32 scores — because shards
            // carry the global BM25 statistics.
            assert_eq!(merged, global, "{n} shards");
        }
    }

    #[test]
    fn single_shard_split_reproduces_parent_lists() {
        let idx = corpus();
        let sharded = ShardedIndex::split(&idx, 1).unwrap();
        let shard = sharded.shard(0);
        assert_eq!(shard.n_docs(), idx.n_docs());
        assert_eq!(shard.n_terms(), idx.n_terms());
        assert_eq!(shard.doc_norms(), idx.doc_norms());
        assert_eq!(shard.bm25(), idx.bm25());
        for id in idx.term_ids() {
            assert_eq!(shard.term_info(id), idx.term_info(id));
            assert_eq!(shard.list(id), idx.list(id), "term id {id}");
        }
    }

    #[test]
    fn uneven_split_is_balanced_with_no_empty_shard() {
        let docs: Vec<String> = (0u32..10).map(|_| "tok".to_string()).collect();
        let idx = IndexBuilder::new()
            .add_documents(docs.iter().map(String::as_str))
            .build()
            .unwrap();
        let sharded = ShardedIndex::split(&idx, 4).unwrap();
        let sizes: Vec<u32> = sharded.shards().iter().map(InvertedIndex::n_docs).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        assert_eq!(sharded.bases(), &[0, 3, 6, 8]);
    }

    #[test]
    fn merge_topk_ranks_globally() {
        let idx = corpus();
        let sharded = ShardedIndex::split(&idx, 2).unwrap();
        let a = vec![
            SearchHit { doc: 0, score: 3.0 },
            SearchHit { doc: 5, score: 1.0 },
        ];
        let b = vec![SearchHit { doc: 0, score: 2.0 }];
        let merged = sharded.merge_topk(&[a, b], 2);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].doc, 0);
        assert!(merged[1].doc >= 150, "shard-1 hit translated past the base");
    }

    #[test]
    fn merge_topk_breaks_score_ties_by_global_doc() {
        let idx = corpus();
        let sharded = ShardedIndex::split(&idx, 3).unwrap();
        // Identical scores everywhere: order must be global docID order.
        let per_shard: Vec<Vec<SearchHit>> = (0..3)
            .map(|_| (0..4).map(|d| SearchHit { doc: d, score: 1.0 }).collect())
            .collect();
        let merged = sharded.merge_topk(&per_shard, 9);
        let docs: Vec<u32> = merged.iter().map(|h| h.doc).collect();
        let mut sorted = docs.clone();
        sorted.sort_unstable();
        assert_eq!(docs, sorted, "ties resolve by ascending global docID");
        assert_eq!(docs.len(), 9);
    }

    #[test]
    fn invalid_shard_counts_are_typed_errors() {
        let idx = corpus();
        assert!(matches!(
            ShardedIndex::split(&idx, 0),
            Err(Error::InvalidShardCount {
                n_shards: 0,
                n_docs: 300
            })
        ));
        assert!(matches!(
            ShardedIndex::split(&idx, 301),
            Err(Error::InvalidShardCount {
                n_shards: 301,
                n_docs: 300
            })
        ));
    }
}
