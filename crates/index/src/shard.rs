//! Shard partitioning by docID interval (Section II-B: "the inverted
//! index is divided into multiple disjoint partitions, or *shards*,
//! according to the intervals of docIDs. Each leaf node holds a distinct
//! shard and operates only on its shard.").
//!
//! A [`ShardedIndex`] splits one logical corpus into `n` contiguous docID
//! intervals and builds an independent [`InvertedIndex`] per shard with
//! *local* docIDs. Leaf-node engines run unmodified on their shard; the
//! root merges their top-k lists after translating local hits back to
//! global docIDs via [`ShardedIndex::global_doc`].

use crate::{DocId, Error, IndexBuilder, InvertedIndex, PostingList, SearchHit};
use serde::{Deserialize, Serialize};

/// A corpus split into docID-interval shards.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedIndex {
    shards: Vec<InvertedIndex>,
    /// Global docID base of each shard (ascending); shard `i` covers
    /// `[bases[i], bases[i+1])` (the last runs to the corpus end).
    bases: Vec<DocId>,
    n_docs: u32,
}

impl ShardedIndex {
    /// Splits `index` into `n_shards` contiguous docID intervals of equal
    /// width and rebuilds each shard as a standalone index.
    ///
    /// # Errors
    ///
    /// Propagates per-shard build failures; a shard with no documents in
    /// any list is still built (with its interval's document count).
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero or exceeds the corpus size.
    pub fn split(index: &InvertedIndex, n_shards: u32) -> Result<Self, Error> {
        assert!(n_shards > 0, "need at least one shard");
        let n_docs = index.n_docs();
        assert!(n_shards <= n_docs, "more shards than documents");
        let width = n_docs.div_ceil(n_shards);
        let bases: Vec<DocId> = (0..n_shards).map(|i| i * width).collect();

        let mut builders: Vec<IndexBuilder> = Vec::new();
        for (i, &base) in bases.iter().enumerate() {
            let end = if i + 1 < bases.len() {
                bases[i + 1]
            } else {
                n_docs
            };
            let lens = index.doc_lens()[base as usize..end as usize].to_vec();
            builders.push(IndexBuilder::new().doc_lens(lens));
        }

        for id in index.term_ids() {
            let info = index.term_info(id);
            let (docs, tfs) = index.list(id).decode_all()?;
            // Split the posting list at shard boundaries.
            let mut s = 0usize;
            let mut cur_docs: Vec<DocId> = Vec::new();
            let mut cur_tfs: Vec<u32> = Vec::new();
            let flush = |s: usize,
                         cur_docs: &mut Vec<DocId>,
                         cur_tfs: &mut Vec<u32>,
                         builders: &mut Vec<IndexBuilder>|
             -> Result<(), Error> {
                if !cur_docs.is_empty() {
                    let list = PostingList::from_columns(
                        std::mem::take(cur_docs),
                        std::mem::take(cur_tfs),
                    )?;
                    let b = std::mem::take(&mut builders[s]);
                    builders[s] = b.add_posting_list(&info.text, &list);
                }
                Ok(())
            };
            for (&d, &tf) in docs.iter().zip(&tfs) {
                while s + 1 < bases.len() && d >= bases[s + 1] {
                    flush(s, &mut cur_docs, &mut cur_tfs, &mut builders)?;
                    s += 1;
                }
                cur_docs.push(d - bases[s]);
                cur_tfs.push(tf);
            }
            flush(s, &mut cur_docs, &mut cur_tfs, &mut builders)?;
        }

        let shards = builders
            .into_iter()
            .map(IndexBuilder::build)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedIndex {
            shards,
            bases,
            n_docs,
        })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total documents across shards.
    pub fn n_docs(&self) -> u32 {
        self.n_docs
    }

    /// The shard indexes, in docID-interval order.
    pub fn shards(&self) -> &[InvertedIndex] {
        &self.shards
    }

    /// One shard.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn shard(&self, i: usize) -> &InvertedIndex {
        &self.shards[i]
    }

    /// Translates a shard-local docID to the global docID.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn global_doc(&self, shard: usize, local: DocId) -> DocId {
        self.bases[shard] + local
    }

    /// Merges per-shard hit lists (already in each shard's ranking order)
    /// into a global top-`k`, translating docIDs.
    pub fn merge_topk(&self, per_shard: &[Vec<SearchHit>], k: usize) -> Vec<SearchHit> {
        let mut all: Vec<SearchHit> = Vec::new();
        for (s, hits) in per_shard.iter().enumerate() {
            all.extend(hits.iter().map(|h| SearchHit {
                doc: self.global_doc(s, h.doc),
                score: h.score,
            }));
        }
        all.sort_by(SearchHit::ranking_cmp);
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::QueryExpr;

    fn corpus() -> InvertedIndex {
        let docs: Vec<String> = (0u32..300)
            .map(|i| {
                let mut t = String::from("base");
                if i % 2 == 0 {
                    t.push_str(" even");
                }
                if i % 3 == 0 {
                    t.push_str(" three three");
                }
                t
            })
            .collect();
        IndexBuilder::new()
            .add_documents(docs.iter().map(String::as_str))
            .build()
            .unwrap()
    }

    #[test]
    fn split_preserves_documents_and_postings() {
        let idx = corpus();
        let sharded = ShardedIndex::split(&idx, 4).unwrap();
        assert_eq!(sharded.n_shards(), 4);
        let total_docs: u32 = sharded.shards().iter().map(InvertedIndex::n_docs).sum();
        assert_eq!(total_docs, idx.n_docs());
        // Postings conserved per term.
        for term in ["even", "three", "base"] {
            let global_df = idx.term_info(idx.term_id(term).unwrap()).df;
            let shard_df: u32 = sharded
                .shards()
                .iter()
                .filter_map(|s| s.term_id(term).ok().map(|id| s.term_info(id).df))
                .sum();
            assert_eq!(shard_df, global_df, "{term}");
        }
    }

    #[test]
    fn local_docids_translate_back() {
        let idx = corpus();
        let sharded = ShardedIndex::split(&idx, 3).unwrap();
        // Reconstruct the global posting list of "even" from the shards.
        let mut global = Vec::new();
        for (si, shard) in sharded.shards().iter().enumerate() {
            if let Ok(id) = shard.term_id("even") {
                let (docs, _) = shard.list(id).decode_all().unwrap();
                global.extend(docs.into_iter().map(|d| sharded.global_doc(si, d)));
            }
        }
        let expect: Vec<u32> = (0..300).filter(|d| d % 2 == 0).collect();
        assert_eq!(global, expect);
    }

    #[test]
    fn sharded_search_equals_global_search() {
        let idx = corpus();
        let sharded = ShardedIndex::split(&idx, 4).unwrap();
        let q = QueryExpr::and([QueryExpr::term("even"), QueryExpr::term("three")]);
        // Per-shard top-k with local scoring... shard-local BM25 statistics
        // (df, avgdl) differ slightly from global ones, so compare the
        // *document sets*, which must match exactly.
        let mut per_shard = Vec::new();
        for shard in sharded.shards() {
            match reference::evaluate(shard, &q, 1000) {
                Ok(hits) => per_shard.push(hits),
                Err(Error::UnknownTerm { .. }) => per_shard.push(Vec::new()),
                Err(e) => panic!("{e}"),
            }
        }
        let merged = sharded.merge_topk(&per_shard, 1000);
        let mut got: Vec<u32> = merged.iter().map(|h| h.doc).collect();
        got.sort_unstable();
        let expect: Vec<u32> = reference::candidates(&idx, &q).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn merge_topk_ranks_globally() {
        let idx = corpus();
        let sharded = ShardedIndex::split(&idx, 2).unwrap();
        let a = vec![
            SearchHit { doc: 0, score: 3.0 },
            SearchHit { doc: 5, score: 1.0 },
        ];
        let b = vec![SearchHit { doc: 0, score: 2.0 }];
        let merged = sharded.merge_topk(&[a, b], 2);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].doc, 0);
        assert!(merged[1].doc >= 150, "shard-1 hit translated past the base");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let idx = corpus();
        let _ = ShardedIndex::split(&idx, 0);
    }
}
