//! Raw (uncompressed) posting lists.

use crate::{DocId, Error};
use serde::{Deserialize, Serialize};

/// One posting: a document that contains the term, with its frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Posting {
    /// Document identifier.
    pub doc: DocId,
    /// Number of occurrences of the term in the document (>= 1).
    pub tf: u32,
}

/// An uncompressed posting list: docIDs strictly increasing, tf >= 1.
///
/// Stored as two parallel columns, which is both cache-friendlier and the
/// shape the block encoder consumes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PostingList {
    docs: Vec<DocId>,
    tfs: Vec<u32>,
}

impl PostingList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a list from parallel columns.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnsortedPostings`] if docIDs are not strictly
    /// increasing, and [`Error::ZeroTermFrequency`] for a zero tf.
    pub fn from_columns(docs: Vec<DocId>, tfs: Vec<u32>) -> Result<Self, Error> {
        assert_eq!(docs.len(), tfs.len(), "column lengths must match");
        for i in 0..docs.len() {
            if i > 0 && docs[i] <= docs[i - 1] {
                return Err(Error::UnsortedPostings { at: i });
            }
            if tfs[i] == 0 {
                return Err(Error::ZeroTermFrequency { at: i });
            }
        }
        Ok(PostingList { docs, tfs })
    }

    /// Builds a list from `(doc, tf)` pairs.
    ///
    /// # Errors
    ///
    /// Same as [`PostingList::from_columns`].
    pub fn from_postings<I: IntoIterator<Item = Posting>>(postings: I) -> Result<Self, Error> {
        let mut docs = Vec::new();
        let mut tfs = Vec::new();
        for p in postings {
            docs.push(p.doc);
            tfs.push(p.tf);
        }
        Self::from_columns(docs, tfs)
    }

    /// Appends a posting.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnsortedPostings`] if `doc` does not exceed the
    /// current last docID, [`Error::ZeroTermFrequency`] if `tf == 0`.
    pub fn push(&mut self, doc: DocId, tf: u32) -> Result<(), Error> {
        if let Some(&last) = self.docs.last() {
            if doc <= last {
                return Err(Error::UnsortedPostings {
                    at: self.docs.len(),
                });
            }
        }
        if tf == 0 {
            return Err(Error::ZeroTermFrequency {
                at: self.docs.len(),
            });
        }
        self.docs.push(doc);
        self.tfs.push(tf);
        Ok(())
    }

    /// Number of postings (the term's document frequency).
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The docID column.
    pub fn docs(&self) -> &[DocId] {
        &self.docs
    }

    /// The term-frequency column.
    pub fn tfs(&self) -> &[u32] {
        &self.tfs
    }

    /// Iterates over `(doc, tf)` postings.
    pub fn iter(&self) -> impl Iterator<Item = Posting> + '_ {
        self.docs
            .iter()
            .zip(&self.tfs)
            .map(|(&doc, &tf)| Posting { doc, tf })
    }
}

impl FromIterator<Posting> for Result<PostingList, Error> {
    fn from_iter<I: IntoIterator<Item = Posting>>(iter: I) -> Self {
        PostingList::from_postings(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_columns_validates() {
        assert!(PostingList::from_columns(vec![1, 2, 3], vec![1, 1, 1]).is_ok());
        assert!(matches!(
            PostingList::from_columns(vec![1, 1], vec![1, 1]),
            Err(Error::UnsortedPostings { at: 1 })
        ));
        assert!(matches!(
            PostingList::from_columns(vec![3, 2], vec![1, 1]),
            Err(Error::UnsortedPostings { at: 1 })
        ));
        assert!(matches!(
            PostingList::from_columns(vec![1, 2], vec![1, 0]),
            Err(Error::ZeroTermFrequency { at: 1 })
        ));
    }

    #[test]
    fn push_maintains_invariants() {
        let mut l = PostingList::new();
        l.push(0, 3).unwrap();
        l.push(5, 1).unwrap();
        assert!(l.push(5, 1).is_err());
        assert!(l.push(6, 0).is_err());
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn iter_yields_pairs() {
        let l = PostingList::from_columns(vec![2, 9], vec![1, 4]).unwrap();
        let v: Vec<_> = l.iter().collect();
        assert_eq!(
            v,
            vec![Posting { doc: 2, tf: 1 }, Posting { doc: 9, tf: 4 }]
        );
    }

    #[test]
    fn doc_zero_is_legal() {
        let l = PostingList::from_columns(vec![0, 1], vec![1, 1]).unwrap();
        assert_eq!(l.docs()[0], 0);
    }
}
