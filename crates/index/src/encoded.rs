//! Block-structured encoded posting lists with the paper's per-block
//! metadata (Section IV-A "Index Structure and Per-block Metadata").

use crate::{Bm25, DocId, Error, PostingList};
use boss_compress::{codec_for, BlockInfo, Scheme};
use serde::{Deserialize, Serialize};

/// Number of postings per block. The paper uses 128-value blocks (with
/// Simple16 nominally variable-size; we keep logical 128-value blocks for
/// S16 too so that skip metadata is uniform — only the encoded byte size
/// varies).
pub const BLOCK_SIZE: usize = 128;

/// Size of the per-block metadata record the paper accounts for: first
/// docID (4 B) + last docID (4 B) + block-max term score (4 B) + data
/// offset (4 B) + element count (7 b) + bit width (5 b) + exception
/// offset/index (12 b) = 19 B.
pub const BLOCK_META_BYTES: u64 = 19;

/// Metadata of one encoded block.
///
/// The first four fields are the skip record the block-fetch module
/// inspects; the rest parameterize the decompression module. The in-memory
/// struct carries a little more than the paper's packed 19 bytes (separate
/// descriptors for the docID and tf sub-streams); traffic accounting always
/// uses [`BLOCK_META_BYTES`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockMeta {
    /// First (uncompressed) docID in the block.
    pub first_doc: DocId,
    /// Last (uncompressed) docID in the block.
    pub last_doc: DocId,
    /// Maximum BM25 term score over the block's postings.
    pub max_score: f32,
    /// Byte offset of the block's encoded data within the list data area.
    pub offset: u32,
    /// Encoded byte length of the block (docID gaps + tf section).
    pub len: u32,
    /// Byte offset of the tf section within the block data.
    pub tf_offset: u32,
    /// Descriptor of the docID-gap sub-stream.
    pub delta_info: BlockInfo,
    /// Descriptor of the tf sub-stream.
    pub tf_info: BlockInfo,
}

impl BlockMeta {
    /// Number of postings in the block.
    pub fn count(&self) -> usize {
        self.delta_info.count as usize
    }

    /// Whether the docID range `[first_doc, last_doc]` overlaps `[lo, hi]`.
    pub fn overlaps(&self, lo: DocId, hi: DocId) -> bool {
        self.first_doc <= hi && lo <= self.last_doc
    }
}

/// A posting list encoded into 128-value blocks under one scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedList {
    scheme: Scheme,
    blocks: Vec<BlockMeta>,
    data: Vec<u8>,
    df: u32,
    idf: f32,
    /// List-level maximum term score (feeds the WAND lookup table).
    max_score: f32,
}

impl EncodedList {
    /// Encodes `list` under `scheme`, computing block-max scores with
    /// `bm25`, the term's `idf`, and the per-document norms.
    ///
    /// # Errors
    ///
    /// Propagates codec failures (e.g. S16 on gaps wider than 28 bits).
    ///
    /// # Panics
    ///
    /// Panics if some docID in `list` has no entry in `norms`.
    pub fn encode(
        list: &PostingList,
        scheme: Scheme,
        bm25: &Bm25,
        idf: f32,
        norms: &[f32],
    ) -> Result<Self, Error> {
        Self::encode_with_block_size(list, scheme, bm25, idf, norms, BLOCK_SIZE)
    }

    /// Like [`EncodedList::encode`] but with an explicit block size —
    /// used by the block-size ablation study; the index proper always
    /// uses the paper's 128.
    ///
    /// # Errors
    ///
    /// Same as [`EncodedList::encode`].
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero or above the codec block limit.
    pub fn encode_with_block_size(
        list: &PostingList,
        scheme: Scheme,
        bm25: &Bm25,
        idf: f32,
        norms: &[f32],
        block_size: usize,
    ) -> Result<Self, Error> {
        assert!(block_size > 0 && block_size <= boss_compress::MAX_BLOCK_VALUES);
        let codec = codec_for(scheme);
        let mut blocks = Vec::with_capacity(list.len().div_ceil(block_size));
        let mut data = Vec::new();
        let mut prev_last: Option<DocId> = None;
        let mut list_max = 0.0f32;
        let mut gaps = Vec::with_capacity(block_size);
        let mut tfs_m1 = Vec::with_capacity(block_size);

        let docs = list.docs();
        let tfs = list.tfs();
        for start in (0..docs.len()).step_by(block_size) {
            let end = (start + block_size).min(docs.len());
            let bdocs = &docs[start..end];
            let btfs = &tfs[start..end];

            gaps.clear();
            tfs_m1.clear();
            let mut prev = prev_last;
            for &d in bdocs {
                let gap = match prev {
                    Some(p) => d - p,
                    None => d,
                };
                gaps.push(gap);
                prev = Some(d);
            }
            tfs_m1.extend(btfs.iter().map(|&tf| tf - 1));

            let offset = data.len() as u32;
            let delta_info = codec.encode(&gaps, &mut data)?;
            let tf_offset = data.len() as u32 - offset;
            let tf_info = codec.encode(&tfs_m1, &mut data)?;
            let len = data.len() as u32 - offset;

            let mut max_score = 0.0f32;
            for (&d, &tf) in bdocs.iter().zip(btfs) {
                let s = bm25.term_score(idf, tf, norms[d as usize]);
                if s > max_score {
                    max_score = s;
                }
            }
            list_max = list_max.max(max_score);

            // Infallible: `chunks()` never yields an empty chunk.
            #[allow(clippy::expect_used)]
            blocks.push(BlockMeta {
                first_doc: bdocs[0],
                last_doc: *bdocs.last().expect("non-empty block"),
                max_score,
                offset,
                len,
                tf_offset,
                delta_info,
                tf_info,
            });
            #[allow(clippy::expect_used)]
            {
                prev_last = Some(*bdocs.last().expect("non-empty block"));
            }
        }

        Ok(EncodedList {
            scheme,
            blocks,
            data,
            df: list.len() as u32,
            idf,
            max_score: list_max,
        })
    }

    /// Reassembles a list from its serialized parts — the segment-file
    /// load path. Crate-private: callers outside the crate go through
    /// [`crate::segment`], whose readers validate the parts; the decode
    /// paths themselves treat blocks/data as untrusted regardless.
    pub(crate) fn from_parts(
        scheme: Scheme,
        blocks: Vec<BlockMeta>,
        data: Vec<u8>,
        df: u32,
        idf: f32,
        max_score: f32,
    ) -> Self {
        EncodedList {
            scheme,
            blocks,
            data,
            df,
            idf,
            max_score,
        }
    }

    /// The compression scheme used.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Block metadata records.
    pub fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Document frequency (number of postings).
    pub fn df(&self) -> u32 {
        self.df
    }

    /// The term's inverse document frequency.
    pub fn idf(&self) -> f32 {
        self.idf
    }

    /// List-level maximum term score.
    pub fn max_score(&self) -> f32 {
        self.max_score
    }

    /// Total encoded data bytes (excluding metadata).
    pub fn data_bytes(&self) -> usize {
        self.data.len()
    }

    /// The raw encoded data area (docID gaps + tf sections of all blocks).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the encoded data area — a corruption-harness
    /// hook. Decoders must surface any mutation made here as a typed
    /// error or decode to bit-correct values; they must never panic.
    pub fn data_mut(&mut self) -> &mut Vec<u8> {
        &mut self.data
    }

    /// Mutable access to the block metadata records — a corruption-harness
    /// hook, same contract as [`EncodedList::data_mut`].
    pub fn blocks_mut(&mut self) -> &mut Vec<BlockMeta> {
        &mut self.blocks
    }

    /// Metadata bytes as accounted by the paper (19 B per block).
    pub fn meta_bytes(&self) -> u64 {
        self.blocks.len() as u64 * BLOCK_META_BYTES
    }

    /// The sanitized block-max upper bound of block `i`: the stored
    /// per-block max term score, or `+∞` when the stored value cannot be
    /// an upper bound of anything (NaN, negative, or out of range).
    ///
    /// Pruning built on this accessor degrades safely under metadata
    /// corruption: an implausible block-max turns into "never skip this
    /// block", so the block is decoded and scored exhaustively instead of
    /// silently dropping documents. A *plausible* finite lowering is
    /// undetectable without decoding the block — that case is covered by
    /// the decode-time containment checks and the score-vs-bound
    /// verification in [`crate::prune`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (callers iterate `0..n_blocks()`).
    pub fn block_max_ub(&self, i: usize) -> f32 {
        let m = self.blocks[i].max_score;
        if m.is_finite() && m >= 0.0 {
            m
        } else {
            f32::INFINITY
        }
    }

    /// The first block at or after `from` that can contain `target`
    /// (i.e. whose `last_doc >= target`), or `n_blocks()` when no such
    /// block remains. A binary search over the block directory — the
    /// skip-advance primitive of the block-max algorithms.
    pub fn skip_to_block(&self, from: usize, target: DocId) -> usize {
        let tail = &self.blocks[from.min(self.blocks.len())..];
        from.min(self.blocks.len()) + tail.partition_point(|m| m.last_doc < target)
    }

    /// The docID the d-gap prefix sum of block `i` is seeded with: the
    /// previous block's last docID, or 0 for the first block (whose first
    /// stored gap is the absolute docID).
    fn block_base(&self, i: usize) -> DocId {
        if i == 0 {
            0
        } else {
            self.blocks[i - 1].last_doc
        }
    }

    /// Decodes block `i`, appending docIDs and tfs to the output columns.
    ///
    /// The docID sub-stream goes through the codec's fused d-gap path
    /// ([`boss_compress::Codec::decode_d1`]), so gaps become absolute
    /// docIDs inside the unpack loop where the codec supports it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BlockOutOfRange`] if `i` is out of range,
    /// [`Error::CorruptMetadata`] if the block descriptor points outside
    /// the data area or its sub-stream counts disagree, and codec errors
    /// on corrupt encoded bytes.
    pub fn decode_block(
        &self,
        i: usize,
        docs: &mut Vec<DocId>,
        tfs: &mut Vec<u32>,
    ) -> Result<(), Error> {
        let meta = self.blocks.get(i).ok_or(Error::BlockOutOfRange {
            block: i,
            n_blocks: self.blocks.len(),
        })?;
        let codec = codec_for(self.scheme);
        let block = self
            .data
            .get(meta.offset as usize..meta.offset as usize + meta.len as usize)
            .ok_or(Error::CorruptMetadata {
                reason: "block offset/len outside the list data area",
            })?;
        if meta.tf_offset as usize > block.len() {
            return Err(Error::CorruptMetadata {
                reason: "tf sub-stream offset beyond the block data",
            });
        }
        if meta.delta_info.count != meta.tf_info.count {
            return Err(Error::CorruptMetadata {
                reason: "docID and tf sub-stream counts disagree",
            });
        }
        let (delta_part, tf_part) = block.split_at(meta.tf_offset as usize);

        match crate::netlist::decode_backend() {
            crate::netlist::DecodeBackend::Codec => {
                codec.decode_d1(delta_part, &meta.delta_info, self.block_base(i), docs)?;

                let tf_base = tfs.len();
                codec.decode(tf_part, &meta.tf_info, tfs)?;
                for tf in &mut tfs[tf_base..] {
                    *tf += 1;
                }
            }
            backend => {
                // Bit-equal alternative: the Fig. 8 decompression engine,
                // compiled plan or interpreter oracle. Wall-clock only;
                // figure cycle charges come from block metadata and are
                // unaffected by the host decode implementation.
                let interpret = backend == crate::netlist::DecodeBackend::NetlistInterpreted;
                let engine = crate::netlist::engine_for(self.scheme, interpret)?;
                engine
                    .decode_docids_into(delta_part, &meta.delta_info, self.block_base(i), docs)
                    .map_err(crate::netlist::netlist_error)?;

                let tf_base = tfs.len();
                engine
                    .decode_into(tf_part, &meta.tf_info, tfs)
                    .map_err(crate::netlist::netlist_error)?;
                for tf in &mut tfs[tf_base..] {
                    *tf += 1;
                }
            }
        }
        Ok(())
    }

    /// Decodes block `i` into `scratch`, replacing its previous contents.
    ///
    /// # Errors
    ///
    /// Same conditions as [`EncodedList::decode_block`].
    pub fn decode_block_into(&self, i: usize, scratch: &mut DecodeScratch) -> Result<(), Error> {
        scratch.clear();
        self.decode_block(i, &mut scratch.docs, &mut scratch.tfs)
    }

    /// Decodes the whole list into fresh columns.
    ///
    /// # Errors
    ///
    /// Returns codec errors on corrupt data.
    pub fn decode_all(&self) -> Result<(Vec<DocId>, Vec<u32>), Error> {
        let mut scratch = DecodeScratch::new();
        self.decode_all_into(&mut scratch)?;
        Ok((scratch.docs, scratch.tfs))
    }

    /// Decodes the whole list into `scratch`, replacing its previous
    /// contents. The full list length is reserved up front from the
    /// per-block metadata counts, so the columns never re-grow mid-decode.
    ///
    /// # Errors
    ///
    /// Returns codec errors on corrupt data.
    pub fn decode_all_into(&self, scratch: &mut DecodeScratch) -> Result<(), Error> {
        scratch.clear();
        // Clamp each block's claimed count so corrupt metadata cannot turn
        // the up-front reserve into an oversized allocation; the per-block
        // decode rejects the bogus count with a typed error anyway.
        let total: usize = self
            .blocks
            .iter()
            .map(|b| b.count().min(boss_compress::MAX_BLOCK_VALUES))
            .sum();
        scratch.docs.reserve(total);
        scratch.tfs.reserve(total);
        for i in 0..self.blocks.len() {
            self.decode_block(i, &mut scratch.docs, &mut scratch.tfs)?;
        }
        Ok(())
    }
}

/// Reusable decode output buffers: callers allocate once (sized from block
/// metadata via [`DecodeScratch::reserve_for`]) and every block decode
/// lands in place instead of growing fresh vectors.
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    /// Decoded absolute docIDs.
    pub docs: Vec<DocId>,
    /// Decoded term frequencies (the stored `tf - 1` already undone).
    pub tfs: Vec<u32>,
}

impl DecodeScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch pre-sized for `n` values per decode.
    pub fn with_capacity(n: usize) -> Self {
        DecodeScratch {
            docs: Vec::with_capacity(n),
            tfs: Vec::with_capacity(n),
        }
    }

    /// Reserves enough room for the largest block of `list`, so per-block
    /// decodes through this scratch never reallocate.
    pub fn reserve_for(&mut self, list: &EncodedList) {
        let largest = list
            .blocks()
            .iter()
            .map(|b| b.count().min(boss_compress::MAX_BLOCK_VALUES))
            .max()
            .unwrap_or(0);
        self.docs.reserve(largest.saturating_sub(self.docs.len()));
        self.tfs.reserve(largest.saturating_sub(self.tfs.len()));
    }

    /// Clears both columns, keeping their capacity.
    pub fn clear(&mut self) {
        self.docs.clear();
        self.tfs.clear();
    }

    /// Number of decoded postings currently held.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the scratch holds no postings.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bm25Params;
    use boss_compress::ALL_SCHEMES;

    fn bm25() -> Bm25 {
        Bm25::new(Bm25Params::default(), 1000, 50.0)
    }

    fn sample_list(n: u32, stride: u32) -> PostingList {
        let docs: Vec<u32> = (0..n).map(|i| i * stride).collect();
        let tfs: Vec<u32> = (0..n).map(|i| 1 + (i % 7)).collect();
        PostingList::from_columns(docs, tfs).unwrap()
    }

    #[test]
    fn roundtrip_all_schemes() {
        let list = sample_list(500, 3);
        let norms = vec![1.0f32; 1500];
        for s in ALL_SCHEMES {
            let enc = EncodedList::encode(&list, s, &bm25(), 2.0, &norms).unwrap();
            assert_eq!(enc.n_blocks(), 4, "500 postings -> 4 blocks");
            let (docs, tfs) = enc.decode_all().unwrap();
            assert_eq!(docs, list.docs(), "scheme {s}");
            assert_eq!(tfs, list.tfs(), "scheme {s}");
        }
    }

    #[test]
    fn netlist_backends_decode_identically() {
        // Restore the process-wide backend even if an assertion fails, so
        // concurrently running tests are not left on a non-default path.
        struct Restore;
        impl Drop for Restore {
            fn drop(&mut self) {
                crate::netlist::set_decode_backend(crate::netlist::DecodeBackend::Codec);
            }
        }
        let _restore = Restore;

        let list = sample_list(500, 3);
        let norms = vec![1.0f32; 1500];
        for s in ALL_SCHEMES {
            let enc = EncodedList::encode(&list, s, &bm25(), 2.0, &norms).unwrap();
            let mut reference = (Vec::new(), Vec::new());
            for bi in 0..enc.n_blocks() {
                crate::netlist::set_decode_backend(crate::netlist::DecodeBackend::Codec);
                reference.0.clear();
                reference.1.clear();
                enc.decode_block(bi, &mut reference.0, &mut reference.1)
                    .unwrap();
                for backend in [
                    crate::netlist::DecodeBackend::NetlistCompiled,
                    crate::netlist::DecodeBackend::NetlistInterpreted,
                ] {
                    crate::netlist::set_decode_backend(backend);
                    let mut docs = Vec::new();
                    let mut tfs = Vec::new();
                    enc.decode_block(bi, &mut docs, &mut tfs).unwrap();
                    assert_eq!(docs, reference.0, "{s} block {bi} via {backend:?}");
                    assert_eq!(tfs, reference.1, "{s} block {bi} via {backend:?}");
                }
            }
        }
    }

    #[test]
    fn block_metadata_boundaries() {
        let list = sample_list(300, 2);
        let norms = vec![1.0f32; 600];
        let enc = EncodedList::encode(&list, Scheme::Bp, &bm25(), 2.0, &norms).unwrap();
        let b = enc.blocks();
        assert_eq!(b.len(), 3);
        assert_eq!(b[0].first_doc, 0);
        assert_eq!(b[0].last_doc, 254);
        assert_eq!(b[1].first_doc, 256);
        assert_eq!(b[2].last_doc, 598);
        assert_eq!(b[0].count(), 128);
        assert_eq!(b[2].count(), 44);
    }

    #[test]
    fn single_block_decode_matches_slice() {
        let list = sample_list(400, 5);
        let norms = vec![1.2f32; 2000];
        let enc = EncodedList::encode(&list, Scheme::OptPfd, &bm25(), 1.5, &norms).unwrap();
        let mut docs = Vec::new();
        let mut tfs = Vec::new();
        enc.decode_block(2, &mut docs, &mut tfs).unwrap();
        assert_eq!(docs, &list.docs()[256..384]);
        assert_eq!(tfs, &list.tfs()[256..384]);
    }

    #[test]
    fn block_max_scores_bound_postings() {
        let list = sample_list(256, 1);
        let norms: Vec<f32> = (0..256).map(|i| 0.5 + i as f32 * 0.01).collect();
        let b = bm25();
        let idf = 1.7f32;
        let enc = EncodedList::encode(&list, Scheme::Vb, &b, idf, &norms).unwrap();
        for (bi, meta) in enc.blocks().iter().enumerate() {
            let mut docs = Vec::new();
            let mut tfs = Vec::new();
            enc.decode_block(bi, &mut docs, &mut tfs).unwrap();
            for (&d, &tf) in docs.iter().zip(&tfs) {
                let s = b.term_score(idf, tf, norms[d as usize]);
                assert!(s <= meta.max_score + 1e-6);
            }
        }
        let list_max = enc
            .blocks()
            .iter()
            .map(|m| m.max_score)
            .fold(0.0f32, f32::max);
        assert!((enc.max_score() - list_max).abs() < 1e-9);
    }

    #[test]
    fn overlap_check() {
        let m = BlockMeta {
            first_doc: 100,
            last_doc: 200,
            max_score: 0.0,
            offset: 0,
            len: 0,
            tf_offset: 0,
            delta_info: BlockInfo::default(),
            tf_info: BlockInfo::default(),
        };
        assert!(m.overlaps(150, 160));
        assert!(m.overlaps(0, 100));
        assert!(m.overlaps(200, 300));
        assert!(!m.overlaps(0, 99));
        assert!(!m.overlaps(201, 999));
    }

    #[test]
    fn doc_zero_first_posting() {
        let list = PostingList::from_columns(vec![0, 7], vec![2, 1]).unwrap();
        let enc = EncodedList::encode(&list, Scheme::Bp, &bm25(), 1.0, &[1.0; 8]).unwrap();
        let (docs, tfs) = enc.decode_all().unwrap();
        assert_eq!(docs, vec![0, 7]);
        assert_eq!(tfs, vec![2, 1]);
    }

    #[test]
    fn empty_list() {
        let enc = EncodedList::encode(&PostingList::new(), Scheme::Bp, &bm25(), 1.0, &[]).unwrap();
        assert_eq!(enc.n_blocks(), 0);
        let (docs, tfs) = enc.decode_all().unwrap();
        assert!(docs.is_empty() && tfs.is_empty());
    }

    #[test]
    fn out_of_range_block_is_typed_error() {
        let list = sample_list(10, 1);
        let enc = EncodedList::encode(&list, Scheme::Bp, &bm25(), 1.0, &[1.0; 16]).unwrap();
        let err = enc
            .decode_block(5, &mut Vec::new(), &mut Vec::new())
            .unwrap_err();
        assert!(matches!(
            err,
            Error::BlockOutOfRange {
                block: 5,
                n_blocks: 1
            }
        ));
    }

    #[test]
    fn corrupt_metadata_is_typed_error_never_panic() {
        let list = sample_list(300, 2);
        let norms = vec![1.0f32; 600];
        for s in ALL_SCHEMES {
            let base = EncodedList::encode(&list, s, &bm25(), 2.0, &norms).unwrap();

            // Offset/len pointing outside the data area.
            let mut enc = base.clone();
            enc.blocks_mut()[1].offset = u32::MAX;
            let err = enc
                .decode_block(1, &mut Vec::new(), &mut Vec::new())
                .unwrap_err();
            assert!(matches!(err, Error::CorruptMetadata { .. }), "scheme {s}");

            // tf offset beyond the block data.
            let mut enc = base.clone();
            let len = enc.blocks()[0].len;
            enc.blocks_mut()[0].tf_offset = len + 1;
            let err = enc
                .decode_block(0, &mut Vec::new(), &mut Vec::new())
                .unwrap_err();
            assert!(matches!(err, Error::CorruptMetadata { .. }), "scheme {s}");

            // Sub-stream counts disagreeing.
            let mut enc = base.clone();
            enc.blocks_mut()[0].tf_info.count += 1;
            let err = enc
                .decode_block(0, &mut Vec::new(), &mut Vec::new())
                .unwrap_err();
            assert!(matches!(err, Error::CorruptMetadata { .. }), "scheme {s}");

            // Oversized claimed count must not blow up the bulk reserve.
            let mut enc = base.clone();
            for b in enc.blocks_mut() {
                b.delta_info.count = u16::MAX;
                b.tf_info.count = u16::MAX;
            }
            let mut scratch = DecodeScratch::new();
            assert!(enc.decode_all_into(&mut scratch).is_err(), "scheme {s}");
            assert!(
                scratch.docs.capacity() <= 3 * boss_compress::MAX_BLOCK_VALUES,
                "scheme {s} reserved for corrupt counts"
            );
        }
    }

    #[test]
    fn meta_bytes_accounting() {
        let list = sample_list(129, 1);
        let enc = EncodedList::encode(&list, Scheme::Bp, &bm25(), 1.0, &[1.0; 130]).unwrap();
        assert_eq!(enc.meta_bytes(), 2 * BLOCK_META_BYTES);
    }
}
