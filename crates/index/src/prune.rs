//! Index-level dynamic-pruning evaluators (MaxScore / WAND / BMW / BMM).
//!
//! This module is the *portable* half of the pruning tentpole: a
//! self-contained evaluator over [`EncodedList`] block metadata that the
//! host-style engines (IIU, the Lucene-like baseline) and the property
//! tests drive directly. The BOSS device pipeline has its own
//! implementation in `boss-core` (it must thread through the simulated
//! fetch/decode/score units); both are required by tests to return the
//! exact hits of [`crate::reference::evaluate`].
//!
//! # Safety contract
//!
//! Pruning is *safe*: the returned top-k is bit-identical to the
//! exhaustive oracle — same docs, same f32 score bits, same
//! [`SearchHit::ranking_cmp`] order — because
//!
//! * skip decisions use the verbatim `cannot_beat` guard from the BOSS
//!   early-termination path (a strict `1e-4`-scaled slack below the
//!   threshold, so score *ties* are always evaluated), and
//! * every surviving document's final score is recomputed canonically:
//!   contributing terms sorted ascending, f32 accumulation in term
//!   order, exactly like the reference evaluator. Partial sums and
//!   upper-bound tails (kept in f64) only ever decide *abandonment*.
//!
//! # Corruption contract
//!
//! Block-max and list-max scores are untrusted metadata. Non-finite or
//! negative bounds sanitize to `+inf` (never-skip — a safe
//! over-estimate). Decoded blocks are verified against their directory
//! entry (first/last docID containment, per-posting score within the
//! block-max bound) and violations surface as
//! [`Error::CorruptMetadata`]. The residual trust boundary — a
//! *finitely lowered* bound on a block that is skipped and therefore
//! never decoded — is undetectable without decoding and is documented
//! in DESIGN.md §14; the corruption harness's mutation corpus covers
//! the detectable classes.

use crate::algorithm::QueryAlgorithm;
use crate::encoded::{BlockMeta, EncodedList};
use crate::index::{InvertedIndex, TermId};
use crate::query::SearchHit;
use crate::{DocId, Error};

/// Observer for the simulated-cost side effects of a pruned traversal.
///
/// The evaluator calls these hooks at the exact point the corresponding
/// physical event would happen on the modeled hardware: metadata reads
/// when a block directory entry is first consulted, block decodes when
/// (and only when) a block survives the skip checks, skip tallies when
/// postings are provably unable to change the top-k. Engines implement
/// this to charge their memory simulators; [`NullSink`] ignores it all.
///
/// `slot` identifies the query term stream (position in the deduplicated
/// ascending term list passed to [`pruned_union_topk`]).
pub trait PruneSink {
    /// `blocks` metadata records of stream `slot` were read (19 B each).
    fn meta_read(&mut self, _slot: usize, _blocks: u64) {}
    /// A block of stream `slot` was fetched and decoded.
    fn block_decoded(&mut self, _slot: usize, _meta: &BlockMeta) {}
    /// `blocks` whole blocks (`docs` postings) of stream `slot` were
    /// skipped without ever being fetched or decoded.
    fn blocks_skipped(&mut self, _slot: usize, _blocks: u64, _docs: u64) {}
    /// `docs` already-decoded postings of stream `slot` were passed over
    /// without scoring (in-block scan or decoded-tail skip).
    fn docs_skipped(&mut self, _slot: usize, _docs: u64) {}
    /// A candidate document was abandoned mid-probe (MaxScore family):
    /// its partial score plus the unprobed upper-bound tail cannot beat
    /// the threshold.
    fn doc_abandoned(&mut self) {}
    /// A candidate document was fully scored and offered to the heap.
    fn doc_scored(&mut self, _doc: DocId) {}
    /// One pivot/candidate-selection round completed.
    fn round(&mut self) {}
}

/// A sink that ignores every event (pure result computation).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl PruneSink for NullSink {}

/// A sink that tallies every event — the portable engines' bookkeeping
/// and the unit tests' visibility into how much work was avoided.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PruneCounters {
    /// Block directory entries read (19 B each).
    pub metas_read: u64,
    /// Blocks fetched and decoded.
    pub blocks_decoded: u64,
    /// Whole blocks skipped undecoded.
    pub blocks_skipped: u64,
    /// Postings inside skipped blocks (never decoded).
    pub docs_skipped_blocks: u64,
    /// Decoded postings passed over without scoring, plus abandoned
    /// candidates.
    pub docs_skipped: u64,
    /// Documents fully scored.
    pub docs_scored: u64,
    /// Pivot/candidate rounds.
    pub rounds: u64,
}

impl PruneCounters {
    /// Every document accounted for: scored, skipped decoded, or skipped
    /// inside an undecoded block.
    pub fn docs_total(&self) -> u64 {
        self.docs_scored + self.docs_skipped + self.docs_skipped_blocks
    }
}

impl PruneSink for PruneCounters {
    fn meta_read(&mut self, _slot: usize, blocks: u64) {
        self.metas_read += blocks;
    }
    fn block_decoded(&mut self, _slot: usize, _meta: &BlockMeta) {
        self.blocks_decoded += 1;
    }
    fn blocks_skipped(&mut self, _slot: usize, blocks: u64, docs: u64) {
        self.blocks_skipped += blocks;
        self.docs_skipped_blocks += docs;
    }
    fn docs_skipped(&mut self, _slot: usize, docs: u64) {
        self.docs_skipped += docs;
    }
    fn doc_abandoned(&mut self) {
        self.docs_skipped += 1;
    }
    fn doc_scored(&mut self, _doc: DocId) {
        self.docs_scored += 1;
    }
    fn round(&mut self) {
        self.rounds += 1;
    }
}

/// Result of a pruned union evaluation.
#[derive(Debug, Clone, Default)]
pub struct PruneOutcome {
    /// The exact top-k, in [`SearchHit::ranking_cmp`] order.
    pub hits: Vec<SearchHit>,
    /// Heap insertions performed (mirrors `TopK` accounting in
    /// `boss-core`).
    pub topk_inserts: u64,
}

/// The BOSS early-termination guard, verbatim from the device union
/// path: `upper` cannot beat `theta` only when it is a strict
/// slack below it, so score ties are always evaluated and the top-k
/// stays bit-identical to the exhaustive order.
fn cannot_beat(upper: f64, theta: f32) -> bool {
    if !theta.is_finite() {
        return false;
    }
    let slack = 1e-4 * (1.0 + f64::from(theta.abs()));
    upper <= f64::from(theta) - slack
}

/// Sanitizes an untrusted score upper bound: anything non-finite or
/// negative becomes `+inf`, which disables skipping (a safe
/// over-estimate) instead of enabling a wrong skip.
fn sanitize_ub(raw: f32) -> f32 {
    if raw.is_finite() && raw >= 0.0 {
        raw
    } else {
        f32::INFINITY
    }
}

/// Top-k accumulator replicating `boss-core`'s `TopK` offer semantics
/// exactly (sorted insert by `(score desc, doc asc)`, threshold = k-th
/// score once full) so thresholds — and therefore skip decisions — match
/// the device engine bit for bit.
struct LocalTopK {
    k: usize,
    entries: Vec<SearchHit>,
    inserts: u64,
}

impl LocalTopK {
    fn new(k: usize) -> Self {
        LocalTopK {
            k,
            entries: Vec::with_capacity(k.min(4096)),
            inserts: 0,
        }
    }

    /// Current pruning threshold: the k-th best score once the heap is
    /// full, `-inf` before that.
    fn cutoff(&self) -> f32 {
        if self.entries.len() < self.k {
            f32::NEG_INFINITY
        } else {
            self.entries.last().map_or(f32::NEG_INFINITY, |e| e.score)
        }
    }

    fn offer(&mut self, doc: DocId, score: f32) {
        if self.entries.len() == self.k && score <= self.cutoff() {
            return;
        }
        let pos = self.entries.partition_point(|e| e.score >= score);
        self.entries.insert(pos, SearchHit { doc, score });
        if self.entries.len() > self.k {
            self.entries.pop();
        }
        self.inserts += 1;
    }
}

/// One query-term posting stream: block-directory position plus the
/// decoded window of the current block (empty until the block survives
/// the skip checks and is actually decoded).
struct Cursor<'a> {
    slot: usize,
    term: TermId,
    list: &'a EncodedList,
    /// Sanitized list-level score upper bound.
    ub: f32,
    /// Current block index (`== n_blocks` once exhausted).
    block: usize,
    /// Decoded docIDs/tfs of the current block; empty while undecoded.
    docs: Vec<DocId>,
    tfs: Vec<u32>,
    /// Position within the decoded window.
    pos: usize,
    /// Number of leading directory entries whose 19 B metadata has been
    /// charged to the sink (entries are read once, in order).
    meta_upto: usize,
}

impl<'a> Cursor<'a> {
    fn new<S: PruneSink>(
        index: &'a InvertedIndex,
        slot: usize,
        term: TermId,
        sink: &mut S,
    ) -> Self {
        let list = index.list(term);
        let mut c = Cursor {
            slot,
            term,
            list,
            ub: sanitize_ub(list.max_score()),
            block: 0,
            docs: Vec::new(),
            tfs: Vec::new(),
            pos: 0,
            meta_upto: 0,
        };
        c.charge_meta(sink);
        c
    }

    fn exhausted(&self) -> bool {
        self.block >= self.list.n_blocks()
    }

    fn meta(&self) -> &BlockMeta {
        &self.list.blocks()[self.block]
    }

    fn decoded(&self) -> bool {
        !self.docs.is_empty()
    }

    /// Charges the sink for the current block's directory entry if it
    /// has not been read yet (directory reads are sequential).
    fn charge_meta<S: PruneSink>(&mut self, sink: &mut S) {
        if !self.exhausted() && self.block >= self.meta_upto {
            sink.meta_read(self.slot, (self.block + 1 - self.meta_upto) as u64);
            self.meta_upto = self.block + 1;
        }
    }

    /// Moves to block `b` with no decoded window.
    fn enter_block<S: PruneSink>(&mut self, b: usize, sink: &mut S) {
        self.block = b;
        self.docs.clear();
        self.tfs.clear();
        self.pos = 0;
        self.charge_meta(sink);
    }

    /// Smallest not-yet-consumed docID. For an undecoded block this is
    /// the directory's `first_doc` — readable without a decode.
    fn current_doc(&self) -> DocId {
        if self.decoded() {
            self.docs[self.pos]
        } else {
            self.meta().first_doc
        }
    }

    /// Decodes the current block if it is not already decoded, verifying
    /// the decoded contents against the directory entry.
    fn ensure_decoded<S: PruneSink>(&mut self, sink: &mut S) -> Result<(), Error> {
        if self.decoded() {
            return Ok(());
        }
        self.list
            .decode_block(self.block, &mut self.docs, &mut self.tfs)?;
        let meta = self.meta();
        match (self.docs.first(), self.docs.last()) {
            (Some(&first), Some(&last)) => {
                if first != meta.first_doc || last != meta.last_doc {
                    return Err(Error::CorruptMetadata {
                        reason: "decoded block contents disagree with its directory entry",
                    });
                }
            }
            _ => {
                return Err(Error::CorruptMetadata {
                    reason: "block decoded to zero postings",
                });
            }
        }
        sink.block_decoded(self.slot, meta);
        self.pos = 0;
        Ok(())
    }

    /// Consumes the current posting (the block must be decoded).
    fn advance<S: PruneSink>(&mut self, sink: &mut S) {
        self.pos += 1;
        if self.pos >= self.docs.len() {
            let next = self.block + 1;
            self.enter_block(next, sink);
        }
    }

    /// Positions the cursor at the first docID `>= target`, charging
    /// every skipped block/posting to the sink. Blocks whose `last_doc`
    /// is below the target are skipped *undecoded*.
    fn seek<S: PruneSink>(&mut self, target: DocId, sink: &mut S) -> Result<(), Error> {
        while !self.exhausted() && self.meta().last_doc < target {
            if self.decoded() {
                sink.docs_skipped(self.slot, (self.docs.len() - self.pos) as u64);
            } else {
                sink.blocks_skipped(self.slot, 1, self.meta().count() as u64);
            }
            let next = self.block + 1;
            self.enter_block(next, sink);
        }
        if self.exhausted() || self.current_doc() >= target {
            return Ok(());
        }
        // The target lies inside the current block: decode and scan.
        self.ensure_decoded(sink)?;
        let start = self.pos;
        self.pos += self.docs[self.pos..].partition_point(|&d| d < target);
        sink.docs_skipped(self.slot, (self.pos - start) as u64);
        if self.pos >= self.docs.len() {
            // Unreachable for honest metadata (last_doc >= target was
            // verified at decode), kept as a safe fallback.
            let next = self.block + 1;
            self.enter_block(next, sink);
        }
        Ok(())
    }

    /// Block-max shallow advance: the sanitized score bound and boundary
    /// (`last_doc`) of the block that would contain `target`, without
    /// fetching or decoding anything. Returns `(0.0, DocId::MAX)` when
    /// the list has no docID at or beyond `target`.
    fn shallow(&self, target: DocId) -> (f32, DocId) {
        let b = self.list.skip_to_block(self.block, target);
        if b >= self.list.n_blocks() {
            (0.0, DocId::MAX)
        } else {
            (self.list.block_max_ub(b), self.list.blocks()[b].last_doc)
        }
    }

    /// Counts every remaining posting as skipped and exhausts the
    /// cursor (the traversal proved the whole tail cannot contribute).
    fn drain_skipped<S: PruneSink>(&mut self, sink: &mut S) {
        if self.exhausted() {
            return;
        }
        let mut from = self.block;
        if self.decoded() {
            sink.docs_skipped(self.slot, (self.docs.len() - self.pos) as u64);
            from += 1;
        }
        let tail = &self.list.blocks()[from..];
        if !tail.is_empty() {
            let docs: u64 = tail.iter().map(|m| m.count() as u64).sum();
            sink.blocks_skipped(self.slot, tail.len() as u64, docs);
        }
        self.block = self.list.n_blocks();
        self.docs.clear();
        self.tfs.clear();
        self.pos = 0;
    }

    /// Reads the current posting's tf, verifying its term score against
    /// the block-max and list-max bounds, then consumes it. The cursor
    /// must be positioned at a decoded posting.
    fn take_posting<S: PruneSink>(
        &mut self,
        index: &InvertedIndex,
        norm: f32,
        sink: &mut S,
    ) -> Result<(TermId, u32, f32), Error> {
        let tf = self.tfs[self.pos];
        let score = index
            .bm25()
            .term_score(index.term_info(self.term).idf, tf, norm);
        if score > self.list.block_max_ub(self.block) || score > self.ub {
            return Err(Error::CorruptMetadata {
                reason: "posting score exceeds its block-max bound",
            });
        }
        self.advance(sink);
        Ok((self.term, tf, score))
    }
}

/// Canonical final score: contributing terms sorted ascending, f32
/// accumulation in term order — exactly the reference evaluator's
/// arithmetic, so pruned and exhaustive scores share every bit.
fn canonical_score(index: &InvertedIndex, entries: &mut Vec<(TermId, u32)>, norm: f32) -> f32 {
    entries.sort_unstable_by_key(|&(t, _)| t);
    entries.dedup_by_key(|&mut (t, _)| t);
    let mut score = 0.0f32;
    for &(t, tf) in entries.iter() {
        score += index.bm25().term_score(index.term_info(t).idf, tf, norm);
    }
    score
}

fn doc_norm(index: &InvertedIndex, doc: DocId) -> Result<f32, Error> {
    index
        .doc_norms()
        .get(doc as usize)
        .copied()
        .ok_or(Error::CorruptMetadata {
            reason: "decoded docID outside the corpus",
        })
}

/// Evaluates a union (OR) of `terms` under `algorithm`, returning the
/// exact top-`k` of the exhaustive oracle while charging every simulated
/// access to `sink`.
///
/// Terms are deduplicated and sorted ascending; `slot` in sink callbacks
/// indexes that deduplicated order. `Exhaustive` runs the same frontier
/// loop with the threshold pinned to `-inf`, which disables every skip —
/// useful as an in-family baseline, though engines normally route
/// `Exhaustive` through their original traversal.
///
/// # Errors
///
/// Returns [`Error::UnknownTerm`] for out-of-range term ids and
/// [`Error::CorruptMetadata`] / codec errors if a decoded block
/// contradicts its directory entry.
pub fn pruned_union_topk<S: PruneSink>(
    index: &InvertedIndex,
    terms: &[TermId],
    algorithm: QueryAlgorithm,
    k: usize,
    sink: &mut S,
) -> Result<PruneOutcome, Error> {
    let mut ids: Vec<TermId> = terms.to_vec();
    ids.sort_unstable();
    ids.dedup();
    if k == 0 || ids.is_empty() {
        return Ok(PruneOutcome::default());
    }
    for &t in &ids {
        if (t as usize) >= index.n_terms() {
            return Err(Error::UnknownTerm {
                term: format!("#{t}"),
            });
        }
    }
    let mut cursors: Vec<Cursor<'_>> = Vec::with_capacity(ids.len());
    for (slot, &t) in ids.iter().enumerate() {
        cursors.push(Cursor::new(index, slot, t, sink));
    }
    let (topk, inserts) = match algorithm {
        QueryAlgorithm::Exhaustive => wand_union(index, &mut cursors, k, false, true, sink)?,
        QueryAlgorithm::Wand => wand_union(index, &mut cursors, k, false, false, sink)?,
        QueryAlgorithm::BlockMaxWand => wand_union(index, &mut cursors, k, true, false, sink)?,
        QueryAlgorithm::MaxScore => maxscore_union(index, &mut cursors, k, false, sink)?,
        QueryAlgorithm::BlockMaxMaxScore => maxscore_union(index, &mut cursors, k, true, sink)?,
    };
    Ok(PruneOutcome {
        hits: topk,
        topk_inserts: inserts,
    })
}

/// WAND / Block-Max WAND frontier loop (also the in-family exhaustive
/// baseline with `exhaustive = true`, which pins the threshold to
/// `-inf` so the pivot is always the minimum docID).
fn wand_union<S: PruneSink>(
    index: &InvertedIndex,
    cursors: &mut [Cursor<'_>],
    k: usize,
    block_max: bool,
    exhaustive: bool,
    sink: &mut S,
) -> Result<(Vec<SearchHit>, u64), Error> {
    let mut topk = LocalTopK::new(k);
    let mut entries: Vec<(TermId, u32)> = Vec::new();
    let mut order: Vec<usize> = Vec::with_capacity(cursors.len());
    loop {
        order.clear();
        order.extend((0..cursors.len()).filter(|&i| !cursors[i].exhausted()));
        if order.is_empty() {
            break;
        }
        order.sort_unstable_by_key(|&i| (cursors[i].current_doc(), i));
        sink.round();
        let theta = if exhaustive {
            f32::NEG_INFINITY
        } else {
            topk.cutoff()
        };
        // Pivot: first frontier prefix whose summed list bounds can
        // still beat the threshold.
        let mut acc = 0f64;
        let mut pivot = None;
        for (rank, &ci) in order.iter().enumerate() {
            acc += f64::from(cursors[ci].ub);
            if !cannot_beat(acc, theta) {
                pivot = Some(rank);
                break;
            }
        }
        let Some(p) = pivot else {
            // Even all lists together cannot beat the threshold: the
            // remaining postings are all skippable.
            for &ci in order.iter() {
                cursors[ci].drain_skipped(sink);
            }
            break;
        };
        let pivot_doc = cursors[order[p]].current_doc();
        // Extend the pivot set over docID ties.
        let mut pend = p;
        while pend + 1 < order.len() && cursors[order[pend + 1]].current_doc() == pivot_doc {
            pend += 1;
        }
        if block_max {
            // Shallow advance: bound the window [pivot_doc, next) by the
            // per-block max scores, without decoding anything.
            let mut bub = 0f64;
            let mut min_boundary = DocId::MAX;
            for &ci in order[..=pend].iter() {
                let (u, last) = cursors[ci].shallow(pivot_doc);
                bub += f64::from(u);
                min_boundary = min_boundary.min(last);
            }
            if cannot_beat(bub, theta) {
                let mut next = min_boundary.saturating_add(1);
                if pend + 1 < order.len() {
                    next = next.min(cursors[order[pend + 1]].current_doc());
                }
                let next = next.max(pivot_doc.saturating_add(1));
                for &ci in order[..=pend].iter() {
                    cursors[ci].seek(next, sink)?;
                }
                continue;
            }
        }
        if cursors[order[0]].current_doc() == pivot_doc {
            // Frontier aligned on the pivot: every cursor in the pivot
            // set sits on pivot_doc. Decode (only now), gather, score
            // canonically.
            let norm = doc_norm(index, pivot_doc)?;
            entries.clear();
            for &ci in order[..=pend].iter() {
                let c = &mut cursors[ci];
                c.ensure_decoded(sink)?;
                let (t, tf, _) = c.take_posting(index, norm, sink)?;
                entries.push((t, tf));
            }
            let score = canonical_score(index, &mut entries, norm);
            sink.doc_scored(pivot_doc);
            topk.offer(pivot_doc, score);
        } else {
            // Not aligned: move the lowest cursor up to the pivot.
            cursors[order[0]].seek(pivot_doc, sink)?;
        }
    }
    Ok((topk.entries, topk.inserts))
}

/// MaxScore / Block-Max MaxScore loop: lists are split by ascending
/// upper bound into a non-essential prefix (whose summed bounds cannot
/// beat the threshold) and an essential tail; candidates come only from
/// essential lists, non-essential lists are probed with early
/// abandoning. The split index is monotone in the threshold, so
/// candidates arrive in ascending docID order.
fn maxscore_union<S: PruneSink>(
    index: &InvertedIndex,
    cursors: &mut [Cursor<'_>],
    k: usize,
    block_max: bool,
    sink: &mut S,
) -> Result<(Vec<SearchHit>, u64), Error> {
    // Fixed ascending (upper bound, term) order; prefix[j] = summed
    // bounds of cursors[0..j].
    cursors.sort_unstable_by(|a, b| a.ub.total_cmp(&b.ub).then(a.term.cmp(&b.term)));
    let n = cursors.len();
    let mut prefix = vec![0f64; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i] + f64::from(cursors[i].ub);
    }
    let mut topk = LocalTopK::new(k);
    let mut entries: Vec<(TermId, u32)> = Vec::new();
    loop {
        let theta = topk.cutoff();
        let mut ness = 0usize;
        while ness < n && cannot_beat(prefix[ness + 1], theta) {
            ness += 1;
        }
        if ness == n {
            // No list can contribute a top-k change any more.
            for c in cursors.iter_mut() {
                c.drain_skipped(sink);
            }
            break;
        }
        // Next candidate: minimum current docID over live essential
        // lists.
        let mut cand = None;
        for c in cursors[ness..].iter() {
            if !c.exhausted() {
                let d = c.current_doc();
                cand = Some(cand.map_or(d, |x: DocId| x.min(d)));
            }
        }
        let Some(d) = cand else {
            // Essential lists exhausted; whatever remains in the
            // non-essential prefix cannot beat the threshold alone.
            for c in cursors.iter_mut() {
                c.drain_skipped(sink);
            }
            break;
        };
        sink.round();
        if block_max {
            // Refine the essential bound with the block maxes of the
            // lists actually positioned on `d`.
            let mut ub = prefix[ness];
            let mut min_boundary = DocId::MAX;
            let mut next_cur = DocId::MAX;
            for c in cursors[ness..].iter() {
                if c.exhausted() {
                    continue;
                }
                if c.current_doc() == d {
                    let (u, last) = c.shallow(d);
                    ub += f64::from(u);
                    min_boundary = min_boundary.min(last);
                } else {
                    next_cur = next_cur.min(c.current_doc());
                }
            }
            if cannot_beat(ub, theta) {
                // Skip the whole window the bound covers: up to the
                // earliest block boundary, capped by the next essential
                // candidate, always making progress past `d`.
                let next = min_boundary
                    .saturating_add(1)
                    .min(next_cur)
                    .max(d.saturating_add(1));
                for c in cursors[ness..].iter_mut() {
                    if !c.exhausted() && c.current_doc() == d {
                        c.seek(next, sink)?;
                    }
                }
                continue;
            }
        }
        // Gather the essential postings at `d` (decoding only now).
        let norm = doc_norm(index, d)?;
        entries.clear();
        let mut partial = 0f64;
        for c in cursors[ness..].iter_mut() {
            if !c.exhausted() && c.current_doc() == d {
                c.ensure_decoded(sink)?;
                let (t, tf, s) = c.take_posting(index, norm, sink)?;
                partial += f64::from(s);
                entries.push((t, tf));
            }
        }
        // Probe non-essential lists in descending-bound order, early
        // abandoning when the partial plus the unprobed tail cannot
        // beat the threshold. (The f64 partial only gates abandonment;
        // the offered score is recomputed canonically below.)
        let mut abandoned = false;
        for j in (0..ness).rev() {
            if cannot_beat(partial + prefix[j + 1], theta) {
                abandoned = true;
                break;
            }
            let c = &mut cursors[j];
            c.seek(d, sink)?;
            if !c.exhausted() && c.current_doc() == d {
                c.ensure_decoded(sink)?;
                let (t, tf, s) = c.take_posting(index, norm, sink)?;
                partial += f64::from(s);
                entries.push((t, tf));
            }
        }
        if abandoned {
            sink.doc_abandoned();
        } else {
            let score = canonical_score(index, &mut entries, norm);
            sink.doc_scored(d);
            topk.offer(d, score);
        }
    }
    Ok((topk.entries, topk.inserts))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use crate::{IndexBuilder, QueryExpr};

    /// Synthetic corpus with heavy score ties (the usual repo pattern).
    fn corpus(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                let h = i.wrapping_mul(2654435761);
                let mut words = Vec::new();
                if h % 2 == 0 {
                    words.push("alpha");
                }
                if h % 3 == 0 {
                    words.push("beta");
                }
                if h % 7 == 0 {
                    words.push("gamma gamma");
                }
                if h % 31 == 0 {
                    words.push("delta");
                }
                words.push("common");
                words.join(" ")
            })
            .collect()
    }

    /// Corpus with per-block tf (and doc-length) variation, so block-max
    /// scores differ enough for the block-max algorithms to skip.
    fn skewed_corpus(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2654435761);
                let mut words: Vec<&str> = vec!["common"];
                if h % 2 == 0 {
                    let tf = 1 + (i / 128) % 7;
                    words.extend(std::iter::repeat_n("alpha", tf));
                }
                if h % 3 == 0 {
                    words.push("beta");
                }
                if h % 31 == 0 {
                    words.push("rare");
                }
                words.join(" ")
            })
            .collect()
    }

    fn union_terms(index: &InvertedIndex, words: &[&str]) -> Vec<TermId> {
        words
            .iter()
            .map(|w| index.term_id(w).expect("term exists"))
            .collect()
    }

    #[test]
    fn all_algorithms_match_reference_exactly() {
        let docs = corpus(600);
        let index = IndexBuilder::new()
            .add_documents(docs.iter().map(|s| s.as_str()))
            .build()
            .expect("builds");
        let words = ["alpha", "beta", "gamma", "delta", "common"];
        let expr = QueryExpr::or(words.map(QueryExpr::term));
        let terms = union_terms(&index, &words);
        for k in [1usize, 3, 10, 100, 1000] {
            let oracle = crate::reference::evaluate(&index, &expr, k).expect("oracle");
            for algo in crate::ALL_ALGORITHMS {
                let got =
                    pruned_union_topk(&index, &terms, algo, k, &mut NullSink).expect("evaluates");
                let pairs = |hits: &[SearchHit]| {
                    hits.iter()
                        .map(|h| (h.doc, h.score.to_bits()))
                        .collect::<Vec<_>>()
                };
                assert_eq!(
                    pairs(&got.hits),
                    pairs(&oracle),
                    "algorithm {algo} diverged from the oracle at k={k}"
                );
            }
        }
    }

    #[test]
    fn skewed_corpus_still_matches_reference() {
        let docs = skewed_corpus(3000);
        let index = IndexBuilder::new()
            .add_documents(docs.iter().map(|s| s.as_str()))
            .build()
            .expect("builds");
        let words = ["alpha", "beta", "rare", "common"];
        let expr = QueryExpr::or(words.map(QueryExpr::term));
        let terms = union_terms(&index, &words);
        for k in [1usize, 10, 100] {
            let oracle = crate::reference::evaluate(&index, &expr, k).expect("oracle");
            for algo in crate::ALL_ALGORITHMS {
                let got =
                    pruned_union_topk(&index, &terms, algo, k, &mut NullSink).expect("evaluates");
                let pairs = |hits: &[SearchHit]| {
                    hits.iter()
                        .map(|h| (h.doc, h.score.to_bits()))
                        .collect::<Vec<_>>()
                };
                assert_eq!(pairs(&got.hits), pairs(&oracle), "algo {algo} k={k}");
            }
        }
    }

    #[test]
    fn block_max_algorithms_decode_fewer_blocks() {
        let docs = skewed_corpus(4000);
        let index = IndexBuilder::new()
            .add_documents(docs.iter().map(|s| s.as_str()))
            .build()
            .expect("builds");
        let terms = union_terms(&index, &["alpha", "beta", "rare", "common"]);
        let mut decoded = std::collections::HashMap::new();
        for algo in crate::ALL_ALGORITHMS {
            let mut counters = PruneCounters::default();
            pruned_union_topk(&index, &terms, algo, 10, &mut counters).expect("evaluates");
            assert_eq!(
                counters.docs_total(),
                counters.docs_scored + counters.docs_skipped + counters.docs_skipped_blocks,
            );
            decoded.insert(algo.label(), counters.blocks_decoded);
        }
        let exhaustive = decoded["exhaustive"];
        assert!(
            decoded["bmw"] < exhaustive,
            "BMW decoded {} blocks, exhaustive {exhaustive}",
            decoded["bmw"]
        );
        assert!(
            decoded["bmm"] < exhaustive,
            "BMM decoded {} blocks, exhaustive {exhaustive}",
            decoded["bmm"]
        );
    }

    #[test]
    fn empty_inputs_are_empty() {
        let index = IndexBuilder::new()
            .add_documents(["just one doc"].into_iter())
            .build()
            .expect("builds");
        let t = index.term_id("doc").expect("term");
        let got = pruned_union_topk(&index, &[t], QueryAlgorithm::BlockMaxWand, 0, &mut NullSink)
            .expect("k=0 ok");
        assert!(got.hits.is_empty());
        let got = pruned_union_topk(&index, &[], QueryAlgorithm::MaxScore, 10, &mut NullSink)
            .expect("no terms ok");
        assert!(got.hits.is_empty());
    }

    #[test]
    fn out_of_range_term_is_a_typed_error() {
        let index = IndexBuilder::new()
            .add_documents(["just one doc"].into_iter())
            .build()
            .expect("builds");
        let bad = index.n_terms() as TermId;
        let err = pruned_union_topk(&index, &[bad], QueryAlgorithm::Wand, 10, &mut NullSink)
            .expect_err("rejects");
        assert!(matches!(err, Error::UnknownTerm { .. }));
    }

    #[test]
    fn corrupt_block_max_sanitizes_or_errors_never_lies() {
        let docs = corpus(800);
        let words = ["alpha", "beta", "gamma", "common"];
        let expr = QueryExpr::or(words.map(QueryExpr::term));
        let base = IndexBuilder::new()
            .add_documents(docs.iter().map(|s| s.as_str()))
            .build()
            .expect("builds");
        let oracle = crate::reference::evaluate(&base, &expr, 10).expect("oracle");
        let terms = union_terms(&base, &words);
        let t = terms[0];
        // Safe over-estimate corruptions: NaN / negative / +inf / inflated.
        for mutation in [f32::NAN, -1.0, f32::INFINITY, f32::MAX] {
            let mut index = IndexBuilder::new()
                .add_documents(docs.iter().map(|s| s.as_str()))
                .build()
                .expect("builds");
            index.list_mut(t).blocks_mut()[0].max_score = mutation;
            for algo in crate::ALL_ALGORITHMS {
                let got = pruned_union_topk(&index, &terms, algo, 10, &mut NullSink)
                    .expect("sanitized bound still evaluates");
                let pairs = |hits: &[SearchHit]| {
                    hits.iter()
                        .map(|h| (h.doc, h.score.to_bits()))
                        .collect::<Vec<_>>()
                };
                assert_eq!(pairs(&got.hits), pairs(&oracle), "algo {algo}");
            }
        }
        // A structurally wrong directory entry must surface as a typed
        // error once the block is decoded.
        let mut index = IndexBuilder::new()
            .add_documents(docs.iter().map(|s| s.as_str()))
            .build()
            .expect("builds");
        index.list_mut(t).blocks_mut()[0].first_doc = DocId::MAX - 1;
        let err = pruned_union_topk(&base, &terms, QueryAlgorithm::Exhaustive, 10, &mut NullSink);
        assert!(err.is_ok(), "uncorrupted baseline sanity");
        let got = pruned_union_topk(
            &index,
            &terms,
            QueryAlgorithm::Exhaustive,
            10,
            &mut NullSink,
        );
        assert!(
            matches!(got, Err(Error::CorruptMetadata { .. })),
            "corrupt first_doc must be a typed error, got {got:?}"
        );
    }
}
