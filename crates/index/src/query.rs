//! The query AST shared by every engine, and the result type.

use crate::{DocId, Error};
use serde::{Deserialize, Serialize};

/// A boolean full-text query over terms.
///
/// BOSS's offload API accepts up to 16 terms with AND/OR operators
/// (Section IV-D); the same AST drives the reference evaluator and the
/// IIU/Lucene baselines so that all engines answer the identical question.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryExpr {
    /// A single term.
    Term(String),
    /// Intersection of sub-queries.
    And(Vec<QueryExpr>),
    /// Union of sub-queries.
    Or(Vec<QueryExpr>),
}

impl QueryExpr {
    /// Convenience constructor for a term.
    pub fn term(t: impl Into<String>) -> Self {
        QueryExpr::Term(t.into())
    }

    /// Convenience constructor for an intersection.
    pub fn and<I: IntoIterator<Item = QueryExpr>>(subs: I) -> Self {
        QueryExpr::And(subs.into_iter().collect())
    }

    /// Convenience constructor for a union.
    pub fn or<I: IntoIterator<Item = QueryExpr>>(subs: I) -> Self {
        QueryExpr::Or(subs.into_iter().collect())
    }

    /// All distinct terms in the query, in first-appearance order.
    pub fn terms(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_terms(&mut out);
        out
    }

    fn collect_terms<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            QueryExpr::Term(t) => {
                if !out.contains(&t.as_str()) {
                    out.push(t);
                }
            }
            QueryExpr::And(subs) | QueryExpr::Or(subs) => {
                for s in subs {
                    s.collect_terms(out);
                }
            }
        }
    }

    /// Validates structure: no empty operators, term count within `max`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidQuery`] describing the violation.
    pub fn validate(&self, max_terms: usize) -> Result<(), Error> {
        self.validate_structure()?;
        let n = self.terms().len();
        if n == 0 {
            return Err(Error::InvalidQuery {
                reason: "query has no terms".into(),
            });
        }
        if n > max_terms {
            return Err(Error::InvalidQuery {
                reason: format!("query has {n} terms; the limit is {max_terms}"),
            });
        }
        Ok(())
    }

    fn validate_structure(&self) -> Result<(), Error> {
        match self {
            QueryExpr::Term(t) if t.is_empty() => Err(Error::InvalidQuery {
                reason: "empty term".into(),
            }),
            QueryExpr::Term(_) => Ok(()),
            QueryExpr::And(subs) | QueryExpr::Or(subs) => {
                if subs.is_empty() {
                    return Err(Error::InvalidQuery {
                        reason: "empty operator".into(),
                    });
                }
                for s in subs {
                    s.validate_structure()?;
                }
                Ok(())
            }
        }
    }
}

impl std::fmt::Display for QueryExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryExpr::Term(t) => write!(f, "{t:?}"),
            QueryExpr::And(subs) => {
                let parts: Vec<String> = subs.iter().map(|s| s.to_string()).collect();
                write!(f, "({})", parts.join(" AND "))
            }
            QueryExpr::Or(subs) => {
                let parts: Vec<String> = subs.iter().map(|s| s.to_string()).collect();
                write!(f, "({})", parts.join(" OR "))
            }
        }
    }
}

/// One scored document in a result list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchHit {
    /// The document.
    pub doc: DocId,
    /// Its BM25 query score.
    pub score: f32,
}

impl SearchHit {
    /// Total order used by every engine for top-k: score descending,
    /// docID ascending on ties. Makes results comparable across engines.
    pub fn ranking_cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.doc.cmp(&other.doc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terms_deduplicated_in_order() {
        let q = QueryExpr::and([
            QueryExpr::term("b"),
            QueryExpr::or([QueryExpr::term("a"), QueryExpr::term("b")]),
        ]);
        assert_eq!(q.terms(), vec!["b", "a"]);
    }

    #[test]
    fn validate_limits() {
        let q = QueryExpr::term("x");
        assert!(q.validate(16).is_ok());
        let big = QueryExpr::or((0..20).map(|i| QueryExpr::term(format!("t{i}"))));
        assert!(big.validate(16).is_err());
        assert!(big.validate(20).is_ok());
    }

    #[test]
    fn validate_rejects_empty() {
        assert!(QueryExpr::And(vec![]).validate(16).is_err());
        assert!(QueryExpr::Term(String::new()).validate(16).is_err());
    }

    #[test]
    fn display_roundtrip_shape() {
        let q = QueryExpr::and([
            QueryExpr::term("a"),
            QueryExpr::or([QueryExpr::term("b"), QueryExpr::term("c")]),
        ]);
        assert_eq!(q.to_string(), "(\"a\" AND (\"b\" OR \"c\"))");
    }

    #[test]
    fn ranking_order() {
        let a = SearchHit { doc: 5, score: 2.0 };
        let b = SearchHit { doc: 1, score: 1.0 };
        let c = SearchHit { doc: 0, score: 2.0 };
        let mut v = [a, b, c];
        v.sort_by(|x, y| x.ranking_cmp(y));
        assert_eq!(v.iter().map(|h| h.doc).collect::<Vec<_>>(), [0, 5, 1]);
    }
}
