//! Index error type.

/// Errors produced while building or querying an index.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Posting docIDs were not strictly increasing.
    UnsortedPostings {
        /// The position of the violation.
        at: usize,
    },
    /// A term frequency of zero was supplied (postings imply tf >= 1).
    ZeroTermFrequency {
        /// The position of the violation.
        at: usize,
    },
    /// A query referenced a term that is not in the index vocabulary.
    UnknownTerm {
        /// The missing term.
        term: String,
    },
    /// A query expression is structurally invalid (empty operator, no terms).
    InvalidQuery {
        /// Human-readable description.
        reason: String,
    },
    /// An encoded block failed to decode.
    Codec(boss_compress::Error),
    /// Per-block metadata was internally inconsistent (offsets or lengths
    /// outside the data area, mismatched sub-stream counts).
    CorruptMetadata {
        /// Human-readable description.
        reason: &'static str,
    },
    /// A block index was outside the list.
    BlockOutOfRange {
        /// The requested block index.
        block: usize,
        /// Number of blocks in the list.
        n_blocks: usize,
    },
    /// A simulated memory read was flagged uncorrectable by the active
    /// fault plan (see `boss_scm::FaultPlan`).
    ReadFault {
        /// Device address of the faulted read.
        addr: u64,
    },
    /// A shard split was requested with an impossible shard count: zero,
    /// or more shards than the corpus has documents.
    InvalidShardCount {
        /// The requested number of shards.
        n_shards: u32,
        /// Documents in the corpus being split.
        n_docs: u32,
    },
    /// The same term was injected twice via
    /// [`crate::IndexBuilder::add_posting_list`]. Accumulating lists for
    /// one term used to be silent last-write-wins territory; it is now a
    /// build-time error so conflicting inputs cannot merge unnoticed.
    DuplicateTerm {
        /// The term injected more than once.
        term: String,
    },
    /// Both explicit document lengths and tokenized documents were
    /// supplied to the builder. Tokenization derives lengths itself, so
    /// one source would silently overwrite the other.
    ConflictingDocLens,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::UnsortedPostings { at } => {
                write!(f, "posting docIDs not strictly increasing at position {at}")
            }
            Error::ZeroTermFrequency { at } => {
                write!(f, "zero term frequency at position {at}")
            }
            Error::UnknownTerm { term } => write!(f, "term {term:?} is not in the index"),
            Error::InvalidQuery { reason } => write!(f, "invalid query: {reason}"),
            Error::Codec(e) => write!(f, "codec error: {e}"),
            Error::CorruptMetadata { reason } => {
                write!(f, "corrupt block metadata: {reason}")
            }
            Error::BlockOutOfRange { block, n_blocks } => {
                write!(f, "block {block} out of range for a {n_blocks}-block list")
            }
            Error::ReadFault { addr } => {
                write!(f, "uncorrectable memory fault reading address {addr:#x}")
            }
            Error::InvalidShardCount { n_shards, n_docs } => {
                write!(f, "cannot split {n_docs} documents into {n_shards} shards")
            }
            Error::DuplicateTerm { term } => {
                write!(f, "posting list for term {term:?} was injected twice")
            }
            Error::ConflictingDocLens => {
                write!(
                    f,
                    "explicit doc_lens conflict with tokenized add_documents lengths"
                )
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<boss_compress::Error> for Error {
    fn from(e: boss_compress::Error) -> Self {
        Error::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = Error::UnknownTerm {
            term: "zebra".into(),
        };
        assert!(e.to_string().contains("zebra"));
        let e: Error = boss_compress::Error::Corrupt { reason: "x" }.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
