//! Inverted index substrate for the BOSS reproduction.
//!
//! Provides everything the accelerator models operate on:
//!
//! * [`PostingList`]s of `(docID, term-frequency)` tuples,
//! * block-structured encoding ([`EncodedList`]) with 128-value blocks,
//!   d-gap deltas, and the paper's 19-byte per-block metadata
//!   ([`BlockMeta`]: first/last docID, block-max term score, data offset,
//!   element count, bit width, exception offset),
//! * [`Bm25`] scoring with the per-document precomputed norm (the +4 B/doc
//!   metadata of Section IV-C "Scoring Module"),
//! * a flat virtual-address [`layout::IndexImage`] so the memory simulators
//!   see realistic addresses,
//! * the [`QueryExpr`] AST shared by all engines, and
//! * a [`mod@reference`] evaluator — the exhaustive,
//!   obviously-correct implementation every accelerated engine is tested
//!   against.
//!
//! # Example
//!
//! ```
//! use boss_index::{IndexBuilder, QueryExpr};
//!
//! # fn main() -> Result<(), boss_index::Error> {
//! let docs = ["the cat sat", "the dog sat", "a cat and a dog"];
//! let index = IndexBuilder::new().add_documents(docs.iter().copied()).build()?;
//! let q = QueryExpr::and([QueryExpr::term("cat"), QueryExpr::term("sat")]);
//! let top = boss_index::reference::evaluate(&index, &q, 10)?;
//! assert_eq!(top.len(), 1); // only doc 0 has both
//! # Ok(())
//! # }
//! ```

// Decode paths consume untrusted (possibly corrupt) bytes; corruption
// must surface as typed errors, so panicking constructs need a
// per-site justification.
#![warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

mod algorithm;
mod bm25;
mod builder;
pub mod cache;
mod encoded;
mod error;
mod index;
pub mod io;
pub mod layout;
// The netlist backend decodes the same untrusted bytes as the codec
// path; the crate-wide panic-freedom gate is hardened to a deny here.
#[deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
pub mod netlist;
mod posting;
// Pruned traversals take skip decisions on untrusted metadata, so —
// like the shard layer — every failure must be a typed `Error`, never
// a panic.
#[deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
pub mod prune;
mod query;
pub mod reference;
mod score;
// Segment files come from disk and are untrusted end to end: every
// claimed length is capped against the real input size before any
// allocation and every failure is a typed `IoError`, never a panic.
#[deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
pub mod segment;
// The shard layer is driven by untrusted CLI parameters (`--shards N`),
// so the crate-wide warn gate above is hardened to a deny here: shard
// code must surface every failure as a typed `Error`.
#[deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
pub mod shard;
// The SPIMI spill/merge pipeline reads segment files back from disk, so
// it inherits the segment module's untrusted-input contract.
#[deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
pub mod spimi;

pub use algorithm::{QueryAlgorithm, ALL_ALGORITHMS};
pub use bm25::{Bm25, Bm25Params};
pub use builder::{IndexBuilder, SchemeChoice};
pub use cache::{decode_block_cached, BlockCache, BlockCacheStats, DecodedBlock};
pub use encoded::{BlockMeta, DecodeScratch, EncodedList, BLOCK_META_BYTES, BLOCK_SIZE};
pub use error::Error;
pub use index::{InvertedIndex, TermId, TermInfo};
pub use netlist::{decode_backend, set_decode_backend, DecodeBackend};
pub use posting::{Posting, PostingList};
pub use query::{QueryExpr, SearchHit};
pub use score::ScoreScratch;
pub use segment::{SegmentHeader, SegmentReader, SegmentRegions};
pub use spimi::{
    SegmentEntry, SegmentSet, SpimiBuilder, SpimiConfig, SpimiStats, POSTING_BYTES,
    TERM_OVERHEAD_BYTES,
};

/// Document identifier within a shard.
pub type DocId = u32;
