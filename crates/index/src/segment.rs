//! On-disk sealed-segment format — the unit the SCM device reads.
//!
//! A segment is an immutable, self-contained slice of the corpus: a
//! contiguous docID range `[doc_base, doc_base + n_docs)` with every
//! posting of those documents, encoded in the same 128-value blocks +
//! 19 B [`crate::BlockMeta`] records the in-memory index uses, plus the
//! per-block max-score so PR 6 pruning works on loaded segments
//! unchanged. Segments are produced by [`crate::spimi::SpimiBuilder`]
//! spills and consumed by the k-way streaming merge.
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! header     magic "BOSSSEG\0" | version u32 | flags u32 | doc_base u32
//!            | n_docs u32 | n_terms u32 | k1 f32 | b f32 | reserved u32
//! doc_lens   n_docs × u32          (token counts, segment-local docIDs)
//! terms      n_terms entries, strictly increasing lexical order:
//!              term_len u16 | term utf-8 bytes
//!              scheme u8 | df u32 | idf f32 | max_score f32
//!              n_blocks u32 | data_len u32
//!              n_blocks × 34 B descriptors:
//!                first_doc u32 | last_doc u32 | max_score f32
//!                | offset u32 | len u32 | tf_offset u32
//!                | delta (count u16, bit_width u8, exc_off u16)
//!                | tf    (count u16, bit_width u8, exc_off u16)
//!              data_len bytes of block payload
//! trailer    FNV-1a 64 checksum of every preceding byte
//! ```
//!
//! docIDs inside a segment are segment-local (0-based); `doc_base` maps
//! them to global. Stored `idf`/`max_score` values are computed against
//! the *segment's own* statistics, making each segment a valid
//! standalone index ([`load_segment`]); the merge recomputes both from
//! global statistics, so they are transport metadata, not final scores.
//!
//! # Hardening
//!
//! Every length field read from disk is untrusted. The reader caps each
//! claimed size against the bytes actually remaining in the input before
//! any allocation (the PR-4 `check_count` rule lifted to file scope), so
//! a corrupt segment can cost at most one pass over the real file — never
//! an abort in the allocator. All failures are typed [`IoError`]s.

use crate::builder::scoring_from_lens;
use crate::index::{InvertedIndex, TermInfo};
use crate::io::IoError;
use crate::{BlockMeta, Bm25Params, EncodedList};
use boss_compress::{BlockInfo, Scheme};
use std::io::{Read, Write};
use std::ops::Range;
use std::path::Path;

/// Segment file magic: "BOSSSEG\0".
pub const SEG_MAGIC: [u8; 8] = *b"BOSSSEG\0";

/// Current segment format version.
pub const SEG_VERSION: u32 = 1;

/// Fixed header size in bytes: magic + 7 × u32-sized fields.
pub const SEG_HEADER_BYTES: u64 = 8 + 7 * 4;

/// On-disk size of one block descriptor.
pub const SEG_DESCRIPTOR_BYTES: u64 = 34;

/// Size of the FNV-1a checksum trailer that ends every segment file.
pub const SEG_CHECKSUM_BYTES: u64 = 8;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn scheme_tag(s: Scheme) -> u8 {
    match s {
        Scheme::Bp => 0,
        Scheme::Vb => 1,
        Scheme::OptPfd => 2,
        Scheme::S16 => 3,
        Scheme::S8b => 4,
        Scheme::GroupVarint => 5,
    }
}

fn scheme_from_tag(tag: u8) -> Option<Scheme> {
    Some(match tag {
        0 => Scheme::Bp,
        1 => Scheme::Vb,
        2 => Scheme::OptPfd,
        3 => Scheme::S16,
        4 => Scheme::S8b,
        5 => Scheme::GroupVarint,
        _ => return None,
    })
}

/// Byte ranges of the regions of a written segment file — the targeting
/// map the corruption harness uses to aim its mutation families (header,
/// dictionary entry, descriptor, payload, checksum) at specific regions.
#[derive(Debug, Clone, Default)]
pub struct SegmentRegions {
    /// The fixed header.
    pub header: Range<u64>,
    /// The document-length array.
    pub doc_lens: Range<u64>,
    /// Per-term dictionary entry headers (term text + list stats).
    pub term_headers: Vec<Range<u64>>,
    /// Per-term block-descriptor arrays.
    pub descriptors: Vec<Range<u64>>,
    /// Per-term encoded block payloads.
    pub payloads: Vec<Range<u64>>,
    /// The FNV-1a checksum trailer.
    pub checksum: Range<u64>,
}

/// The parsed fixed header of a segment file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentHeader {
    /// First global docID covered by this segment.
    pub doc_base: u32,
    /// Number of documents in the segment.
    pub n_docs: u32,
    /// Number of terms in the segment dictionary.
    pub n_terms: u32,
    /// BM25 parameters the segment's local scores were computed with.
    pub params: Bm25Params,
}

/// `Write` adapter that maintains the running FNV-1a checksum and byte
/// count of everything written through it.
struct HashingWriter<W: Write> {
    inner: W,
    hash: u64,
    written: u64,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        HashingWriter {
            inner,
            hash: FNV_OFFSET,
            written: 0,
        }
    }

    fn put(&mut self, bytes: &[u8]) -> Result<(), IoError> {
        self.inner.write_all(bytes)?;
        for &b in bytes {
            self.hash = (self.hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self.written += bytes.len() as u64;
        Ok(())
    }

    fn put_u16(&mut self, v: u16) -> Result<(), IoError> {
        self.put(&v.to_le_bytes())
    }

    fn put_u32(&mut self, v: u32) -> Result<(), IoError> {
        self.put(&v.to_le_bytes())
    }

    fn put_f32(&mut self, v: f32) -> Result<(), IoError> {
        self.put(&v.to_le_bytes())
    }
}

/// Writes one sealed segment. `terms` must be in strictly increasing
/// lexical order (a [`std::collections::BTreeMap`] iteration qualifies)
/// with every list's docIDs segment-local; `doc_lens` are the final
/// per-document token counts of the segment's documents.
///
/// Returns the total bytes written and the region map for targeted
/// corruption testing.
///
/// # Errors
///
/// [`IoError::Invalid`] if the segment would be structurally invalid
/// (no documents, a term out of order or too long, a docID outside
/// `0..n_docs`); [`IoError::Io`] on write failure.
pub fn write_segment<W: Write>(
    writer: W,
    doc_base: u32,
    doc_lens: &[u32],
    params: Bm25Params,
    terms: &[(String, EncodedList)],
) -> Result<(u64, SegmentRegions), IoError> {
    if doc_lens.is_empty() {
        return Err(IoError::Invalid(crate::Error::InvalidQuery {
            reason: "cannot write a segment with no documents".into(),
        }));
    }
    let n_docs = u32::try_from(doc_lens.len())
        .map_err(|_| IoError::Corrupt("segment has more than u32::MAX documents".into()))?;
    let n_terms = u32::try_from(terms.len())
        .map_err(|_| IoError::Corrupt("segment has more than u32::MAX terms".into()))?;

    let mut w = HashingWriter::new(writer);
    let mut regions = SegmentRegions::default();

    w.put(&SEG_MAGIC)?;
    w.put_u32(SEG_VERSION)?;
    w.put_u32(0)?; // flags
    w.put_u32(doc_base)?;
    w.put_u32(n_docs)?;
    w.put_u32(n_terms)?;
    w.put_f32(params.k1)?;
    w.put_f32(params.b)?;
    w.put_u32(0)?; // reserved
    regions.header = 0..w.written;

    let doc_lens_start = w.written;
    for &len in doc_lens {
        w.put_u32(len)?;
    }
    regions.doc_lens = doc_lens_start..w.written;

    let mut prev: Option<&str> = None;
    for (term, list) in terms {
        if prev.is_some_and(|p| p >= term.as_str()) {
            return Err(IoError::Invalid(crate::Error::DuplicateTerm {
                term: term.clone(),
            }));
        }
        prev = Some(term);
        let term_len = u16::try_from(term.len()).map_err(|_| {
            IoError::Invalid(crate::Error::InvalidQuery {
                reason: format!(
                    "term longer than 65535 bytes: {:?}…",
                    &term[..32.min(term.len())]
                ),
            })
        })?;
        if list.blocks().last().is_some_and(|b| b.last_doc >= n_docs) {
            return Err(IoError::Invalid(crate::Error::InvalidQuery {
                reason: format!("term {term:?} has docIDs outside the segment's {n_docs} docs"),
            }));
        }

        let entry_start = w.written;
        w.put_u16(term_len)?;
        w.put(term.as_bytes())?;
        w.put(&[scheme_tag(list.scheme())])?;
        w.put_u32(list.df())?;
        w.put_f32(list.idf())?;
        w.put_f32(list.max_score())?;
        w.put_u32(list.n_blocks() as u32)?;
        w.put_u32(list.data_bytes() as u32)?;
        regions.term_headers.push(entry_start..w.written);

        let desc_start = w.written;
        for b in list.blocks() {
            w.put_u32(b.first_doc)?;
            w.put_u32(b.last_doc)?;
            w.put_f32(b.max_score)?;
            w.put_u32(b.offset)?;
            w.put_u32(b.len)?;
            w.put_u32(b.tf_offset)?;
            for info in [b.delta_info, b.tf_info] {
                w.put_u16(info.count)?;
                w.put(&[info.bit_width])?;
                w.put_u16(info.exception_offset)?;
            }
        }
        regions.descriptors.push(desc_start..w.written);

        let data_start = w.written;
        w.put(list.data())?;
        regions.payloads.push(data_start..w.written);
    }

    let checksum = w.hash;
    let body = w.written;
    w.inner.write_all(&checksum.to_le_bytes())?;
    w.inner.flush()?;
    regions.checksum = body..body + 8;
    Ok((body + 8, regions))
}

/// `Read` adapter that maintains the running FNV-1a checksum and the
/// number of bytes consumed.
#[derive(Debug)]
struct HashingReader<R: Read> {
    inner: R,
    hash: u64,
    consumed: u64,
}

impl<R: Read> HashingReader<R> {
    fn take(&mut self, buf: &mut [u8]) -> Result<(), IoError> {
        self.inner
            .read_exact(buf)
            .map_err(|e| IoError::Corrupt(format!("segment truncated: {e}")))?;
        for &b in buf.iter() {
            self.hash = (self.hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self.consumed += buf.len() as u64;
        Ok(())
    }
}

/// Streaming segment reader: parses the header and doc-length array up
/// front, then yields `(term, list)` pairs one at a time so a k-way merge
/// holds one term per open segment, never a whole segment.
///
/// The FNV-1a trailer is verified when the last term has been consumed;
/// until then, per-field validation (claim caps, monotone terms, df
/// bounds) catches structural corruption early.
#[derive(Debug)]
pub struct SegmentReader<R: Read> {
    r: HashingReader<R>,
    input_len: u64,
    header: SegmentHeader,
    doc_lens: Vec<u32>,
    terms_left: u32,
    prev_term: Option<String>,
    verified: bool,
}

impl<R: Read> SegmentReader<R> {
    /// Opens a segment from `reader`; `input_len` is the total byte size
    /// of the underlying input (file length), used to cap every claimed
    /// allocation against reality.
    ///
    /// # Errors
    ///
    /// [`IoError::BadMagic`] / [`IoError::BadVersion`] for foreign files,
    /// [`IoError::Corrupt`] for truncation or implausible counts.
    pub fn new(reader: R, input_len: u64) -> Result<Self, IoError> {
        let mut r = HashingReader {
            inner: reader,
            hash: FNV_OFFSET,
            consumed: 0,
        };
        let mut magic = [0u8; 8];
        r.take(&mut magic)?;
        if magic != SEG_MAGIC {
            return Err(IoError::BadMagic);
        }
        let mut sr = SegmentReader {
            r,
            input_len,
            header: SegmentHeader {
                doc_base: 0,
                n_docs: 0,
                n_terms: 0,
                params: Bm25Params::default(),
            },
            doc_lens: Vec::new(),
            terms_left: 0,
            prev_term: None,
            verified: false,
        };
        let version = sr.read_u32()?;
        if version != SEG_VERSION {
            return Err(IoError::BadVersion { found: version });
        }
        let _flags = sr.read_u32()?;
        let doc_base = sr.read_u32()?;
        let n_docs = sr.read_u32()?;
        let n_terms = sr.read_u32()?;
        let k1 = sr.read_f32()?;
        let b = sr.read_f32()?;
        let _reserved = sr.read_u32()?;
        if n_docs == 0 {
            return Err(IoError::Corrupt("segment claims zero documents".into()));
        }
        sr.check_claim(u64::from(n_docs) * 4, "doc_lens array")?;
        // Each term entry costs ≥ 2 + 1 + 4 + 4 + 4 + 4 + 4 bytes.
        sr.check_claim(u64::from(n_terms) * 23, "term dictionary")?;
        sr.header = SegmentHeader {
            doc_base,
            n_docs,
            n_terms,
            params: Bm25Params { k1, b },
        };
        sr.doc_lens = Vec::with_capacity(n_docs as usize);
        for _ in 0..n_docs {
            let len = sr.read_u32()?;
            sr.doc_lens.push(len);
        }
        sr.terms_left = n_terms;
        Ok(sr)
    }

    /// The parsed segment header.
    pub fn header(&self) -> &SegmentHeader {
        &self.header
    }

    /// Per-document token counts (segment-local docIDs).
    pub fn doc_lens(&self) -> &[u32] {
        &self.doc_lens
    }

    /// Rejects any on-disk claim that exceeds the bytes actually left in
    /// the input — the rule that keeps corrupt counts from ever reaching
    /// an allocator.
    fn check_claim(&self, claimed: u64, what: &str) -> Result<(), IoError> {
        let remaining = self.input_len.saturating_sub(self.r.consumed);
        if claimed > remaining {
            return Err(IoError::Corrupt(format!(
                "{what} claims {claimed} bytes but only {remaining} remain in the segment"
            )));
        }
        Ok(())
    }

    fn read_u16(&mut self) -> Result<u16, IoError> {
        let mut b = [0u8; 2];
        self.r.take(&mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    fn read_u32(&mut self) -> Result<u32, IoError> {
        let mut b = [0u8; 4];
        self.r.take(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn read_f32(&mut self) -> Result<f32, IoError> {
        let mut b = [0u8; 4];
        self.r.take(&mut b)?;
        Ok(f32::from_le_bytes(b))
    }

    fn read_u8(&mut self) -> Result<u8, IoError> {
        let mut b = [0u8; 1];
        self.r.take(&mut b)?;
        Ok(b[0])
    }

    /// Reads the next dictionary term and its encoded list, or `None`
    /// after the last term — at which point the checksum trailer has been
    /// read and verified.
    ///
    /// # Errors
    ///
    /// [`IoError::Corrupt`] on any structural violation: claims beyond
    /// the file size, terms out of lexical order, invalid UTF-8, df
    /// above the segment's document count, descriptor counts that do not
    /// sum to df, or a checksum mismatch.
    #[allow(clippy::too_many_lines)]
    pub fn next_term(&mut self) -> Result<Option<(String, EncodedList)>, IoError> {
        if self.terms_left == 0 {
            if !self.verified {
                let expect = self.r.hash;
                let mut tail = [0u8; 8];
                self.r
                    .inner
                    .read_exact(&mut tail)
                    .map_err(|e| IoError::Corrupt(format!("segment checksum missing: {e}")))?;
                if u64::from_le_bytes(tail) != expect {
                    return Err(IoError::Corrupt(
                        "segment checksum mismatch (file corrupted)".into(),
                    ));
                }
                // The trailer must also be the end of the file: trailing
                // bytes mean a truncated rewrite or concatenation bug,
                // and silently ignoring them would let a corrupt image
                // pass the checksum.
                let consumed = self.r.consumed + SEG_CHECKSUM_BYTES;
                if consumed < self.input_len {
                    return Err(IoError::Corrupt(format!(
                        "{} trailing bytes after the segment checksum",
                        self.input_len - consumed
                    )));
                }
                self.verified = true;
            }
            return Ok(None);
        }
        self.terms_left -= 1;

        let term_len = u64::from(self.read_u16()?);
        self.check_claim(term_len, "term text")?;
        let mut term_bytes = vec![0u8; term_len as usize];
        self.r.take(&mut term_bytes)?;
        let term = String::from_utf8(term_bytes)
            .map_err(|_| IoError::Corrupt("term text is not valid UTF-8".into()))?;
        if self
            .prev_term
            .as_deref()
            .is_some_and(|p| p >= term.as_str())
        {
            return Err(IoError::Corrupt(format!(
                "segment dictionary out of lexical order at term {term:?}"
            )));
        }

        let scheme_tag = self.read_u8()?;
        let scheme = scheme_from_tag(scheme_tag)
            .ok_or_else(|| IoError::Corrupt(format!("unknown scheme tag {scheme_tag}")))?;
        let df = self.read_u32()?;
        let idf = self.read_f32()?;
        let max_score = self.read_f32()?;
        let n_blocks = self.read_u32()?;
        let data_len = self.read_u32()?;

        if df == 0 || df > self.header.n_docs {
            return Err(IoError::Corrupt(format!(
                "term {term:?} claims df {df} in a {}-doc segment",
                self.header.n_docs
            )));
        }
        if u64::from(n_blocks) > u64::from(df) {
            return Err(IoError::Corrupt(format!(
                "term {term:?} claims {n_blocks} blocks for {df} postings"
            )));
        }
        self.check_claim(
            u64::from(n_blocks) * SEG_DESCRIPTOR_BYTES + u64::from(data_len),
            "posting blocks",
        )?;

        let mut blocks = Vec::with_capacity(n_blocks as usize);
        let mut count_sum = 0u64;
        for _ in 0..n_blocks {
            let first_doc = self.read_u32()?;
            let last_doc = self.read_u32()?;
            let bmax = self.read_f32()?;
            let offset = self.read_u32()?;
            let len = self.read_u32()?;
            let tf_offset = self.read_u32()?;
            let mut infos = [BlockInfo::default(); 2];
            for info in &mut infos {
                info.count = self.read_u16()?;
                info.bit_width = self.read_u8()?;
                info.exception_offset = self.read_u16()?;
            }
            count_sum += u64::from(infos[0].count);
            blocks.push(BlockMeta {
                first_doc,
                last_doc,
                max_score: bmax,
                offset,
                len,
                tf_offset,
                delta_info: infos[0],
                tf_info: infos[1],
            });
        }
        if count_sum != u64::from(df) {
            return Err(IoError::Corrupt(format!(
                "term {term:?} descriptors hold {count_sum} postings, dictionary says {df}"
            )));
        }
        if blocks
            .last()
            .is_some_and(|b| b.last_doc >= self.header.n_docs)
        {
            return Err(IoError::Corrupt(format!(
                "term {term:?} last docID outside the segment's {} docs",
                self.header.n_docs
            )));
        }

        let mut data = vec![0u8; data_len as usize];
        self.r.take(&mut data)?;

        self.prev_term = Some(term.clone());
        Ok(Some((
            term,
            EncodedList::from_parts(scheme, blocks, data, df, idf, max_score),
        )))
    }
}

/// Opens a segment file as a streaming reader.
///
/// # Errors
///
/// As for [`SegmentReader::new`], plus I/O failures opening the file.
pub fn open_segment(
    path: impl AsRef<Path>,
) -> Result<SegmentReader<std::io::BufReader<std::fs::File>>, IoError> {
    let file = std::fs::File::open(path)?;
    let len = file.metadata()?.len();
    SegmentReader::new(std::io::BufReader::new(file), len)
}

/// Loads one segment file as a standalone [`InvertedIndex`] over its own
/// docID range (docIDs are segment-local; add the header's `doc_base`
/// for global IDs). The checksum trailer is verified.
///
/// # Errors
///
/// As for [`SegmentReader`].
pub fn load_segment(path: impl AsRef<Path>) -> Result<InvertedIndex, IoError> {
    let mut reader = open_segment(path)?;
    let mut vocab = std::collections::HashMap::new();
    let mut terms = Vec::new();
    let mut lists = Vec::new();
    while let Some((text, list)) = reader.next_term()? {
        let id = terms.len() as u32;
        vocab.insert(text.clone(), id);
        terms.push(TermInfo {
            text,
            df: list.df(),
            idf: list.idf(),
        });
        lists.push(list);
    }
    let doc_lens = std::mem::take(&mut reader.doc_lens);
    let (bm25, doc_norms) = scoring_from_lens(reader.header.params, &doc_lens);
    Ok(InvertedIndex {
        vocab,
        terms,
        lists,
        doc_norms,
        doc_lens,
        bm25,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use crate::builder::encode_term_list;
    use crate::{PostingList, SchemeChoice};

    /// A small hand-built segment: 3 terms, 6 docs, segment-local scores.
    fn sample_terms(doc_lens: &[u32]) -> Vec<(String, EncodedList)> {
        let (bm25, norms) = scoring_from_lens(Bm25Params::default(), doc_lens);
        let mut out = Vec::new();
        for (name, docs, tfs) in [
            ("alpha", vec![0u32, 2, 5], vec![1u32, 2, 1]),
            ("beta", vec![1, 2], vec![3, 1]),
            ("gamma", vec![0, 1, 2, 3, 4, 5], vec![1, 1, 2, 1, 1, 4]),
        ] {
            let plist = PostingList::from_columns(docs, tfs).unwrap();
            let idf = bm25.idf(plist.len() as u32);
            let enc =
                encode_term_list(&plist, SchemeChoice::default(), &bm25, idf, &norms).unwrap();
            out.push((name.to_owned(), enc));
        }
        out
    }

    fn sample_segment() -> (Vec<u8>, SegmentRegions) {
        let doc_lens = vec![4u32, 5, 5, 1, 1, 6];
        let terms = sample_terms(&doc_lens);
        let mut buf = Vec::new();
        let (n, regions) = write_segment(&mut buf, 100, &doc_lens, Bm25Params::default(), &terms)
            .expect("write sample segment");
        assert_eq!(n as usize, buf.len());
        (buf, regions)
    }

    #[test]
    fn roundtrip_streaming() {
        let (buf, regions) = sample_segment();
        let mut r = SegmentReader::new(buf.as_slice(), buf.len() as u64).unwrap();
        assert_eq!(r.header().doc_base, 100);
        assert_eq!(r.header().n_docs, 6);
        assert_eq!(r.header().n_terms, 3);
        assert_eq!(r.doc_lens(), &[4, 5, 5, 1, 1, 6]);

        let doc_lens = vec![4u32, 5, 5, 1, 1, 6];
        let expect = sample_terms(&doc_lens);
        for (name, enc) in &expect {
            let (term, list) = r.next_term().unwrap().expect("term present");
            assert_eq!(&term, name);
            assert_eq!(&list, enc, "lists roundtrip bit-identically");
        }
        assert!(r.next_term().unwrap().is_none(), "checksum verifies");
        assert_eq!(regions.term_headers.len(), 3);
        assert_eq!(regions.checksum.end, buf.len() as u64);
    }

    #[test]
    fn load_as_standalone_index() {
        let dir = std::env::temp_dir().join(format!("boss-seg-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s0.bosseg");
        let (buf, _) = sample_segment();
        std::fs::write(&path, &buf).unwrap();
        let idx = load_segment(&path).unwrap();
        assert_eq!(idx.n_docs(), 6);
        assert_eq!(idx.n_terms(), 3);
        let g = idx.term_id("gamma").unwrap();
        let (docs, tfs) = idx.list(g).decode_all().unwrap();
        assert_eq!(docs, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(tfs, vec![1, 1, 2, 1, 1, 4]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let (mut buf, _) = sample_segment();
        buf[0] = b'X';
        let err = SegmentReader::new(buf.as_slice(), buf.len() as u64).unwrap_err();
        assert!(matches!(err, IoError::BadMagic));

        let (mut buf, _) = sample_segment();
        buf[8] = 99;
        let err = SegmentReader::new(buf.as_slice(), buf.len() as u64).unwrap_err();
        assert!(matches!(err, IoError::BadVersion { found: 99 }));
    }

    #[test]
    fn huge_claimed_doc_count_is_capped_not_allocated() {
        let (mut buf, _) = sample_segment();
        // n_docs field at offset 20: claim 4 billion docs in a 1 KB file.
        buf[20..24].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = SegmentReader::new(buf.as_slice(), buf.len() as u64).unwrap_err();
        assert!(
            matches!(err, IoError::Corrupt(ref m) if m.contains("claims")),
            "{err}"
        );
    }

    #[test]
    fn huge_claimed_term_len_is_capped() {
        let (mut buf, regions) = sample_segment();
        let at = regions.term_headers[0].start as usize;
        buf[at..at + 2].copy_from_slice(&u16::MAX.to_le_bytes());
        let mut r = SegmentReader::new(buf.as_slice(), buf.len() as u64).unwrap();
        let err = r.next_term().unwrap_err();
        assert!(matches!(err, IoError::Corrupt(_)), "{err}");
    }

    #[test]
    fn checksum_catches_payload_flip() {
        let (mut buf, regions) = sample_segment();
        // Flip one bit in the last payload: the list may still decode, but
        // the trailer must catch it at end-of-segment.
        let at = regions.payloads.last().unwrap().start as usize;
        buf[at] ^= 0x40;
        let mut r = SegmentReader::new(buf.as_slice(), buf.len() as u64).unwrap();
        let mut saw_error = false;
        loop {
            match r.next_term() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    assert!(matches!(e, IoError::Corrupt(_)), "{e}");
                    saw_error = true;
                    break;
                }
            }
        }
        assert!(saw_error, "flipped payload bit must not verify");
    }

    #[test]
    fn truncation_is_typed_error() {
        let (buf, _) = sample_segment();
        for cut in [10, 50, buf.len() / 2, buf.len() - 3] {
            let short = &buf[..cut];
            let mut r = match SegmentReader::new(short, short.len() as u64) {
                Ok(r) => r,
                Err(e) => {
                    assert!(
                        matches!(e, IoError::Corrupt(_) | IoError::BadMagic),
                        "cut {cut}: {e}"
                    );
                    continue;
                }
            };
            loop {
                match r.next_term() {
                    Ok(Some(_)) => {}
                    Ok(None) => panic!("cut {cut}: truncated segment verified"),
                    Err(e) => {
                        assert!(matches!(e, IoError::Corrupt(_)), "cut {cut}: {e}");
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn writer_rejects_invalid_segments() {
        let doc_lens = vec![4u32, 5, 5, 1, 1, 6];
        let terms = sample_terms(&doc_lens);
        // No documents.
        let err =
            write_segment(&mut Vec::new(), 0, &[], Bm25Params::default(), &terms).unwrap_err();
        assert!(matches!(err, IoError::Invalid(_)));
        // Out-of-order dictionary.
        let mut rev = sample_terms(&doc_lens);
        rev.reverse();
        let err =
            write_segment(&mut Vec::new(), 0, &doc_lens, Bm25Params::default(), &rev).unwrap_err();
        assert!(matches!(err, IoError::Invalid(_)));
        // docIDs outside the segment.
        let err = write_segment(
            &mut Vec::new(),
            0,
            &doc_lens[..2],
            Bm25Params::default(),
            &terms,
        )
        .unwrap_err();
        assert!(matches!(err, IoError::Invalid(_)));
    }
}
