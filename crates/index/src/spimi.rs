//! Memory-bounded SPIMI indexing (single-pass in-memory indexing with
//! spill-and-merge), ROADMAP item 2.
//!
//! [`SpimiBuilder`] accumulates postings doc-major in an in-memory map
//! under a configurable byte budget. When the budget (or an optional
//! per-segment document cap) is hit, the map is sealed into an immutable
//! on-disk segment ([`crate::segment`]) covering a contiguous docID
//! range, and accumulation restarts empty — so building a corpus of any
//! size needs only the budget plus one segment's encode scratch.
//!
//! [`SegmentSet::merge`] streams all spilled segments back term-at-a-time
//! (k open segments ⇒ k candidate terms in memory) and re-encodes each
//! merged list against *global* corpus statistics through the exact same
//! code path as [`crate::IndexBuilder::build`]
//! ([`crate::builder::encode_term_list`] + `scoring_from_lens`). Spilled
//! segments therefore act as transport — their segment-local scores are
//! discarded — and the merged index is bit-identical to a single-pass
//! in-memory build of the same corpus: same terms, postings,
//! [`crate::BlockMeta`] records, and block-max scores.

use crate::builder::{encode_term_list, fill_doc_lens, scoring_from_lens};
use crate::index::{InvertedIndex, TermInfo};
use crate::io::IoError;
use crate::segment::{open_segment, write_segment, SegmentReader};
use crate::{Bm25Params, DecodeScratch, DocId, EncodedList, Error, PostingList, SchemeChoice};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::path::{Path, PathBuf};

/// Name of the segment-directory manifest file.
pub const MANIFEST_NAME: &str = "MANIFEST.json";

/// Manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// Estimated heap bytes of one in-memory posting `(doc, tf)`.
pub const POSTING_BYTES: usize = 8;

/// Estimated fixed heap overhead of one new term entry in the postings
/// map (`String` + `Vec` headers plus map-node share), on top of the
/// term's UTF-8 bytes. An accounting constant, not an exact allocator
/// measurement — the budget bounds growth, it does not meter the malloc.
pub const TERM_OVERHEAD_BYTES: usize = 64;

/// Configuration of a SPIMI build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpimiConfig {
    /// In-memory postings budget in bytes; reaching it seals the current
    /// segment. The budget bounds the accumulation map only — encode
    /// scratch during a spill is additional and proportional to the
    /// largest single posting list.
    pub budget_bytes: usize,
    /// Optional cap on documents per segment (0 = unlimited). Gives
    /// deterministic segment boundaries independent of the byte budget —
    /// used by tests and the `--segments N` bench path.
    pub max_docs_per_segment: u32,
    /// BM25 parameters of the final index.
    pub params: Bm25Params,
    /// Compression policy of the final index (and of spilled segments).
    pub scheme: SchemeChoice,
}

impl Default for SpimiConfig {
    fn default() -> Self {
        SpimiConfig {
            budget_bytes: 64 << 20,
            max_docs_per_segment: 0,
            params: Bm25Params::default(),
            scheme: SchemeChoice::default(),
        }
    }
}

/// Build-time statistics of a SPIMI run — the numbers `segment_build`
/// reports to `BENCH_segment.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SpimiStats {
    /// Documents indexed.
    pub docs: u64,
    /// Postings accumulated (pre-merge).
    pub postings: u64,
    /// Segments spilled to disk.
    pub spills: u32,
    /// Peak estimated bytes of the in-memory postings map — the
    /// RSS-proxy the byte budget bounds.
    pub peak_inmem_bytes: usize,
    /// Total bytes of all segment files written.
    pub segment_bytes: u64,
}

/// One segment file in a [`SegmentSet`] manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentEntry {
    /// File name within the segment directory.
    pub file: String,
    /// First global docID of the segment.
    pub doc_base: u32,
    /// Number of documents in the segment.
    pub n_docs: u32,
    /// Number of terms in the segment dictionary.
    pub n_terms: u32,
    /// Total file size in bytes.
    pub bytes: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Manifest {
    version: u32,
    params: Bm25Params,
    scheme: String,
    n_docs: u32,
    segments: Vec<SegmentEntry>,
}

/// Single-pass in-memory indexer with bounded memory and disk spills.
#[derive(Debug)]
pub struct SpimiBuilder {
    dir: PathBuf,
    cfg: SpimiConfig,
    /// Postings of the segment being accumulated; docIDs segment-local.
    map: BTreeMap<String, Vec<(u32, u32)>>,
    /// Token counts of the current segment's documents (0 = unknown,
    /// filled with the doc's tf sum at spill time — the same fallback
    /// rule as [`crate::IndexBuilder`], valid because a document's
    /// postings are complete within its segment).
    seg_doc_lens: Vec<u32>,
    doc_base: u32,
    inmem_bytes: usize,
    stats: SpimiStats,
    entries: Vec<SegmentEntry>,
}

impl SpimiBuilder {
    /// Creates a builder spilling segments into `dir` (created if
    /// missing; existing segment files are overwritten by name).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn create(dir: impl AsRef<Path>, cfg: SpimiConfig) -> Result<Self, IoError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(SpimiBuilder {
            dir,
            cfg,
            map: BTreeMap::new(),
            seg_doc_lens: Vec::new(),
            doc_base: 0,
            inmem_bytes: 0,
            stats: SpimiStats::default(),
            entries: Vec::new(),
        })
    }

    /// Build statistics so far.
    pub fn stats(&self) -> &SpimiStats {
        &self.stats
    }

    /// Adds one document given its distinct terms with frequencies and
    /// its length in tokens (`0` = unknown; the tf sum is used). Returns
    /// the document's global docID. Duplicate terms in the input are
    /// aggregated. May spill a segment to disk before returning.
    ///
    /// # Errors
    ///
    /// [`IoError::Invalid`] wrapping [`Error::ZeroTermFrequency`] on a
    /// zero tf; I/O and encoding failures from a triggered spill.
    pub fn add_document<'a, I>(&mut self, terms: I, doc_len: u32) -> Result<DocId, IoError>
    where
        I: IntoIterator<Item = (&'a str, u32)>,
    {
        let local = self.seg_doc_lens.len() as u32;
        let global = self.doc_base + local;

        let mut agg: BTreeMap<&'a str, u32> = BTreeMap::new();
        for (at, (term, tf)) in terms.into_iter().enumerate() {
            if tf == 0 {
                return Err(IoError::Invalid(Error::ZeroTermFrequency { at }));
            }
            *agg.entry(term).or_insert(0) += tf;
        }
        for (term, tf) in agg {
            match self.map.get_mut(term) {
                Some(list) => list.push((local, tf)),
                None => {
                    self.inmem_bytes += term.len() + TERM_OVERHEAD_BYTES;
                    self.map.insert(term.to_owned(), vec![(local, tf)]);
                }
            }
            self.inmem_bytes += POSTING_BYTES;
            self.stats.postings += 1;
        }
        self.seg_doc_lens.push(doc_len);
        self.inmem_bytes += 4;
        self.stats.docs += 1;
        self.stats.peak_inmem_bytes = self.stats.peak_inmem_bytes.max(self.inmem_bytes);

        let doc_cap = self.cfg.max_docs_per_segment;
        if self.inmem_bytes >= self.cfg.budget_bytes
            || (doc_cap > 0 && self.seg_doc_lens.len() as u32 >= doc_cap)
        {
            self.spill()?;
        }
        Ok(global)
    }

    /// Tokenizes and adds one document — the same whitespace +
    /// punctuation split and lowercasing as
    /// [`crate::IndexBuilder::add_documents`].
    ///
    /// # Errors
    ///
    /// As for [`SpimiBuilder::add_document`].
    pub fn add_document_text(&mut self, text: &str) -> Result<DocId, IoError> {
        let mut len = 0u32;
        let mut counts: BTreeMap<String, u32> = BTreeMap::new();
        for tok in text
            .split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
        {
            *counts.entry(tok.to_lowercase()).or_insert(0) += 1;
            len += 1;
        }
        self.add_document(counts.iter().map(|(t, &tf)| (t.as_str(), tf)), len)
    }

    /// Seals the current in-memory map into an on-disk segment. No-op if
    /// no documents have been added since the last spill.
    ///
    /// # Errors
    ///
    /// I/O failures writing the segment file; encoding failures for a
    /// fixed scheme that cannot represent some list (hybrid never fails).
    pub fn spill(&mut self) -> Result<(), IoError> {
        if self.seg_doc_lens.is_empty() {
            return Ok(());
        }
        let n_docs = self.seg_doc_lens.len();

        // Per-segment doc-length fallback + segment-local scoring.
        let mut tf_sums = vec![0u64; n_docs];
        for list in self.map.values() {
            for &(d, tf) in list {
                tf_sums[d as usize] += u64::from(tf);
            }
        }
        let mut doc_lens = std::mem::take(&mut self.seg_doc_lens);
        fill_doc_lens(&mut doc_lens, &tf_sums);
        let (bm25, norms) = scoring_from_lens(self.cfg.params, &doc_lens);

        let map = std::mem::take(&mut self.map);
        let mut terms: Vec<(String, EncodedList)> = Vec::with_capacity(map.len());
        for (text, pairs) in map {
            let docs: Vec<u32> = pairs.iter().map(|&(d, _)| d).collect();
            let tfs: Vec<u32> = pairs.iter().map(|&(_, tf)| tf).collect();
            let plist = PostingList::from_columns(docs, tfs).map_err(IoError::Invalid)?;
            let idf = bm25.idf(plist.len() as u32);
            let enc = encode_term_list(&plist, self.cfg.scheme, &bm25, idf, &norms)
                .map_err(IoError::Invalid)?;
            terms.push((text, enc));
        }

        let file = format!("segment-{:05}.bosseg", self.entries.len());
        let path = self.dir.join(&file);
        let out = std::fs::File::create(&path)?;
        let (bytes, _regions) = write_segment(
            std::io::BufWriter::new(out),
            self.doc_base,
            &doc_lens,
            self.cfg.params,
            &terms,
        )?;

        self.entries.push(SegmentEntry {
            file,
            doc_base: self.doc_base,
            n_docs: n_docs as u32,
            n_terms: terms.len() as u32,
            bytes,
        });
        self.doc_base += n_docs as u32;
        self.inmem_bytes = 0;
        self.stats.spills += 1;
        self.stats.segment_bytes += bytes;
        Ok(())
    }

    /// Spills any remaining documents, writes the directory manifest,
    /// and returns the sealed [`SegmentSet`].
    ///
    /// # Errors
    ///
    /// [`IoError::Invalid`] if no documents were ever added; spill and
    /// manifest I/O failures otherwise.
    pub fn finish(mut self) -> Result<SegmentSet, IoError> {
        self.spill()?;
        if self.entries.is_empty() {
            return Err(IoError::Invalid(Error::InvalidQuery {
                reason: "cannot build an empty index".into(),
            }));
        }
        let manifest = Manifest {
            version: MANIFEST_VERSION,
            params: self.cfg.params,
            scheme: self.cfg.scheme.to_string(),
            n_docs: self.doc_base,
            segments: self.entries.clone(),
        };
        let body = serde_json::to_vec(&manifest).map_err(|e| IoError::Corrupt(e.to_string()))?;
        let mut f = std::fs::File::create(self.dir.join(MANIFEST_NAME))?;
        f.write_all(&body)?;
        f.flush()?;
        Ok(SegmentSet {
            dir: self.dir,
            params: self.cfg.params,
            scheme: self.cfg.scheme,
            n_docs: self.doc_base,
            entries: self.entries,
            stats: self.stats,
        })
    }
}

/// A sealed directory of spilled segments plus its manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentSet {
    dir: PathBuf,
    params: Bm25Params,
    scheme: SchemeChoice,
    n_docs: u32,
    entries: Vec<SegmentEntry>,
    stats: SpimiStats,
}

impl SegmentSet {
    /// Opens a segment directory written by [`SpimiBuilder::finish`],
    /// validating that the manifest's segments tile the docID space
    /// contiguously from zero.
    ///
    /// # Errors
    ///
    /// [`IoError::Corrupt`] on a malformed manifest, a gap or overlap in
    /// the docID ranges, or a manifest/total mismatch.
    pub fn open_dir(dir: impl AsRef<Path>) -> Result<Self, IoError> {
        let dir = dir.as_ref().to_path_buf();
        let body = std::fs::read(dir.join(MANIFEST_NAME))?;
        let manifest: Manifest = serde_json::from_slice(&body)
            .map_err(|e| IoError::Corrupt(format!("bad segment manifest: {e}")))?;
        if manifest.version != MANIFEST_VERSION {
            return Err(IoError::BadVersion {
                found: manifest.version,
            });
        }
        let scheme: SchemeChoice = manifest
            .scheme
            .parse()
            .map_err(|e| IoError::Corrupt(format!("bad segment manifest: {e}")))?;
        if manifest.segments.is_empty() {
            return Err(IoError::Corrupt(
                "segment manifest lists no segments".into(),
            ));
        }
        let mut next_base = 0u32;
        for e in &manifest.segments {
            if e.doc_base != next_base || e.n_docs == 0 {
                return Err(IoError::Corrupt(format!(
                    "segment {} does not tile the docID space: doc_base {} (expected {next_base}), n_docs {}",
                    e.file, e.doc_base, e.n_docs
                )));
            }
            next_base = next_base
                .checked_add(e.n_docs)
                .ok_or_else(|| IoError::Corrupt("segment docID ranges overflow u32".into()))?;
        }
        if next_base != manifest.n_docs {
            return Err(IoError::Corrupt(format!(
                "segment manifest claims {} docs but segments cover {next_base}",
                manifest.n_docs
            )));
        }
        Ok(SegmentSet {
            dir,
            params: manifest.params,
            scheme,
            n_docs: manifest.n_docs,
            entries: manifest.segments,
            stats: SpimiStats::default(),
        })
    }

    /// The segment directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total documents across all segments.
    pub fn n_docs(&self) -> u32 {
        self.n_docs
    }

    /// The manifest's segment entries, in docID order.
    pub fn entries(&self) -> &[SegmentEntry] {
        &self.entries
    }

    /// Build statistics (zeroed for a set opened from disk).
    pub fn stats(&self) -> &SpimiStats {
        &self.stats
    }

    /// k-way streaming merge of all segments into one [`InvertedIndex`]
    /// bit-identical to a single-pass in-memory build of the same corpus
    /// with the same parameters and scheme policy.
    ///
    /// Memory: the global doc-length/norm arrays (the final index holds
    /// these anyway) plus one in-flight term per open segment.
    ///
    /// # Errors
    ///
    /// [`IoError::Corrupt`] on any structural violation in a segment
    /// file (including checksum mismatch at segment end) or a
    /// header/manifest disagreement; [`IoError::Invalid`] if merged
    /// postings fail index invariants.
    pub fn merge(&self) -> Result<InvertedIndex, IoError> {
        // Open every segment and pull the global doc-length array
        // together from the per-segment headers.
        let mut readers: Vec<SegmentReader<BufReader<std::fs::File>>> =
            Vec::with_capacity(self.entries.len());
        let mut doc_lens: Vec<u32> = Vec::with_capacity(self.n_docs as usize);
        for e in &self.entries {
            let r = open_segment(self.dir.join(&e.file))?;
            let h = *r.header();
            if h.doc_base != e.doc_base || h.n_docs != e.n_docs || h.n_terms != e.n_terms {
                return Err(IoError::Corrupt(format!(
                    "segment {} header disagrees with the manifest",
                    e.file
                )));
            }
            if h.params != self.params {
                return Err(IoError::Corrupt(format!(
                    "segment {} was built with different BM25 parameters",
                    e.file
                )));
            }
            doc_lens.extend_from_slice(r.doc_lens());
            readers.push(r);
        }
        let (bm25, doc_norms) = scoring_from_lens(self.params, &doc_lens);

        let mut heads: Vec<Option<(String, EncodedList)>> = Vec::with_capacity(readers.len());
        for r in &mut readers {
            heads.push(r.next_term()?);
        }

        let mut vocab = std::collections::HashMap::new();
        let mut terms: Vec<TermInfo> = Vec::new();
        let mut lists: Vec<EncodedList> = Vec::new();
        let mut scratch = DecodeScratch::new();
        let mut docs: Vec<u32> = Vec::new();
        let mut tfs: Vec<u32> = Vec::new();

        // The smallest in-flight term is the next one in the merged
        // (lexically ordered) dictionary — exactly the order the
        // in-memory builder's BTreeMap would visit it.
        while let Some(min) = heads
            .iter()
            .filter_map(|h| h.as_ref().map(|(t, _)| t.as_str()))
            .min()
            .map(str::to_owned)
        {
            docs.clear();
            tfs.clear();
            // Contributing segments in docID order (entries tile the
            // docID space ascending), so concatenation is the sorted
            // global posting list.
            for (i, head) in heads.iter_mut().enumerate() {
                let contributes = head.as_ref().is_some_and(|(t, _)| *t == min);
                if !contributes {
                    continue;
                }
                let Some((_, list)) = head.take() else {
                    continue;
                };
                list.decode_all_into(&mut scratch)
                    .map_err(IoError::Invalid)?;
                let base = self.entries[i].doc_base;
                let seg_docs = self.entries[i].n_docs;
                if scratch.docs.last().is_some_and(|&d| d >= seg_docs) {
                    return Err(IoError::Corrupt(format!(
                        "segment {} term {min:?} decodes docIDs outside its {seg_docs}-doc range",
                        self.entries[i].file
                    )));
                }
                docs.extend(scratch.docs.iter().map(|&d| base + d));
                tfs.extend_from_slice(&scratch.tfs);
                *head = readers[i].next_term()?;
            }

            let plist =
                PostingList::from_columns(docs.clone(), tfs.clone()).map_err(IoError::Invalid)?;
            let df = plist.len() as u32;
            let idf = bm25.idf(df);
            let enc = encode_term_list(&plist, self.scheme, &bm25, idf, &doc_norms)
                .map_err(IoError::Invalid)?;

            let id = terms.len() as u32;
            vocab.insert(min.clone(), id);
            terms.push(TermInfo { text: min, df, idf });
            lists.push(enc);
        }

        // Drain to the checksum trailer of any segment that still has
        // one (all heads are None here, so each reader has already
        // verified its trailer in next_term — this is just a belt check).
        for (r, e) in readers.iter_mut().zip(&self.entries) {
            if r.next_term()?.is_some() {
                return Err(IoError::Corrupt(format!(
                    "segment {} yielded terms past its dictionary",
                    e.file
                )));
            }
        }

        Ok(InvertedIndex {
            vocab,
            terms,
            lists,
            doc_norms,
            doc_lens,
            bm25,
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;
    use crate::IndexBuilder;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("boss-spimi-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    const DOCS: &[&str] = &[
        "the cat sat on the mat",
        "the dog sat",
        "a cat and a dog and a bird",
        "storage class memory holds the index",
        "bandwidth optimized search accelerator",
        "the index lives in storage class memory",
        "a bird sat on the accelerator",
    ];

    fn spimi_index(max_docs: u32, budget: usize) -> (SegmentSet, InvertedIndex) {
        let dir = tmpdir(&format!("m{max_docs}-b{budget}"));
        let cfg = SpimiConfig {
            budget_bytes: budget,
            max_docs_per_segment: max_docs,
            ..SpimiConfig::default()
        };
        let mut b = SpimiBuilder::create(&dir, cfg).unwrap();
        for d in DOCS {
            b.add_document_text(d).unwrap();
        }
        let set = b.finish().unwrap();
        let merged = set.merge().unwrap();
        (set, merged)
    }

    fn inmem_index() -> InvertedIndex {
        IndexBuilder::new()
            .add_documents(DOCS.iter().copied())
            .build()
            .unwrap()
    }

    #[test]
    fn single_segment_merge_is_bit_identical() {
        let (set, merged) = spimi_index(0, usize::MAX >> 1);
        assert_eq!(set.entries().len(), 1);
        assert_eq!(merged, inmem_index());
        std::fs::remove_dir_all(set.dir()).ok();
    }

    #[test]
    fn multi_segment_merge_is_bit_identical() {
        for max_docs in [1, 2, 3] {
            let (set, merged) = spimi_index(max_docs, usize::MAX >> 1);
            assert_eq!(
                set.entries().len(),
                DOCS.len().div_ceil(max_docs as usize),
                "doc cap {max_docs}"
            );
            assert_eq!(merged, inmem_index(), "doc cap {max_docs}");
            std::fs::remove_dir_all(set.dir()).ok();
        }
    }

    #[test]
    fn byte_budget_forces_spills() {
        let (set, merged) = spimi_index(0, 256);
        assert!(
            set.stats().spills >= 2,
            "a 256-byte budget must spill repeatedly: {:?}",
            set.stats()
        );
        assert!(
            set.stats().peak_inmem_bytes < 256 + 512,
            "budget bounds the map"
        );
        assert_eq!(merged, inmem_index());
        std::fs::remove_dir_all(set.dir()).ok();
    }

    #[test]
    fn reopen_from_manifest_matches() {
        let (set, merged) = spimi_index(3, usize::MAX >> 1);
        let reopened = SegmentSet::open_dir(set.dir()).unwrap();
        assert_eq!(reopened.n_docs(), set.n_docs());
        assert_eq!(reopened.entries(), set.entries());
        assert_eq!(reopened.merge().unwrap(), merged);
        std::fs::remove_dir_all(set.dir()).ok();
    }

    #[test]
    fn open_dir_rejects_gapped_manifest() {
        let (set, _) = spimi_index(2, usize::MAX >> 1);
        let path = set.dir().join(MANIFEST_NAME);
        let body = std::fs::read_to_string(&path).unwrap();
        // Shift the second segment's doc_base to punch a hole (tolerate
        // either JSON spacing style).
        let broken = body
            .replacen("\"doc_base\":2", "\"doc_base\":3", 1)
            .replacen("\"doc_base\": 2", "\"doc_base\": 3", 1);
        assert_ne!(body, broken, "manifest edit must apply");
        std::fs::write(&path, broken).unwrap();
        let err = SegmentSet::open_dir(set.dir()).unwrap_err();
        assert!(matches!(err, IoError::Corrupt(_)), "{err}");
        std::fs::remove_dir_all(set.dir()).ok();
    }

    #[test]
    fn empty_build_is_typed_error() {
        let dir = tmpdir("empty");
        let b = SpimiBuilder::create(&dir, SpimiConfig::default()).unwrap();
        let err = b.finish().unwrap_err();
        assert!(matches!(err, IoError::Invalid(Error::InvalidQuery { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_tf_rejected() {
        let dir = tmpdir("zerotf");
        let mut b = SpimiBuilder::create(&dir, SpimiConfig::default()).unwrap();
        let err = b.add_document([("ok", 1u32), ("bad", 0)], 2).unwrap_err();
        assert!(matches!(
            err,
            IoError::Invalid(Error::ZeroTermFrequency { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_documents_with_explicit_lens_match_builder() {
        // Posting-list style input: per-doc term bags with explicit
        // lengths, mirrored into IndexBuilder via doc_lens + lists.
        let docs: Vec<Vec<(&str, u32)>> = vec![
            vec![("alpha", 1), ("gamma", 1)],
            vec![("beta", 3), ("gamma", 2)],
            vec![("alpha", 2)],
            vec![("gamma", 1)],
        ];
        let lens = [10u32, 12, 7, 9];

        let dir = tmpdir("inject");
        let cfg = SpimiConfig {
            max_docs_per_segment: 2,
            ..SpimiConfig::default()
        };
        let mut b = SpimiBuilder::create(&dir, cfg).unwrap();
        for (terms, &len) in docs.iter().zip(&lens) {
            b.add_document(terms.iter().copied(), len).unwrap();
        }
        let set = b.finish().unwrap();
        let merged = set.merge().unwrap();

        let mut columns: BTreeMap<&str, (Vec<u32>, Vec<u32>)> = BTreeMap::new();
        for (doc, terms) in docs.iter().enumerate() {
            for &(t, tf) in terms {
                let e = columns.entry(t).or_default();
                e.0.push(doc as u32);
                e.1.push(tf);
            }
        }
        let mut builder = IndexBuilder::new().doc_lens(lens.to_vec());
        for (t, (d, f)) in columns {
            let list = PostingList::from_columns(d, f).unwrap();
            builder = builder.add_posting_list(t, &list);
        }
        assert_eq!(merged, builder.build().unwrap());
        std::fs::remove_dir_all(set.dir()).ok();
    }

    #[test]
    fn stats_account_for_work() {
        let (set, _) = spimi_index(2, usize::MAX >> 1);
        let s = set.stats();
        assert_eq!(s.docs, DOCS.len() as u64);
        assert!(s.postings > 0);
        assert_eq!(s.spills, DOCS.len().div_ceil(2) as u32);
        assert!(s.peak_inmem_bytes > 0);
        assert!(s.segment_bytes > 0);
        std::fs::remove_dir_all(set.dir()).ok();
    }
}
