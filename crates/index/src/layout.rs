//! Flat virtual-address layout of an index image in the SCM pool.
//!
//! The simulators need realistic addresses so that channel interleaving and
//! sequential-stream detection behave as they would for a real memory
//! image. The layout mirrors what `init()` loads into the pool
//! (Section IV-D): per term, a metadata array (19 B per block) followed by
//! the compressed block data; after all lists, the per-document scoring
//! metadata table (4 B per document).

use crate::{DocId, InvertedIndex, TermId, BLOCK_META_BYTES};
use serde::{Deserialize, Serialize};

/// Base virtual address of the index image. Non-zero so address arithmetic
/// bugs surface, 2 GiB-aligned to play nicely with the paper's huge pages.
pub const IMAGE_BASE: u64 = 0x8000_0000;

/// Address map of one index image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexImage {
    meta_addr: Vec<u64>,
    data_addr: Vec<u64>,
    norms_addr: u64,
    total_bytes: u64,
    n_docs: u32,
}

impl IndexImage {
    /// Lays out `index` starting at [`IMAGE_BASE`].
    pub fn new(index: &InvertedIndex) -> Self {
        let mut cursor = IMAGE_BASE;
        let mut meta_addr = Vec::with_capacity(index.n_terms());
        let mut data_addr = Vec::with_capacity(index.n_terms());
        for id in index.term_ids() {
            let list = index.list(id);
            meta_addr.push(cursor);
            cursor += list.n_blocks() as u64 * BLOCK_META_BYTES;
            data_addr.push(cursor);
            cursor += list.data_bytes() as u64;
        }
        let norms_addr = cursor;
        cursor += u64::from(index.n_docs()) * 4;
        IndexImage {
            meta_addr,
            data_addr,
            norms_addr,
            total_bytes: cursor - IMAGE_BASE,
            n_docs: index.n_docs(),
        }
    }

    /// Address of the block-metadata array of a term's list.
    ///
    /// # Panics
    ///
    /// Panics if `term` is out of range.
    pub fn meta_addr(&self, term: TermId) -> u64 {
        self.meta_addr[term as usize]
    }

    /// Address of block `block` of a term's metadata array.
    ///
    /// # Panics
    ///
    /// Panics if `term` is out of range.
    pub fn block_meta_addr(&self, term: TermId, block: usize) -> u64 {
        self.meta_addr[term as usize] + block as u64 * BLOCK_META_BYTES
    }

    /// Address of the compressed data area of a term's list.
    ///
    /// # Panics
    ///
    /// Panics if `term` is out of range.
    pub fn data_addr(&self, term: TermId) -> u64 {
        self.data_addr[term as usize]
    }

    /// Address of a document's 4-byte scoring metadata (BM25 norm).
    pub fn norm_addr(&self, doc: DocId) -> u64 {
        self.norms_addr + u64::from(doc) * 4
    }

    /// Total bytes occupied by the image.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// One past the highest address of the image.
    pub fn end_addr(&self) -> u64 {
        IMAGE_BASE + self.total_bytes
    }
}

/// A scratch region for intermediate data / results, placed after the image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScratchRegion {
    base: u64,
    cursor: u64,
}

impl ScratchRegion {
    /// Creates a scratch region starting after `image`.
    pub fn after(image: &IndexImage) -> Self {
        // Align to the next 4 KiB.
        let base = image.end_addr().div_ceil(4096) * 4096;
        ScratchRegion { base, cursor: base }
    }

    /// Allocates `bytes` and returns the address.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let a = self.cursor;
        self.cursor += bytes;
        a
    }

    /// Resets the allocator (scratch reused between queries).
    pub fn reset(&mut self) {
        self.cursor = self.base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexBuilder;

    fn image() -> (InvertedIndex, IndexImage) {
        let idx = IndexBuilder::new()
            .add_documents(["a b c d", "a c", "b d", "a a a"])
            .build()
            .unwrap();
        let img = IndexImage::new(&idx);
        (idx, img)
    }

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let (idx, img) = image();
        let mut prev_end = IMAGE_BASE;
        for id in idx.term_ids() {
            assert_eq!(img.meta_addr(id), prev_end);
            let meta_end = img.meta_addr(id) + idx.list(id).n_blocks() as u64 * BLOCK_META_BYTES;
            assert_eq!(img.data_addr(id), meta_end);
            prev_end = meta_end + idx.list(id).data_bytes() as u64;
        }
        assert_eq!(img.norm_addr(0), prev_end);
        assert_eq!(img.end_addr(), prev_end + u64::from(idx.n_docs()) * 4);
    }

    #[test]
    fn block_meta_addresses_stride_19() {
        let (_, img) = image();
        assert_eq!(img.block_meta_addr(0, 1) - img.block_meta_addr(0, 0), 19);
    }

    #[test]
    fn norm_addresses_stride_4() {
        let (_, img) = image();
        assert_eq!(img.norm_addr(3) - img.norm_addr(0), 12);
    }

    #[test]
    fn scratch_after_image() {
        let (_, img) = image();
        let mut s = ScratchRegion::after(&img);
        let a = s.alloc(100);
        assert!(a >= img.end_addr());
        assert_eq!(a % 4096, 0);
        let b = s.alloc(8);
        assert_eq!(b, a + 100);
        s.reset();
        assert_eq!(s.alloc(1), a);
    }

    #[test]
    fn total_bytes_consistent() {
        let (idx, img) = image();
        let expect: u64 =
            idx.total_meta_bytes() + idx.total_data_bytes() + u64::from(idx.n_docs()) * 4;
        assert_eq!(img.total_bytes(), expect);
    }
}
