//! Block-at-a-time BM25 scoring kernel.
//!
//! [`Bm25::score_block`] scores a whole decoded posting block in one pass:
//! the term's `idf` and the `k1 + 1` saturation factor are hoisted out of
//! the loop, document norms are gathered from the precomputed
//! [`crate::InvertedIndex::doc_norms`] table, and the per-posting body is
//! branchless (the BM25 `tf / (tf + K)` form saturates arithmetically).
//!
//! The kernel is wall-clock only: it evaluates *exactly* the expression of
//! [`Bm25::term_score`] — `idf * (tf * (k1 + 1)) / (tf + norm)` — with the
//! same f32 operation order per posting, so results are bit-identical to
//! the scalar path. Hoisting `k1 + 1.0` is safe because it is a pure
//! function of `k1` and yields the identical f32 value every iteration.

use crate::{Bm25, DocId};

/// Reusable output buffer for [`Bm25::score_block`].
///
/// Holding one of these per worker/core amortizes the allocation across
/// every block of every query.
#[derive(Debug, Default, Clone)]
pub struct ScoreScratch {
    scores: Vec<f32>,
    norm_gather: Vec<f32>,
}

impl ScoreScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        ScoreScratch::default()
    }

    /// The scores written by the last [`Bm25::score_block`] call.
    pub fn scores(&self) -> &[f32] {
        &self.scores
    }

    /// Number of scores held.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Whether the scratch holds no scores.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Drops the scores, keeping the allocation.
    pub fn clear(&mut self) {
        self.scores.clear();
    }
}

impl Bm25 {
    /// Scores a decoded block of postings in one pass, writing one score
    /// per posting into `out` (previous contents are discarded).
    ///
    /// `norms` is the full per-document norm table
    /// ([`crate::InvertedIndex::doc_norms`]); the kernel gathers
    /// `norms[doc]` itself. Results are bit-identical to calling
    /// [`Bm25::term_score`] per posting.
    ///
    /// # Panics
    ///
    /// Panics if `docs` and `tfs` differ in length, or if a docID is out
    /// of range of the norm table.
    pub fn score_block(
        &self,
        idf: f32,
        docs: &[DocId],
        tfs: &[u32],
        norms: &[f32],
        out: &mut ScoreScratch,
    ) {
        assert_eq!(docs.len(), tfs.len(), "docID / tf streams must align");
        let k1p1 = self.params().k1 + 1.0;
        let ScoreScratch {
            scores,
            norm_gather,
        } = out;
        // Pass 1: gather the norms. Keeping the indexed load in its own
        // pass leaves the arithmetic pass free of bounds checks, so the
        // divide can vectorize.
        norm_gather.clear();
        norm_gather.extend(docs.iter().map(|&doc| norms[doc as usize]));
        // Pass 2: same expression shape as `term_score`, with `idf` and
        // `k1 + 1` loop-invariant; the divide keeps the scalar operand
        // order per posting (IEEE division is exactly rounded, so lane
        // width cannot change the bits).
        scores.clear();
        scores.reserve(tfs.len());
        scores.extend(tfs.iter().zip(norm_gather.iter()).map(|(&tf, &norm)| {
            let tf = tf as f32;
            idf * (tf * k1p1) / (tf + norm)
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bm25Params;

    #[test]
    fn matches_term_score_bitwise() {
        let s = Bm25::new(Bm25Params::default(), 1000, 97.5);
        let norms: Vec<f32> = (0..1000).map(|d| s.doc_norm(10 + (d * 7) % 300)).collect();
        let docs: Vec<u32> = (0..128).map(|i| i * 7 + 3).collect();
        let tfs: Vec<u32> = (0..128).map(|i| 1 + (i * 13) % 40).collect();
        let idf = s.idf(37);
        let mut out = ScoreScratch::new();
        s.score_block(idf, &docs, &tfs, &norms, &mut out);
        assert_eq!(out.len(), 128);
        for ((&d, &tf), &got) in docs.iter().zip(&tfs).zip(out.scores()) {
            let want = s.term_score(idf, tf, norms[d as usize]);
            assert_eq!(got.to_bits(), want.to_bits(), "doc {d}");
        }
    }

    #[test]
    fn empty_block_scores_nothing() {
        let s = Bm25::new(Bm25Params::default(), 10, 5.0);
        let mut out = ScoreScratch::new();
        out.scores.push(1.0); // stale content must be discarded
        s.score_block(1.0, &[], &[], &[1.0; 10], &mut out);
        assert!(out.is_empty());
        out.clear();
        assert_eq!(out.scores().len(), 0);
    }
}
