//! The assembled inverted index.

use crate::{Bm25, EncodedList, Error};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a term in the index vocabulary.
pub type TermId = u32;

/// Per-term statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TermInfo {
    /// The term text.
    pub text: String,
    /// Document frequency.
    pub df: u32,
    /// Inverse document frequency under the index's BM25 scorer.
    pub idf: f32,
}

/// A complete, immutable inverted index over one shard.
///
/// Built with [`crate::IndexBuilder`]; once created it is read-only, like
/// the production indexes the paper targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvertedIndex {
    pub(crate) vocab: HashMap<String, TermId>,
    pub(crate) terms: Vec<TermInfo>,
    pub(crate) lists: Vec<EncodedList>,
    pub(crate) doc_norms: Vec<f32>,
    pub(crate) doc_lens: Vec<u32>,
    pub(crate) bm25: Bm25,
}

impl InvertedIndex {
    /// Number of documents in the shard.
    pub fn n_docs(&self) -> u32 {
        self.doc_norms.len() as u32
    }

    /// Number of distinct terms.
    pub fn n_terms(&self) -> usize {
        self.terms.len()
    }

    /// The BM25 scorer bound to this corpus.
    pub fn bm25(&self) -> &Bm25 {
        &self.bm25
    }

    /// Looks up a term's id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownTerm`] if the term is not in the vocabulary.
    pub fn term_id(&self, term: &str) -> Result<TermId, Error> {
        self.vocab
            .get(term)
            .copied()
            .ok_or_else(|| Error::UnknownTerm {
                term: term.to_owned(),
            })
    }

    /// Per-term statistics.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn term_info(&self, id: TermId) -> &TermInfo {
        &self.terms[id as usize]
    }

    /// The encoded posting list of a term.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn list(&self, id: TermId) -> &EncodedList {
        &self.lists[id as usize]
    }

    /// Mutable access to a term's encoded posting list — a
    /// corruption-harness hook, same contract as
    /// [`EncodedList::data_mut`]: decoders must surface any mutation made
    /// through it as a typed error or decode to bit-correct values, never
    /// panic.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn list_mut(&mut self, id: TermId) -> &mut EncodedList {
        &mut self.lists[id as usize]
    }

    /// Per-document precomputed BM25 norms (4 B/doc scoring metadata).
    pub fn doc_norms(&self) -> &[f32] {
        &self.doc_norms
    }

    /// Per-document lengths in tokens.
    pub fn doc_lens(&self) -> &[u32] {
        &self.doc_lens
    }

    /// Iterates term ids in vocabulary order.
    pub fn term_ids(&self) -> impl Iterator<Item = TermId> {
        0..self.terms.len() as TermId
    }

    /// Total encoded posting data bytes across all lists.
    pub fn total_data_bytes(&self) -> u64 {
        self.lists.iter().map(|l| l.data_bytes() as u64).sum()
    }

    /// Total block-metadata bytes across all lists (19 B per block).
    pub fn total_meta_bytes(&self) -> u64 {
        self.lists.iter().map(EncodedList::meta_bytes).sum()
    }

    /// Total raw posting bytes (8 B per posting: docID + tf).
    pub fn total_raw_bytes(&self) -> u64 {
        self.lists.iter().map(|l| u64::from(l.df()) * 8).sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::IndexBuilder;

    fn tiny() -> crate::InvertedIndex {
        IndexBuilder::new()
            .add_documents(["a b c", "b c d", "c d e", "a a a c"])
            .build()
            .unwrap()
    }

    #[test]
    fn vocabulary_and_stats() {
        let idx = tiny();
        assert_eq!(idx.n_docs(), 4);
        assert_eq!(idx.n_terms(), 5);
        let c = idx.term_id("c").unwrap();
        assert_eq!(idx.term_info(c).df, 4);
        let a = idx.term_id("a").unwrap();
        assert_eq!(idx.term_info(a).df, 2);
        assert!(idx.term_id("zebra").is_err());
    }

    #[test]
    fn idf_ordering() {
        let idx = tiny();
        let a = idx.term_info(idx.term_id("a").unwrap()).idf;
        let c = idx.term_info(idx.term_id("c").unwrap()).idf;
        assert!(a > c, "rarer term has higher idf");
    }

    #[test]
    fn lists_decode_to_postings() {
        let idx = tiny();
        let a = idx.term_id("a").unwrap();
        let (docs, tfs) = idx.list(a).decode_all().unwrap();
        assert_eq!(docs, vec![0, 3]);
        assert_eq!(tfs, vec![1, 3]);
    }

    #[test]
    fn doc_lens_counted() {
        let idx = tiny();
        assert_eq!(idx.doc_lens(), &[3, 3, 3, 4]);
        assert_eq!(idx.doc_norms().len(), 4);
    }

    #[test]
    fn size_accessors() {
        let idx = tiny();
        assert!(idx.total_data_bytes() > 0);
        assert_eq!(idx.total_meta_bytes(), 5 * crate::BLOCK_META_BYTES);
        assert_eq!(idx.total_raw_bytes(), (2 + 2 + 4 + 2 + 1) * 8);
    }
}
