//! Okapi BM25 scoring (Section II-B of the paper), with the invariant
//! portion precomputed per document exactly as BOSS does: at runtime a term
//! score costs one division, one multiplication and one addition.

use serde::{Deserialize, Serialize};

/// BM25 free parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bm25Params {
    /// Term-frequency saturation; the paper notes `k1 ∈ [1.2, 2.0]`.
    pub k1: f32,
    /// Length-normalization strength; the paper uses `b = 0.75`.
    pub b: f32,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// A BM25 scorer bound to corpus statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bm25 {
    params: Bm25Params,
    n_docs: u32,
    avgdl: f32,
}

impl Bm25 {
    /// Creates a scorer for a corpus of `n_docs` documents with average
    /// length `avgdl`.
    ///
    /// # Panics
    ///
    /// Panics if `n_docs == 0` or `avgdl <= 0`.
    pub fn new(params: Bm25Params, n_docs: u32, avgdl: f32) -> Self {
        assert!(n_docs > 0, "corpus must contain documents");
        assert!(avgdl > 0.0, "average document length must be positive");
        Bm25 {
            params,
            n_docs,
            avgdl,
        }
    }

    /// The free parameters.
    pub fn params(&self) -> Bm25Params {
        self.params
    }

    /// Number of documents in the corpus.
    pub fn n_docs(&self) -> u32 {
        self.n_docs
    }

    /// Average document length.
    pub fn avgdl(&self) -> f32 {
        self.avgdl
    }

    /// Inverse document frequency of a term appearing in `df` documents:
    /// `ln((N - df + 0.5) / (df + 0.5) + 1)`.
    pub fn idf(&self, df: u32) -> f32 {
        let n = self.n_docs as f32;
        let df = df as f32;
        ((n - df + 0.5) / (df + 0.5) + 1.0).ln()
    }

    /// The per-document invariant `K = k1 * (1 - b + b * |D| / avgdl)`.
    ///
    /// This is the 4-byte scoring metadata BOSS stores per document so that
    /// the runtime term score needs only `idf * tf * (k1+1) / (tf + K)`.
    pub fn doc_norm(&self, doc_len: u32) -> f32 {
        let Bm25Params { k1, b } = self.params;
        k1 * (1.0 - b + b * doc_len as f32 / self.avgdl)
    }

    /// Term score given the term's `idf`, its frequency `tf` in the
    /// document, and the document's precomputed [`Self::doc_norm`].
    pub fn term_score(&self, idf: f32, tf: u32, doc_norm: f32) -> f32 {
        let tf = tf as f32;
        idf * (tf * (self.params.k1 + 1.0)) / (tf + doc_norm)
    }

    /// Upper bound of the term score for any document, given `idf` and the
    /// largest `tf` in the list and the smallest norm in the corpus:
    /// used only as a sanity bound in tests (real block maxima are exact).
    pub fn term_score_bound(&self, idf: f32, max_tf: u32, min_norm: f32) -> f32 {
        self.term_score(idf, max_tf, min_norm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scorer() -> Bm25 {
        Bm25::new(Bm25Params::default(), 1000, 100.0)
    }

    #[test]
    fn idf_decreases_with_df() {
        let s = scorer();
        assert!(s.idf(1) > s.idf(10));
        assert!(s.idf(10) > s.idf(500));
        assert!(s.idf(999) > 0.0, "idf stays positive with the +1 form");
    }

    #[test]
    fn score_increases_with_tf_but_saturates() {
        let s = scorer();
        let idf = s.idf(10);
        let norm = s.doc_norm(100);
        let s1 = s.term_score(idf, 1, norm);
        let s2 = s.term_score(idf, 2, norm);
        let s100 = s.term_score(idf, 100, norm);
        let s101 = s.term_score(idf, 101, norm);
        assert!(s2 > s1);
        assert!(s101 > s100);
        assert!(s101 - s100 < s2 - s1, "diminishing returns");
        // As tf -> inf, score -> idf * (k1 + 1).
        assert!(s101 < idf * (s.params().k1 + 1.0));
    }

    #[test]
    fn longer_docs_score_lower() {
        let s = scorer();
        let idf = s.idf(10);
        let short = s.term_score(idf, 3, s.doc_norm(20));
        let long = s.term_score(idf, 3, s.doc_norm(500));
        assert!(short > long);
    }

    #[test]
    fn doc_norm_formula() {
        let s = scorer();
        // |D| == avgdl => K = k1.
        assert!((s.doc_norm(100) - 1.2).abs() < 1e-6);
        // b=0.75: K = k1 * (0.25 + 0.75*len/avgdl)
        assert!((s.doc_norm(0) - 1.2 * 0.25).abs() < 1e-6);
    }

    #[test]
    fn matches_unfactored_formula() {
        // Cross-check the precomputed-norm factorization against the
        // textbook formula from Section II-B.
        let s = Bm25::new(Bm25Params { k1: 1.5, b: 0.75 }, 5000, 87.3);
        let (df, tf, dl) = (123u32, 7u32, 140u32);
        let idf = s.idf(df);
        let got = s.term_score(idf, tf, s.doc_norm(dl));
        let k1 = 1.5f32;
        let b = 0.75f32;
        let expect =
            idf * (tf as f32 * (k1 + 1.0)) / (tf as f32 + k1 * (1.0 - b + b * dl as f32 / 87.3));
        assert!((got - expect).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "corpus must contain documents")]
    fn zero_docs_panics() {
        let _ = Bm25::new(Bm25Params::default(), 0, 1.0);
    }
}
