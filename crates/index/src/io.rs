//! Binary index-file serialization — the artifact `init(indexFile, ...)`
//! loads into the SCM pool (Section IV-D).
//!
//! Format: a small header (magic, version, JSON-length) followed by the
//! serde-JSON body. JSON keeps the format self-describing and
//! forward-debuggable; the header lets loading fail fast and precisely on
//! wrong or corrupt files. Index files are build-time artifacts, so
//! load-time dominates and is still linear.

use crate::{Error, InvertedIndex};
use std::io::{Read, Write};
use std::path::Path;

/// File magic: "BOSSIDX\0".
pub const MAGIC: [u8; 8] = *b"BOSSIDX\0";

/// Current format version.
pub const VERSION: u32 = 1;

/// Errors while reading or writing index files.
#[derive(Debug)]
#[non_exhaustive]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the BOSS index magic.
    BadMagic,
    /// The file's format version is not supported.
    BadVersion {
        /// Version found in the file.
        found: u32,
    },
    /// The body failed to decode.
    Corrupt(String),
    /// The decoded index is internally inconsistent.
    Invalid(Error),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "index file I/O error: {e}"),
            IoError::BadMagic => write!(f, "not a BOSS index file (bad magic)"),
            IoError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported index file version {found} (supported: {VERSION})"
                )
            }
            IoError::Corrupt(m) => write!(f, "corrupt index file: {m}"),
            IoError::Invalid(e) => write!(f, "index file contains an invalid index: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes `index` to `writer` in the BOSS index-file format.
///
/// # Errors
///
/// Propagates I/O failures; serialization of a valid index cannot fail.
pub fn write_index<W: Write>(index: &InvertedIndex, mut writer: W) -> Result<(), IoError> {
    let body = serde_json::to_vec(index).map_err(|e| IoError::Corrupt(e.to_string()))?;
    writer.write_all(&MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&(body.len() as u64).to_le_bytes())?;
    writer.write_all(&body)?;
    Ok(())
}

/// Reads an index from `reader`.
///
/// # Errors
///
/// Returns [`IoError::BadMagic`] / [`IoError::BadVersion`] for foreign
/// files, [`IoError::Corrupt`] for truncated or undecodable bodies.
pub fn read_index<R: Read>(mut reader: R) -> Result<InvertedIndex, IoError> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(IoError::BadMagic);
    }
    let mut v = [0u8; 4];
    reader.read_exact(&mut v)?;
    let version = u32::from_le_bytes(v);
    if version != VERSION {
        return Err(IoError::BadVersion { found: version });
    }
    let mut len = [0u8; 8];
    reader.read_exact(&mut len)?;
    let len = u64::from_le_bytes(len);
    // The length field is untrusted on-disk data: never allocate from the
    // claim. `take(len)` bounds the read to whatever the input actually
    // holds (same cap rule as `boss_compress::check_count`), and the
    // post-read length check turns a short body into a typed error
    // instead of an allocator abort on a corrupt multi-terabyte claim.
    let mut body = Vec::new();
    reader
        .by_ref()
        .take(len)
        .read_to_end(&mut body)
        .map_err(|e| IoError::Corrupt(format!("body unreadable: {e}")))?;
    if (body.len() as u64) < len {
        return Err(IoError::Corrupt(format!(
            "body shorter than header says: {} of {len} bytes present",
            body.len()
        )));
    }
    let index: InvertedIndex =
        serde_json::from_slice(&body).map_err(|e| IoError::Corrupt(e.to_string()))?;
    // Cheap structural sanity check.
    if index.n_docs() == 0 {
        return Err(IoError::Invalid(Error::InvalidQuery {
            reason: "index file holds an empty corpus".into(),
        }));
    }
    Ok(index)
}

/// Saves `index` to `path`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save(index: &InvertedIndex, path: impl AsRef<Path>) -> Result<(), IoError> {
    let f = std::fs::File::create(path)?;
    write_index(index, std::io::BufWriter::new(f))
}

/// Loads an index from `path`.
///
/// # Errors
///
/// As for [`read_index`].
pub fn load(path: impl AsRef<Path>) -> Result<InvertedIndex, IoError> {
    let f = std::fs::File::open(path)?;
    read_index(std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexBuilder;

    fn sample() -> InvertedIndex {
        IndexBuilder::new()
            .add_documents(["scm pools", "data nodes scm", "pools of data"])
            .build()
            .unwrap()
    }

    #[test]
    fn roundtrip_in_memory() {
        let idx = sample();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        let back = read_index(buf.as_slice()).unwrap();
        assert_eq!(back.n_docs(), idx.n_docs());
        assert_eq!(back.n_terms(), idx.n_terms());
        let q = crate::QueryExpr::term("scm");
        assert_eq!(
            crate::reference::evaluate(&idx, &q, 5).unwrap(),
            crate::reference::evaluate(&back, &q, 5).unwrap()
        );
    }

    #[test]
    fn roundtrip_via_file() {
        let idx = sample();
        let dir = std::env::temp_dir().join(format!("boss-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.bossidx");
        save(&idx, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.n_terms(), idx.n_terms());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_index(&b"NOTBOSS\0restoffile"[..]).unwrap_err();
        assert!(matches!(err, IoError::BadMagic));
    }

    #[test]
    fn rejects_future_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_index(buf.as_slice()).unwrap_err();
        assert!(matches!(err, IoError::BadVersion { found: 99 }));
    }

    #[test]
    fn rejects_truncated_body() {
        let idx = sample();
        let mut buf = Vec::new();
        write_index(&idx, &mut buf).unwrap();
        buf.truncate(buf.len() - 10);
        let err = read_index(buf.as_slice()).unwrap_err();
        assert!(matches!(err, IoError::Corrupt(_)), "{err}");
    }

    #[test]
    fn huge_claimed_length_is_not_allocated() {
        // A header claiming an 8 EB body over a 5-byte input must fail
        // with a typed error after reading 5 bytes — not abort trying to
        // allocate the claim.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(b"@@@@@");
        let err = read_index(buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, IoError::Corrupt(ref m) if m.contains("shorter")),
            "{err}"
        );
    }

    #[test]
    fn rejects_garbage_body() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&5u64.to_le_bytes());
        buf.extend_from_slice(b"@@@@@");
        let err = read_index(buf.as_slice()).unwrap_err();
        assert!(matches!(err, IoError::Corrupt(_)));
    }

    #[test]
    fn error_display() {
        assert!(IoError::BadMagic.to_string().contains("magic"));
        assert!(IoError::BadVersion { found: 3 }.to_string().contains('3'));
    }
}
