//! Exhaustive reference evaluation.
//!
//! This is the "obviously correct" implementation of query semantics: it
//! decodes whole posting lists, computes candidate documents with plain set
//! algebra, scores every candidate with BM25 over all distinct query terms
//! present in the document, and sorts. Every accelerated engine (BOSS, IIU,
//! the Lucene-like baseline) is required by tests to produce the same
//! hits — BOSS's early-termination machinery is *safe* pruning, so equality
//! is exact up to score ties, which the shared
//! [`SearchHit::ranking_cmp`](crate::SearchHit::ranking_cmp) order resolves
//! deterministically.

use crate::{DocId, Error, InvertedIndex, QueryExpr, SearchHit};
use std::collections::HashMap;

/// Computes the candidate docID set of `expr` (sorted ascending).
///
/// # Errors
///
/// Returns [`Error::UnknownTerm`] for out-of-vocabulary terms and
/// [`Error::InvalidQuery`] for structurally invalid expressions.
pub fn candidates(index: &InvertedIndex, expr: &QueryExpr) -> Result<Vec<DocId>, Error> {
    match expr {
        QueryExpr::Term(t) => {
            let id = index.term_id(t)?;
            let (docs, _) = index.list(id).decode_all()?;
            Ok(docs)
        }
        QueryExpr::And(subs) => {
            if subs.is_empty() {
                return Err(Error::InvalidQuery {
                    reason: "empty AND".into(),
                });
            }
            let mut sets: Vec<Vec<DocId>> = subs
                .iter()
                .map(|s| candidates(index, s))
                .collect::<Result<_, _>>()?;
            // Small-versus-small order, as the SvS algorithm does.
            sets.sort_by_key(Vec::len);
            let mut acc = sets.remove(0);
            for s in sets {
                acc = intersect_sorted(&acc, &s);
                if acc.is_empty() {
                    break;
                }
            }
            Ok(acc)
        }
        QueryExpr::Or(subs) => {
            if subs.is_empty() {
                return Err(Error::InvalidQuery {
                    reason: "empty OR".into(),
                });
            }
            let mut acc: Vec<DocId> = Vec::new();
            for s in subs {
                let set = candidates(index, s)?;
                acc = union_sorted(&acc, &set);
            }
            Ok(acc)
        }
    }
}

/// Intersection of two sorted docID slices.
pub fn intersect_sorted(a: &[DocId], b: &[DocId]) -> Vec<DocId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Union of two sorted docID slices.
pub fn union_sorted(a: &[DocId], b: &[DocId]) -> Vec<DocId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// The set of term ids contributing to `doc`'s score under clause-matching
/// semantics: a term counts when it appears in a *satisfied* clause.
///
/// * `Term t` matches iff the document contains `t`, contributing `{t}`;
/// * `And` matches iff all children match, contributing their union;
/// * `Or` matches iff any child matches, contributing the union of the
///   matching children.
///
/// For the paper's query shapes (Table II) this coincides with "every
/// query term present in the document", but it stays well-defined for
/// arbitrary nesting like `(A AND B) OR C`, where a document holding only
/// `A` and `C` is scored on `C` alone — the same rule production engines
/// (and BOSS's union-of-intersections plan) apply.
fn matched_terms(
    expr: &QueryExpr,
    doc_terms: &HashMap<crate::TermId, u32>,
    index: &InvertedIndex,
    out: &mut Vec<crate::TermId>,
) -> bool {
    match expr {
        QueryExpr::Term(t) => {
            // Infallible: `evaluate` resolves every term before scoring.
            #[allow(clippy::expect_used)]
            let id = index.term_id(t).expect("validated before scoring");
            if doc_terms.contains_key(&id) {
                out.push(id);
                true
            } else {
                false
            }
        }
        QueryExpr::And(subs) => {
            let mark = out.len();
            for s in subs {
                if !matched_terms(s, doc_terms, index, out) {
                    out.truncate(mark);
                    return false;
                }
            }
            true
        }
        QueryExpr::Or(subs) => {
            let mut any = false;
            for s in subs {
                any |= matched_terms(s, doc_terms, index, out);
            }
            any
        }
    }
}

/// Scores every candidate of `expr` and returns the top `k` hits in
/// ranking order.
///
/// A document's score is the sum of BM25 term scores over the distinct
/// terms of its *matched clauses* (see `matched_terms` in the source);
/// for Table II's query shapes this equals the familiar "sum over query
/// terms present in the document" of Section II-B.
///
/// # Errors
///
/// Same conditions as [`candidates`].
pub fn evaluate(
    index: &InvertedIndex,
    expr: &QueryExpr,
    k: usize,
) -> Result<Vec<SearchHit>, Error> {
    let cands = candidates(index, expr)?;
    // Per-document (term, tf) for all query terms.
    let mut ids: Vec<_> = expr
        .terms()
        .iter()
        .map(|t| index.term_id(t))
        .collect::<Result<Vec<_>, _>>()?;
    ids.sort_unstable();
    ids.dedup();
    let mut doc_terms: HashMap<DocId, HashMap<crate::TermId, u32>> =
        cands.iter().map(|&d| (d, HashMap::new())).collect();
    for &id in &ids {
        let (docs, tfs) = index.list(id).decode_all()?;
        for (&d, &tf) in docs.iter().zip(&tfs) {
            if let Some(m) = doc_terms.get_mut(&d) {
                m.insert(id, tf);
            }
        }
    }

    let mut hits: Vec<SearchHit> = Vec::with_capacity(cands.len());
    let mut contributing = Vec::new();
    for (&doc, terms) in &doc_terms {
        contributing.clear();
        let matched = matched_terms(expr, terms, index, &mut contributing);
        debug_assert!(matched, "candidates satisfy the expression");
        // Ascending term-id order so f32 summation is bit-identical
        // across every engine in the workspace.
        contributing.sort_unstable();
        contributing.dedup();
        let norm = index.doc_norms()[doc as usize];
        let mut score = 0.0f32;
        for &id in &contributing {
            let info = index.term_info(id);
            score += index.bm25().term_score(info.idf, terms[&id], norm);
        }
        hits.push(SearchHit { doc, score });
    }
    hits.sort_by(SearchHit::ranking_cmp);
    hits.truncate(k);
    Ok(hits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexBuilder;

    fn idx() -> InvertedIndex {
        IndexBuilder::new()
            .add_documents([
                "apple banana cherry",
                "banana cherry date",
                "cherry date egg",
                "apple apple cherry",
                "banana banana banana",
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn set_helpers() {
        assert_eq!(intersect_sorted(&[1, 3, 5], &[2, 3, 5, 8]), vec![3, 5]);
        assert_eq!(union_sorted(&[1, 3], &[2, 3, 9]), vec![1, 2, 3, 9]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<u32>::new());
        assert_eq!(union_sorted(&[], &[1]), vec![1]);
    }

    #[test]
    fn and_candidates() {
        let i = idx();
        let q = QueryExpr::and([QueryExpr::term("banana"), QueryExpr::term("cherry")]);
        assert_eq!(candidates(&i, &q).unwrap(), vec![0, 1]);
    }

    #[test]
    fn or_candidates() {
        let i = idx();
        let q = QueryExpr::or([QueryExpr::term("apple"), QueryExpr::term("egg")]);
        assert_eq!(candidates(&i, &q).unwrap(), vec![0, 2, 3]);
    }

    #[test]
    fn mixed_candidates() {
        let i = idx();
        // cherry AND (apple OR date) -> docs with cherry and either.
        let q = QueryExpr::and([
            QueryExpr::term("cherry"),
            QueryExpr::or([QueryExpr::term("apple"), QueryExpr::term("date")]),
        ]);
        assert_eq!(candidates(&i, &q).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn scores_sum_over_present_terms() {
        let i = idx();
        let q = QueryExpr::or([QueryExpr::term("apple"), QueryExpr::term("banana")]);
        let hits = evaluate(&i, &q, 10).unwrap();
        // Doc 0 contains both -> its score is the sum of both term scores.
        let d0 = hits.iter().find(|h| h.doc == 0).unwrap();
        let apple_only = {
            let q = QueryExpr::term("apple");
            evaluate(&i, &q, 10)
                .unwrap()
                .into_iter()
                .find(|h| h.doc == 0)
                .unwrap()
                .score
        };
        assert!(d0.score > apple_only);
    }

    #[test]
    fn top_k_truncates_in_rank_order() {
        let i = idx();
        let q = QueryExpr::term("banana");
        let hits = evaluate(&i, &q, 2).unwrap();
        assert_eq!(hits.len(), 2);
        assert!(hits[0].score >= hits[1].score);
        // Doc 4 has tf=3 and is the shortest banana-heavy doc.
        assert_eq!(hits[0].doc, 4);
    }

    #[test]
    fn unknown_term_is_error() {
        let i = idx();
        assert!(matches!(
            evaluate(&i, &QueryExpr::term("zzz"), 5),
            Err(Error::UnknownTerm { .. })
        ));
    }

    #[test]
    fn duplicate_term_counted_once() {
        let i = idx();
        let dup = QueryExpr::or([QueryExpr::term("apple"), QueryExpr::term("apple")]);
        let single = QueryExpr::term("apple");
        let h1 = evaluate(&i, &dup, 10).unwrap();
        let h2 = evaluate(&i, &single, 10).unwrap();
        assert_eq!(h1, h2);
    }
}
