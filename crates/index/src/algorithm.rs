//! The dynamic-pruning algorithm family: which query plan a traversal
//! uses to exploit the term-level and block-level score upper bounds the
//! index already pays for (19 B of metadata per block, including the
//! block-max term score).
//!
//! Every algorithm is *safe*: its top-k is bit-identical to the
//! exhaustive oracle ([`crate::reference::evaluate`]) for every query,
//! every `k`, and every corpus — the pruning only changes which blocks
//! are decoded and which documents are examined, never the result.

use serde::{Deserialize, Serialize};

/// A dynamic-pruning query plan, selectable per engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum QueryAlgorithm {
    /// No dynamic pruning: the traversal the engine always had.
    #[default]
    Exhaustive,
    /// Term-level upper bounds split the lists into an essential and a
    /// non-essential set; candidates come only from essential lists and
    /// non-essential lists are probed with early abandoning.
    MaxScore,
    /// Document-level WAND: a pivot over the sorted upper-bound frontier
    /// skips documents whose term-level bound cannot beat the threshold.
    Wand,
    /// Block-Max WAND: WAND pivoting refined by the per-block max scores,
    /// skipping whole blocks before they are ever decoded.
    BlockMaxWand,
    /// MaxScore with block-max refinement of the essential candidates.
    BlockMaxMaxScore,
}

/// All algorithms, in sweep order (exhaustive first as the baseline).
pub const ALL_ALGORITHMS: [QueryAlgorithm; 5] = [
    QueryAlgorithm::Exhaustive,
    QueryAlgorithm::MaxScore,
    QueryAlgorithm::Wand,
    QueryAlgorithm::BlockMaxWand,
    QueryAlgorithm::BlockMaxMaxScore,
];

impl QueryAlgorithm {
    /// Short label used by bench flags, TSV columns, and JSON reports.
    pub fn label(self) -> &'static str {
        match self {
            QueryAlgorithm::Exhaustive => "exhaustive",
            QueryAlgorithm::MaxScore => "maxscore",
            QueryAlgorithm::Wand => "wand",
            QueryAlgorithm::BlockMaxWand => "bmw",
            QueryAlgorithm::BlockMaxMaxScore => "bmm",
        }
    }

    /// Whether this plan prunes at all (everything but `Exhaustive`).
    pub fn prunes(self) -> bool {
        self != QueryAlgorithm::Exhaustive
    }

    /// Whether this plan consults the per-block max scores (and can skip
    /// a block before decoding it).
    pub fn is_block_max(self) -> bool {
        matches!(
            self,
            QueryAlgorithm::BlockMaxWand | QueryAlgorithm::BlockMaxMaxScore
        )
    }
}

impl std::fmt::Display for QueryAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for QueryAlgorithm {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "exhaustive" => Ok(QueryAlgorithm::Exhaustive),
            "maxscore" | "max-score" => Ok(QueryAlgorithm::MaxScore),
            "wand" => Ok(QueryAlgorithm::Wand),
            "bmw" | "block-max-wand" => Ok(QueryAlgorithm::BlockMaxWand),
            "bmm" | "block-max-maxscore" => Ok(QueryAlgorithm::BlockMaxMaxScore),
            other => Err(format!(
                "unknown algorithm {other:?} (expected exhaustive|maxscore|wand|bmw|bmm)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

    use super::*;

    #[test]
    fn labels_round_trip_through_from_str() {
        for a in ALL_ALGORITHMS {
            assert_eq!(a.label().parse::<QueryAlgorithm>().unwrap(), a);
        }
        assert_eq!(
            "Block-Max-Wand".parse::<QueryAlgorithm>().unwrap(),
            QueryAlgorithm::BlockMaxWand
        );
        assert!("nope".parse::<QueryAlgorithm>().is_err());
    }

    #[test]
    fn classification() {
        assert!(!QueryAlgorithm::Exhaustive.prunes());
        assert!(QueryAlgorithm::MaxScore.prunes());
        assert!(QueryAlgorithm::BlockMaxWand.is_block_max());
        assert!(QueryAlgorithm::BlockMaxMaxScore.is_block_max());
        assert!(!QueryAlgorithm::Wand.is_block_max());
        assert!(!QueryAlgorithm::MaxScore.is_block_max());
        assert_eq!(QueryAlgorithm::default(), QueryAlgorithm::Exhaustive);
    }
}
