//! A sharded LRU cache of *decoded* posting blocks.
//!
//! Decoding a 128-posting block is the functional model's hottest loop;
//! terms recur heavily across queries, so a small cache of decoded
//! `(docs, tfs)` columns keyed by `(TermId, block index)` removes most
//! repeat work from a batch.
//!
//! # Invariant: wall-clock only
//!
//! The cache exists **outside** the simulated machine. A cache hit skips
//! the host-side decode, but every simulated cost — block-data reads,
//! decompressor cycles, fetch counters, traces — must be charged by the
//! caller exactly as on a miss. Nothing the timing model reports may
//! depend on cache state; that is what keeps every figure bit-identical
//! with the cache on, off, or sized differently. Hit/miss statistics are
//! surfaced separately (never inside the per-query outcome) because
//! per-worker caches make hit patterns depend on batch chunking.
//!
//! The map is sharded by a fixed multiplicative hash of the key, with one
//! mutex and one intrusive LRU list per shard, so concurrent workers that
//! do share a cache contend only per shard. Counters are relaxed atomics.

use crate::{DocId, TermId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One decoded block: absolute docIDs plus term frequencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedBlock {
    /// Absolute docIDs of the block's postings.
    pub docs: Vec<DocId>,
    /// Term frequencies (post `+1` adjustment).
    pub tfs: Vec<u32>,
}

/// Snapshot of cache activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Lookups that found a decoded block.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries displaced by LRU eviction.
    pub evictions: u64,
}

impl BlockCacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates `other` into `self` (e.g. across executor workers).
    pub fn merge(&mut self, other: &BlockCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

type Key = (TermId, u32);

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Entry {
    key: Key,
    value: Arc<DecodedBlock>,
    prev: usize,
    next: usize,
}

/// One shard: hash map into a slab of entries threaded on an intrusive
/// doubly-linked LRU list (head = most recent).
#[derive(Debug)]
struct Shard {
    map: HashMap<Key, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    cap: usize,
}

impl Shard {
    fn new(cap: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(cap),
            slab: Vec::with_capacity(cap),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            cap,
        }
    }

    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    fn attach_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: Key) -> Option<Arc<DecodedBlock>> {
        let &i = self.map.get(&key)?;
        if self.head != i {
            self.detach(i);
            self.attach_front(i);
        }
        Some(Arc::clone(&self.slab[i].value))
    }

    /// Inserts (or refreshes) `key`; returns whether an entry was evicted.
    fn insert(&mut self, key: Key, value: Arc<DecodedBlock>) -> bool {
        if self.cap == 0 {
            // Disabled shard: nothing to hold, nothing to evict. Without
            // this guard the eviction path below would detach the NIL
            // sentinel and index the empty slab.
            return false;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].value = value;
            if self.head != i {
                self.detach(i);
                self.attach_front(i);
            }
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= self.cap {
            let victim = self.tail;
            self.detach(victim);
            self.map.remove(&self.slab[victim].key);
            self.free.push(victim);
            evicted = true;
        }
        let i = if let Some(i) = self.free.pop() {
            self.slab[i] = Entry {
                key,
                value,
                prev: NIL,
                next: NIL,
            };
            i
        } else {
            self.slab.push(Entry {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        };
        self.map.insert(key, i);
        self.attach_front(i);
        evicted
    }
}

/// Sharded LRU cache of decoded posting blocks, keyed by
/// `(TermId, block index)`. See the module docs for the wall-clock-only
/// invariant.
#[derive(Debug)]
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    capacity: usize,
}

/// Shards per cache; lookups hash into one, so workers sharing a cache
/// contend only when they touch the same shard.
const SHARDS: usize = 8;

impl BlockCache {
    /// A cache holding at most `capacity_blocks` decoded blocks.
    ///
    /// A capacity of zero yields a *disabled* cache: every lookup misses,
    /// inserts are dropped, and the counters still record the traffic —
    /// useful for turning caching off through config without changing the
    /// calling code.
    pub fn new(capacity_blocks: usize) -> Self {
        let capacity = capacity_blocks;
        let n_shards = SHARDS.min(capacity).max(1);
        let base = capacity / n_shards;
        let extra = capacity % n_shards;
        let shards = (0..n_shards)
            .map(|s| Mutex::new(Shard::new(base + usize::from(s < extra))))
            .collect();
        BlockCache {
            shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            capacity,
        }
    }

    /// Deterministic shard index for a key (fixed multiplicative hash —
    /// no per-process seeding, so eviction patterns are reproducible).
    fn shard_index(&self, key: Key) -> usize {
        let mixed = (u64::from(key.0) << 32 | u64::from(key.1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((mixed >> 32) as usize) % self.shards.len()
    }

    /// Looks up block `block` of `term`, bumping it to most-recent on hit.
    pub fn get(&self, term: TermId, block: u32) -> Option<Arc<DecodedBlock>> {
        let key = (term, block);
        // A poisoned shard means another thread panicked mid-operation;
        // the cache holds no invariants worth salvaging at that point.
        #[allow(clippy::expect_used)]
        let hit = self.shards[self.shard_index(key)]
            .lock()
            .expect("cache shard poisoned")
            .get(key);
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Inserts (or refreshes) a decoded block.
    pub fn insert(&self, term: TermId, block: u32, value: Arc<DecodedBlock>) {
        let key = (term, block);
        // See `get` on shard poisoning.
        #[allow(clippy::expect_used)]
        let evicted = self.shards[self.shard_index(key)]
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total decoded blocks the cache may hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Decoded blocks currently held.
    // See `get` on shard poisoning.
    #[allow(clippy::expect_used)]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> BlockCacheStats {
        BlockCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Resets the activity counters (cache contents are kept).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

/// Decodes block `block` of `list`, appending to `docs`/`tfs`, serving the
/// decode from `cache` when possible and populating it when not.
///
/// This only skips the *host-side* decode work — simulated accounting is
/// the caller's job and must not depend on hit/miss (see module docs).
///
/// # Errors
///
/// Returns codec errors on corrupt data, and the typed range/metadata
/// errors of [`crate::EncodedList::decode_block`] — an out-of-range
/// `block` is `Error::BlockOutOfRange`, never a panic.
pub fn decode_block_cached(
    list: &crate::EncodedList,
    term: TermId,
    block: usize,
    cache: Option<&BlockCache>,
    docs: &mut Vec<DocId>,
    tfs: &mut Vec<u32>,
) -> Result<(), crate::Error> {
    let Some(cache) = cache else {
        return list.decode_block(block, docs, tfs);
    };
    let bi = block as u32;
    if let Some(decoded) = cache.get(term, bi) {
        docs.extend_from_slice(&decoded.docs);
        tfs.extend_from_slice(&decoded.tfs);
        return Ok(());
    }
    let (dbase, tbase) = (docs.len(), tfs.len());
    list.decode_block(block, docs, tfs)?;
    cache.insert(
        term,
        bi,
        Arc::new(DecodedBlock {
            docs: docs[dbase..].to_vec(),
            tfs: tfs[tbase..].to_vec(),
        }),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(v: u32) -> Arc<DecodedBlock> {
        Arc::new(DecodedBlock {
            docs: vec![v],
            tfs: vec![1],
        })
    }

    #[test]
    fn hit_miss_and_eviction_counters() {
        let c = BlockCache::new(1); // single shard, single slot
        assert!(c.get(1, 0).is_none());
        c.insert(1, 0, block(10));
        assert_eq!(c.get(1, 0).unwrap().docs, vec![10]);
        c.insert(2, 0, block(20)); // displaces (1, 0)
        assert!(c.get(1, 0).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 2, 1));
        assert_eq!(s.lookups(), 3);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_order_is_recency_of_use() {
        // Exercise LRU within a single shard directly (shard choice is a
        // hash; a 2-entry shard makes the recency order observable).
        let mut s = Shard::new(2);
        s.insert((1, 0), block(1));
        s.insert((2, 0), block(2));
        assert!(s.get((1, 0)).is_some()); // (2,0) is now LRU
        assert!(s.insert((3, 0), block(3))); // evicts (2,0)
        assert!(s.get((2, 0)).is_none());
        assert!(s.get((1, 0)).is_some());
        assert!(s.get((3, 0)).is_some());
    }

    #[test]
    fn refresh_does_not_evict() {
        let mut s = Shard::new(2);
        s.insert((1, 0), block(1));
        s.insert((1, 1), block(2));
        assert!(!s.insert((1, 0), block(3)), "refresh evicts nothing");
        assert_eq!(s.get((1, 0)).unwrap().docs, vec![3]);
        assert_eq!(s.map.len(), 2);
    }

    #[test]
    fn zero_capacity_cache_is_disabled_not_a_panic() {
        let c = BlockCache::new(0);
        assert_eq!(c.capacity(), 0);
        assert!(c.get(1, 0).is_none());
        c.insert(1, 0, block(10)); // dropped, no eviction bookkeeping
        assert!(c.get(1, 0).is_none());
        assert!(c.is_empty());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (0, 2, 0));
    }

    #[test]
    fn capacity_splits_across_shards() {
        let c = BlockCache::new(20);
        assert_eq!(c.capacity(), 20);
        let total: usize = c.shards.iter().map(|s| s.lock().unwrap().cap).sum();
        assert_eq!(total, 20);
        assert!(c.is_empty());
    }

    #[test]
    fn stats_reset_keeps_contents() {
        let c = BlockCache::new(4);
        c.insert(7, 0, block(9));
        let _ = c.get(7, 0);
        c.reset_stats();
        assert_eq!(c.stats(), BlockCacheStats::default());
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(7, 0).unwrap().docs, vec![9]);
    }
}
