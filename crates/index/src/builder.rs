//! Index construction.

use crate::index::{InvertedIndex, TermInfo};
use crate::{Bm25, Bm25Params, EncodedList, Error, PostingList};
use boss_compress::{Scheme, ALL_SCHEMES};
use std::collections::BTreeMap;

/// How the builder picks a compression scheme per posting list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchemeChoice {
    /// Encode every list with every scheme and keep the smallest — the
    /// "hybrid" approach BOSS uses for its index (Section IV-A).
    #[default]
    Hybrid,
    /// Use one fixed scheme for all lists.
    Fixed(Scheme),
}

impl std::fmt::Display for SchemeChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemeChoice::Hybrid => f.write_str("hybrid"),
            SchemeChoice::Fixed(s) => write!(f, "{s}"),
        }
    }
}

impl std::str::FromStr for SchemeChoice {
    type Err = String;

    /// Parses the [`std::fmt::Display`] form back: `"hybrid"` or a scheme
    /// label (`BP`, `VB`, `OptPFD`, `S16`, `S8b`, `GVB`) — used by the
    /// segment manifest and CLI flags.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.eq_ignore_ascii_case("hybrid") {
            return Ok(SchemeChoice::Hybrid);
        }
        for scheme in [
            Scheme::Bp,
            Scheme::Vb,
            Scheme::OptPfd,
            Scheme::S16,
            Scheme::S8b,
            Scheme::GroupVarint,
        ] {
            if s.eq_ignore_ascii_case(scheme.label()) {
                return Ok(SchemeChoice::Fixed(scheme));
            }
        }
        Err(format!(
            "unknown scheme {s:?} (use hybrid|BP|VB|OptPFD|S16|S8b|GVB)"
        ))
    }
}

/// Fills zero (unknown) document lengths with the documents' tf sums —
/// the builder's fallback for injected posting lists without explicit
/// lengths. `tf_sums` must be indexed by docID like `doc_lens`.
pub(crate) fn fill_doc_lens(doc_lens: &mut [u32], tf_sums: &[u64]) {
    for (len, &sum) in doc_lens.iter_mut().zip(tf_sums) {
        if *len == 0 {
            *len = sum.min(u64::from(u32::MAX)) as u32;
        }
    }
}

/// Corpus-level scoring state derived from final document lengths: the
/// BM25 scorer (avgdl guarded away from zero) and the per-document
/// precomputed norms. Shared verbatim by the in-memory build and the
/// segment merge so both produce bit-identical scores.
///
/// # Panics
///
/// Panics if `doc_lens` is empty (callers reject empty corpora first).
pub(crate) fn scoring_from_lens(params: Bm25Params, doc_lens: &[u32]) -> (Bm25, Vec<f32>) {
    let n_docs = doc_lens.len();
    let total_len: u64 = doc_lens.iter().map(|&l| u64::from(l)).sum();
    let avgdl = (total_len as f64 / n_docs as f64).max(1.0) as f32;
    let bm25 = Bm25::new(params, n_docs as u32, avgdl);
    let doc_norms: Vec<f32> = doc_lens.iter().map(|&l| bm25.doc_norm(l)).collect();
    (bm25, doc_norms)
}

/// Encodes one posting list under the builder's scheme policy. The
/// hybrid tie-break (first scheme in [`ALL_SCHEMES`] order wins ties,
/// strictly smaller replaces) is the index's on-disk identity, so every
/// construction path — in-memory build and segment merge — must go
/// through this one function.
pub(crate) fn encode_term_list(
    plist: &PostingList,
    choice: SchemeChoice,
    bm25: &Bm25,
    idf: f32,
    norms: &[f32],
) -> Result<EncodedList, Error> {
    match choice {
        SchemeChoice::Fixed(s) => EncodedList::encode(plist, s, bm25, idf, norms),
        SchemeChoice::Hybrid => {
            let mut best: Option<EncodedList> = None;
            for s in ALL_SCHEMES {
                if let Ok(enc) = EncodedList::encode(plist, s, bm25, idf, norms) {
                    if best
                        .as_ref()
                        .is_none_or(|b| enc.data_bytes() < b.data_bytes())
                    {
                        best = Some(enc);
                    }
                }
            }
            // Infallible: BitPacking encodes every u32 slice.
            #[allow(clippy::expect_used)]
            Ok(best.expect("BP is total, so hybrid always has a candidate"))
        }
    }
}

/// Builder for [`InvertedIndex`].
///
/// Two input paths:
/// * [`IndexBuilder::add_documents`] tokenizes real text (whitespace +
///   punctuation split, lowercased) — used by examples and tests;
/// * [`IndexBuilder::add_posting_list`] injects pre-built posting lists —
///   used by the synthetic corpus generators, together with
///   [`IndexBuilder::doc_lens`] to supply document lengths.
///
/// Conflicting inputs are rejected at [`IndexBuilder::build`] with a
/// typed error instead of silently resolving last-write-wins:
/// * supplying explicit [`IndexBuilder::doc_lens`] *and* tokenized
///   [`IndexBuilder::add_documents`] (both define document lengths) is
///   [`Error::ConflictingDocLens`];
/// * injecting the same term twice via
///   [`IndexBuilder::add_posting_list`] is [`Error::DuplicateTerm`].
#[derive(Debug, Default)]
pub struct IndexBuilder {
    postings: BTreeMap<String, Vec<(u32, u32)>>,
    doc_lens: Vec<u32>,
    explicit_doc_lens: bool,
    tokenized_docs: bool,
    n_docs_from_text: u32,
    params: Bm25Params,
    scheme: SchemeChoice,
    /// First input conflict observed; surfaced by `build()`. Deferred so
    /// the chained `self -> Self` builder API stays panic-free.
    conflict: Option<Error>,
}

impl IndexBuilder {
    /// Creates an empty builder with default BM25 parameters and hybrid
    /// compression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the BM25 parameters.
    pub fn bm25_params(mut self, params: Bm25Params) -> Self {
        self.params = params;
        self
    }

    /// Sets the compression policy.
    pub fn scheme(mut self, choice: SchemeChoice) -> Self {
        self.scheme = choice;
        self
    }

    /// Supplies explicit document lengths (token counts). Required when
    /// building from injected posting lists whose tf sums do not reflect
    /// full document lengths. Conflicts with [`IndexBuilder::add_documents`]
    /// (which derives lengths from tokenization): mixing the two makes
    /// [`IndexBuilder::build`] return [`Error::ConflictingDocLens`].
    pub fn doc_lens(mut self, lens: Vec<u32>) -> Self {
        if self.tokenized_docs {
            self.conflict.get_or_insert(Error::ConflictingDocLens);
        }
        self.explicit_doc_lens = true;
        self.doc_lens = lens;
        self
    }

    /// Tokenizes and adds documents; docIDs are assigned in input order
    /// continuing from any previously added documents. Conflicts with
    /// explicit [`IndexBuilder::doc_lens`]; see there.
    pub fn add_documents<'a, I: IntoIterator<Item = &'a str>>(mut self, docs: I) -> Self {
        if self.explicit_doc_lens {
            self.conflict.get_or_insert(Error::ConflictingDocLens);
        }
        self.tokenized_docs = true;
        for text in docs {
            let doc = self.n_docs_from_text;
            self.n_docs_from_text += 1;
            let mut len = 0u32;
            let mut counts: BTreeMap<String, u32> = BTreeMap::new();
            for tok in text
                .split(|c: char| !c.is_alphanumeric())
                .filter(|t| !t.is_empty())
            {
                *counts.entry(tok.to_lowercase()).or_insert(0) += 1;
                len += 1;
            }
            for (term, tf) in counts {
                self.postings.entry(term).or_default().push((doc, tf));
            }
            if self.doc_lens.len() < (doc + 1) as usize {
                self.doc_lens.resize((doc + 1) as usize, 0);
            }
            self.doc_lens[doc as usize] = len;
        }
        self
    }

    /// Adds a pre-built posting list for `term`. Each term may be
    /// injected exactly once; a second list for the same term makes
    /// [`IndexBuilder::build`] return [`Error::DuplicateTerm`].
    pub fn add_posting_list(mut self, term: &str, list: &PostingList) -> Self {
        if self.postings.contains_key(term) {
            self.conflict.get_or_insert(Error::DuplicateTerm {
                term: term.to_owned(),
            });
            return self;
        }
        self.postings.insert(
            term.to_owned(),
            list.iter().map(|p| (p.doc, p.tf)).collect(),
        );
        self
    }

    /// Builds the index.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DuplicateTerm`] / [`Error::ConflictingDocLens`]
    /// for conflicting inputs, [`Error::UnsortedPostings`] /
    /// [`Error::ZeroTermFrequency`] for invalid posting data,
    /// [`Error::InvalidQuery`] for an empty corpus, and codec errors if
    /// no scheme can encode a list (cannot happen with hybrid).
    pub fn build(self) -> Result<InvertedIndex, Error> {
        let IndexBuilder {
            postings,
            mut doc_lens,
            params,
            scheme,
            conflict,
            ..
        } = self;
        if let Some(e) = conflict {
            return Err(e);
        }

        // Determine corpus size.
        let max_doc = postings
            .values()
            .flat_map(|v| v.iter().map(|&(d, _)| d))
            .max();
        let n_docs = match (max_doc, doc_lens.len()) {
            (Some(m), l) => (m as usize + 1).max(l),
            (None, l) => l,
        };
        if n_docs == 0 {
            return Err(Error::InvalidQuery {
                reason: "cannot build an empty index".into(),
            });
        }
        if doc_lens.len() < n_docs {
            doc_lens.resize(n_docs, 0);
        }
        // Documents with unknown length get their tf sums as length.
        let mut tf_sums = vec![0u64; n_docs];
        for list in postings.values() {
            for &(d, tf) in list {
                tf_sums[d as usize] += u64::from(tf);
            }
        }
        fill_doc_lens(&mut doc_lens, &tf_sums);
        // Guard against zero-length docs distorting avgdl of an index with
        // injected lists shorter than reality.
        let (bm25, doc_norms) = scoring_from_lens(params, &doc_lens);

        let mut terms = Vec::with_capacity(postings.len());
        let mut lists = Vec::with_capacity(postings.len());
        let mut vocab = std::collections::HashMap::with_capacity(postings.len());
        for (text, pairs) in postings {
            let docs: Vec<u32> = pairs.iter().map(|&(d, _)| d).collect();
            let tfs: Vec<u32> = pairs.iter().map(|&(_, tf)| tf).collect();
            let plist = PostingList::from_columns(docs, tfs)?;
            let df = plist.len() as u32;
            let idf = bm25.idf(df);

            let encoded = encode_term_list(&plist, scheme, &bm25, idf, &doc_norms)?;

            let id = terms.len() as u32;
            vocab.insert(text.clone(), id);
            terms.push(TermInfo { text, df, idf });
            lists.push(encoded);
        }

        Ok(InvertedIndex {
            vocab,
            terms,
            lists,
            doc_norms,
            doc_lens,
            bm25,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_from_text() {
        let idx = IndexBuilder::new()
            .add_documents(["Hello, World!", "hello hello rust"])
            .build()
            .unwrap();
        assert_eq!(idx.n_docs(), 2);
        let hello = idx.term_id("hello").unwrap();
        let (docs, tfs) = idx.list(hello).decode_all().unwrap();
        assert_eq!(docs, vec![0, 1]);
        assert_eq!(tfs, vec![1, 2]);
        assert!(idx.term_id("Hello").is_err(), "vocabulary is lowercased");
    }

    #[test]
    fn build_from_posting_lists() {
        let l1 = PostingList::from_columns(vec![0, 2, 5], vec![1, 2, 1]).unwrap();
        let l2 = PostingList::from_columns(vec![1, 2], vec![3, 1]).unwrap();
        let idx = IndexBuilder::new()
            .add_posting_list("alpha", &l1)
            .add_posting_list("beta", &l2)
            .doc_lens(vec![10, 10, 10, 10, 10, 10])
            .build()
            .unwrap();
        assert_eq!(idx.n_docs(), 6);
        assert_eq!(idx.term_info(idx.term_id("alpha").unwrap()).df, 3);
    }

    #[test]
    fn term_ids_in_lexical_order() {
        let idx = IndexBuilder::new()
            .add_documents(["zebra apple mango"])
            .build()
            .unwrap();
        assert_eq!(idx.term_id("apple").unwrap(), 0);
        assert_eq!(idx.term_id("mango").unwrap(), 1);
        assert_eq!(idx.term_id("zebra").unwrap(), 2);
    }

    #[test]
    fn empty_build_fails() {
        assert!(IndexBuilder::new().build().is_err());
    }

    #[test]
    fn hybrid_no_larger_than_any_fixed() {
        let docs: Vec<u32> = (0..1000).map(|i| i * 7).collect();
        let tfs = vec![1u32; 1000];
        let list = PostingList::from_columns(docs, tfs).unwrap();
        let hybrid = IndexBuilder::new()
            .add_posting_list("t", &list)
            .doc_lens(vec![5; 7000])
            .build()
            .unwrap();
        for s in ALL_SCHEMES {
            let fixed = IndexBuilder::new()
                .add_posting_list("t", &list)
                .doc_lens(vec![5; 7000])
                .scheme(SchemeChoice::Fixed(s))
                .build();
            if let Ok(fixed) = fixed {
                assert!(hybrid.total_data_bytes() <= fixed.total_data_bytes(), "{s}");
            }
        }
    }

    #[test]
    fn duplicate_injected_term_rejected() {
        let good = PostingList::from_columns(vec![5], vec![1]).unwrap();
        let also = PostingList::from_columns(vec![3], vec![1]).unwrap();
        // A second list for the same term used to accumulate silently;
        // it is now a typed build error.
        let err = IndexBuilder::new()
            .add_posting_list("t", &good)
            .add_posting_list("t", &also)
            .build()
            .unwrap_err();
        assert!(
            matches!(err, Error::DuplicateTerm { ref term } if term == "t"),
            "{err}"
        );
        // The first conflict wins even when later inputs are fine.
        let err = IndexBuilder::new()
            .add_posting_list("t", &good)
            .add_posting_list("t", &also)
            .add_posting_list("u", &good)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::DuplicateTerm { ref term } if term == "t"));
    }

    #[test]
    fn doc_lens_then_add_documents_rejected() {
        let err = IndexBuilder::new()
            .doc_lens(vec![4, 4])
            .add_documents(["a b", "b c"])
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::ConflictingDocLens), "{err}");
    }

    #[test]
    fn add_documents_then_doc_lens_rejected() {
        let err = IndexBuilder::new()
            .add_documents(["a b", "b c"])
            .doc_lens(vec![4, 4])
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::ConflictingDocLens), "{err}");
    }

    #[test]
    fn posting_lists_with_doc_lens_still_fine() {
        let l = PostingList::from_columns(vec![0, 1], vec![1, 1]).unwrap();
        let idx = IndexBuilder::new()
            .doc_lens(vec![3, 3])
            .add_posting_list("t", &l)
            .build()
            .unwrap();
        assert_eq!(idx.n_docs(), 2);
        assert_eq!(idx.doc_lens(), &[3, 3]);
    }
}
