//! Optional decode backend that routes block decodes through the Fig. 8
//! programmable decompression engine (`boss-decomp`) instead of the
//! scheme's software codec.
//!
//! The backend is a process-wide switch set by the bench binaries
//! (`--decode-netlist` / `--interpret-netlist`). All three backends are
//! bit-equal by construction — the netlist configurations decode every
//! scheme identically to the codecs (enforced by `boss-decomp`'s
//! equivalence tests), and figure timing charges cycles analytically from
//! block metadata, never from the host decode path — so switching
//! backends must leave every figure TSV byte-identical (CI-diffed). Only
//! wall-clock changes.

use crate::error::Error;
use boss_compress::Scheme;
use boss_decomp::{DecompEngine, EngineError};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which implementation [`crate::EncodedList::decode_block`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecodeBackend {
    /// The scheme's software codec (the default).
    #[default]
    Codec,
    /// The decompression engine running its compiled stage-2 plan.
    NetlistCompiled,
    /// The decompression engine running the interpreter oracle.
    NetlistInterpreted,
}

static BACKEND: AtomicU8 = AtomicU8::new(0);

/// Selects the process-wide decode backend.
pub fn set_decode_backend(backend: DecodeBackend) {
    let code = match backend {
        DecodeBackend::Codec => 0,
        DecodeBackend::NetlistCompiled => 1,
        DecodeBackend::NetlistInterpreted => 2,
    };
    BACKEND.store(code, Ordering::SeqCst);
}

/// The currently selected decode backend.
pub fn decode_backend() -> DecodeBackend {
    match BACKEND.load(Ordering::SeqCst) {
        1 => DecodeBackend::NetlistCompiled,
        2 => DecodeBackend::NetlistInterpreted,
        _ => DecodeBackend::Codec,
    }
}

/// Lazily built engines, one per scheme discriminant, for each path.
fn engines(interpret: bool) -> &'static [Option<DecompEngine>] {
    static COMPILED: OnceLock<Vec<Option<DecompEngine>>> = OnceLock::new();
    static INTERPRETED: OnceLock<Vec<Option<DecompEngine>>> = OnceLock::new();
    let cell = if interpret { &INTERPRETED } else { &COMPILED };
    cell.get_or_init(|| {
        let all = [
            Scheme::Bp,
            Scheme::Vb,
            Scheme::OptPfd,
            Scheme::S16,
            Scheme::S8b,
            Scheme::GroupVarint,
        ];
        let max = all.iter().map(|&s| s as usize).max().unwrap_or(0);
        let mut v: Vec<Option<DecompEngine>> = vec![None; max + 1];
        for s in all {
            v[s as usize] = DecompEngine::for_scheme(s)
                .ok()
                .map(|e| e.with_interpreter(interpret));
        }
        v
    })
}

/// The engine for `scheme`, or a typed error if its shipped configuration
/// failed to build (guarded against by `boss-decomp` tests).
pub(crate) fn engine_for(scheme: Scheme, interpret: bool) -> Result<&'static DecompEngine, Error> {
    engines(interpret)
        .get(scheme as usize)
        .and_then(|e| e.as_ref())
        .ok_or(Error::CorruptMetadata {
            reason: "no netlist configuration for scheme",
        })
}

/// Maps engine failures onto the index crate's typed errors.
pub(crate) fn netlist_error(e: EngineError) -> Error {
    match e {
        EngineError::Codec(c) => Error::Codec(c),
        EngineError::Exec(_) => Error::CorruptMetadata {
            reason: "netlist program fault",
        },
        EngineError::Stall { .. } => Error::CorruptMetadata {
            reason: "netlist decompression stalled",
        },
        _ => Error::CorruptMetadata {
            reason: "netlist decode failed",
        },
    }
}
