//! Property tests for the SPIMI segment pipeline: over random corpora,
//! every codec choice (hybrid plus the five fixed schemes), and 1–8
//! on-disk segments, the spill/merge path must reproduce the in-memory
//! [`IndexBuilder`] output **bit-identically** — vocabulary, postings,
//! block descriptors, per-block maxima, scoring tables. A second
//! property drives the same corpora through a byte budget small enough
//! to force spills mid-stream; a third round-trips single segment files
//! through the writer/reader pair.

use boss_compress::ALL_SCHEMES;
use boss_index::segment::{write_segment, SegmentReader};
use boss_index::{
    EncodedList, IndexBuilder, InvertedIndex, SchemeChoice, SpimiBuilder, SpimiConfig,
};
use proptest::prelude::*;

/// Vocabulary of 16 terms; masks select which appear in each document.
const VOCAB: usize = 16;

fn word(i: usize) -> String {
    format!("t{i:02}")
}

/// Renders per-doc draws into document text: `mask` selects vocabulary
/// words, `tf_sel` picks a small tie-heavy tf pattern. One
/// all-vocabulary document is appended so the corpus is never empty.
fn render(docs: &[(u16, u8)]) -> Vec<String> {
    docs.iter()
        .map(|&(mask, tf_sel)| {
            let mut words = Vec::new();
            for i in 0..VOCAB {
                if mask & (1 << i) != 0 {
                    let tf = 1 + (tf_sel as usize + i) % 3;
                    for _ in 0..tf {
                        words.push(word(i));
                    }
                }
            }
            if words.is_empty() {
                words.push(word(0));
            }
            words.join(" ")
        })
        .chain(std::iter::once(
            (0..VOCAB).map(word).collect::<Vec<_>>().join(" "),
        ))
        .collect()
}

fn scheme_choice(sel: usize) -> SchemeChoice {
    if sel == 0 {
        SchemeChoice::Hybrid
    } else {
        SchemeChoice::Fixed(ALL_SCHEMES[(sel - 1) % ALL_SCHEMES.len()])
    }
}

fn in_memory(texts: &[String], choice: SchemeChoice) -> InvertedIndex {
    IndexBuilder::new()
        .scheme(choice)
        .add_documents(texts.iter().map(String::as_str))
        .build()
        .expect("in-memory build")
}

fn via_segments(texts: &[String], cfg: SpimiConfig, tag: &str) -> InvertedIndex {
    let dir = std::env::temp_dir().join(format!(
        "boss-segprop-{tag}-{}-{:x}",
        std::process::id(),
        texts.len()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let mut builder = SpimiBuilder::create(&dir, cfg).expect("create");
    for text in texts {
        builder.add_document_text(text).expect("add document");
    }
    let set = builder.finish().expect("finish");
    let merged = set.merge().expect("merge");
    std::fs::remove_dir_all(&dir).ok();
    merged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: for any corpus, any codec choice, and any
    /// segment count 1–8, the spilled-and-merged index equals the
    /// in-memory build bit for bit.
    #[test]
    fn merge_is_bit_identical_to_in_memory_build(
        docs in prop::collection::vec((any::<u16>(), 0u8..4), 2..80),
        scheme_sel in 0usize..=ALL_SCHEMES.len(),
        n_segments in 1u32..=8,
    ) {
        let texts = render(&docs);
        let choice = scheme_choice(scheme_sel);
        let mem = in_memory(&texts, choice);
        let per_segment = (texts.len() as u32).div_ceil(n_segments);
        let cfg = SpimiConfig {
            max_docs_per_segment: per_segment,
            scheme: choice,
            ..SpimiConfig::default()
        };
        let seg = via_segments(&texts, cfg, &format!("n{n_segments}-s{scheme_sel}"));
        prop_assert_eq!(mem, seg);
    }

    /// Same identity when the *byte budget*, not a doc cap, decides the
    /// segment boundaries: a few-hundred-byte budget forces spills after
    /// nearly every document.
    #[test]
    fn budget_driven_spills_preserve_bit_identity(
        docs in prop::collection::vec((any::<u16>(), 0u8..4), 2..40),
        scheme_sel in 0usize..=ALL_SCHEMES.len(),
        budget in 256usize..4096,
    ) {
        let texts = render(&docs);
        let choice = scheme_choice(scheme_sel);
        let mem = in_memory(&texts, choice);
        let cfg = SpimiConfig {
            budget_bytes: budget,
            scheme: choice,
            ..SpimiConfig::default()
        };
        let seg = via_segments(&texts, cfg, &format!("b{budget}-s{scheme_sel}"));
        prop_assert_eq!(mem, seg);
    }

    /// Writer → reader round-trip of one segment file: every term comes
    /// back in order with an [`EncodedList`] equal to what went in, and
    /// the document-length array survives.
    #[test]
    fn segment_file_roundtrips(
        docs in prop::collection::vec((any::<u16>(), 0u8..4), 2..60),
        scheme_sel in 0usize..=ALL_SCHEMES.len(),
    ) {
        let texts = render(&docs);
        let index = in_memory(&texts, scheme_choice(scheme_sel));
        let mut terms: Vec<(String, EncodedList)> = index
            .term_ids()
            .map(|id| (index.term_info(id).text.clone(), index.list(id).clone()))
            .collect();
        terms.sort_by(|a, b| a.0.cmp(&b.0));

        let mut bytes = Vec::new();
        write_segment(&mut bytes, 0, index.doc_lens(), index.bm25().params(), &terms)
            .expect("segment serializes");

        let len = bytes.len() as u64;
        let mut reader = SegmentReader::new(&bytes[..], len).expect("segment parses");
        prop_assert_eq!(reader.header().n_docs, index.n_docs());
        prop_assert_eq!(reader.doc_lens(), index.doc_lens());
        let mut seen = Vec::new();
        while let Some(entry) = reader.next_term().expect("term parses") {
            seen.push(entry);
        }
        prop_assert_eq!(seen, terms);
    }
}
