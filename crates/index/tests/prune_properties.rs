//! Property tests for the dynamic-pruning family: over random corpora,
//! query widths 0–32, and k ∈ {1, 10, 100}, every algorithm (MaxScore,
//! WAND, BMW, BMM — plus the in-family exhaustive baseline) must return
//! the exact top-k of the exhaustive oracle, docIDs *and* f32 score
//! bits. Block metadata soundness rides along: no contained posting may
//! exceed its block-max bound, and a corrupt block-max must degrade to
//! a typed error or a safe over-estimate, never a wrong top-k.

use boss_index::prune::{pruned_union_topk, NullSink, PruneCounters};
use boss_index::{
    reference, Error, IndexBuilder, InvertedIndex, QueryExpr, SearchHit, TermId, ALL_ALGORITHMS,
};
use proptest::prelude::*;

/// Vocabulary of 32 terms — the maximum query width swept.
const VOCAB: usize = 32;

fn word(i: usize) -> String {
    format!("t{i:02}")
}

/// Builds a corpus from per-doc draws: `mask` selects which vocabulary
/// words appear, `tf_sel` picks a (small, tie-heavy) tf pattern. One
/// all-vocabulary document is appended so every query term exists.
fn build(docs: &[(u32, u8)]) -> InvertedIndex {
    let rendered: Vec<String> = docs
        .iter()
        .map(|&(mask, tf_sel)| {
            let mut words = Vec::new();
            for i in 0..VOCAB {
                if mask & (1 << i) != 0 {
                    let tf = 1 + (tf_sel as usize + i) % 3;
                    for _ in 0..tf {
                        words.push(word(i));
                    }
                }
            }
            if words.is_empty() {
                words.push(word(0));
            }
            words.join(" ")
        })
        .chain(std::iter::once(
            (0..VOCAB).map(word).collect::<Vec<_>>().join(" "),
        ))
        .collect();
    IndexBuilder::new()
        .add_documents(rendered.iter().map(|s| s.as_str()))
        .build()
        .expect("corpus builds")
}

fn bits(hits: &[SearchHit]) -> Vec<(u32, u32)> {
    hits.iter().map(|h| (h.doc, h.score.to_bits())).collect()
}

fn union_query(width: usize) -> (QueryExpr, Vec<String>) {
    let words: Vec<String> = (0..width).map(word).collect();
    let expr = QueryExpr::Or(words.iter().map(|w| QueryExpr::term(w.as_str())).collect());
    (expr, words)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: every algorithm in the family is *safe* —
    /// its top-k equals the exhaustive oracle's bit for bit, for any
    /// corpus, any union width 0–32, and k ∈ {1, 10, 100}.
    #[test]
    fn every_algorithm_matches_the_exhaustive_oracle(
        docs in prop::collection::vec((any::<u32>(), 0u8..4), 4..120),
        width in 0usize..=VOCAB,
        ksel in 0usize..3,
    ) {
        let index = build(&docs);
        let k = [1usize, 10, 100][ksel];
        if width == 0 {
            for algo in ALL_ALGORITHMS {
                let got = pruned_union_topk(&index, &[], algo, k, &mut NullSink)
                    .expect("empty term set evaluates");
                prop_assert!(got.hits.is_empty());
            }
            return Ok(());
        }
        let (expr, words) = union_query(width);
        let oracle = reference::evaluate(&index, &expr, k).expect("oracle evaluates");
        let terms: Vec<TermId> = words
            .iter()
            .map(|w| index.term_id(w).expect("term in vocabulary"))
            .collect();
        for algo in ALL_ALGORITHMS {
            let got = pruned_union_topk(&index, &terms, algo, k, &mut NullSink)
                .expect("pruned evaluation succeeds");
            prop_assert_eq!(
                bits(&got.hits),
                bits(&oracle),
                "algorithm {} diverged (width {}, k {})",
                algo, width, k
            );
        }
    }

    /// Metadata soundness: no posting inside a block scores above the
    /// block's max-score bound, and no block-max exceeds the list-level
    /// bound — the invariants every skip decision rests on.
    #[test]
    fn block_upper_bounds_dominate_contained_postings(
        docs in prop::collection::vec((any::<u32>(), 0u8..4), 4..120),
    ) {
        let index = build(&docs);
        let (mut ds, mut tfs) = (Vec::new(), Vec::new());
        for tid in 0..index.n_terms() as TermId {
            let list = index.list(tid);
            for b in 0..list.n_blocks() {
                let meta = &list.blocks()[b];
                prop_assert!(
                    meta.max_score <= list.max_score(),
                    "term {} block {} max {} above list max {}",
                    tid, b, meta.max_score, list.max_score()
                );
                ds.clear();
                tfs.clear();
                list.decode_block(b, &mut ds, &mut tfs).expect("block decodes");
                for (&d, &tf) in ds.iter().zip(&tfs) {
                    let s = index
                        .bm25()
                        .term_score(list.idf(), tf, index.doc_norms()[d as usize]);
                    prop_assert!(
                        s <= meta.max_score,
                        "term {} doc {} scores {} above block max {}",
                        tid, d, s, meta.max_score
                    );
                }
            }
        }
    }

    /// No algorithm ever decodes more blocks than the in-family
    /// exhaustive baseline (which touches every block of every list).
    #[test]
    fn pruning_never_decodes_more_than_exhaustive(
        docs in prop::collection::vec((any::<u32>(), 0u8..4), 4..120),
        width in 1usize..=8,
        ksel in 0usize..3,
    ) {
        let index = build(&docs);
        let k = [1usize, 10, 100][ksel];
        let (_, words) = union_query(width);
        let terms: Vec<TermId> = words
            .iter()
            .map(|w| index.term_id(w).expect("term in vocabulary"))
            .collect();
        let mut baseline = PruneCounters::default();
        pruned_union_topk(
            &index,
            &terms,
            boss_index::QueryAlgorithm::Exhaustive,
            k,
            &mut baseline,
        )
        .expect("exhaustive evaluates");
        for algo in ALL_ALGORITHMS {
            let mut c = PruneCounters::default();
            pruned_union_topk(&index, &terms, algo, k, &mut c).expect("evaluates");
            prop_assert!(
                c.blocks_decoded <= baseline.blocks_decoded,
                "{} decoded {} blocks, exhaustive {}",
                algo, c.blocks_decoded, baseline.blocks_decoded
            );
        }
    }

    /// Corruption harness: a mutated block-max (NaN, negative, +inf,
    /// inflated, or scaled) must either surface as a typed error or
    /// leave the top-k exactly the oracle's — never silently wrong.
    #[test]
    fn corrupt_block_max_degrades_safely(
        docs in prop::collection::vec((any::<u32>(), 0u8..4), 4..80),
        width in 1usize..=8,
        ksel in 0usize..3,
        tsel in any::<u32>(),
        bsel in any::<u32>(),
        msel in 0usize..5,
    ) {
        let k = [1usize, 10, 100][ksel];
        let (expr, words) = union_query(width);
        let base = build(&docs);
        let oracle = reference::evaluate(&base, &expr, k).expect("oracle evaluates");
        let terms: Vec<TermId> = words
            .iter()
            .map(|w| base.term_id(w).expect("term in vocabulary"))
            .collect();

        let mut index = build(&docs);
        let t = terms[tsel as usize % terms.len()];
        let list = index.list_mut(t);
        let b = bsel as usize % list.n_blocks();
        let blocks = list.blocks_mut();
        blocks[b].max_score = match msel {
            0 => f32::NAN,
            1 => -1.0,
            2 => f32::INFINITY,
            3 => f32::MAX,
            _ => blocks[b].max_score * 4.0,
        };
        for algo in ALL_ALGORITHMS {
            match pruned_union_topk(&index, &terms, algo, k, &mut NullSink) {
                Ok(got) => prop_assert_eq!(
                    bits(&got.hits),
                    bits(&oracle),
                    "algorithm {} silently wrong under mutation {}",
                    algo, msel
                ),
                Err(e) => prop_assert!(
                    matches!(e, Error::CorruptMetadata { .. } | Error::Codec(_)),
                    "unexpected error class: {e:?}"
                ),
            }
        }
    }
}
