//! Property tests for the shard layer: over random corpora, shard counts
//! 1–8, and tie-heavy score distributions, a scatter-gather merge of
//! per-shard top-k lists must equal the exhaustive single-index oracle —
//! docIDs *and* f32 scores, bit for bit.

use boss_index::shard::ShardedIndex;
use boss_index::{reference, Error, IndexBuilder, InvertedIndex, QueryExpr, SearchHit};
use proptest::prelude::*;

/// Six document templates over a four-term vocabulary. Heavy duplication
/// is deliberate: identical documents score identically, so every corpus
/// is saturated with score ties and the merge's docID tie-break is
/// exercised on every case.
const TEMPLATES: [&str; 6] = [
    "alpha",
    "alpha beta",
    "alpha beta beta",
    "alpha gamma",
    "beta gamma delta",
    "alpha beta gamma delta",
];

/// Builds an index from template codes, with one all-terms document
/// appended so every query term exists in the global vocabulary.
fn build(codes: &[usize]) -> InvertedIndex {
    let docs: Vec<&str> = codes
        .iter()
        .map(|&c| TEMPLATES[c % TEMPLATES.len()])
        .chain(std::iter::once("alpha beta gamma delta"))
        .collect();
    IndexBuilder::new()
        .add_documents(docs.iter().copied())
        .build()
        .expect("corpus builds")
}

/// The query shapes swept, indexed by a proptest-drawn selector. The
/// `delta`/`gamma` terms are rare enough to be absent from some shards,
/// so per-shard rewriting (absent `Or` child dropped, absent `And` child
/// killing the conjunction) is exercised too.
fn query(sel: usize) -> QueryExpr {
    match sel % 5 {
        0 => QueryExpr::term("alpha"),
        1 => QueryExpr::term("delta"),
        2 => QueryExpr::and([QueryExpr::term("alpha"), QueryExpr::term("beta")]),
        3 => QueryExpr::or([QueryExpr::term("beta"), QueryExpr::term("delta")]),
        _ => QueryExpr::or([
            QueryExpr::and([QueryExpr::term("alpha"), QueryExpr::term("gamma")]),
            QueryExpr::term("delta"),
        ]),
    }
}

/// Per-shard query rewrite, mirroring the engine-layer coordinator: a
/// term absent from the shard matches nothing there, an `And` with an
/// absent child matches nothing, an `Or` drops absent children.
fn rewrite(shard: &InvertedIndex, q: &QueryExpr) -> Option<QueryExpr> {
    match q {
        QueryExpr::Term(t) => shard.term_id(t).ok().map(|_| q.clone()),
        QueryExpr::And(subs) => subs
            .iter()
            .map(|s| rewrite(shard, s))
            .collect::<Option<Vec<_>>>()
            .map(QueryExpr::And),
        QueryExpr::Or(subs) => {
            let kept: Vec<_> = subs.iter().filter_map(|s| rewrite(shard, s)).collect();
            (!kept.is_empty()).then_some(QueryExpr::Or(kept))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The end-to-end property: split, evaluate per shard, merge — equal
    /// to evaluating the unsplit index, for any corpus, shard count, and
    /// k. Exact `SearchHit` equality means the f32 scores are
    /// bit-identical, not merely close: shards carry the global BM25
    /// statistics.
    #[test]
    fn scatter_gather_merge_equals_single_index_oracle(
        codes in prop::collection::vec(0usize..TEMPLATES.len(), 8..120),
        n_shards in 1u32..9,
        k in 1usize..40,
        sel in 0usize..5,
    ) {
        let index = build(&codes);
        let q = query(sel);
        let oracle = reference::evaluate(&index, &q, k).expect("oracle evaluates");

        let sharded = ShardedIndex::split(&index, n_shards).expect("split succeeds");
        let mut per_shard = Vec::with_capacity(sharded.n_shards());
        for shard in sharded.shards() {
            match rewrite(shard, &q) {
                None => per_shard.push(Vec::new()),
                Some(local) => per_shard.push(
                    reference::evaluate(shard, &local, k).expect("shard evaluates"),
                ),
            }
        }
        let merged = sharded.merge_topk(&per_shard, k);
        prop_assert_eq!(merged, oracle);
    }

    /// The merge in isolation, against a sort-the-concatenation oracle,
    /// over synthetic per-shard hit lists drawn from a three-value score
    /// pool (maximally tie-heavy): the streaming k-way merge must equal
    /// materializing every hit, sorting by the ranking order, and
    /// truncating.
    #[test]
    fn merge_topk_equals_sorted_concatenation(
        corpus_codes in prop::collection::vec(0usize..TEMPLATES.len(), 16..64),
        n_shards in 1u32..9,
        picks in prop::collection::vec((0u32..u32::MAX, 0usize..3), 0..60),
        k in 1usize..30,
    ) {
        let index = build(&corpus_codes);
        let sharded = ShardedIndex::split(&index, n_shards).expect("split succeeds");
        const SCORES: [f32; 3] = [0.25, 1.5, 1.5]; // pool weighted toward ties

        // Scatter the drawn (doc, score) picks across shards, keeping
        // local docIDs unique and in range, then sort each shard's list
        // the way an engine returns it.
        let n = sharded.n_shards();
        let mut per_shard: Vec<Vec<SearchHit>> = vec![Vec::new(); n];
        for (i, &(doc_draw, score_sel)) in picks.iter().enumerate() {
            let s = i % n;
            let shard_docs = sharded.shard(s).n_docs();
            let doc = doc_draw % shard_docs;
            if per_shard[s].iter().any(|h| h.doc == doc) {
                continue;
            }
            per_shard[s].push(SearchHit { doc, score: SCORES[score_sel] });
        }
        for hits in &mut per_shard {
            hits.sort_by(SearchHit::ranking_cmp);
        }

        let sh = &sharded;
        let mut oracle: Vec<SearchHit> = per_shard
            .iter()
            .enumerate()
            .flat_map(|(s, hits)| {
                hits.iter().map(move |h| SearchHit {
                    doc: sh.global_doc(s, h.doc),
                    score: h.score,
                })
            })
            .collect();
        oracle.sort_by(SearchHit::ranking_cmp);
        oracle.truncate(k);

        let merged = sharded.merge_topk(&per_shard, k);
        prop_assert_eq!(merged, oracle);
    }

    /// Shard-count invariance of the full pipeline: the merged result is
    /// the same `Vec<SearchHit>` for every shard count, because each
    /// equals the single-index oracle.
    #[test]
    fn merge_is_invariant_across_shard_counts(
        codes in prop::collection::vec(0usize..TEMPLATES.len(), 8..80),
        sel in 0usize..5,
        k in 1usize..25,
    ) {
        let index = build(&codes);
        let q = query(sel);
        let mut previous: Option<Vec<SearchHit>> = None;
        for n_shards in [1u32, 2, 3, 5, 8] {
            if n_shards > index.n_docs() {
                continue;
            }
            let sharded = ShardedIndex::split(&index, n_shards).expect("split succeeds");
            let per_shard: Vec<Vec<SearchHit>> = sharded
                .shards()
                .iter()
                .map(|shard| match rewrite(shard, &q) {
                    None => Ok(Vec::new()),
                    Some(local) => reference::evaluate(shard, &local, k),
                })
                .collect::<Result<_, Error>>()
                .expect("shards evaluate");
            let merged = sharded.merge_topk(&per_shard, k);
            if let Some(prev) = &previous {
                prop_assert_eq!(&merged, prev, "shard count {}", n_shards);
            }
            previous = Some(merged);
        }
    }
}
