//! Bandwidth timelines: effective bytes binned over cycle windows.
//!
//! Figures 11/12 report average bandwidth; a timeline shows *when* a
//! design saturates — bursts during block fetch, lulls during drain —
//! which is how one verifies the pipelined-overlap claims rather than
//! trusting an average.

use serde::{Deserialize, Serialize};

/// A histogram of effective bytes per fixed-width cycle bucket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    bucket_cycles: u64,
    buckets: Vec<u64>,
}

impl Timeline {
    /// Creates a timeline with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_cycles == 0`.
    pub fn new(bucket_cycles: u64) -> Self {
        assert!(bucket_cycles > 0, "bucket width must be positive");
        Timeline {
            bucket_cycles,
            buckets: Vec::new(),
        }
    }

    /// Records `bytes` of transfer completing at `cycle`.
    pub fn record(&mut self, cycle: u64, bytes: u64) {
        let idx = (cycle / self.bucket_cycles) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += bytes;
    }

    /// Bucket width in cycles.
    pub fn bucket_cycles(&self) -> u64 {
        self.bucket_cycles
    }

    /// Bytes per bucket, index 0 first.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Bandwidth of bucket `i` in GB/s (1 GHz clock).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_gbps(&self, i: usize) -> f64 {
        self.buckets[i] as f64 / self.bucket_cycles as f64
    }

    /// Peak bucket bandwidth in GB/s.
    pub fn peak_gbps(&self) -> f64 {
        self.buckets
            .iter()
            .map(|&b| b as f64 / self.bucket_cycles as f64)
            .fold(0.0, f64::max)
    }

    /// Mean bandwidth over the recorded span in GB/s (0.0 when empty).
    pub fn mean_gbps(&self) -> f64 {
        if self.buckets.is_empty() {
            return 0.0;
        }
        let total: u64 = self.buckets.iter().sum();
        total as f64 / (self.buckets.len() as u64 * self.bucket_cycles) as f64
    }

    /// Merges another timeline (same bucket width) into this one.
    ///
    /// # Panics
    ///
    /// Panics on mismatched bucket widths.
    pub fn merge(&mut self, other: &Timeline) {
        assert_eq!(
            self.bucket_cycles, other.bucket_cycles,
            "bucket widths must match"
        );
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, &b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_bucket_math() {
        let mut t = Timeline::new(100);
        t.record(0, 640);
        t.record(99, 640);
        t.record(100, 320);
        assert_eq!(t.buckets(), &[1280, 320]);
        assert!((t.bucket_gbps(0) - 12.8).abs() < 1e-12);
        assert!((t.peak_gbps() - 12.8).abs() < 1e-12);
        assert!((t.mean_gbps() - (1600.0 / 200.0)).abs() < 1e-12);
    }

    #[test]
    fn sparse_cycles_grow_buckets() {
        let mut t = Timeline::new(10);
        t.record(1000, 5);
        assert_eq!(t.buckets().len(), 101);
        assert_eq!(t.buckets()[100], 5);
    }

    #[test]
    fn merge_aligns_buckets() {
        let mut a = Timeline::new(10);
        a.record(5, 10);
        let mut b = Timeline::new(10);
        b.record(25, 20);
        a.merge(&b);
        assert_eq!(a.buckets(), &[10, 0, 20]);
    }

    #[test]
    #[should_panic(expected = "bucket widths")]
    fn merge_width_mismatch_panics() {
        let mut a = Timeline::new(10);
        a.merge(&Timeline::new(20));
    }

    #[test]
    fn empty_timeline() {
        let t = Timeline::new(50);
        assert_eq!(t.mean_gbps(), 0.0);
        assert_eq!(t.peak_gbps(), 0.0);
        assert_eq!(t.bucket_cycles(), 50);
    }
}
