//! Memory device configurations.

use serde::{Deserialize, Serialize};

/// The broad class of memory device being modeled.
///
/// Used by reports (and a couple of heuristics) to label results; all actual
/// timing comes from the numeric fields of [`MemoryConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryKind {
    /// Storage-class memory (Optane DCPMM-like).
    Scm,
    /// Conventional DRAM (DDR4-like).
    Dram,
}

impl std::fmt::Display for MemoryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryKind::Scm => f.write_str("SCM"),
            MemoryKind::Dram => f.write_str("DRAM"),
        }
    }
}

/// Timing/geometry description of a memory node.
///
/// Bandwidth figures are *aggregate* across all channels, in GB/s. Because
/// the simulation clock is 1 GHz, `x` GB/s is exactly `x` bytes per cycle.
///
/// The default constructors encode the configurations of Table I of the
/// paper: [`MemoryConfig::optane_dcpmm`] (25.6 GB/s sequential read,
/// 6.6 GB/s random read, 2.3 GB/s write over 4 channels) and
/// [`MemoryConfig::ddr4_2666`] (85.2 GB/s over 4 channels).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Device class, for labeling.
    pub kind: MemoryKind,
    /// Human-readable name used in reports.
    pub name: String,
    /// Number of memory channels in the node.
    pub channels: u32,
    /// Aggregate sequential-read bandwidth in GB/s.
    pub seq_read_gbps: f64,
    /// Aggregate random-read bandwidth in GB/s (small, scattered accesses).
    pub rand_read_gbps: f64,
    /// Aggregate write bandwidth in GB/s.
    pub write_gbps: f64,
    /// Idle read latency in nanoseconds (= cycles at 1 GHz) paid by an
    /// access that is not sequential with the previous one on its channel.
    pub read_latency_ns: u64,
    /// Write latency in nanoseconds for a non-sequential write.
    pub write_latency_ns: u64,
    /// Internal access granularity in bytes: every access is rounded up to
    /// a multiple of this (256 B for Optane, 64 B for DRAM).
    pub granule_bytes: u64,
    /// Address interleaving stride across channels, in bytes.
    pub interleave_bytes: u64,
}

impl MemoryConfig {
    /// Intel Optane DCPMM-like SCM node: 4 channels, 25.6 GB/s sequential
    /// read, 6.6 GB/s random read, 2.3 GB/s write, 256 B granularity.
    ///
    /// These are the numbers of Table I ("BOSS Memory System") of the paper,
    /// themselves taken from the empirical Optane studies it cites.
    pub fn optane_dcpmm() -> Self {
        MemoryConfig {
            kind: MemoryKind::Scm,
            name: "Optane-DCPMM-4ch".to_owned(),
            channels: 4,
            seq_read_gbps: 25.6,
            rand_read_gbps: 6.6,
            write_gbps: 2.3,
            read_latency_ns: 305,
            write_latency_ns: 94,
            granule_bytes: 256,
            interleave_bytes: 4096,
        }
    }

    /// DDR4-2666 DRAM node with 4 channels (85.2 GB/s), used by the paper's
    /// Figure 16 DRAM-vs-SCM comparison.
    pub fn ddr4_2666() -> Self {
        MemoryConfig {
            kind: MemoryKind::Dram,
            name: "DDR4-2666-4ch".to_owned(),
            channels: 4,
            seq_read_gbps: 85.2,
            rand_read_gbps: 42.6,
            write_gbps: 85.2,
            read_latency_ns: 81,
            write_latency_ns: 81,
            granule_bytes: 64,
            interleave_bytes: 4096,
        }
    }

    /// Host-side SCM configuration of Table I (6 channels, 39.6 GB/s reads),
    /// used when modeling the CPU baseline touching Optane directly.
    pub fn host_scm_6ch() -> Self {
        MemoryConfig {
            kind: MemoryKind::Scm,
            name: "Host-Optane-6ch".to_owned(),
            channels: 6,
            seq_read_gbps: 39.6,
            rand_read_gbps: 9.9,
            write_gbps: 3.45,
            read_latency_ns: 305,
            write_latency_ns: 94,
            granule_bytes: 256,
            interleave_bytes: 4096,
        }
    }

    /// Host-side DDR4 configuration of Table I (6 channels, 140.76 GB/s).
    pub fn host_ddr4_6ch() -> Self {
        MemoryConfig {
            kind: MemoryKind::Dram,
            name: "Host-DDR4-6ch".to_owned(),
            channels: 6,
            seq_read_gbps: 140.76,
            rand_read_gbps: 70.38,
            write_gbps: 140.76,
            read_latency_ns: 81,
            write_latency_ns: 81,
            granule_bytes: 64,
            interleave_bytes: 4096,
        }
    }

    /// Divide the node's bandwidth evenly among `n` concurrently active
    /// compute cores.
    ///
    /// The device simulation gives each core a private `MemorySim` carrying
    /// a `1/n` share of every bandwidth figure (latencies and granularity
    /// are physical properties and stay unchanged). This is the
    /// bandwidth-sharing approximation described in `DESIGN.md`: it renders
    /// the saturation behaviour of Figures 9/10 — a bandwidth-hungry design
    /// stops scaling once its per-core share is exhausted — without a
    /// global event queue across cores.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn share(&self, n: u32) -> Self {
        assert!(n > 0, "cannot share a memory node among zero cores");
        let f = f64::from(n);
        MemoryConfig {
            name: format!("{}/share{}", self.name, n),
            seq_read_gbps: self.seq_read_gbps / f,
            rand_read_gbps: self.rand_read_gbps / f,
            write_gbps: self.write_gbps / f,
            ..self.clone()
        }
    }

    /// Aggregate sequential-read bytes per core cycle (1 GHz clock).
    pub fn seq_read_bytes_per_cycle(&self) -> f64 {
        self.seq_read_gbps
    }

    /// Per-channel sequential-read bytes per cycle.
    pub fn seq_read_bytes_per_cycle_per_channel(&self) -> f64 {
        self.seq_read_gbps / f64::from(self.channels)
    }

    /// Per-channel random-read bytes per cycle.
    pub fn rand_read_bytes_per_cycle_per_channel(&self) -> f64 {
        self.rand_read_gbps / f64::from(self.channels)
    }

    /// Per-channel write bytes per cycle.
    pub fn write_bytes_per_cycle_per_channel(&self) -> f64 {
        self.write_gbps / f64::from(self.channels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optane_matches_paper_table1() {
        let c = MemoryConfig::optane_dcpmm();
        assert_eq!(c.channels, 4);
        assert!((c.seq_read_gbps - 25.6).abs() < 1e-9);
        assert!((c.rand_read_gbps - 6.6).abs() < 1e-9);
        assert!((c.write_gbps - 2.3).abs() < 1e-9);
        assert_eq!(c.granule_bytes, 256);
    }

    #[test]
    fn ddr4_is_faster_than_scm_everywhere() {
        let d = MemoryConfig::ddr4_2666();
        let s = MemoryConfig::optane_dcpmm();
        assert!(d.seq_read_gbps > s.seq_read_gbps);
        assert!(d.rand_read_gbps > s.rand_read_gbps);
        assert!(d.write_gbps > s.write_gbps);
        assert!(d.read_latency_ns < s.read_latency_ns);
    }

    #[test]
    fn share_divides_bandwidth_not_latency() {
        let c = MemoryConfig::optane_dcpmm();
        let s = c.share(8);
        assert!((s.seq_read_gbps - c.seq_read_gbps / 8.0).abs() < 1e-12);
        assert!((s.write_gbps - c.write_gbps / 8.0).abs() < 1e-12);
        assert_eq!(s.read_latency_ns, c.read_latency_ns);
        assert_eq!(s.granule_bytes, c.granule_bytes);
    }

    #[test]
    fn share_of_one_is_identity_on_bandwidth() {
        let c = MemoryConfig::optane_dcpmm();
        let s = c.share(1);
        assert!((s.seq_read_gbps - c.seq_read_gbps).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero cores")]
    fn share_zero_panics() {
        let _ = MemoryConfig::optane_dcpmm().share(0);
    }

    #[test]
    fn gbps_equals_bytes_per_cycle() {
        let c = MemoryConfig::optane_dcpmm();
        assert!((c.seq_read_bytes_per_cycle() - 25.6).abs() < 1e-12);
        assert!((c.seq_read_bytes_per_cycle_per_channel() - 6.4).abs() < 1e-12);
    }

    #[test]
    fn display_kind() {
        assert_eq!(MemoryKind::Scm.to_string(), "SCM");
        assert_eq!(MemoryKind::Dram.to_string(), "DRAM");
    }
}
