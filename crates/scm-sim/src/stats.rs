//! Traffic accounting, broken down the way Figure 15 of the paper reports it.

use serde::{Deserialize, Serialize};

/// Category of a memory access, matching the legend of Figure 15.
///
/// `LdMeta` (per-block skip/decompression metadata) is kept separate here so
/// the simulator can also answer block-skipping questions; the figure folds
/// it into `LD List`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessCategory {
    /// Compressed posting-list block loads.
    LdList,
    /// Per-block metadata loads (folded into `LD List` in Figure 15).
    LdMeta,
    /// Per-document scoring metadata loads (the precomputed BM25 norm).
    LdScore,
    /// Intermediate posting-list loads (multi-term queries that spill).
    LdInter,
    /// Intermediate posting-list stores.
    StInter,
    /// Final result stores crossing the shared host interconnect.
    StResult,
}

/// All categories, in the order figures report them.
pub const ACCESS_CATEGORIES: [AccessCategory; 6] = [
    AccessCategory::LdList,
    AccessCategory::LdMeta,
    AccessCategory::LdScore,
    AccessCategory::LdInter,
    AccessCategory::StInter,
    AccessCategory::StResult,
];

impl AccessCategory {
    fn idx(self) -> usize {
        match self {
            AccessCategory::LdList => 0,
            AccessCategory::LdMeta => 1,
            AccessCategory::LdScore => 2,
            AccessCategory::LdInter => 3,
            AccessCategory::StInter => 4,
            AccessCategory::StResult => 5,
        }
    }

    /// The label Figure 15 uses for this category.
    pub fn label(self) -> &'static str {
        match self {
            AccessCategory::LdList => "LD List",
            AccessCategory::LdMeta => "LD Meta",
            AccessCategory::LdScore => "LD Score",
            AccessCategory::LdInter => "LD Inter",
            AccessCategory::StInter => "ST Inter",
            AccessCategory::StResult => "ST Result",
        }
    }
}

impl std::fmt::Display for AccessCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-device fault-counter snapshot (see [`MemStats::fault_counts`]).
///
/// Each simulated memory device accumulates its own [`MemStats`]; in a
/// multi-device (sharded) system these snapshots are what the
/// coordinator compares to rank replica health and what benches report
/// as the labeled per-shard breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounts {
    /// Reads that touched an uncorrectable line.
    pub faulted_reads: u64,
    /// Accesses slowed by per-channel bandwidth degradation.
    pub degraded_accesses: u64,
    /// Accesses that started inside a latency-spike window.
    pub latency_spikes: u64,
}

impl FaultCounts {
    /// Total fault events of any class.
    pub fn total(&self) -> u64 {
        self.faulted_reads + self.degraded_accesses + self.latency_spikes
    }
}

impl std::fmt::Display for FaultCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "faulted_reads {} degraded {} spikes {}",
            self.faulted_reads, self.degraded_accesses, self.latency_spikes
        )
    }
}

/// Aggregated traffic counters for one simulation.
///
/// Byte counts are *logical* (what the pipeline asked for); the device-level
/// cost of granule rounding shows up in cycle accounting, not here, so that
/// the per-category breakdown matches what an RTL trace would report.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MemStats {
    bytes: [u64; 6],
    counts: [u64; 6],
    /// Logical bytes transferred by accesses classified as sequential.
    pub seq_bytes: u64,
    /// Logical bytes transferred by accesses classified as random.
    pub rand_bytes: u64,
    /// Number of accesses classified as random.
    pub rand_accesses: u64,
    /// Effective bytes moved on the device (logical bytes rounded up to
    /// the minimum transfer unit) — what bandwidth figures should count.
    pub effective_bytes: u64,
    /// Total channel-busy cycles summed over channels.
    pub busy_cycles: u64,
    /// Completion cycle of the latest access seen so far.
    pub last_done_cycle: u64,
    /// Reads that touched an uncorrectable line under the active
    /// [`FaultPlan`](crate::FaultPlan). Always zero without a plan.
    pub faulted_reads: u64,
    /// Accesses slowed by per-channel bandwidth degradation. Always zero
    /// without a plan.
    pub degraded_accesses: u64,
    /// Accesses that started inside a latency-spike window. Always zero
    /// without a plan.
    pub latency_spikes: u64,
}

impl MemStats {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record(
        &mut self,
        cat: AccessCategory,
        bytes: u64,
        effective: u64,
        sequential: bool,
        busy: u64,
        done: u64,
    ) {
        self.bytes[cat.idx()] += bytes;
        self.effective_bytes += effective;
        self.counts[cat.idx()] += 1;
        if sequential {
            self.seq_bytes += bytes;
        } else {
            self.rand_bytes += bytes;
            self.rand_accesses += 1;
        }
        self.busy_cycles += busy;
        self.last_done_cycle = self.last_done_cycle.max(done);
    }

    pub(crate) fn record_fault(&mut self, uncorrectable: bool, degraded: bool, spiked: bool) {
        if uncorrectable {
            self.faulted_reads += 1;
        }
        if degraded {
            self.degraded_accesses += 1;
        }
        if spiked {
            self.latency_spikes += 1;
        }
    }

    /// Total fault events of any class recorded so far.
    pub fn fault_events(&self) -> u64 {
        self.fault_counts().total()
    }

    /// Snapshot of the fault counters alone — the per-device health
    /// signal multi-device telemetry aggregates, labeled per class so a
    /// degraded device's symptom (poison lines vs. bandwidth derating
    /// vs. latency spikes) stays visible after aggregation.
    pub fn fault_counts(&self) -> FaultCounts {
        FaultCounts {
            faulted_reads: self.faulted_reads,
            degraded_accesses: self.degraded_accesses,
            latency_spikes: self.latency_spikes,
        }
    }

    /// Logical bytes moved in `cat`.
    pub fn bytes(&self, cat: AccessCategory) -> u64 {
        self.bytes[cat.idx()]
    }

    /// Number of accesses issued in `cat`.
    pub fn count(&self, cat: AccessCategory) -> u64 {
        self.counts[cat.idx()]
    }

    /// Total logical bytes across all categories.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total access count across all categories.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Bytes read (all load categories).
    pub fn read_bytes(&self) -> u64 {
        self.bytes(AccessCategory::LdList)
            + self.bytes(AccessCategory::LdMeta)
            + self.bytes(AccessCategory::LdScore)
            + self.bytes(AccessCategory::LdInter)
    }

    /// Bytes written (all store categories).
    pub fn write_bytes(&self) -> u64 {
        self.bytes(AccessCategory::StInter) + self.bytes(AccessCategory::StResult)
    }

    /// Achieved device bandwidth in GB/s over an interval of `cycles` core
    /// cycles (1 GHz clock: bytes/cycle == GB/s), counting effective
    /// (line-granular) bytes the way a bandwidth monitor would.
    ///
    /// Returns 0.0 for an empty interval.
    pub fn achieved_gbps(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.effective_bytes as f64 / cycles as f64
        }
    }

    /// Merge another counter set into this one (e.g. across cores).
    pub fn merge(&mut self, other: &MemStats) {
        for i in 0..6 {
            self.bytes[i] += other.bytes[i];
            self.counts[i] += other.counts[i];
        }
        self.seq_bytes += other.seq_bytes;
        self.rand_bytes += other.rand_bytes;
        self.rand_accesses += other.rand_accesses;
        self.effective_bytes += other.effective_bytes;
        self.busy_cycles += other.busy_cycles;
        self.last_done_cycle = self.last_done_cycle.max(other.last_done_cycle);
        self.faulted_reads += other.faulted_reads;
        self.degraded_accesses += other.degraded_accesses;
        self.latency_spikes += other.latency_spikes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut s = MemStats::new();
        s.record(AccessCategory::LdList, 100, 128, true, 10, 50);
        s.record(AccessCategory::LdList, 100, 128, false, 20, 90);
        s.record(AccessCategory::StResult, 8, 64, false, 4, 120);
        assert_eq!(s.bytes(AccessCategory::LdList), 200);
        assert_eq!(s.count(AccessCategory::LdList), 2);
        assert_eq!(s.bytes(AccessCategory::StResult), 8);
        assert_eq!(s.total_bytes(), 208);
        assert_eq!(s.total_count(), 3);
        assert_eq!(s.seq_bytes, 100);
        assert_eq!(s.rand_bytes, 108);
        assert_eq!(s.rand_accesses, 2);
        assert_eq!(s.busy_cycles, 34);
        assert_eq!(s.last_done_cycle, 120);
    }

    #[test]
    fn read_write_split() {
        let mut s = MemStats::new();
        s.record(AccessCategory::LdMeta, 19, 64, true, 1, 1);
        s.record(AccessCategory::LdScore, 4, 64, false, 1, 2);
        s.record(AccessCategory::LdInter, 64, 64, true, 1, 3);
        s.record(AccessCategory::StInter, 64, 64, true, 1, 4);
        s.record(AccessCategory::StResult, 8, 64, true, 1, 5);
        assert_eq!(s.read_bytes(), 19 + 4 + 64);
        assert_eq!(s.write_bytes(), 64 + 8);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = MemStats::new();
        a.record(AccessCategory::LdList, 10, 64, true, 2, 30);
        let mut b = MemStats::new();
        b.record(AccessCategory::LdList, 5, 64, false, 3, 40);
        a.merge(&b);
        assert_eq!(a.bytes(AccessCategory::LdList), 15);
        assert_eq!(a.rand_accesses, 1);
        assert_eq!(a.busy_cycles, 5);
        assert_eq!(a.last_done_cycle, 40);
    }

    #[test]
    fn achieved_bandwidth() {
        let mut s = MemStats::new();
        s.record(AccessCategory::LdList, 2560, 2560, true, 100, 100);
        assert!((s.achieved_gbps(100) - 25.6).abs() < 1e-9);
        assert_eq!(s.achieved_gbps(0), 0.0);
    }

    #[test]
    fn fault_counts_snapshot() {
        let mut s = MemStats::new();
        s.record_fault(true, false, true);
        s.record_fault(false, true, true);
        let fc = s.fault_counts();
        assert_eq!(fc.faulted_reads, 1);
        assert_eq!(fc.degraded_accesses, 1);
        assert_eq!(fc.latency_spikes, 2);
        assert_eq!(fc.total(), 4);
        assert_eq!(s.fault_events(), 4);
        assert_eq!(fc.to_string(), "faulted_reads 1 degraded 1 spikes 2");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AccessCategory::LdList.label(), "LD List");
        assert_eq!(AccessCategory::StResult.to_string(), "ST Result");
        assert_eq!(ACCESS_CATEGORIES.len(), 6);
    }
}
