//! Channel-level memory timing simulator for the BOSS reproduction.
//!
//! The BOSS paper evaluates its accelerator against an SCM (Intel Optane
//! DCPMM-like) memory system whose defining properties are *bandwidth
//! asymmetries*: sequential reads are several times faster than random
//! reads, writes are much slower than reads, and the whole device is far
//! slower than DRAM. This crate models exactly those properties at the
//! channel level:
//!
//! * a configurable number of channels with address interleaving,
//! * per-channel ready times (queueing), so bursts of requests from a
//!   pipelined core contend realistically,
//! * device access granularity (256 B for Optane's internal "XPLine",
//!   64 B for DRAM), so tiny random reads pay for a full granule,
//! * per-category traffic accounting (`LD List`, `LD Score`, `LD Inter`,
//!   `ST Inter`, `ST Result`, metadata) feeding the paper's Figure 15.
//!
//! All timing is expressed in *core cycles* at the accelerator clock of
//! 1 GHz, which makes 1 GB/s exactly 1 byte/cycle and keeps the arithmetic
//! transparent.

// The simulator sits on every decode/fault path; corruption must surface
// as typed errors, so panicking constructs need a per-site justification.
#![warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
//!
//! # Example
//!
//! ```
//! use boss_scm::{AccessCategory, AccessKind, MemoryConfig, MemorySim, PatternHint};
//!
//! let mut mem = MemorySim::new(MemoryConfig::optane_dcpmm());
//! // A 1 KiB sequential read of posting-list data starting at cycle 0:
//! let done = mem.access(0x1000, 1024, AccessKind::Read, AccessCategory::LdList,
//!                       PatternHint::Sequential, 0);
//! assert!(done > 0);
//! assert_eq!(mem.stats().bytes(AccessCategory::LdList), 1024);
//! ```

mod config;
mod fault;
mod sim;
mod stats;
pub mod timeline;

pub use config::{MemoryConfig, MemoryKind};
pub use fault::{FaultPlan, FAULT_LINE_BYTES};
pub use sim::{AccessKind, AccessResult, MemorySim, PatternHint, MIN_TRANSFER_BYTES};
pub use stats::{AccessCategory, FaultCounts, MemStats, ACCESS_CATEGORIES};
pub use timeline::Timeline;
