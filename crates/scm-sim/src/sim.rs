//! The channel-level timing model.

use crate::config::MemoryConfig;
use crate::fault::FaultPlan;
use crate::stats::{AccessCategory, MemStats};

/// Minimum transfer unit charged per access (a cache line); smaller
/// requests still move a full line.
pub const MIN_TRANSFER_BYTES: u64 = 64;

/// Whether an access reads or writes the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Read from memory.
    Read,
    /// Write to memory.
    Write,
}

/// Caller hint about the spatial pattern of an access.
///
/// `Auto` lets the simulator detect sequentiality by comparing the access
/// address with the end of the previous access on the same channel, which is
/// what a memory controller's prefetch/row-buffer logic effectively sees.
/// `Sequential`/`Random` force the classification — used e.g. by the IIU
/// model whose binary-search probes are random by construction even when
/// they occasionally land adjacent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PatternHint {
    /// Detect from the address stream.
    #[default]
    Auto,
    /// Treat as part of a sequential stream.
    Sequential,
    /// Treat as an isolated random access.
    Random,
}

#[derive(Debug, Clone, Default)]
struct Channel {
    /// First cycle at which the channel can accept a new request.
    ready: u64,
    /// One past the last byte address touched by the previous read.
    last_read_end: u64,
    /// One past the last byte address touched by the previous write.
    last_write_end: u64,
}

/// A single memory node (a set of channels) with timing and accounting.
///
/// The simulator is deliberately single-owner (`&mut self` API): the device
/// model drives it from one discrete-event loop. See the crate docs for an
/// example.
#[derive(Debug, Clone)]
pub struct MemorySim {
    config: MemoryConfig,
    channels: Vec<Channel>,
    stats: MemStats,
    fault: Option<FaultPlan>,
}

/// Completion information of one checked access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Completion cycle of the access.
    pub done: u64,
    /// True when a read touched an uncorrectable line under the attached
    /// [`FaultPlan`]; always false when no plan is attached.
    pub faulted: bool,
}

impl MemorySim {
    /// Creates a node with the given configuration.
    pub fn new(config: MemoryConfig) -> Self {
        let channels = vec![Channel::default(); config.channels as usize];
        MemorySim {
            config,
            channels,
            stats: MemStats::new(),
            fault: None,
        }
    }

    /// Creates a node with a fault plan attached.
    pub fn with_fault_plan(config: MemoryConfig, plan: FaultPlan) -> Self {
        let mut sim = Self::new(config);
        sim.fault = Some(plan);
        sim
    }

    /// Attaches or removes the fault plan.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// The configuration this node was built with.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Accumulated traffic counters.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Reset counters and channel state (e.g. between measured queries).
    pub fn reset(&mut self) {
        for ch in &mut self.channels {
            *ch = Channel::default();
        }
        self.stats = MemStats::new();
    }

    /// Take the counters, leaving zeros behind. Channel timing state is kept.
    pub fn take_stats(&mut self) -> MemStats {
        std::mem::take(&mut self.stats)
    }

    fn channel_index(&self, addr: u64) -> usize {
        ((addr / self.config.interleave_bytes) % u64::from(self.config.channels)) as usize
    }

    /// Issue one access and return its completion cycle.
    ///
    /// `earliest` is the cycle at which the requesting pipeline stage has
    /// the request ready; the access starts at
    /// `max(earliest, channel_ready)`. `bytes` may be any size, with a
    /// [`MIN_TRANSFER_BYTES`] minimum charged; non-sequential accesses
    /// additionally experience the idle latency in their completion time.
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    pub fn access(
        &mut self,
        addr: u64,
        bytes: u64,
        kind: AccessKind,
        cat: AccessCategory,
        pattern: PatternHint,
        earliest: u64,
    ) -> u64 {
        self.access_checked(addr, bytes, kind, cat, pattern, earliest)
            .done
    }

    /// Like [`MemorySim::access`], but also reports whether the access
    /// touched an uncorrectable line under the attached [`FaultPlan`].
    ///
    /// Without a plan this is exactly `access` (identical timing and
    /// counters) with `faulted` always false.
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    pub fn access_checked(
        &mut self,
        addr: u64,
        bytes: u64,
        kind: AccessKind,
        cat: AccessCategory,
        pattern: PatternHint,
        earliest: u64,
    ) -> AccessResult {
        assert!(bytes > 0, "zero-byte memory access");
        let ch_idx = self.channel_index(addr);
        let granule = self.config.granule_bytes;

        let (last_end, seq_bpc, lat) = {
            let ch = &self.channels[ch_idx];
            match kind {
                AccessKind::Read => (
                    ch.last_read_end,
                    self.config.seq_read_bytes_per_cycle_per_channel(),
                    self.config.read_latency_ns,
                ),
                AccessKind::Write => (
                    ch.last_write_end,
                    self.config.write_bytes_per_cycle_per_channel(),
                    self.config.write_latency_ns,
                ),
            }
        };

        let sequential = match pattern {
            PatternHint::Sequential => true,
            PatternHint::Random => false,
            // Auto: sequential if this access begins within one granule of
            // where the previous same-kind access on this channel ended.
            PatternHint::Auto => {
                addr >= last_end.saturating_sub(granule)
                    && addr <= last_end + granule
                    && last_end != 0
            }
        };

        let bpc = match (kind, sequential) {
            (AccessKind::Read, true) => seq_bpc,
            (AccessKind::Read, false) => self.config.rand_read_bytes_per_cycle_per_channel(),
            (AccessKind::Write, _) => seq_bpc,
        };
        // The configured bandwidths are *achieved* figures from the
        // empirical Optane studies, which already fold in device-granule
        // amplification; the channel is therefore occupied for the
        // transfer at that effective rate, with a 64 B minimum transfer
        // unit. Idle latency is experienced by the requester (it delays
        // `done`) but does not serialize the channel — memory controllers
        // pipeline outstanding requests.
        // Sequential accesses are parts of a stream: consecutive requests
        // coalesce, so they cost their actual bytes. Isolated (random)
        // accesses move at least one line.
        let eff_bytes = if sequential {
            bytes
        } else {
            bytes.max(MIN_TRANSFER_BYTES)
        };
        let mut busy = ((eff_bytes as f64 / bpc).ceil() as u64).max(1);

        // Fault plan, part 1: a degraded channel moves the same bytes at a
        // reduced rate. Consulted only when a plan is attached, so the
        // no-plan timing is bit-identical to the pre-fault model.
        let mut degraded = false;
        if let Some(plan) = &self.fault {
            let factor = plan.channel_factor(ch_idx);
            if factor < 1.0 {
                busy = ((eff_bytes as f64 / (bpc * factor)).ceil() as u64).max(1);
                degraded = true;
            }
        }

        let start = earliest.max(self.channels[ch_idx].ready);
        let mut done = start + busy + if sequential { 0 } else { lat };

        // Fault plan, parts 2 and 3: latency-spike windows delay the
        // requester (like background wear-leveling), and reads touching an
        // uncorrectable line are flagged to the caller.
        let mut spiked = false;
        let mut faulted = false;
        if let Some(plan) = &self.fault {
            if plan.in_spike_window(start) {
                done += plan.spike_extra_ns;
                spiked = true;
            }
            faulted = kind == AccessKind::Read && plan.span_is_uncorrectable(addr, bytes);
        }

        let ch = &mut self.channels[ch_idx];
        ch.ready = start + busy;
        let end = addr + bytes;
        match kind {
            AccessKind::Read => ch.last_read_end = end,
            AccessKind::Write => ch.last_write_end = end,
        }
        self.stats
            .record(cat, bytes, eff_bytes, sequential, busy, done);
        if faulted || degraded || spiked {
            self.stats.record_fault(faulted, degraded, spiked);
        }
        AccessResult { done, faulted }
    }

    /// Convenience: sequential read.
    pub fn read_seq(&mut self, addr: u64, bytes: u64, cat: AccessCategory, earliest: u64) -> u64 {
        self.access(
            addr,
            bytes,
            AccessKind::Read,
            cat,
            PatternHint::Sequential,
            earliest,
        )
    }

    /// Convenience: random read.
    pub fn read_rand(&mut self, addr: u64, bytes: u64, cat: AccessCategory, earliest: u64) -> u64 {
        self.access(
            addr,
            bytes,
            AccessKind::Read,
            cat,
            PatternHint::Random,
            earliest,
        )
    }

    /// Convenience: sequential write.
    pub fn write_seq(&mut self, addr: u64, bytes: u64, cat: AccessCategory, earliest: u64) -> u64 {
        self.access(
            addr,
            bytes,
            AccessKind::Write,
            cat,
            PatternHint::Sequential,
            earliest,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryConfig;

    fn sim() -> MemorySim {
        MemorySim::new(MemoryConfig::optane_dcpmm())
    }

    #[test]
    fn sequential_read_cost_matches_bandwidth() {
        let mut m = sim();
        // 6.4 B/cycle per channel; 6400 B sequential => 1000 cycles.
        let done = m.read_seq(0, 6400, AccessCategory::LdList, 0);
        assert_eq!(done, 1000);
    }

    #[test]
    fn random_read_pays_latency() {
        let mut m = sim();
        let d_seq = m.read_seq(0, 256, AccessCategory::LdList, 0);
        let mut m2 = sim();
        let d_rand = m2.read_rand(0, 256, AccessCategory::LdList, 0);
        assert!(d_rand > d_seq + 100, "random {d_rand} vs seq {d_seq}");
    }

    #[test]
    fn small_access_charged_a_full_line() {
        let mut m = sim();
        let d4 = m.read_rand(0, 4, AccessCategory::LdScore, 0);
        let mut m2 = sim();
        let d64 = m2.read_rand(0, 64, AccessCategory::LdScore, 0);
        assert_eq!(d4, d64, "4 B random read moves a full 64 B line");
        // but the *logical* byte count is what was asked for
        assert_eq!(m.stats().bytes(AccessCategory::LdScore), 4);
    }

    #[test]
    fn random_latency_does_not_serialize_channel() {
        // Two random reads on the same channel: the second starts as soon
        // as the first's transfer ends, not after its full latency.
        let mut m = sim();
        let d1 = m.read_rand(0, 64, AccessCategory::LdScore, 0);
        let d2 = m.read_rand(1024, 64, AccessCategory::LdScore, 0);
        let lat = m.config().read_latency_ns;
        assert!(d2 < d1 + lat, "pipelined: {d2} vs serialized {}", d1 + lat);
    }

    #[test]
    fn writes_slower_than_reads() {
        let mut m = sim();
        let dr = m.read_seq(0, 4096, AccessCategory::LdList, 0);
        let mut m2 = sim();
        let dw = m2.write_seq(0, 4096, AccessCategory::StInter, 0);
        assert!(dw > dr, "write {dw} should exceed read {dr}");
    }

    #[test]
    fn auto_detects_contiguous_stream() {
        let mut m = sim();
        let d1 = m.access(
            0,
            512,
            AccessKind::Read,
            AccessCategory::LdList,
            PatternHint::Random,
            0,
        );
        // Next access continues exactly where the previous ended on channel 0.
        let d2 = m.access(
            512,
            512,
            AccessKind::Read,
            AccessCategory::LdList,
            PatternHint::Auto,
            d1,
        );
        assert_eq!(m.stats().seq_bytes, 512);
        assert_eq!(m.stats().rand_bytes, 512);
        assert!(d2 > d1);
    }

    #[test]
    fn auto_first_access_is_random() {
        let mut m = sim();
        m.access(
            4096 * 3,
            256,
            AccessKind::Read,
            AccessCategory::LdList,
            PatternHint::Auto,
            0,
        );
        assert_eq!(m.stats().rand_accesses, 1);
    }

    #[test]
    fn channels_operate_independently() {
        let mut m = sim();
        // interleave is 4096 B: addr 0 -> ch0, addr 4096 -> ch1.
        let d0 = m.read_seq(0, 6400, AccessCategory::LdList, 0);
        let d1 = m.read_seq(4096, 6400, AccessCategory::LdList, 0);
        assert_eq!(d0, d1, "different channels don't queue behind each other");
        let d2 = m.read_seq(0, 6400, AccessCategory::LdList, 0);
        assert!(d2 > d0, "same channel queues");
    }

    #[test]
    fn earliest_constraint_respected() {
        let mut m = sim();
        let done = m.read_seq(0, 256, AccessCategory::LdList, 10_000);
        assert!(done > 10_000);
    }

    #[test]
    fn queueing_on_busy_channel() {
        let mut m = sim();
        let d1 = m.read_seq(0, 3072, AccessCategory::LdList, 0);
        // Same channel (same 4 KiB interleave stride), issued at cycle 0 but
        // the channel is busy until d1.
        let d2 = m.access(
            3072,
            1024,
            AccessKind::Read,
            AccessCategory::LdList,
            PatternHint::Sequential,
            0,
        );
        assert!(d2 > d1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = sim();
        m.read_seq(0, 1024, AccessCategory::LdList, 0);
        m.reset();
        assert_eq!(m.stats().total_bytes(), 0);
        let d = m.read_seq(0, 256, AccessCategory::LdList, 0);
        assert!(d < 200, "channel ready time was reset");
    }

    #[test]
    fn take_stats_leaves_zeroes() {
        let mut m = sim();
        m.read_seq(0, 1024, AccessCategory::LdList, 0);
        let s = m.take_stats();
        assert_eq!(s.total_bytes(), 1024);
        assert_eq!(m.stats().total_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "zero-byte")]
    fn zero_byte_access_panics() {
        sim().read_seq(0, 0, AccessCategory::LdList, 0);
    }

    #[test]
    fn no_plan_and_quiet_plan_are_bit_identical() {
        // A quiet plan must not perturb timing or counters relative to no
        // plan at all — the invariance guarantee the figure diffs rely on.
        let mut a = sim();
        let mut b =
            MemorySim::with_fault_plan(MemoryConfig::optane_dcpmm(), crate::FaultPlan::quiet(123));
        let mut ta = 0;
        let mut tb = 0;
        for i in 0..32u64 {
            ta = a.read_rand(i * 3000, 200, AccessCategory::LdList, ta);
            tb = b.read_rand(i * 3000, 200, AccessCategory::LdList, tb);
        }
        assert_eq!(ta, tb);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.stats().fault_events(), 0);
    }

    #[test]
    fn uncorrectable_lines_flag_reads_and_count() {
        let plan = crate::FaultPlan::quiet(5).with_uncorrectable_rate(1.0);
        let mut m = MemorySim::with_fault_plan(MemoryConfig::optane_dcpmm(), plan);
        let r = m.access_checked(
            0,
            128,
            AccessKind::Read,
            AccessCategory::LdList,
            PatternHint::Sequential,
            0,
        );
        assert!(r.faulted);
        assert_eq!(m.stats().faulted_reads, 1);
        // Writes are never flagged.
        let w = m.access_checked(
            0,
            128,
            AccessKind::Write,
            AccessCategory::StInter,
            PatternHint::Sequential,
            0,
        );
        assert!(!w.faulted);
        assert_eq!(m.stats().faulted_reads, 1);
    }

    #[test]
    fn degraded_channel_slows_transfers() {
        let plan = crate::FaultPlan::quiet(0).with_channel_bw(vec![0.5]);
        let mut slow = MemorySim::with_fault_plan(MemoryConfig::optane_dcpmm(), plan);
        let d_slow = slow.read_seq(0, 6400, AccessCategory::LdList, 0);
        let d_nominal = sim().read_seq(0, 6400, AccessCategory::LdList, 0);
        assert_eq!(d_nominal, 1000);
        assert_eq!(d_slow, 2000, "half bandwidth doubles the transfer time");
        assert_eq!(slow.stats().degraded_accesses, 1);
    }

    #[test]
    fn latency_spikes_delay_completion_not_channel() {
        let plan = crate::FaultPlan::quiet(0).with_spikes(1 << 40, 1 << 40, 700);
        let mut m = MemorySim::with_fault_plan(MemoryConfig::optane_dcpmm(), plan);
        let d = m.read_seq(0, 6400, AccessCategory::LdList, 0);
        assert_eq!(d, 1700, "spike adds to completion");
        assert_eq!(m.stats().latency_spikes, 1);
        // The channel itself frees at transfer end, so a queued request on
        // the same channel starts at 1000, not 1700.
        let d2 = m.read_seq(1024, 6400, AccessCategory::LdList, 0);
        assert_eq!(d2, 2700);
    }

    #[test]
    fn dram_faster_than_scm_for_same_traffic() {
        let mut scm = MemorySim::new(MemoryConfig::optane_dcpmm());
        let mut dram = MemorySim::new(MemoryConfig::ddr4_2666());
        let mut t_scm = 0;
        let mut t_dram = 0;
        for i in 0..64u64 {
            t_scm = scm.read_rand(i * 8192, 256, AccessCategory::LdList, t_scm);
            t_dram = dram.read_rand(i * 8192, 256, AccessCategory::LdList, t_dram);
        }
        assert!(t_dram < t_scm);
    }
}
