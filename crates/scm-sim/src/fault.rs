//! Deterministic, seed-driven fault injection for the SCM model.
//!
//! Real Optane-class media degrades in three observable ways: whole lines
//! become uncorrectable (the DIMM returns a poison indication), individual
//! channels lose bandwidth as the media wears, and background activities
//! (wear-leveling, thermal throttling) produce latency-spike windows. A
//! [`FaultPlan`] models all three as pure functions of a seed and the
//! access coordinates, so any run with the same plan sees exactly the same
//! faults regardless of thread count or query order.
//!
//! A `MemorySim` without a plan attached behaves bit-identically to one
//! that never had the feature: the plan is consulted only when present,
//! and every fault counter stays zero.

use serde::{Deserialize, Serialize};

/// Address granularity at which uncorrectable-line errors are drawn.
///
/// Matches the Optane internal access granule ("XPLine"): the unit the
/// media's ECC covers, so the unit that fails.
pub const FAULT_LINE_BYTES: u64 = 256;

/// A deterministic fault schedule for one memory node.
///
/// All three fault classes are derived from `seed` with splitmix/xorshift
/// hashing — no RNG state, so concurrent simulations and re-runs agree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed from which every fault decision is derived.
    pub seed: u64,
    /// Probability that any given 256 B line is uncorrectable, in `[0, 1]`.
    pub uncorrectable_line_rate: f64,
    /// Per-channel bandwidth multipliers in `(0, 1]`; channel `i` uses
    /// entry `i % len`. Empty means no degradation anywhere.
    pub channel_bw_factor: Vec<f64>,
    /// Period of the latency-spike window in cycles (0 disables spikes).
    pub spike_period_cycles: u64,
    /// Length of the spike window at the start of each period.
    pub spike_len_cycles: u64,
    /// Extra completion latency (cycles at 1 GHz, i.e. nanoseconds) added
    /// to accesses that start inside a spike window.
    pub spike_extra_ns: u64,
}

impl FaultPlan {
    /// A plan that injects nothing — useful as a builder starting point.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            uncorrectable_line_rate: 0.0,
            channel_bw_factor: Vec::new(),
            spike_period_cycles: 0,
            spike_len_cycles: 0,
            spike_extra_ns: 0,
        }
    }

    /// A representative degraded device: one uncorrectable line per ~10^5,
    /// one channel at 70 % bandwidth, and 2 µs latency spikes every 100 µs.
    pub fn degraded(seed: u64) -> Self {
        FaultPlan {
            seed,
            uncorrectable_line_rate: 1e-5,
            channel_bw_factor: vec![1.0, 0.7],
            spike_period_cycles: 100_000,
            spike_len_cycles: 2_000,
            spike_extra_ns: 500,
        }
    }

    /// Sets the uncorrectable-line probability.
    #[must_use]
    pub fn with_uncorrectable_rate(mut self, rate: f64) -> Self {
        self.uncorrectable_line_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-channel bandwidth multipliers.
    #[must_use]
    pub fn with_channel_bw(mut self, factors: Vec<f64>) -> Self {
        self.channel_bw_factor = factors;
        self
    }

    /// Sets the latency-spike schedule.
    #[must_use]
    pub fn with_spikes(mut self, period: u64, len: u64, extra_ns: u64) -> Self {
        self.spike_period_cycles = period;
        self.spike_len_cycles = len;
        self.spike_extra_ns = extra_ns;
        self
    }

    /// Whether the line containing `addr` is uncorrectable under this plan.
    ///
    /// Pure function of `(seed, line index)`: the same line always answers
    /// the same way within a plan.
    pub fn line_is_uncorrectable(&self, addr: u64) -> bool {
        if self.uncorrectable_line_rate <= 0.0 {
            return false;
        }
        if self.uncorrectable_line_rate >= 1.0 {
            return true;
        }
        let h = mix(self.seed, addr / FAULT_LINE_BYTES);
        // Map the top 53 bits to [0, 1): exact in f64, platform-stable.
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < self.uncorrectable_line_rate
    }

    /// Whether a read of `bytes` starting at `addr` touches any
    /// uncorrectable line.
    pub fn span_is_uncorrectable(&self, addr: u64, bytes: u64) -> bool {
        if self.uncorrectable_line_rate <= 0.0 {
            return false;
        }
        let first = addr / FAULT_LINE_BYTES;
        let last = addr.saturating_add(bytes.saturating_sub(1)) / FAULT_LINE_BYTES;
        (first..=last).any(|line| self.line_is_uncorrectable(line * FAULT_LINE_BYTES))
    }

    /// The bandwidth multiplier for channel `ch` (1.0 when unconfigured).
    pub fn channel_factor(&self, ch: usize) -> f64 {
        if self.channel_bw_factor.is_empty() {
            return 1.0;
        }
        let f = self.channel_bw_factor[ch % self.channel_bw_factor.len()];
        if f > 0.0 && f <= 1.0 {
            f
        } else {
            1.0
        }
    }

    /// Whether an access starting at `cycle` falls inside a spike window.
    pub fn in_spike_window(&self, cycle: u64) -> bool {
        self.spike_period_cycles > 0
            && self.spike_len_cycles > 0
            && cycle % self.spike_period_cycles < self.spike_len_cycles
    }
}

/// splitmix64-style avalanche of `(seed, x)`; every output bit depends on
/// every input bit, so per-line decisions are effectively independent.
fn mix(seed: u64, x: u64) -> u64 {
    let mut z = seed ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_injects_nothing() {
        let p = FaultPlan::quiet(7);
        for a in [0u64, 255, 256, 1 << 30] {
            assert!(!p.line_is_uncorrectable(a));
            assert!(!p.span_is_uncorrectable(a, 4096));
        }
        assert_eq!(p.channel_factor(3), 1.0);
        assert!(!p.in_spike_window(0));
    }

    #[test]
    fn line_decisions_are_deterministic_and_line_granular() {
        let p = FaultPlan::quiet(42).with_uncorrectable_rate(0.5);
        for line in 0..64u64 {
            let a = line * FAULT_LINE_BYTES;
            let v = p.line_is_uncorrectable(a);
            assert_eq!(v, p.line_is_uncorrectable(a), "repeatable");
            assert_eq!(v, p.line_is_uncorrectable(a + 17), "same line agrees");
        }
        // At rate 0.5 over 256 lines both outcomes must occur.
        let hits = (0..256u64)
            .filter(|l| p.line_is_uncorrectable(l * FAULT_LINE_BYTES))
            .count();
        assert!(hits > 64 && hits < 192, "hits {hits}");
    }

    #[test]
    fn different_seeds_disagree_somewhere() {
        let a = FaultPlan::quiet(1).with_uncorrectable_rate(0.5);
        let b = FaultPlan::quiet(2).with_uncorrectable_rate(0.5);
        let differs = (0..256u64).any(|l| {
            a.line_is_uncorrectable(l * FAULT_LINE_BYTES)
                != b.line_is_uncorrectable(l * FAULT_LINE_BYTES)
        });
        assert!(differs);
    }

    #[test]
    fn span_check_covers_every_touched_line() {
        let p = FaultPlan::quiet(9).with_uncorrectable_rate(0.02);
        // Find a faulty line, then confirm spans overlapping it fault.
        let line = (0..100_000u64)
            .find(|l| p.line_is_uncorrectable(l * FAULT_LINE_BYTES))
            .expect("a faulty line exists at this rate");
        let addr = line * FAULT_LINE_BYTES;
        assert!(p.span_is_uncorrectable(addr, 1));
        assert!(p.span_is_uncorrectable(addr.saturating_sub(10), 11));
        assert!(p.span_is_uncorrectable(addr + FAULT_LINE_BYTES - 1, 2));
    }

    #[test]
    fn rate_extremes() {
        let all = FaultPlan::quiet(3).with_uncorrectable_rate(1.0);
        assert!(all.line_is_uncorrectable(0));
        let none = FaultPlan::quiet(3).with_uncorrectable_rate(0.0);
        assert!(!none.span_is_uncorrectable(0, 1 << 20));
    }

    #[test]
    fn channel_factors_cycle_and_validate() {
        let p = FaultPlan::quiet(0).with_channel_bw(vec![1.0, 0.5]);
        assert_eq!(p.channel_factor(0), 1.0);
        assert_eq!(p.channel_factor(1), 0.5);
        assert_eq!(p.channel_factor(3), 0.5);
        // Nonsense factors are ignored rather than inverting the timing.
        let bad = FaultPlan::quiet(0).with_channel_bw(vec![0.0, -2.0, 7.0]);
        for ch in 0..3 {
            assert_eq!(bad.channel_factor(ch), 1.0);
        }
    }

    #[test]
    fn spike_windows() {
        let p = FaultPlan::quiet(0).with_spikes(1000, 100, 50);
        assert!(p.in_spike_window(0));
        assert!(p.in_spike_window(99));
        assert!(!p.in_spike_window(100));
        assert!(p.in_spike_window(2050));
        assert!(!p.in_spike_window(999));
    }
}
