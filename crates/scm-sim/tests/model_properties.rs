//! Property tests for the memory timing model: the physical sanity
//! conditions every cost model must satisfy.

use boss_scm::{AccessCategory, AccessKind, MemoryConfig, MemorySim, PatternHint};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn completion_is_monotone_in_bytes(bytes in 1u64..1_000_000, addr in 0u64..(1u64 << 30)) {
        let mut a = MemorySim::new(MemoryConfig::optane_dcpmm());
        let mut b = MemorySim::new(MemoryConfig::optane_dcpmm());
        let d1 = a.read_seq(addr, bytes, AccessCategory::LdList, 0);
        let d2 = b.read_seq(addr, bytes + 64, AccessCategory::LdList, 0);
        prop_assert!(d2 >= d1, "{d2} >= {d1}");
    }

    #[test]
    fn random_never_cheaper_than_sequential(bytes in 1u64..100_000, addr in 0u64..(1u64 << 30)) {
        let mut s = MemorySim::new(MemoryConfig::optane_dcpmm());
        let mut r = MemorySim::new(MemoryConfig::optane_dcpmm());
        let ds = s.read_seq(addr, bytes, AccessCategory::LdList, 0);
        let dr = r.read_rand(addr, bytes, AccessCategory::LdList, 0);
        prop_assert!(dr >= ds);
    }

    #[test]
    fn writes_never_cheaper_than_reads_on_scm(bytes in 1u64..100_000, addr in 0u64..(1u64 << 30)) {
        let mut rd = MemorySim::new(MemoryConfig::optane_dcpmm());
        let mut wr = MemorySim::new(MemoryConfig::optane_dcpmm());
        let d_rd = rd.read_seq(addr, bytes, AccessCategory::LdList, 0);
        let d_wr = wr.write_seq(addr, bytes, AccessCategory::StInter, 0);
        prop_assert!(d_wr >= d_rd);
    }

    #[test]
    fn dram_never_slower_for_identical_streams(
        ops in prop::collection::vec((0u64..(1u64 << 24), 1u64..4096, any::<bool>()), 1..40),
    ) {
        let mut scm = MemorySim::new(MemoryConfig::optane_dcpmm());
        let mut dram = MemorySim::new(MemoryConfig::ddr4_2666());
        let mut t_scm = 0;
        let mut t_dram = 0;
        for &(addr, bytes, rand) in &ops {
            let pat = if rand { PatternHint::Random } else { PatternHint::Sequential };
            t_scm = t_scm.max(scm.access(addr, bytes, AccessKind::Read, AccessCategory::LdList, pat, 0));
            t_dram = t_dram.max(dram.access(addr, bytes, AccessKind::Read, AccessCategory::LdList, pat, 0));
        }
        prop_assert!(t_dram <= t_scm, "dram {t_dram} vs scm {t_scm}");
    }

    #[test]
    fn stats_conserve_bytes(
        ops in prop::collection::vec((0u64..(1u64 << 20), 1u64..10_000), 1..50),
    ) {
        let mut m = MemorySim::new(MemoryConfig::optane_dcpmm());
        let mut logical = 0u64;
        for &(addr, bytes) in &ops {
            m.read_seq(addr, bytes, AccessCategory::LdList, 0);
            logical += bytes;
        }
        prop_assert_eq!(m.stats().total_bytes(), logical);
        prop_assert!(m.stats().effective_bytes >= logical);
        prop_assert_eq!(m.stats().total_count(), ops.len() as u64);
    }

    #[test]
    fn busy_cycles_bound_completion(
        ops in prop::collection::vec((0u64..(1u64 << 22), 64u64..4096), 1..60),
    ) {
        // The last completion cannot exceed total busy plus one latency
        // (requests issued at cycle 0 queue per channel).
        let mut m = MemorySim::new(MemoryConfig::optane_dcpmm());
        let mut last = 0;
        for &(addr, bytes) in &ops {
            last = last.max(m.read_rand(addr, bytes, AccessCategory::LdList, 0));
        }
        let lat = m.config().read_latency_ns;
        prop_assert!(last <= m.stats().busy_cycles + lat, "{last} vs {}", m.stats().busy_cycles + lat);
    }
}
