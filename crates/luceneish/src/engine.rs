//! The Lucene-like engine.

use boss_core::{EvalCounts, QueryOutcome, QueryPlan, TopK};
use boss_index::layout::IndexImage;
use boss_index::prune::{self, PruneSink};
use boss_index::{
    decode_block_cached, BlockCache, BlockCacheStats, BlockMeta, DocId, Error, InvertedIndex,
    QueryAlgorithm, QueryExpr, ScoreScratch, TermId, BLOCK_META_BYTES,
};
use boss_scm::{AccessCategory, AccessKind, MemStats, MemoryConfig, MemorySim, PatternHint};

/// CPU cycles charged per unit of work, at the host clock.
///
/// Defaults are calibrated against the paper's anchors: Lucene is
/// compute-bound (DRAM buys ≤15 %), and 8 BOSS cores beat 8 Lucene cores
/// by ~7.5–8.7× on the two corpora.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LuceneCostModel {
    /// Cycles per decoded posting (decompression + iterator bookkeeping).
    pub cycles_per_posting: f64,
    /// Cycles per set-operation step.
    pub cycles_per_merge_step: f64,
    /// Cycles per scored document (BM25 + collector bookkeeping).
    pub cycles_per_scored_doc: f64,
    /// Cycles per heap (priority-queue) update.
    pub cycles_per_heap_op: f64,
    /// Fixed per-query cycles (parsing, weights, segment setup).
    pub query_overhead: f64,
}

impl Default for LuceneCostModel {
    fn default() -> Self {
        LuceneCostModel {
            cycles_per_posting: 12.0,
            cycles_per_merge_step: 8.0,
            cycles_per_scored_doc: 48.0,
            cycles_per_heap_op: 16.0,
            query_overhead: 50_000.0,
        }
    }
}

/// Lucene host configuration (Table I "Host Processor").
#[derive(Debug, Clone, PartialEq)]
pub struct LuceneConfig {
    /// Worker threads (the paper's 8-thread / 8-core setup).
    pub n_threads: u32,
    /// Host clock in GHz (Xeon 8280M: 2.7).
    pub clock_ghz: f64,
    /// Host memory system.
    pub memory: MemoryConfig,
    /// Cost constants.
    pub cost: LuceneCostModel,
    /// Capacity (in decoded blocks) of the host-side decoded-block cache;
    /// 0 disables it. Wall-clock only: simulated cycles and traffic are
    /// independent of this setting (see `boss_index::cache`).
    pub block_cache_blocks: usize,
    /// Whether the host scores with the block-at-a-time kernels and a
    /// single ranking pass. Wall-clock only: hits, counters, and simulated
    /// figures are bit-identical either way.
    pub bulk_score: bool,
    /// Dynamic-pruning plan for pure union queries. The default
    /// ([`QueryAlgorithm::Exhaustive`]) keeps the score-everything
    /// collector; any other value routes unions through the portable
    /// pruned evaluator (`boss_index::prune`) with this engine's cost
    /// model, still returning bit-identical top-k results.
    pub algorithm: QueryAlgorithm,
}

impl Default for LuceneConfig {
    fn default() -> Self {
        LuceneConfig {
            n_threads: 8,
            clock_ghz: 2.7,
            memory: MemoryConfig::host_scm_6ch(),
            cost: LuceneCostModel::default(),
            block_cache_blocks: 0,
            bulk_score: true,
            algorithm: QueryAlgorithm::Exhaustive,
        }
    }
}

impl LuceneConfig {
    /// `n` threads, defaults elsewhere.
    pub fn with_threads(n: u32) -> Self {
        LuceneConfig {
            n_threads: n,
            ..Self::default()
        }
    }

    /// Replaces the host memory system.
    #[must_use]
    pub fn on_memory(mut self, memory: MemoryConfig) -> Self {
        self.memory = memory;
        self
    }

    /// Replaces the decoded-block cache capacity (0 disables the cache).
    #[must_use]
    pub fn with_block_cache(mut self, blocks: usize) -> Self {
        self.block_cache_blocks = blocks;
        self
    }

    /// Enables or disables the bulk scoring path (wall-clock only).
    #[must_use]
    pub fn with_bulk_score(mut self, on: bool) -> Self {
        self.bulk_score = on;
        self
    }

    /// Replaces the dynamic-pruning query algorithm.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: QueryAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }
}

/// [`PruneSink`] that charges a pruned union to the Lucene cost model:
/// skip data streams sequentially, surviving blocks are fetched with
/// pattern auto-detection and their postings counted toward the
/// per-posting decode cost, each scored document streams its 4-byte norm
/// through the cacheable host hierarchy, and pivot rounds count as merge
/// steps. Skips are attributed to the `*_prune` counters.
struct LucenePruneSink<'r> {
    image: &'r IndexImage,
    mem: &'r mut MemorySim,
    eval: &'r mut EvalCounts,
    /// Deduplicated ascending terms; `slot` in callbacks indexes this.
    terms: Vec<TermId>,
    /// Metadata records already charged per slot (skip-data cursor).
    metas_charged: Vec<u64>,
    postings_decoded: u64,
}

impl PruneSink for LucenePruneSink<'_> {
    fn meta_read(&mut self, slot: usize, blocks: u64) {
        let addr =
            self.image.meta_addr(self.terms[slot]) + self.metas_charged[slot] * BLOCK_META_BYTES;
        self.mem.access(
            addr,
            blocks * BLOCK_META_BYTES,
            AccessKind::Read,
            AccessCategory::LdMeta,
            PatternHint::Sequential,
            0,
        );
        self.metas_charged[slot] += blocks;
        self.eval.metas_read += blocks;
    }

    fn block_decoded(&mut self, slot: usize, meta: &BlockMeta) {
        self.mem.access(
            self.image.data_addr(self.terms[slot]) + u64::from(meta.offset),
            u64::from(meta.len).max(1),
            AccessKind::Read,
            AccessCategory::LdList,
            PatternHint::Auto,
            0,
        );
        self.eval.blocks_fetched += 1;
        self.postings_decoded += meta.count() as u64;
    }

    fn blocks_skipped(&mut self, _slot: usize, blocks: u64, docs: u64) {
        self.eval.blocks_skipped += blocks;
        self.eval.blocks_skipped_prune += blocks;
        self.eval.docs_skipped_prune += docs;
    }

    fn docs_skipped(&mut self, _slot: usize, docs: u64) {
        self.eval.docs_skipped_prune += docs;
    }

    fn doc_abandoned(&mut self) {
        self.eval.docs_skipped_prune += 1;
    }

    fn doc_scored(&mut self, doc: DocId) {
        self.mem.access(
            self.image.norm_addr(doc),
            4,
            AccessKind::Read,
            AccessCategory::LdScore,
            PatternHint::Sequential,
            0,
        );
        self.eval.docs_scored += 1;
    }

    fn round(&mut self) {
        self.eval.comparisons += 1;
    }
}

/// The Lucene-like engine bound to an index.
#[derive(Debug)]
pub struct LuceneEngine<'a> {
    index: &'a InvertedIndex,
    image: IndexImage,
    config: LuceneConfig,
    plan_config: boss_core::BossConfig,
    /// Functional-speed decoded-block cache (never affects the model).
    cache: Option<BlockCache>,
}

impl<'a> LuceneEngine<'a> {
    /// Binds the engine to an index.
    pub fn new(index: &'a InvertedIndex, config: LuceneConfig) -> Self {
        let cache =
            (config.block_cache_blocks > 0).then(|| BlockCache::new(config.block_cache_blocks));
        LuceneEngine {
            index,
            image: IndexImage::new(index),
            config,
            plan_config: boss_core::BossConfig::default(),
            cache,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LuceneConfig {
        &self.config
    }

    /// Hit/miss/eviction counters of the decoded-block cache, if enabled.
    pub fn block_cache_stats(&self) -> Option<BlockCacheStats> {
        self.cache.as_ref().map(BlockCache::stats)
    }

    /// Executes one query on one thread.
    ///
    /// `QueryOutcome::cycles` is in *host CPU* cycles; convert with the
    /// host clock (`outcome.seconds(config.clock_ghz)`).
    ///
    /// # Errors
    ///
    /// Same planning errors as the accelerators.
    pub fn execute(&self, expr: &QueryExpr, k: usize) -> Result<QueryOutcome, Error> {
        // Reuse the hardware planner's validation/normalization so all
        // three engines accept the same query language.
        let plan = QueryPlan::from_expr(self.index, expr, &self.plan_config)?;

        // Pruned path: a pure union under a dynamic-pruning plan routes
        // through the portable evaluator with this engine's charges.
        if self.config.algorithm.prunes()
            && plan.groups().len() > 1
            && plan.groups().iter().all(|g| g.len() == 1)
        {
            return self.execute_pruned(&plan, k);
        }

        let mut mem = MemorySim::new(self.config.memory.clone());
        let mut eval = EvalCounts::default();

        // 1)+2) Per-clause evaluation, the way Lucene's scorers work:
        //    within an AND clause the lead iterator is the smallest list
        //    and the others are advanced with skip data, decoding only the
        //    blocks the lead reaches; OR clauses (single-term groups after
        //    normalization) decode their whole list.
        let mut postings_decoded = 0u64;
        let mut merge_steps = 0u64;
        // A single-term plan decodes the whole list below; keep its tfs so
        // the bulk path can score block-at-a-time without re-decoding.
        let single_term_plan =
            self.config.bulk_score && plan.groups().len() == 1 && plan.groups()[0].len() == 1;
        let mut single_term_tfs: Option<Vec<u32>> = None;
        let mut group_sets: Vec<Vec<u32>> = Vec::with_capacity(plan.groups().len());
        for group in plan.groups() {
            let mut order: Vec<TermId> = group.clone();
            order.sort_by_key(|&t| self.index.list(t).df());

            // Lead list: full decode.
            let lead = order[0];
            let lead_list = self.index.list(lead);
            mem.access(
                self.image.meta_addr(lead),
                (lead_list.n_blocks() as u64 * BLOCK_META_BYTES).max(1),
                AccessKind::Read,
                AccessCategory::LdMeta,
                PatternHint::Sequential,
                0,
            );
            mem.access(
                self.image.data_addr(lead),
                (lead_list.data_bytes() as u64).max(1),
                AccessKind::Read,
                AccessCategory::LdList,
                PatternHint::Sequential,
                0,
            );
            eval.metas_read += lead_list.n_blocks() as u64;
            eval.blocks_fetched += lead_list.n_blocks() as u64;
            postings_decoded += u64::from(lead_list.df());
            let mut acc: Vec<u32> = Vec::with_capacity(lead_list.df() as usize);
            let mut lead_tfs: Vec<u32> = Vec::with_capacity(lead_list.df() as usize);
            for bi in 0..lead_list.n_blocks() {
                decode_block_cached(
                    lead_list,
                    lead,
                    bi,
                    self.cache.as_ref(),
                    &mut acc,
                    &mut lead_tfs,
                )?;
            }
            merge_steps += acc.len() as u64;
            if single_term_plan {
                single_term_tfs = Some(std::mem::take(&mut lead_tfs));
            }

            for &t in &order[1..] {
                let list = self.index.list(t);
                let blocks = list.blocks();
                // Skip data: the directory is streamed once.
                mem.access(
                    self.image.meta_addr(t),
                    (blocks.len() as u64 * BLOCK_META_BYTES).max(1),
                    AccessKind::Read,
                    AccessCategory::LdMeta,
                    PatternHint::Sequential,
                    0,
                );
                eval.metas_read += blocks.len() as u64;
                // Decode only blocks the (shrinking) lead set reaches.
                let mut docs: Vec<u32> = Vec::new();
                let mut tfs: Vec<u32> = Vec::new();
                let mut spans: Vec<(usize, &boss_index::BlockMeta)> = Vec::new();
                {
                    let mut bi = 0usize;
                    for &d in &acc {
                        while bi < blocks.len() && blocks[bi].last_doc < d {
                            bi += 1;
                        }
                        if bi == blocks.len() {
                            break;
                        }
                        if blocks[bi].first_doc <= d && spans.last().map(|&(i, _)| i) != Some(bi) {
                            spans.push((bi, &blocks[bi]));
                        }
                    }
                }
                for (bi, meta) in &spans {
                    mem.access(
                        self.image.data_addr(t) + u64::from(meta.offset),
                        u64::from(meta.len).max(1),
                        AccessKind::Read,
                        AccessCategory::LdList,
                        PatternHint::Auto,
                        0,
                    );
                    eval.blocks_fetched += 1;
                    postings_decoded += meta.count() as u64;
                    decode_block_cached(list, t, *bi, self.cache.as_ref(), &mut docs, &mut tfs)?;
                }
                merge_steps += acc.len() as u64 + docs.len() as u64;
                acc = boss_index::reference::intersect_sorted(&acc, &docs);
                if acc.is_empty() {
                    break;
                }
            }
            group_sets.push(acc);
        }
        let mut candidates: Vec<u32> = Vec::new();
        for s in &group_sets {
            merge_steps += s.len() as u64;
            candidates = boss_index::reference::union_sorted(&candidates, s);
        }
        eval.comparisons = merge_steps;

        // 3) Score every candidate (norm fetches go through the cacheable
        //    host hierarchy; charge the cold 4-byte load) + heap top-k.
        //    Hits match the shared reference evaluator bit-for-bit on every
        //    path: the scalar path calls it directly, the bulk paths score
        //    with the same arithmetic in the same order.
        if !candidates.is_empty() {
            // Norms on the CPU flow through a 38.5 MB LLC that captures the
            // reuse; charge one streaming pass over the touched norms
            // rather than per-document device-granule random reads (which
            // is what makes Lucene compute-bound while the accelerators,
            // which have no such cache, pay per access).
            mem.access(
                self.image.norm_addr(candidates[0]),
                candidates.len() as u64 * 4,
                AccessKind::Read,
                AccessCategory::LdScore,
                PatternHint::Sequential,
                0,
            );
        }
        eval.docs_scored = candidates.len() as u64;
        let mut heap = TopK::new(k.max(1));
        let hits: Vec<boss_index::SearchHit>;
        if let Some(tfs) = single_term_tfs {
            // Bulk single-term: the candidates ARE the decoded list in
            // docID order with their tfs, so score block-at-a-time with
            // the shared kernel and sift into the heap. Bit-identical to
            // the reference: a one-term score is exactly `term_score`,
            // documents arrive in the same docID order, and the heap
            // realizes the workspace ranking.
            let term = plan.groups()[0][0];
            let idf = self.index.term_info(term).idf;
            let bm25 = *self.index.bm25();
            let norms = self.index.doc_norms();
            let mut block_scores = ScoreScratch::new();
            for (cd, ct) in candidates.chunks(128).zip(tfs.chunks(128)) {
                bm25.score_block(idf, cd, ct, norms, &mut block_scores);
                heap.sift_block(cd, block_scores.scores());
            }
            hits = heap.hits().to_vec();
        } else if self.config.bulk_score {
            // Bulk multi-term: one full reference evaluation instead of
            // two. The k-prefix of the exhaustively ranked list IS the
            // k-ranked list (the ranking is a total order), and the heap
            // replay consumes the same full list in docID order.
            let mut full = boss_index::reference::evaluate(self.index, expr, usize::MAX)?;
            let mut by_doc: Vec<(u32, f32)> = full.iter().map(|h| (h.doc, h.score)).collect();
            by_doc.sort_unstable_by_key(|&(d, _)| d);
            for (d, s) in by_doc {
                heap.offer(d, s);
            }
            full.truncate(k);
            hits = full;
        } else {
            hits = boss_index::reference::evaluate(self.index, expr, k)?;
            // Heap behaviour (insert count) replayed from candidate scores
            // in docID order, like the real collector sees them.
            let full = boss_index::reference::evaluate(self.index, expr, usize::MAX)?;
            let mut by_doc: Vec<(u32, f32)> = full.iter().map(|h| (h.doc, h.score)).collect();
            by_doc.sort_unstable_by_key(|&(d, _)| d);
            for (d, s) in by_doc {
                heap.offer(d, s);
            }
        }
        eval.topk_inserts = heap.inserts();

        // 4) Cost model: compute + memory (additive — the out-of-order
        //    core overlaps poorly with pointer-chasing postings traffic,
        //    and this is what reproduces the paper's ≤15 % DRAM delta).
        let c = &self.config.cost;
        let compute = postings_decoded as f64 * c.cycles_per_posting
            + merge_steps as f64 * c.cycles_per_merge_step
            + candidates.len() as f64 * c.cycles_per_scored_doc
            + heap.inserts() as f64 * c.cycles_per_heap_op
            + c.query_overhead;
        // Memory cycles are modeled at 1 GHz (GB/s == B/cycle); convert to
        // host cycles.
        let mem_cycles_host = mem.stats().last_done_cycle as f64 * self.config.clock_ghz;
        let cycles = (compute + mem_cycles_host) as u64;

        Ok(QueryOutcome {
            hits,
            cycles,
            mem: mem.take_stats(),
            eval,
        })
    }

    /// Pure-union execution under the configured pruning algorithm: the
    /// portable evaluator drives the traversal, [`LucenePruneSink`]
    /// charges the memory system, and the cost model prices the (now
    /// smaller) decode/merge/score/heap work with the same constants as
    /// the exhaustive collector.
    fn execute_pruned(&self, plan: &QueryPlan, k: usize) -> Result<QueryOutcome, Error> {
        let mut mem = MemorySim::new(self.config.memory.clone());
        let mut eval = EvalCounts::default();
        let mut ids: Vec<TermId> = plan.groups().iter().map(|g| g[0]).collect();
        ids.sort_unstable();
        ids.dedup();
        let mut sink = LucenePruneSink {
            image: &self.image,
            mem: &mut mem,
            eval: &mut eval,
            metas_charged: vec![0; ids.len()],
            terms: ids.clone(),
            postings_decoded: 0,
        };
        let outcome =
            prune::pruned_union_topk(self.index, &ids, self.config.algorithm, k, &mut sink)?;
        let postings_decoded = sink.postings_decoded;
        eval.topk_inserts = outcome.topk_inserts;

        let c = &self.config.cost;
        let compute = postings_decoded as f64 * c.cycles_per_posting
            + eval.comparisons as f64 * c.cycles_per_merge_step
            + eval.docs_scored as f64 * c.cycles_per_scored_doc
            + eval.topk_inserts as f64 * c.cycles_per_heap_op
            + c.query_overhead;
        let mem_cycles_host = mem.stats().last_done_cycle as f64 * self.config.clock_ghz;
        let cycles = (compute + mem_cycles_host) as u64;
        Ok(QueryOutcome {
            hits: outcome.hits,
            cycles,
            mem: mem.take_stats(),
            eval,
        })
    }

    /// Batch execution with query-level parallelism: greedy assignment of
    /// queries to the earliest-free thread. Returns per-query outcomes and
    /// the makespan in host cycles.
    ///
    /// # Errors
    ///
    /// Fails on the first unplannable query.
    pub fn run_batch(
        &self,
        queries: &[QueryExpr],
        k: usize,
    ) -> Result<(Vec<QueryOutcome>, u64), Error> {
        let mut threads = vec![0u64; self.config.n_threads as usize];
        let mut outcomes = Vec::with_capacity(queries.len());
        let mut busy = 0u64;
        for q in queries {
            let out = self.execute(q, k)?;
            let t = threads
                .iter_mut()
                .min_by_key(|b| **b)
                .expect("at least one thread");
            *t += out.cycles;
            busy += out.mem.busy_cycles;
            outcomes.push(out);
        }
        // Same roofline as the accelerators: the host memory system can
        // serve at most `channels` channel-cycles per (1 GHz) cycle;
        // convert to host cycles.
        let bw_limited = (busy as f64 / f64::from(self.config.memory.channels.max(1))
            * self.config.clock_ghz) as u64;
        let makespan = threads.into_iter().max().unwrap_or(0).max(bw_limited);
        Ok((outcomes, makespan))
    }

    /// Batch throughput in queries/second.
    pub fn batch_qps(&self, makespan_cycles: u64, n_queries: usize) -> f64 {
        if makespan_cycles == 0 {
            return 0.0;
        }
        n_queries as f64 / (makespan_cycles as f64 / (self.config.clock_ghz * 1e9))
    }

    /// Merged memory stats of a batch.
    pub fn merge_mem(outcomes: &[QueryOutcome]) -> MemStats {
        let mut m = MemStats::new();
        for o in outcomes {
            m.merge(&o.mem);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boss_index::{reference, IndexBuilder};

    fn corpus() -> InvertedIndex {
        let docs: Vec<String> = (0u32..700)
            .map(|i| {
                let mut t = String::from("x");
                let h = i.wrapping_mul(2654435761);
                if h % 2 == 0 {
                    t.push_str(" aa");
                }
                if h % 3 == 0 {
                    t.push_str(" bb");
                }
                if h % 7 == 0 {
                    t.push_str(" cc cc");
                }
                t
            })
            .collect();
        IndexBuilder::new()
            .add_documents(docs.iter().map(String::as_str))
            .build()
            .unwrap()
    }

    #[test]
    fn matches_reference() {
        let idx = corpus();
        let engine = LuceneEngine::new(&idx, LuceneConfig::default());
        let t = |s: &str| QueryExpr::term(s);
        for q in [
            t("aa"),
            QueryExpr::and([t("aa"), t("bb")]),
            QueryExpr::or([t("aa"), t("cc")]),
            QueryExpr::and([t("aa"), QueryExpr::or([t("bb"), t("cc")])]),
        ] {
            let got = engine.execute(&q, 10).unwrap();
            assert_eq!(got.hits, reference::evaluate(&idx, &q, 10).unwrap(), "{q}");
        }
    }

    #[test]
    fn compute_bound_dram_delta_small() {
        let idx = corpus();
        let scm = LuceneEngine::new(&idx, LuceneConfig::default());
        let dram = LuceneEngine::new(
            &idx,
            LuceneConfig::default().on_memory(MemoryConfig::host_ddr4_6ch()),
        );
        let q = QueryExpr::or([QueryExpr::term("aa"), QueryExpr::term("bb")]);
        let t_scm = scm.execute(&q, 10).unwrap().cycles as f64;
        let t_dram = dram.execute(&q, 10).unwrap().cycles as f64;
        assert!(t_dram <= t_scm);
        assert!(
            t_scm / t_dram < 1.25,
            "Lucene is compute-bound: SCM {} vs DRAM {}",
            t_scm,
            t_dram
        );
    }

    #[test]
    fn batch_threads_scale_throughput() {
        let idx = corpus();
        let queries: Vec<QueryExpr> = (0..16).map(|_| QueryExpr::term("aa")).collect();
        let e1 = LuceneEngine::new(&idx, LuceneConfig::with_threads(1));
        let e8 = LuceneEngine::new(&idx, LuceneConfig::with_threads(8));
        let (_, m1) = e1.run_batch(&queries, 10).unwrap();
        let (_, m8) = e8.run_batch(&queries, 10).unwrap();
        assert!(m8 < m1);
        assert!(e8.batch_qps(m8, 16) > e1.batch_qps(m1, 16) * 4.0);
    }

    #[test]
    fn exhaustive_work_counts() {
        let idx = corpus();
        let engine = LuceneEngine::new(&idx, LuceneConfig::default());
        let q = QueryExpr::or([QueryExpr::term("aa"), QueryExpr::term("bb")]);
        let out = engine.execute(&q, 10).unwrap();
        let cand = reference::candidates(&idx, &q).unwrap();
        assert_eq!(out.eval.docs_scored, cand.len() as u64);
        assert!(out.mem.bytes(AccessCategory::LdList) > 0);
        assert!(out.mem.bytes(AccessCategory::LdScore) >= cand.len() as u64 * 4);
    }

    #[test]
    fn unknown_term_errors() {
        let idx = corpus();
        let engine = LuceneEngine::new(&idx, LuceneConfig::default());
        assert!(engine.execute(&QueryExpr::term("zzz"), 3).is_err());
    }

    #[test]
    fn pruned_unions_match_reference_on_all_algorithms() {
        let idx = corpus();
        let t = |s: &str| QueryExpr::term(s);
        let queries = [
            QueryExpr::or([t("aa"), t("cc")]),
            QueryExpr::or([t("aa"), t("bb"), t("cc"), t("x")]),
        ];
        for algo in boss_index::ALL_ALGORITHMS {
            let engine = LuceneEngine::new(&idx, LuceneConfig::default().with_algorithm(algo));
            for q in &queries {
                for k in [3usize, 10, 200] {
                    let got = engine.execute(q, k).unwrap();
                    let expect = reference::evaluate(&idx, q, k).unwrap();
                    assert_eq!(got.hits, expect, "{algo} {q} k={k}");
                }
            }
        }
    }

    #[test]
    fn pruned_unions_skip_work_and_attribute_it() {
        let idx = corpus();
        let q = QueryExpr::or([QueryExpr::term("aa"), QueryExpr::term("cc")]);
        let base = LuceneEngine::new(&idx, LuceneConfig::default())
            .execute(&q, 10)
            .unwrap();
        assert_eq!(base.eval.docs_skipped_prune, 0);
        assert_eq!(base.eval.blocks_skipped_prune, 0);
        for algo in boss_index::ALL_ALGORITHMS {
            if !algo.prunes() {
                continue;
            }
            let engine = LuceneEngine::new(&idx, LuceneConfig::default().with_algorithm(algo));
            let out = engine.execute(&q, 10).unwrap();
            assert!(
                out.eval.docs_scored < base.eval.docs_scored,
                "{algo} should score fewer docs: {} vs {}",
                out.eval.docs_scored,
                base.eval.docs_scored
            );
            assert!(out.eval.docs_skipped_prune > 0, "{algo}");
            assert!(
                out.eval.blocks_fetched <= base.eval.blocks_fetched,
                "{algo}"
            );
        }
    }

    #[test]
    fn pruning_leaves_intersections_and_single_terms_untouched() {
        let idx = corpus();
        let queries = [
            QueryExpr::term("aa"),
            QueryExpr::and([QueryExpr::term("aa"), QueryExpr::term("bb")]),
        ];
        for q in &queries {
            let a = LuceneEngine::new(&idx, LuceneConfig::default())
                .execute(q, 10)
                .unwrap();
            let b = LuceneEngine::new(
                &idx,
                LuceneConfig::default().with_algorithm(QueryAlgorithm::BlockMaxMaxScore),
            )
            .execute(q, 10)
            .unwrap();
            assert_eq!(a.hits, b.hits, "{q}");
            assert_eq!(a.eval, b.eval, "{q}");
            assert_eq!(a.mem, b.mem, "{q}");
            assert_eq!(a.cycles, b.cycles, "{q}");
        }
    }

    #[test]
    fn bulk_score_changes_nothing_observable() {
        // Both bulk paths (kernel-scored single-term, single-evaluation
        // multi-term) must match the scalar path on every observable.
        let idx = corpus();
        let scalar = LuceneEngine::new(&idx, LuceneConfig::default().with_bulk_score(false));
        let bulk = LuceneEngine::new(&idx, LuceneConfig::default().with_bulk_score(true));
        let t = |s: &str| QueryExpr::term(s);
        let queries = [
            t("aa"),
            t("cc"),
            t("x"),
            QueryExpr::and([t("aa"), t("bb")]),
            QueryExpr::or([t("aa"), t("cc")]),
            QueryExpr::and([t("aa"), QueryExpr::or([t("bb"), t("cc")])]),
        ];
        for q in &queries {
            for k in [2usize, 10, 5000] {
                let a = scalar.execute(q, k).unwrap();
                let b = bulk.execute(q, k).unwrap();
                assert_eq!(a.hits, b.hits, "{q} k={k}");
                assert_eq!(a.eval, b.eval, "{q} k={k}");
                assert_eq!(a.mem, b.mem, "{q} k={k}");
                assert_eq!(a.cycles, b.cycles, "{q} k={k}");
            }
        }
    }
}
