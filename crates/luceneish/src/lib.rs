//! Lucene-like CPU search baseline with a calibrated cycle cost model.
//!
//! The BOSS paper's software baseline is Apache Lucene on an 8-core Xeon
//! 8280M, and its role in every figure is specific: a *compute-bound*
//! engine whose throughput barely changes between DRAM and SCM
//! (Figure 16 shows ≤15 % difference) and that anchors the normalization
//! of Figures 9–13 and 17. This crate reproduces that role:
//!
//! * **functionally** the engine evaluates queries exhaustively
//!   (decompress → set operations → score all candidates → heap top-k),
//!   bit-identical to [`boss_index::reference`], so all three engines'
//!   hits can be compared;
//! * **temporally** a cost model charges CPU cycles per decoded posting,
//!   per merge step, per scored document and per heap operation at
//!   2.7 GHz, plus memory time through the host-side `boss-scm` channel
//!   model. The constants are calibrated (see `EXPERIMENTS.md`) so the
//!   BOSS-vs-Lucene speedups land in the paper's reported range — the
//!   model is the paper's black-box baseline, not a JVM simulator.
//!
//! Query-level parallelism across threads matches Lucene's serving model:
//! one query per thread, batch makespan = greedy list scheduling.

mod engine;

pub use engine::{LuceneConfig, LuceneCostModel, LuceneEngine};
