//! The IIU engine model.

use boss_core::{BossConfig, TimingModel};
use boss_core::{EvalCounts, QueryOutcome, QueryPlan, TopK};
use boss_index::layout::{IndexImage, ScratchRegion};
use boss_index::prune::{self, PruneSink};
use boss_index::{
    decode_block_cached, BlockCache, BlockCacheStats, BlockMeta, DocId, Error, InvertedIndex,
    QueryAlgorithm, QueryExpr, ScoreScratch, TermId, BLOCK_META_BYTES,
};
use boss_scm::{AccessCategory, AccessKind, MemoryConfig, MemorySim, PatternHint};

/// IIU configuration: core count, memory node, and module timing (kept
/// identical to BOSS's for the paper's "same number of decompression and
/// scoring modules" fairness note in Figure 13).
#[derive(Debug, Clone, PartialEq)]
pub struct IiuConfig {
    /// Number of IIU cores sharing the memory node.
    pub n_cores: u32,
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// Decompression/scoring units per core.
    pub units_per_core: u32,
    /// The memory node.
    pub memory: MemoryConfig,
    /// Module timing constants (shared shape with BOSS).
    pub timing: TimingModel,
    /// Capacity (in decoded blocks) of the host-side decoded-block cache;
    /// 0 disables it. Wall-clock only: simulated cycles and traffic are
    /// independent of this setting (see `boss_index::cache`).
    pub block_cache_blocks: usize,
    /// Whether single-term queries score block-at-a-time on the host.
    /// Wall-clock only: simulated figures are bit-identical either way.
    pub bulk_score: bool,
    /// Dynamic-pruning plan for pure union queries. The default
    /// ([`QueryAlgorithm::Exhaustive`]) keeps IIU's original
    /// merge-everything traversal; any other value routes unions through
    /// the portable pruned evaluator (`boss_index::prune`) with IIU's
    /// memory charges, still returning bit-identical top-k results.
    pub algorithm: QueryAlgorithm,
}

impl Default for IiuConfig {
    fn default() -> Self {
        IiuConfig {
            n_cores: 8,
            clock_ghz: 1.0,
            units_per_core: 4,
            memory: MemoryConfig::optane_dcpmm(),
            timing: TimingModel::default(),
            block_cache_blocks: 0,
            bulk_score: true,
            algorithm: QueryAlgorithm::Exhaustive,
        }
    }
}

impl IiuConfig {
    /// `n` cores, defaults elsewhere.
    pub fn with_cores(n: u32) -> Self {
        IiuConfig {
            n_cores: n,
            ..Self::default()
        }
    }

    /// Replaces the memory node.
    #[must_use]
    pub fn on_memory(mut self, memory: MemoryConfig) -> Self {
        self.memory = memory;
        self
    }

    /// Replaces the decoded-block cache capacity (0 disables the cache).
    #[must_use]
    pub fn with_block_cache(mut self, blocks: usize) -> Self {
        self.block_cache_blocks = blocks;
        self
    }

    /// Enables or disables the bulk scoring path (wall-clock only).
    #[must_use]
    pub fn with_bulk_score(mut self, on: bool) -> Self {
        self.bulk_score = on;
        self
    }

    /// Replaces the dynamic-pruning query algorithm.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: QueryAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }
}

/// One IIU device bound to an index.
#[derive(Debug)]
pub struct IiuEngine<'a> {
    index: &'a InvertedIndex,
    image: IndexImage,
    config: IiuConfig,
    /// BOSS planning config reused for expression normalization (same
    /// 16-term limit).
    plan_config: BossConfig,
    /// Functional-speed decoded-block cache (never affects the model).
    cache: Option<BlockCache>,
}

struct Run<'a> {
    index: &'a InvertedIndex,
    image: &'a IndexImage,
    mem: MemorySim,
    eval: EvalCounts,
    dec_cycles: Vec<u64>,
    scored: u64,
    scratch: ScratchRegion,
    norm_line: u64,
    cache: Option<&'a BlockCache>,
}

impl<'a> Run<'a> {
    /// Fully decodes a list, charging sequential metadata + block reads,
    /// spreading decompression across units round-robin (IIU exploits
    /// intra-query parallelism). Corrupt blocks surface as typed errors.
    fn load_list(&mut self, term: TermId) -> Result<(Vec<DocId>, Vec<u32>), Error> {
        let list = self.index.list(term);
        let meta_addr = self.image.meta_addr(term);
        let data_addr = self.image.data_addr(term);
        let mut docs = Vec::with_capacity(list.df() as usize);
        let mut tfs = Vec::with_capacity(list.df() as usize);
        for (bi, meta) in list.blocks().iter().enumerate() {
            self.mem.access(
                meta_addr + bi as u64 * BLOCK_META_BYTES,
                BLOCK_META_BYTES,
                AccessKind::Read,
                AccessCategory::LdMeta,
                PatternHint::Sequential,
                0,
            );
            self.eval.metas_read += 1;
            self.mem.access(
                data_addr + u64::from(meta.offset),
                u64::from(meta.len).max(1),
                AccessKind::Read,
                AccessCategory::LdList,
                PatternHint::Sequential,
                0,
            );
            self.eval.blocks_fetched += 1;
            let unit = bi % self.dec_cycles.len();
            self.dec_cycles[unit] += u64::from(meta.len).max(meta.count() as u64 * 2) / 2 + 4;
            decode_block_cached(list, term, bi, self.cache, &mut docs, &mut tfs)?;
        }
        Ok((docs, tfs))
    }

    /// Binary-search membership testing of `probe` docs against `term`'s
    /// list: the block directory is streamed once into on-chip buffers,
    /// then each probe binary-searches it (comparisons only) and fetches
    /// the matched *data block* with a random access — the access pattern
    /// the BOSS paper criticizes IIU for on SCM.
    #[allow(clippy::type_complexity)]
    fn membership_intersect(
        &mut self,
        probe_docs: &[DocId],
        probe_tfs: &[Vec<(TermId, u32)>],
        term: TermId,
    ) -> Result<(Vec<DocId>, Vec<Vec<(TermId, u32)>>), Error> {
        let list = self.index.list(term);
        let blocks = list.blocks();
        let meta_addr = self.image.meta_addr(term);
        let data_addr = self.image.data_addr(term);
        // One streaming pass loads the directory.
        self.mem.access(
            meta_addr,
            (blocks.len() as u64 * BLOCK_META_BYTES).max(1),
            AccessKind::Read,
            AccessCategory::LdMeta,
            PatternHint::Sequential,
            0,
        );
        self.eval.metas_read += blocks.len() as u64;
        let mut out_docs = Vec::new();
        let mut out_tfs = Vec::new();
        let mut cached_block = usize::MAX;
        let mut bdocs: Vec<DocId> = Vec::new();
        let mut btfs: Vec<u32> = Vec::new();
        for (i, &d) in probe_docs.iter().enumerate() {
            // Binary search over the on-chip directory.
            let mut lo = 0usize;
            let mut hi = blocks.len();
            while lo < hi {
                let mid = (lo + hi) / 2;
                self.eval.comparisons += 1;
                if blocks[mid].last_doc < d {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            if lo >= blocks.len() || blocks[lo].first_doc > d {
                continue;
            }
            if cached_block != lo {
                // Random block fetch + decode.
                self.mem.access(
                    data_addr + u64::from(blocks[lo].offset),
                    u64::from(blocks[lo].len).max(1),
                    AccessKind::Read,
                    AccessCategory::LdList,
                    PatternHint::Random,
                    0,
                );
                self.eval.blocks_fetched += 1;
                bdocs.clear();
                btfs.clear();
                decode_block_cached(list, term, lo, self.cache, &mut bdocs, &mut btfs)?;
                let unit = lo % self.dec_cycles.len();
                self.dec_cycles[unit] += u64::from(blocks[lo].len).max(bdocs.len() as u64) / 2 + 4;
                cached_block = lo;
            }
            // Binary search within the decoded block.
            self.eval.comparisons += (bdocs.len().max(2) as u64).ilog2() as u64;
            if let Ok(pos) = bdocs.binary_search(&d) {
                let mut e = probe_tfs[i].clone();
                e.push((term, btfs[pos]));
                out_docs.push(d);
                out_tfs.push(e);
            }
        }
        Ok((out_docs, out_tfs))
    }

    /// Spills an intermediate list to memory and charges its reload.
    fn spill_intermediate(&mut self, len: usize) {
        let bytes = (len as u64 * 8).max(8);
        let addr = self.scratch.alloc(bytes);
        self.mem.access(
            addr,
            bytes,
            AccessKind::Write,
            AccessCategory::StInter,
            PatternHint::Sequential,
            0,
        );
        self.mem.access(
            addr,
            bytes,
            AccessKind::Read,
            AccessCategory::LdInter,
            PatternHint::Sequential,
            0,
        );
    }

    /// Charges one norm load through the 64-byte line buffer (BOSS's
    /// scoring-module discipline) and returns the norm.
    fn charge_norm(&mut self, doc: DocId) -> f32 {
        let addr = self.image.norm_addr(doc);
        if addr / 64 != self.norm_line {
            self.mem.access(
                addr,
                4,
                AccessKind::Read,
                AccessCategory::LdScore,
                PatternHint::Random,
                0,
            );
            self.norm_line = addr / 64;
        }
        self.index.doc_norms()[doc as usize]
    }

    fn score(&mut self, doc: DocId, entries: &[(TermId, u32)]) -> f32 {
        let norm = self.charge_norm(doc);
        let mut ids: Vec<(TermId, u32)> = entries.to_vec();
        ids.sort_unstable_by_key(|&(t, _)| t);
        ids.dedup_by_key(|&mut (t, _)| t);
        let mut score = 0.0f32;
        for (t, tf) in ids {
            let info = self.index.term_info(t);
            score += self.index.bm25().term_score(info.idf, tf, norm);
        }
        self.scored += 1;
        self.eval.docs_scored += 1;
        score
    }
}

/// [`PruneSink`] that charges the pruned traversal to IIU's memory and
/// timing model: metadata records stream sequentially from the block
/// directory, surviving blocks are fetched with pattern auto-detection
/// (a pruned traversal jumps, so contiguity is not assumed) and decoded
/// round-robin across units, and each scored document loads its norm
/// through the 64-byte line buffer — exactly the charges the unpruned
/// paths make for the same physical events. Skips are attributed to the
/// `*_prune` counters.
struct IiuPruneSink<'r, 'a> {
    run: &'r mut Run<'a>,
    /// Deduplicated ascending terms; `slot` in callbacks indexes this.
    terms: Vec<TermId>,
    /// Metadata records already charged per slot (directory read cursor).
    metas_charged: Vec<u64>,
}

impl PruneSink for IiuPruneSink<'_, '_> {
    fn meta_read(&mut self, slot: usize, blocks: u64) {
        let addr = self.run.image.meta_addr(self.terms[slot])
            + self.metas_charged[slot] * BLOCK_META_BYTES;
        self.run.mem.access(
            addr,
            blocks * BLOCK_META_BYTES,
            AccessKind::Read,
            AccessCategory::LdMeta,
            PatternHint::Sequential,
            0,
        );
        self.metas_charged[slot] += blocks;
        self.run.eval.metas_read += blocks;
    }

    fn block_decoded(&mut self, slot: usize, meta: &BlockMeta) {
        self.run.mem.access(
            self.run.image.data_addr(self.terms[slot]) + u64::from(meta.offset),
            u64::from(meta.len).max(1),
            AccessKind::Read,
            AccessCategory::LdList,
            PatternHint::Auto,
            0,
        );
        self.run.eval.blocks_fetched += 1;
        let unit = self.run.eval.blocks_fetched as usize % self.run.dec_cycles.len();
        self.run.dec_cycles[unit] += u64::from(meta.len).max(meta.count() as u64 * 2) / 2 + 4;
    }

    fn blocks_skipped(&mut self, _slot: usize, blocks: u64, docs: u64) {
        self.run.eval.blocks_skipped += blocks;
        self.run.eval.blocks_skipped_prune += blocks;
        self.run.eval.docs_skipped_prune += docs;
    }

    fn docs_skipped(&mut self, _slot: usize, docs: u64) {
        self.run.eval.docs_skipped_prune += docs;
    }

    fn doc_abandoned(&mut self) {
        self.run.eval.docs_skipped_prune += 1;
    }

    fn doc_scored(&mut self, doc: DocId) {
        self.run.charge_norm(doc);
        self.run.scored += 1;
        self.run.eval.docs_scored += 1;
    }

    fn round(&mut self) {
        self.run.eval.pivot_rounds += 1;
        self.run.eval.comparisons += 1;
    }
}

impl<'a> IiuEngine<'a> {
    /// Binds the engine to an index.
    pub fn new(index: &'a InvertedIndex, config: IiuConfig) -> Self {
        let plan_config = BossConfig {
            n_cores: config.n_cores,
            memory: config.memory.clone(),
            ..BossConfig::default()
        };
        let cache =
            (config.block_cache_blocks > 0).then(|| BlockCache::new(config.block_cache_blocks));
        IiuEngine {
            index,
            image: IndexImage::new(index),
            config,
            plan_config,
            cache,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &IiuConfig {
        &self.config
    }

    /// Hit/miss/eviction counters of the decoded-block cache, if enabled.
    pub fn block_cache_stats(&self) -> Option<BlockCacheStats> {
        self.cache.as_ref().map(BlockCache::stats)
    }

    /// Executes one query; the host-side sort that extracts the top-k is
    /// free (the paper ignores IIU's top-k selection time).
    ///
    /// # Errors
    ///
    /// Planning errors, as for BOSS.
    pub fn execute(&self, expr: &QueryExpr, k: usize) -> Result<QueryOutcome, Error> {
        let plan = QueryPlan::from_expr(self.index, expr, &self.plan_config)?;
        let mut run = Run {
            index: self.index,
            image: &self.image,
            mem: MemorySim::new(self.config.memory.clone()),
            eval: EvalCounts::default(),
            dec_cycles: vec![0; self.config.units_per_core as usize],
            scored: 0,
            scratch: ScratchRegion::after(&self.image),
            norm_line: u64::MAX,
            cache: self.cache.as_ref(),
        };

        // Pruned path: a pure union under a dynamic-pruning plan routes
        // through the portable evaluator, charging IIU's model via the
        // sink. Only surviving hits are materialized, so the result
        // writeback shrinks to the top-k — the rest of the pipeline
        // (timing maxima, free host-side top-k) is unchanged.
        if self.config.algorithm.prunes()
            && plan.groups().len() > 1
            && plan.groups().iter().all(|g| g.len() == 1)
        {
            let mut ids: Vec<TermId> = plan.groups().iter().map(|g| g[0]).collect();
            ids.sort_unstable();
            ids.dedup();
            let mut sink = IiuPruneSink {
                run: &mut run,
                metas_charged: vec![0; ids.len()],
                terms: ids.clone(),
            };
            let outcome =
                prune::pruned_union_topk(self.index, &ids, self.config.algorithm, k, &mut sink)?;
            let scored: Vec<(DocId, f32)> = outcome.hits.iter().map(|h| (h.doc, h.score)).collect();
            return Ok(self.finish(run, &plan, scored, k));
        }

        // Bulk path: a single-term query needs no merging, so the decoded
        // list can be scored block-at-a-time with the shared kernel. The
        // simulated run is bit-identical to the scalar path below: the
        // list load charges are the same `load_list` call, the merge loop's
        // one-comparison-per-document bookkeeping is batched, norms are
        // charged per document in the same ascending order through the same
        // line buffer, and `score_block` equals `0.0 + term_score` bitwise.
        if self.config.bulk_score && plan.groups().len() == 1 && plan.groups()[0].len() == 1 {
            let term = plan.groups()[0][0];
            let (docs, tfs) = run.load_list(term)?;
            run.eval.comparisons += docs.len() as u64;
            let idf = self.index.term_info(term).idf;
            let bm25 = *self.index.bm25();
            let norms = self.index.doc_norms();
            let mut block_scores = ScoreScratch::new();
            let mut scored: Vec<(DocId, f32)> = Vec::with_capacity(docs.len());
            for (cd, ct) in docs.chunks(128).zip(tfs.chunks(128)) {
                bm25.score_block(idf, cd, ct, norms, &mut block_scores);
                for (j, &d) in cd.iter().enumerate() {
                    run.charge_norm(d);
                    scored.push((d, block_scores.scores()[j]));
                }
            }
            run.scored += docs.len() as u64;
            run.eval.docs_scored += docs.len() as u64;
            return Ok(self.finish(run, &plan, scored, k));
        }

        // Each group: SvS with binary-search membership testing, spilling
        // intermediates between iterations; groups then merge exhaustively.
        let mut merged: std::collections::BTreeMap<DocId, Vec<(TermId, u32)>> =
            std::collections::BTreeMap::new();
        for group in plan.groups() {
            let mut order: Vec<TermId> = group.clone();
            order.sort_by_key(|&t| self.index.list(t).df());
            let (docs, tfs) = run.load_list(order[0])?;
            let mut cur_docs = docs;
            let mut cur_entries: Vec<Vec<(TermId, u32)>> = cur_docs
                .iter()
                .zip(&tfs)
                .map(|(_, &tf)| vec![(order[0], tf)])
                .collect();
            for &t in &order[1..] {
                let (nd, ne) = run.membership_intersect(&cur_docs, &cur_entries, t)?;
                cur_docs = nd;
                cur_entries = ne;
                // Intermediate result spilled to memory (the paper's
                // "unnecessary memory accesses to load/store intermediate
                // data").
                run.spill_intermediate(cur_docs.len());
                if cur_docs.is_empty() {
                    break;
                }
            }
            for (d, e) in cur_docs.into_iter().zip(cur_entries) {
                run.eval.comparisons += 1;
                merged.entry(d).or_default().extend(e);
            }
        }

        // Score everything; the unsorted scored list goes back to memory
        // for the host (ST Result), 8 bytes per document.
        let mut scored: Vec<(DocId, f32)> = Vec::with_capacity(merged.len());
        for (d, e) in &merged {
            let s = run.score(*d, e);
            scored.push((*d, s));
        }
        Ok(self.finish(run, &plan, scored, k))
    }

    /// Shared tail of `execute`: the result-list writeback, the free
    /// host-side top-k (per the paper's methodology), and pipeline timing.
    fn finish(
        &self,
        mut run: Run<'_>,
        plan: &QueryPlan,
        scored: Vec<(DocId, f32)>,
        k: usize,
    ) -> QueryOutcome {
        let result_bytes = (scored.len() as u64 * 8).max(8);
        let addr = run.scratch.alloc(result_bytes);
        run.mem.access(
            addr,
            result_bytes,
            AccessKind::Write,
            AccessCategory::StResult,
            PatternHint::Sequential,
            0,
        );

        let mut topk = TopK::new(k.max(1));
        for (d, s) in scored {
            topk.offer(d, s);
        }

        let cycles = self.pipeline_cycles(&run, plan);
        QueryOutcome {
            hits: topk.into_hits(),
            cycles,
            mem: run.mem.take_stats(),
            eval: run.eval,
        }
    }

    fn pipeline_cycles(&self, run: &Run<'_>, plan: &QueryPlan) -> u64 {
        let t = &self.config.timing;
        let t_mem = run.mem.stats().last_done_cycle;
        let t_dec = run.dec_cycles.iter().copied().max().unwrap_or(0);
        let t_setop = (run.eval.comparisons as f64 * t.cycles_per_comparison) as u64;
        // IIU exploits full intra-query parallelism across scoring units.
        let eff = f64::from(self.config.units_per_core.max(1));
        let t_score = (run.scored as f64 * t.cycles_per_score / eff) as u64 + t.scoring_fill;
        let _ = plan;
        t_mem.max(t_dec).max(t_setop).max(t_score) + t.query_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boss_index::{reference, IndexBuilder};

    fn corpus() -> InvertedIndex {
        let docs: Vec<String> = (0u32..900)
            .map(|i| {
                let mut t = String::from("fill");
                let h = i.wrapping_mul(374761393);
                if h % 2 == 0 {
                    t.push_str(" aa");
                }
                if h % 3 == 0 {
                    t.push_str(" bb bb");
                }
                if h % 11 == 0 {
                    t.push_str(" cc");
                }
                t
            })
            .collect();
        IndexBuilder::new()
            .add_documents(docs.iter().map(String::as_str))
            .build()
            .unwrap()
    }

    #[test]
    fn matches_reference_on_all_shapes() {
        let idx = corpus();
        let engine = IiuEngine::new(&idx, IiuConfig::default());
        let t = |s: &str| QueryExpr::term(s);
        let queries = [
            t("aa"),
            QueryExpr::and([t("aa"), t("bb")]),
            QueryExpr::or([t("aa"), t("cc")]),
            QueryExpr::and([t("aa"), t("bb"), t("cc"), t("fill")]),
            QueryExpr::or([t("aa"), t("bb"), t("cc"), t("fill")]),
            QueryExpr::and([t("aa"), QueryExpr::or([t("bb"), t("cc")])]),
        ];
        for q in &queries {
            let got = engine.execute(q, 10).unwrap();
            let expect = reference::evaluate(&idx, q, 10).unwrap();
            assert_eq!(got.hits, expect, "{q}");
        }
    }

    #[test]
    fn union_scores_everything() {
        let idx = corpus();
        let engine = IiuEngine::new(&idx, IiuConfig::default());
        let q = QueryExpr::or([QueryExpr::term("aa"), QueryExpr::term("bb")]);
        let out = engine.execute(&q, 10).unwrap();
        let cand = reference::candidates(&idx, &q).unwrap();
        assert_eq!(out.eval.docs_scored, cand.len() as u64);
    }

    #[test]
    fn intersection_generates_random_block_fetches() {
        let idx = corpus();
        let engine = IiuEngine::new(&idx, IiuConfig::default());
        let q = QueryExpr::and([QueryExpr::term("cc"), QueryExpr::term("aa")]);
        let out = engine.execute(&q, 10).unwrap();
        // Every data block of the probed list reached by membership testing
        // is fetched with a random access (plus random norm-line loads).
        assert!(
            out.mem.rand_accesses >= 3,
            "binary-search fetches are random: {}",
            out.mem.rand_accesses
        );
    }

    #[test]
    fn multi_term_queries_spill_intermediates() {
        let idx = corpus();
        let engine = IiuEngine::new(&idx, IiuConfig::default());
        let q3 = QueryExpr::and([
            QueryExpr::term("aa"),
            QueryExpr::term("bb"),
            QueryExpr::term("cc"),
        ]);
        let out = engine.execute(&q3, 10).unwrap();
        assert!(out.mem.bytes(AccessCategory::StInter) > 0);
        assert!(out.mem.bytes(AccessCategory::LdInter) > 0);
        // A 2-term query spills once as well (one membership pass).
        let q2 = QueryExpr::and([QueryExpr::term("aa"), QueryExpr::term("bb")]);
        let out2 = engine.execute(&q2, 10).unwrap();
        assert!(out2.mem.bytes(AccessCategory::StInter) > 0);
        // Every spill is read back in full.
        assert_eq!(
            out.mem.bytes(AccessCategory::StInter),
            out.mem.bytes(AccessCategory::LdInter)
        );
    }

    #[test]
    fn full_result_list_written_out() {
        let idx = corpus();
        let engine = IiuEngine::new(&idx, IiuConfig::default());
        let q = QueryExpr::term("aa");
        let out = engine.execute(&q, 10).unwrap();
        let cand = reference::candidates(&idx, &q).unwrap();
        assert_eq!(
            out.mem.bytes(AccessCategory::StResult),
            cand.len() as u64 * 8
        );
    }

    #[test]
    fn bulk_score_changes_nothing_observable() {
        // The block-at-a-time single-term path must match the scalar
        // merge+score path on every observable: hits, counters, traffic,
        // and cycles — with and without the decoded-block cache.
        let idx = corpus();
        let t = |s: &str| QueryExpr::term(s);
        let queries = [t("aa"), t("bb"), t("cc"), t("fill")];
        for cache_blocks in [0usize, 64] {
            let scalar = IiuEngine::new(
                &idx,
                IiuConfig::default()
                    .with_bulk_score(false)
                    .with_block_cache(cache_blocks),
            );
            let bulk = IiuEngine::new(
                &idx,
                IiuConfig::default()
                    .with_bulk_score(true)
                    .with_block_cache(cache_blocks),
            );
            for q in &queries {
                for k in [3usize, 100] {
                    let a = scalar.execute(q, k).unwrap();
                    let b = bulk.execute(q, k).unwrap();
                    assert_eq!(a.hits, b.hits, "{q} k={k} cache={cache_blocks}");
                    assert_eq!(a.eval, b.eval, "{q} k={k} cache={cache_blocks}");
                    assert_eq!(a.mem, b.mem, "{q} k={k} cache={cache_blocks}");
                    assert_eq!(a.cycles, b.cycles, "{q} k={k} cache={cache_blocks}");
                }
            }
        }
    }

    #[test]
    fn unknown_term_errors() {
        let idx = corpus();
        let engine = IiuEngine::new(&idx, IiuConfig::default());
        assert!(engine.execute(&QueryExpr::term("zzz"), 5).is_err());
    }

    #[test]
    fn pruned_unions_match_reference_on_all_algorithms() {
        let idx = corpus();
        let t = |s: &str| QueryExpr::term(s);
        let queries = [
            QueryExpr::or([t("aa"), t("cc")]),
            QueryExpr::or([t("aa"), t("bb"), t("cc"), t("fill")]),
        ];
        for algo in boss_index::ALL_ALGORITHMS {
            let engine = IiuEngine::new(&idx, IiuConfig::default().with_algorithm(algo));
            for q in &queries {
                for k in [3usize, 10, 200] {
                    let got = engine.execute(q, k).unwrap();
                    let expect = reference::evaluate(&idx, q, k).unwrap();
                    assert_eq!(got.hits, expect, "{algo} {q} k={k}");
                }
            }
        }
    }

    #[test]
    fn pruned_unions_skip_work_and_attribute_it() {
        let idx = corpus();
        let q = QueryExpr::or([QueryExpr::term("aa"), QueryExpr::term("cc")]);
        let base = IiuEngine::new(&idx, IiuConfig::default())
            .execute(&q, 10)
            .unwrap();
        assert_eq!(base.eval.docs_skipped_prune, 0);
        assert_eq!(base.eval.blocks_skipped_prune, 0);
        for algo in boss_index::ALL_ALGORITHMS {
            if !algo.prunes() {
                continue;
            }
            let engine = IiuEngine::new(&idx, IiuConfig::default().with_algorithm(algo));
            let out = engine.execute(&q, 10).unwrap();
            assert!(
                out.eval.docs_scored < base.eval.docs_scored,
                "{algo} should score fewer docs: {} vs {}",
                out.eval.docs_scored,
                base.eval.docs_scored
            );
            assert!(out.eval.docs_skipped_prune > 0, "{algo}");
            assert!(
                out.eval.blocks_fetched <= base.eval.blocks_fetched,
                "{algo}"
            );
            // Pruned traversal only materializes the top-k result list.
            assert_eq!(
                out.mem.bytes(AccessCategory::StResult),
                out.hits.len() as u64 * 8
            );
        }
    }

    #[test]
    fn pruning_leaves_intersections_and_single_terms_untouched() {
        let idx = corpus();
        let queries = [
            QueryExpr::term("aa"),
            QueryExpr::and([QueryExpr::term("aa"), QueryExpr::term("bb")]),
        ];
        for q in &queries {
            let a = IiuEngine::new(&idx, IiuConfig::default())
                .execute(q, 10)
                .unwrap();
            let b = IiuEngine::new(
                &idx,
                IiuConfig::default().with_algorithm(QueryAlgorithm::BlockMaxWand),
            )
            .execute(q, 10)
            .unwrap();
            assert_eq!(a.hits, b.hits, "{q}");
            assert_eq!(a.eval, b.eval, "{q}");
            assert_eq!(a.mem, b.mem, "{q}");
            assert_eq!(a.cycles, b.cycles, "{q}");
        }
    }
}
