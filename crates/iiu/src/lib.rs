//! IIU baseline: a re-implementation of the "Inverted Index Unit"
//! accelerator (ASPLOS 2020) as the BOSS paper characterizes it
//! (Sections II-D and III).
//!
//! The three properties BOSS exploits against IIU are modeled faithfully:
//!
//! * **binary-search intersection** — membership testing probes the larger
//!   list's block directory by binary search, generating *random* memory
//!   accesses that SCM serves slowly;
//! * **no union pruning** — union queries decompress every block of every
//!   list and score every document;
//! * **memory-spilled intermediates and results** — multi-term queries
//!   write intermediate posting lists to memory and read them back
//!   (`ST Inter`/`LD Inter`), and the full scored result list is written
//!   out for the host to sort (`ST Result`); per the paper's methodology,
//!   the host-side top-k time itself is *not* charged.
//!
//! Functionally IIU returns the same top-k as the exhaustive reference
//! (the host sorts the full result list), so tests can compare all three
//! engines hit-for-hit.

mod engine;

pub use engine::{IiuConfig, IiuEngine};
