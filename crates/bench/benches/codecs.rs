//! Criterion micro-benchmarks: encode/decode throughput of the five
//! compression codecs on a realistic d-gap distribution.

use boss_compress::{codec_for, ALL_SCHEMES};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn gap_block() -> Vec<u32> {
    // 128 d-gaps shaped like a mid-frequency posting list.
    (0..128u32)
        .map(|i| {
            let h = i.wrapping_mul(2654435761);
            if h % 23 == 0 {
                (h % 100_000) + 1000
            } else {
                h % 37
            }
        })
        .collect()
}

fn bench_codecs(c: &mut Criterion) {
    let values = gap_block();
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Elements(values.len() as u64));
    for s in ALL_SCHEMES {
        let codec = codec_for(s);
        group.bench_with_input(BenchmarkId::new("encode", s.label()), &values, |b, v| {
            let mut buf = Vec::with_capacity(1024);
            b.iter(|| {
                buf.clear();
                codec.encode(black_box(v), &mut buf).unwrap()
            });
        });
        let mut buf = Vec::new();
        let info = codec.encode(&values, &mut buf).unwrap();
        group.bench_with_input(BenchmarkId::new("decode", s.label()), &buf, |b, data| {
            let mut out = Vec::with_capacity(128);
            b.iter(|| {
                out.clear();
                codec.decode(black_box(data), &info, &mut out).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_programmable_engine(c: &mut Criterion) {
    use boss_decomp::DecompEngine;
    let values = gap_block();
    let mut group = c.benchmark_group("decomp-engine");
    group.throughput(Throughput::Elements(values.len() as u64));
    for s in ALL_SCHEMES {
        let codec = codec_for(s);
        let mut buf = Vec::new();
        let info = codec.encode(&values, &mut buf).unwrap();
        let engine = DecompEngine::for_scheme(s).unwrap();
        let interp = engine.clone().with_interpreter(true);
        group.bench_with_input(BenchmarkId::new("interpret", s.label()), &buf, |b, data| {
            b.iter(|| interp.decode(black_box(data), &info).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("compiled", s.label()), &buf, |b, data| {
            b.iter(|| engine.decode(black_box(data), &info).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codecs, bench_programmable_engine);
criterion_main!(benches);
