//! Criterion micro-benchmark: the shift-register top-k model under
//! different insertion mixes.

use boss_core::TopK;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn scores(n: usize, rising: bool) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761) % 10_000;
            if rising {
                i as f32 + (h as f32 / 10_000.0)
            } else {
                h as f32 / 100.0
            }
        })
        .collect()
}

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk");
    for &k in &[10usize, 100, 1000] {
        for (label, rising) in [("random", false), ("adversarial-rising", true)] {
            let data = scores(50_000, rising);
            group.throughput(Throughput::Elements(data.len() as u64));
            group.bench_with_input(BenchmarkId::new(label, k), &data, |b, data| {
                b.iter(|| {
                    let mut q = TopK::new(k);
                    for (doc, &s) in data.iter().enumerate() {
                        q.offer(black_box(doc as u32), black_box(s));
                    }
                    q.into_hits().len()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
