//! Criterion macro-benchmark: full BOSS query execution (functional +
//! timing simulation) per Table II query type on a smoke-scale corpus.

use boss_core::{BossConfig, BossDevice, EtMode};
use boss_workload::corpus::{CorpusSpec, Scale};
use boss_workload::queries::{QuerySampler, ALL_QUERY_TYPES};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let index = CorpusSpec::ccnews_like(Scale::Smoke).build().unwrap();
    let mut sampler = QuerySampler::new(&index, 404).unwrap();
    let mut group = c.benchmark_group("boss-query");
    for qt in ALL_QUERY_TYPES {
        let q = sampler.sample(qt).unwrap().expr;
        for et in [EtMode::Exhaustive, EtMode::Full] {
            let cfg = BossConfig::default().with_et(et).with_k(100);
            group.bench_with_input(
                BenchmarkId::new(format!("{:?}", et), qt.label()),
                &q,
                |b, q| {
                    let mut dev = BossDevice::new(&index, cfg.clone());
                    b.iter(|| dev.search_expr(black_box(q), 100).unwrap().hits.len());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
