//! Deterministic corruption harness: seeded mutations of encoded blocks,
//! block metadata, netlist configuration text, on-disk SPIMI segment
//! files, and single shards of a sharded index, with one invariant —
//! **typed error or bit-correct decode, never a panic, never an
//! out-of-bounds reserve** (and for the sharded trials: degradation
//! confined to the shard that owns the mutated bytes; for the segment
//! trials: the checksum must reject every changed byte image).
//!
//! The `corruption_harness` binary drives these trials at CI scale
//! (≥ 10,000 mutations across the five schemes and the netlist
//! interpreter); the functions are a library so tests can run focused
//! slices of the same machinery.
//!
//! Every trial is a pure function of its seed: the same seed mutates the
//! same bytes the same way on every run, so a CI failure is reproducible
//! locally from the printed seed alone.

use std::panic::{catch_unwind, AssertUnwindSafe};

use boss_compress::{codec_for, BlockInfo, Scheme, ALL_SCHEMES, MAX_BLOCK_VALUES};
use boss_core::{BossConfig, DegradePolicy};
use boss_decomp::{schemes, DecompEngine};
use boss_engine::{Boss, SearchEngine};
use boss_index::segment::{write_segment, SegmentReader};
use boss_index::shard::ShardedIndex;
use boss_index::{EncodedList, IndexBuilder, QueryExpr, SchemeChoice, SegmentRegions};

/// Output vectors start empty and every decode path reserves at most
/// [`MAX_BLOCK_VALUES`] slots up front, so allocator round-up aside the
/// capacity after a decode attempt must stay within a small multiple.
pub const RESERVE_BOUND: usize = 2 * MAX_BLOCK_VALUES;

/// xorshift64* — the harness's only randomness source. Deliberately
/// hand-rolled: the mutation stream must stay identical across toolchain
/// and dependency updates, because CI failure messages quote seeds.
#[derive(Debug, Clone)]
pub struct Xorshift64 {
    state: u64,
}

impl Xorshift64 {
    /// A generator seeded with `seed` (0 is remapped; xorshift has no
    /// zero orbit).
    pub fn new(seed: u64) -> Self {
        Xorshift64 {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw in `0..n` (`n` must be non-zero).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// One category of seeded mutation. The harness cycles through all of
/// them; `apply` mutates in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Flip one random bit of the encoded bytes.
    BitFlip,
    /// Overwrite one random byte with a random value.
    ByteSet,
    /// Truncate the encoded bytes at a random point.
    Truncate,
    /// Append random garbage bytes.
    Extend,
    /// Corrupt the block descriptor (count / bit width / exception
    /// offset) instead of the data.
    Descriptor,
}

/// All mutation categories, in the order the harness cycles through them.
pub const ALL_MUTATIONS: [Mutation; 5] = [
    Mutation::BitFlip,
    Mutation::ByteSet,
    Mutation::Truncate,
    Mutation::Extend,
    Mutation::Descriptor,
];

/// Applies `mutation` to an encoded block (`data`, `info`) using draws
/// from `rng`.
pub fn apply_mutation(
    mutation: Mutation,
    rng: &mut Xorshift64,
    data: &mut Vec<u8>,
    info: &mut BlockInfo,
) {
    match mutation {
        Mutation::BitFlip => {
            if !data.is_empty() {
                let i = rng.below(data.len());
                data[i] ^= 1 << rng.below(8);
            }
        }
        Mutation::ByteSet => {
            if !data.is_empty() {
                let i = rng.below(data.len());
                data[i] = rng.next_u64() as u8;
            }
        }
        Mutation::Truncate => {
            let keep = rng.below(data.len() + 1);
            data.truncate(keep);
        }
        Mutation::Extend => {
            let extra = 1 + rng.below(16);
            for _ in 0..extra {
                data.push(rng.next_u64() as u8);
            }
        }
        Mutation::Descriptor => match rng.below(3) {
            0 => info.count = rng.next_u64() as u16,
            1 => info.bit_width = rng.next_u64() as u8,
            _ => info.exception_offset = rng.next_u64() as u16,
        },
    }
}

/// Aggregate outcome of a batch of trials.
#[derive(Debug, Default)]
pub struct Tally {
    /// Mutations exercised.
    pub trials: u64,
    /// Decodes that still succeeded after mutation.
    pub accepted: u64,
    /// Decodes that surfaced a typed error.
    pub rejected: u64,
    /// Invariant violations, formatted with the offending seed. Empty on
    /// a passing run.
    pub violations: Vec<String>,
}

impl Tally {
    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: Tally) {
        self.trials += other.trials;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.violations.extend(other.violations);
    }

    fn record(&mut self, accepted: bool) {
        self.trials += 1;
        if accepted {
            self.accepted += 1;
        } else {
            self.rejected += 1;
        }
    }
}

/// Deterministic pseudo-random block content: `count` values of up to
/// `max_width` bits (27 keeps every stock scheme in range).
fn random_values(rng: &mut Xorshift64, count: usize, max_width: u32) -> Vec<u32> {
    (0..count)
        .map(|_| {
            let width = rng.below(max_width as usize + 1) as u32;
            if width == 0 {
                0
            } else {
                (rng.next_u64() as u32) & ((1u32 << width) - 1).max(1)
            }
        })
        .collect()
}

/// Encodes one seeded block under `scheme`. Returns `None` for the rare
/// seed whose values a scheme cannot represent (counted as no trial).
fn encoded_block(rng: &mut Xorshift64, scheme: Scheme) -> Option<(Vec<u8>, BlockInfo)> {
    let count = 1 + rng.below(128);
    let values = random_values(rng, count, 27);
    let mut data = Vec::new();
    let info = codec_for(scheme).encode(&values, &mut data).ok()?;
    Some((data, info))
}

/// One codec trial: mutate an encoded block, then require that the fast
/// decode path and [`boss_compress::Codec::decode_reference`] agree on
/// accept/reject (and on the values when both accept), that the fused
/// d-gap path agrees with the fast path, that nothing panics, and that
/// no path reserves beyond [`RESERVE_BOUND`].
pub fn codec_trial(scheme: Scheme, seed: u64, tally: &mut Tally) {
    let mut rng = Xorshift64::new(seed ^ ((scheme as u64) << 56));
    let Some((mut data, mut info)) = encoded_block(&mut rng, scheme) else {
        return;
    };
    let mutation = ALL_MUTATIONS[rng.below(ALL_MUTATIONS.len())];
    apply_mutation(mutation, &mut rng, &mut data, &mut info);

    let codec = codec_for(scheme);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut fast = Vec::new();
        let mut reference = Vec::new();
        let mut fused = Vec::new();
        let fast_res = codec.decode(&data, &info, &mut fast);
        let ref_res = codec.decode_reference(&data, &info, &mut reference);
        let fused_res = codec.decode_d1(&data, &info, 7, &mut fused);
        (
            fast_res.is_ok(),
            ref_res.is_ok(),
            fused_res.is_ok(),
            fast,
            reference,
        )
    }));
    match outcome {
        Err(_) => tally
            .violations
            .push(format!("{scheme}: PANIC on {mutation:?} seed {seed}")),
        Ok((fast_ok, ref_ok, fused_ok, fast, reference)) => {
            tally.record(fast_ok);
            if fast_ok != ref_ok {
                tally.violations.push(format!(
                    "{scheme}: fast/reference accept disagreement ({fast_ok} vs {ref_ok}) on {mutation:?} seed {seed}"
                ));
            }
            if fast_ok && ref_ok && fast != reference {
                tally.violations.push(format!(
                    "{scheme}: fast/reference value disagreement on {mutation:?} seed {seed}"
                ));
            }
            if fast_ok != fused_ok {
                tally.violations.push(format!(
                    "{scheme}: decode/decode_d1 accept disagreement ({fast_ok} vs {fused_ok}) on {mutation:?} seed {seed}"
                ));
            }
            for (label, v) in [("fast", &fast), ("reference", &reference)] {
                if v.capacity() > RESERVE_BOUND {
                    tally.violations.push(format!(
                        "{scheme}: {label} reserved {} (> {RESERVE_BOUND}) on {mutation:?} seed {seed}",
                        v.capacity()
                    ));
                }
            }
        }
    }
}

/// One netlist-data trial: the Fig. 8 engine over a mutated block must
/// return `Ok` with exactly `info.count` values or a typed error — never
/// panic, never over-reserve. When `oracle` is given (the same
/// configuration on the other execution path), both paths must agree on
/// the *entire* outcome: values and cycles when they accept, the
/// identical typed error when they reject.
pub fn netlist_data_trial(
    engine: &DecompEngine,
    oracle: Option<&DecompEngine>,
    scheme: Scheme,
    seed: u64,
    tally: &mut Tally,
) {
    let mut rng = Xorshift64::new(seed ^ 0xD1C0_0000 ^ ((scheme as u64) << 56));
    let Some((mut data, mut info)) = encoded_block(&mut rng, scheme) else {
        return;
    };
    let mutation = ALL_MUTATIONS[rng.below(ALL_MUTATIONS.len())];
    apply_mutation(mutation, &mut rng, &mut data, &mut info);

    let outcome = catch_unwind(AssertUnwindSafe(|| engine.decode(&data, &info)));
    match outcome {
        Err(_) => tally.violations.push(format!(
            "{scheme} netlist: PANIC on {mutation:?} seed {seed}"
        )),
        Ok(res) => {
            tally.record(res.is_ok());
            if let Ok(decoded) = &res {
                if decoded.values.len() != info.count as usize {
                    tally.violations.push(format!(
                        "{scheme} netlist: accepted but produced {} of {} values on {mutation:?} seed {seed}",
                        decoded.values.len(),
                        info.count
                    ));
                }
                if decoded.values.capacity() > RESERVE_BOUND {
                    tally.violations.push(format!(
                        "{scheme} netlist: reserved {} (> {RESERVE_BOUND}) on {mutation:?} seed {seed}",
                        decoded.values.capacity()
                    ));
                }
            }
            if let Some(oracle) = oracle {
                let oracle_outcome = catch_unwind(AssertUnwindSafe(|| oracle.decode(&data, &info)));
                match oracle_outcome {
                    Err(_) => tally.violations.push(format!(
                        "{scheme} netlist oracle: PANIC on {mutation:?} seed {seed}"
                    )),
                    Ok(oracle_res) => {
                        if res != oracle_res {
                            tally.violations.push(format!(
                                "{scheme} netlist: compiled/interpreted outcome disagreement on {mutation:?} seed {seed}"
                            ));
                        }
                    }
                }
            }
        }
    }
}

/// One netlist-config trial: mutate the scheme's shipped configuration
/// *text* and require parse to return `Ok` or a typed [`boss_decomp::ParseError`];
/// when the mangled text still parses, decoding a valid block through it
/// must also not panic (typed errors and wrong values are both fine — a
/// different program is a different program).
pub fn netlist_config_trial(scheme: Scheme, seed: u64, tally: &mut Tally) {
    let mut rng = Xorshift64::new(seed ^ 0xCF60_0000 ^ ((scheme as u64) << 56));
    let mut text = schemes::config_text(scheme).as_bytes().to_vec();
    // One or two byte-level edits; lossy UTF-8 recovery keeps the parser
    // exercised rather than trivially rejecting invalid encodings.
    for _ in 0..=rng.below(2) {
        let mut unused = BlockInfo::default();
        let mutation = ALL_MUTATIONS[rng.below(4)]; // data mutations only
        apply_mutation(mutation, &mut rng, &mut text, &mut unused);
    }
    let text = String::from_utf8_lossy(&text).into_owned();

    let Some((data, info)) = encoded_block(&mut rng, scheme) else {
        return;
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        match DecompEngine::from_config_text(&text) {
            Err(_) => (false, true),
            Ok(engine) => {
                // Whatever program survived the mangling, running it must
                // stay inside the typed-error contract — on both paths,
                // with the identical outcome (values and cycles, or the
                // same typed error).
                let compiled = engine.decode(&data, &info);
                let interpreted = engine.clone().with_interpreter(true).decode(&data, &info);
                (true, compiled == interpreted)
            }
        }
    }));
    match outcome {
        Err(_) => tally
            .violations
            .push(format!("{scheme} netlist config: PANIC at seed {seed}")),
        Ok((parsed, paths_agree)) => {
            tally.record(parsed);
            if !paths_agree {
                tally.violations.push(format!(
                    "{scheme} netlist config: compiled/interpreted outcome disagreement at seed {seed}"
                ));
            }
        }
    }
}

/// One index-level trial: clone a real [`EncodedList`], corrupt its data
/// area or a [`boss_index::BlockMeta`] field through the harness hooks,
/// and require `decode_block` to return a typed error or a coherent
/// decode (equal-length columns), never panic, never over-reserve.
pub fn meta_trial(list: &EncodedList, seed: u64, tally: &mut Tally) {
    let mut rng = Xorshift64::new(seed ^ 0x3E7A_0000);
    let mut list = list.clone();
    let block = rng.below(list.n_blocks());
    if rng.below(2) == 0 {
        let mut unused = BlockInfo::default();
        let mutation = ALL_MUTATIONS[rng.below(4)]; // data mutations only
        apply_mutation(mutation, &mut rng, list.data_mut(), &mut unused);
    } else {
        let meta = &mut list.blocks_mut()[block];
        match rng.below(6) {
            0 => meta.offset = rng.next_u64() as u32,
            1 => meta.len = rng.next_u64() as u32,
            2 => meta.tf_offset = rng.next_u64() as u32,
            3 => meta.delta_info.count = rng.next_u64() as u16,
            4 => meta.tf_info.count = rng.next_u64() as u16,
            _ => meta.delta_info.bit_width = rng.next_u64() as u8,
        }
    }

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut docs = Vec::new();
        let mut tfs = Vec::new();
        let res = list.decode_block(block, &mut docs, &mut tfs);
        (res.is_ok(), docs, tfs)
    }));
    match outcome {
        Err(_) => tally
            .violations
            .push(format!("meta: PANIC at seed {seed} (block {block})")),
        Ok((ok, docs, tfs)) => {
            tally.record(ok);
            if ok && docs.len() != tfs.len() {
                tally.violations.push(format!(
                    "meta: accepted with ragged columns ({} docs, {} tfs) at seed {seed}",
                    docs.len(),
                    tfs.len()
                ));
            }
            if docs.capacity() > RESERVE_BOUND || tfs.capacity() > RESERVE_BOUND {
                tally.violations.push(format!(
                    "meta: reserved {}/{} (> {RESERVE_BOUND}) at seed {seed}",
                    docs.capacity(),
                    tfs.capacity()
                ));
            }
        }
    }
}

/// Sharded corpora for the containment trials: a 700-document synthetic
/// corpus split two and four ways, so every shard holds a multi-block
/// `probe` list plus a sparser `filler` list.
///
/// # Panics
///
/// Panics if the synthetic corpus fails to build or split — impossible
/// by construction, and a harness that cannot set up must fail loudly.
pub fn sharded_fixtures() -> Vec<ShardedIndex> {
    let docs: Vec<String> = (0u32..700)
        .map(|i| {
            if i.wrapping_mul(2654435761) % 3 == 0 {
                "probe filler".to_string()
            } else {
                "probe".to_string()
            }
        })
        .collect();
    let index = IndexBuilder::new()
        .add_documents(docs.iter().map(String::as_str))
        .build()
        .expect("harness corpus builds");
    [2u32, 4]
        .iter()
        .map(|&n| ShardedIndex::split(&index, n).expect("harness split succeeds"))
        .collect()
}

/// One sharded-containment trial: corrupt a single shard of a
/// [`ShardedIndex`] clone through the harness hooks, run every shard's
/// BOSS engine under the `SkipBlock` degradation policy, and require
///
/// * no panic anywhere,
/// * every *other* shard's [`boss_engine::QueryOutcome`] byte-identical
///   to the quiet (unmutated) split with zero fault-skipped blocks —
///   shards share no storage, so corruption must stay confined to the
///   device that owns the mutated bytes,
/// * the victim shard itself to finish: a completed query (its rejected
///   blocks counted in `blocks_skipped_fault`) or a typed error, never a
///   panic.
///
/// A trial is *accepted* when the victim shard shrugged the mutation off
/// entirely (outcome bit-identical to quiet, nothing skipped) and
/// *rejected* when the mutation cost it blocks or the whole query.
pub fn sharded_trial(base: &ShardedIndex, seed: u64, tally: &mut Tally) {
    let n = base.n_shards();
    let mut rng = Xorshift64::new(seed ^ 0x5AA2_D000 ^ ((n as u64) << 56));
    let victim = rng.below(n);
    let mut corrupted = base.clone();
    {
        let shard = corrupted.shard_mut(victim);
        let tid = rng.below(shard.n_terms()) as u32;
        let list = shard.list_mut(tid);
        if rng.below(2) == 0 {
            let mut unused = BlockInfo::default();
            let mutation = ALL_MUTATIONS[rng.below(4)]; // data mutations only
            apply_mutation(mutation, &mut rng, list.data_mut(), &mut unused);
        } else {
            let block = rng.below(list.n_blocks());
            let meta = &mut list.blocks_mut()[block];
            match rng.below(4) {
                0 => meta.offset = rng.next_u64() as u32,
                1 => meta.len = rng.next_u64() as u32,
                2 => meta.delta_info.count = rng.next_u64() as u16,
                _ => meta.delta_info.bit_width = rng.next_u64() as u8,
            }
        }
    }

    let query = if rng.below(2) == 0 {
        QueryExpr::and([QueryExpr::term("probe"), QueryExpr::term("filler")])
    } else {
        QueryExpr::or([QueryExpr::term("probe"), QueryExpr::term("filler")])
    };
    let config = || {
        BossConfig::with_cores(2)
            .with_k(50)
            .with_degrade(DegradePolicy::SkipBlock)
    };

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        base.shards()
            .iter()
            .zip(corrupted.shards())
            .map(|(quiet_shard, sick_shard)| {
                let mut quiet = Boss::new(quiet_shard, config());
                let mut sick = Boss::new(sick_shard, config());
                let quiet_res = quiet.search(&query, 50);
                let sick_res = sick.search(&query, 50);
                let skipped = sick.eval_counts().blocks_skipped_fault;
                (quiet_res, sick_res, skipped)
            })
            .collect::<Vec<_>>()
    }));
    match outcome {
        Err(_) => tally.violations.push(format!(
            "shard: PANIC at seed {seed} (victim {victim} of {n})"
        )),
        Ok(rows) => {
            let mut unscathed = true;
            for (s, (quiet_res, sick_res, skipped)) in rows.iter().enumerate() {
                let Ok(quiet_out) = quiet_res else {
                    tally
                        .violations
                        .push(format!("shard: quiet shard {s} failed at seed {seed}"));
                    continue;
                };
                if s == victim {
                    unscathed = matches!(sick_res, Ok(out) if *skipped == 0 && out == quiet_out);
                    continue;
                }
                if *skipped != 0 {
                    tally.violations.push(format!(
                        "shard: degradation leaked to shard {s} ({skipped} blocks skipped) at seed {seed} (victim {victim} of {n})"
                    ));
                }
                match sick_res {
                    Ok(out) if out == quiet_out => {}
                    Ok(_) => tally.violations.push(format!(
                        "shard: shard {s} outcome diverged from quiet at seed {seed} (victim {victim} of {n})"
                    )),
                    Err(e) => tally.violations.push(format!(
                        "shard: shard {s} failed ({e}) at seed {seed} (victim {victim} of {n})"
                    )),
                }
            }
            tally.record(unscathed);
        }
    }
}

/// Builds one in-memory SPIMI segment file for the segment-format trials:
/// the harness's stock 700-document corpus written through
/// [`write_segment`], with its [`SegmentRegions`] byte map so trials can
/// aim mutations at a specific structure (header, dictionary entry,
/// descriptor array, block payload, checksum trailer).
///
/// # Panics
///
/// Panics if the synthetic corpus fails to build or serialize —
/// impossible by construction, and a harness that cannot set up must
/// fail loudly.
pub fn segment_fixture() -> (Vec<u8>, SegmentRegions) {
    let docs: Vec<String> = (0u32..700)
        .map(|i| {
            if i.wrapping_mul(2654435761) % 3 == 0 {
                "probe filler".to_string()
            } else {
                "probe".to_string()
            }
        })
        .collect();
    let index = IndexBuilder::new()
        .add_documents(docs.iter().map(String::as_str))
        .build()
        .expect("harness corpus builds");
    let mut terms: Vec<(String, EncodedList)> = index
        .term_ids()
        .map(|id| (index.term_info(id).text.clone(), index.list(id).clone()))
        .collect();
    terms.sort_by(|a, b| a.0.cmp(&b.0));
    let mut bytes = Vec::new();
    let (_, regions) = write_segment(
        &mut bytes,
        0,
        index.doc_lens(),
        index.bm25().params(),
        &terms,
    )
    .expect("harness segment serializes");
    (bytes, regions)
}

/// The segment structure a [`segment_trial`] mutation lands in, chosen
/// round-robin so every region sees volume.
const SEGMENT_REGIONS: usize = 6;

fn segment_region_range(
    regions: &SegmentRegions,
    pick: usize,
    rng: &mut Xorshift64,
) -> std::ops::Range<usize> {
    let r = match pick {
        0 => regions.header.clone(),
        1 => regions.doc_lens.clone(),
        2 => regions.term_headers[rng.below(regions.term_headers.len())].clone(),
        3 => regions.descriptors[rng.below(regions.descriptors.len())].clone(),
        4 => regions.payloads[rng.below(regions.payloads.len())].clone(),
        _ => regions.checksum.clone(),
    };
    r.start as usize..r.end as usize
}

/// One segment-format trial: mutate the on-disk byte image of a SPIMI
/// segment — a bit flip or byte overwrite aimed at a specific region
/// (header, doc-length array, a dictionary entry, a descriptor array, a
/// block payload, the checksum trailer), or a whole-file truncation or
/// garbage extension — then drain a [`SegmentReader`] over it. Require a
/// typed [`boss_index::io::IoError`] or a clean parse, never a panic;
/// and because every byte up to the trailer is checksummed, any flip
/// that actually changed a byte must be rejected by the time the reader
/// drains (accepting a *changed* image is a violation).
pub fn segment_trial(bytes: &[u8], regions: &SegmentRegions, seed: u64, tally: &mut Tally) {
    let mut rng = Xorshift64::new(seed ^ 0x5E6_0000);
    let mut mutated = bytes.to_vec();
    match rng.below(4) {
        0 => {
            let range = segment_region_range(regions, rng.below(SEGMENT_REGIONS), &mut rng);
            let i = range.start + rng.below(range.len().max(1));
            if let Some(b) = mutated.get_mut(i) {
                *b ^= 1 << rng.below(8);
            }
        }
        1 => {
            let range = segment_region_range(regions, rng.below(SEGMENT_REGIONS), &mut rng);
            let i = range.start + rng.below(range.len().max(1));
            if let Some(b) = mutated.get_mut(i) {
                *b = rng.next_u64() as u8;
            }
        }
        2 => mutated.truncate(rng.below(mutated.len() + 1)),
        _ => {
            for _ in 0..1 + rng.below(16) {
                mutated.push(rng.next_u64() as u8);
            }
        }
    }
    let changed = mutated != bytes;

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let len = mutated.len() as u64;
        let mut reader = SegmentReader::new(&mutated[..], len)?;
        let mut n_terms = 0usize;
        while let Some((_term, list)) = reader.next_term()? {
            n_terms += 1;
            // Touch the decoded structure so lazily-validated fields run.
            let _ = list.n_blocks();
        }
        Ok::<usize, boss_index::io::IoError>(n_terms)
    }));
    match outcome {
        Err(_) => tally
            .violations
            .push(format!("segment: PANIC at seed {seed}")),
        Ok(res) => {
            tally.record(res.is_ok());
            if changed && res.is_ok() {
                tally.violations.push(format!(
                    "segment: checksum accepted a changed byte image at seed {seed}"
                ));
            }
        }
    }
}

/// Builds one multi-block [`EncodedList`] per stock scheme for the
/// metadata trials, via a small deterministic synthetic corpus.
///
/// # Panics
///
/// Panics if the synthetic corpus fails to build — impossible by
/// construction, and a harness that cannot set up must fail loudly.
pub fn lists_per_scheme() -> Vec<(Scheme, EncodedList)> {
    ALL_SCHEMES
        .iter()
        .map(|&scheme| {
            let docs: Vec<String> = (0u32..700)
                .map(|i| {
                    if i.wrapping_mul(2654435761) % 3 == 0 {
                        "probe filler".to_string()
                    } else {
                        "probe".to_string()
                    }
                })
                .collect();
            let index = IndexBuilder::new()
                .scheme(SchemeChoice::Fixed(scheme))
                .add_documents(docs.iter().map(String::as_str))
                .build()
                .expect("harness corpus builds");
            let tid = index.term_id("probe").expect("probe term present");
            let list = index.list(tid).clone();
            assert!(list.n_blocks() > 1, "need a multi-block list");
            (scheme, list)
        })
        .collect()
}

/// Runs `trials_per_scheme` seeded mutations of every category against
/// every stock scheme plus the netlist engine, starting at `base_seed`.
/// This is the whole harness; the binary just picks the counts and
/// prints the tally. Equivalent to [`run_with`] on the compiled path.
///
/// # Panics
///
/// Panics only if harness *setup* fails (corpus build, stock netlist
/// parse) — trial panics are caught and reported as violations.
pub fn run(base_seed: u64, trials_per_scheme: u64) -> Tally {
    run_with(base_seed, trials_per_scheme, false)
}

/// [`run`] with the netlist execution path selectable: the primary
/// engine runs the compiled plan (default) or, with `interpret_netlist`,
/// the interpreter; either way every netlist-data trial cross-checks the
/// other path as an oracle and any outcome divergence is a violation.
///
/// # Panics
///
/// Panics only if harness *setup* fails (corpus build, stock netlist
/// parse) — trial panics are caught and reported as violations.
pub fn run_with(base_seed: u64, trials_per_scheme: u64, interpret_netlist: bool) -> Tally {
    let mut tally = Tally::default();
    // Codec + netlist-data trials split the budget; config and metadata
    // trials add a quarter each so every surface sees real volume.
    let data_trials = trials_per_scheme / 2;
    let side_trials = trials_per_scheme / 4;
    let lists = lists_per_scheme();
    for &scheme in &ALL_SCHEMES {
        let engine = DecompEngine::for_scheme(scheme)
            .expect("stock netlist parses")
            .with_interpreter(interpret_netlist);
        let oracle = engine.clone().with_interpreter(!interpret_netlist);
        for t in 0..data_trials {
            codec_trial(scheme, base_seed + t, &mut tally);
            netlist_data_trial(&engine, Some(&oracle), scheme, base_seed + t, &mut tally);
        }
        for t in 0..side_trials {
            netlist_config_trial(scheme, base_seed + t, &mut tally);
        }
    }
    for (_, list) in &lists {
        for t in 0..side_trials {
            meta_trial(list, base_seed + t, &mut tally);
        }
    }
    for base in &sharded_fixtures() {
        for t in 0..side_trials {
            sharded_trial(base, base_seed + t, &mut tally);
        }
    }
    let (segment_bytes, segment_regions) = segment_fixture();
    for t in 0..side_trials {
        segment_trial(&segment_bytes, &segment_regions, base_seed + t, &mut tally);
    }
    tally
}
