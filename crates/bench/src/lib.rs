//! Shared harness for the figure/table binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the BOSS
//! paper (see `DESIGN.md` for the index). They share:
//!
//! * [`BenchArgs`] — a tiny `--scale smoke|small|full`, `--seed`,
//!   `--queries-per-type`, `--k`, `--threads`, `--engines` argument
//!   parser;
//! * corpus/query construction helpers;
//! * [`run_system`] — the one generic batch driver: any
//!   [`SearchEngine`] through the deterministic [`BatchExecutor`] into a
//!   uniform [`SystemRun`] row (results are bit-identical at every
//!   `--threads` value);
//! * TSV emission helpers (rows go to stdout; commentary lines start
//!   with `#`).

pub mod corruption;
pub mod figures;

use boss_core::{BossConfig, DegradePolicy, EtMode, EvalCounts, QueryOutcome};
use boss_engine::{BatchExecutor, Boss, Iiu, Lucene, SearchEngine};
use boss_iiu::IiuConfig;
use boss_index::{InvertedIndex, QueryExpr};
use boss_luceneish::LuceneConfig;
use boss_scm::{MemStats, MemoryConfig};
use boss_workload::corpus::{CorpusSpec, Scale};
use boss_workload::queries::{QuerySampler, QueryType, ALL_QUERY_TYPES};

/// Which of the three systems a binary should simulate (`--engines`).
///
/// Normalization baselines still run when deselected — the paper's
/// figures normalize to Lucene, so its throughput is needed even when
/// its rows are not printed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineSelection {
    /// Simulate BOSS.
    pub boss: bool,
    /// Simulate the IIU baseline.
    pub iiu: bool,
    /// Simulate the Lucene-like baseline.
    pub lucene: bool,
}

impl Default for EngineSelection {
    fn default() -> Self {
        EngineSelection {
            boss: true,
            iiu: true,
            lucene: true,
        }
    }
}

impl std::str::FromStr for EngineSelection {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut sel = EngineSelection {
            boss: false,
            iiu: false,
            lucene: false,
        };
        for name in s.split(',').filter(|n| !n.is_empty()) {
            match name.trim() {
                "boss" => sel.boss = true,
                "iiu" => sel.iiu = true,
                "lucene" => sel.lucene = true,
                other => {
                    return Err(format!(
                        "unknown engine {other:?}: expected a comma-separated subset of boss,iiu,lucene"
                    ))
                }
            }
        }
        if sel
            == (EngineSelection {
                boss: false,
                iiu: false,
                lucene: false,
            })
        {
            return Err("--engines selects no engine".into());
        }
        Ok(sel)
    }
}

/// Common command-line arguments of the figure binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Corpus scale.
    pub scale: Scale,
    /// Sampler seed.
    pub seed: u64,
    /// Queries sampled per Table II type.
    pub queries_per_type: usize,
    /// Results per query.
    pub k: usize,
    /// OS threads the batch executor shards queries across.
    pub threads: usize,
    /// Systems to simulate.
    pub engines: EngineSelection,
    /// Decoded-block cache capacity per engine fork, in blocks (0
    /// disables it). Wall-clock only — never changes a data row.
    pub block_cache: usize,
    /// Whether the engines run the block-at-a-time scoring kernels
    /// (`--no-bulk` reverts to the seed per-document hot loop).
    /// Wall-clock only — never changes a data row.
    pub bulk_score: bool,
    /// Seed of an SCM [`boss_scm::FaultPlan`] installed on the BOSS
    /// device (`--fault-plan SEED`); `None` runs fault-free. With the
    /// default zero fault rate the plan is quiet, and the invariance
    /// contract requires byte-identical output to a fault-free run.
    pub fault_seed: Option<u64>,
    /// Uncorrectable-line error rate of the installed plan
    /// (`--fault-rate F`); only meaningful with `--fault-plan`.
    pub fault_rate: f64,
    /// Degradation policy for faulted/corrupt blocks (`--degrade
    /// fail|skip`).
    pub degrade_skip: bool,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: Scale::Small,
            seed: 42,
            queries_per_type: 10,
            k: 1000,
            threads: default_threads(),
            engines: EngineSelection::default(),
            block_cache: 0,
            bulk_score: true,
            fault_seed: None,
            fault_rate: 0.0,
            degrade_skip: false,
        }
    }
}

/// Available hardware parallelism (1 if it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl BenchArgs {
    /// Parses `std::env::args()`; invalid values and unknown flags print
    /// a diagnostic and exit with status 2.
    pub fn parse() -> Self {
        let mut args = BenchArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut take = |name: &str| {
                it.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--scale" => {
                    args.scale = take("--scale").parse().unwrap_or_else(|e| {
                        eprintln!("{e}");
                        std::process::exit(2);
                    });
                }
                "--seed" => args.seed = parsed_value(&take("--seed"), "--seed"),
                "--queries-per-type" => {
                    args.queries_per_type =
                        parsed_value(&take("--queries-per-type"), "--queries-per-type");
                }
                "--k" => args.k = parsed_value(&take("--k"), "--k"),
                "--threads" => {
                    args.threads = parsed_value::<usize>(&take("--threads"), "--threads").max(1);
                }
                "--engines" => args.engines = parsed_value(&take("--engines"), "--engines"),
                "--block-cache" => {
                    args.block_cache = parsed_value(&take("--block-cache"), "--block-cache");
                }
                "--no-bulk" => args.bulk_score = false,
                "--fault-plan" => {
                    args.fault_seed = Some(parsed_value(&take("--fault-plan"), "--fault-plan"));
                }
                "--fault-rate" => {
                    args.fault_rate = parsed_value(&take("--fault-rate"), "--fault-rate");
                }
                "--degrade" => match take("--degrade").as_str() {
                    "fail" => args.degrade_skip = false,
                    "skip" => args.degrade_skip = true,
                    other => {
                        eprintln!("unknown degrade policy {other:?}: expected fail or skip");
                        std::process::exit(2);
                    }
                },
                "--help" | "-h" => {
                    println!(
                        "usage: [--scale smoke|small|full] [--seed N] [--queries-per-type N] \
                         [--k N] [--threads N] [--engines boss,iiu,lucene] [--block-cache BLOCKS] \
                         [--no-bulk] [--fault-plan SEED] [--fault-rate F] [--degrade fail|skip]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        args
    }

    /// The engine tuning these arguments describe.
    pub fn tuning(&self) -> EngineTuning {
        EngineTuning {
            block_cache: self.block_cache,
            bulk_score: self.bulk_score,
            fault_seed: self.fault_seed,
            fault_rate: self.fault_rate,
            degrade_skip: self.degrade_skip,
        }
    }

    /// Prints the `# threads` line of the TSV preamble. Thread count is
    /// the only run parameter that must NOT change any data row (the
    /// executor is deterministic), so it lives in a comment the diff
    /// tooling can strip.
    pub fn print_threads_comment(&self) {
        println!("# threads {}", self.threads);
    }
}

/// Parses a flag value, exiting with a diagnostic on bad input.
fn parsed_value<T: std::str::FromStr>(raw: &str, flag: &str) -> T
where
    T::Err: std::fmt::Display,
{
    raw.parse().unwrap_or_else(|e| {
        eprintln!("invalid value {raw:?} for {flag}: {e}");
        std::process::exit(2);
    })
}

/// A query suite grouped by Table II type.
#[derive(Debug)]
pub struct TypedSuite {
    /// `(type, queries)` in Table II order.
    pub per_type: Vec<(QueryType, Vec<QueryExpr>)>,
}

impl TypedSuite {
    /// Samples `per_type` queries of each type from `index`.
    ///
    /// # Panics
    ///
    /// Panics if the corpus vocabulary is too small to sample from; the
    /// benchmark corpora are generated large enough by construction.
    pub fn sample(index: &InvertedIndex, per_type: usize, seed: u64) -> Self {
        let mut sampler =
            QuerySampler::new(index, seed).expect("benchmark corpus has a vocabulary");
        let mut out = Vec::new();
        for qt in ALL_QUERY_TYPES {
            let qs = (0..per_type)
                .map(|_| sampler.sample(qt).expect("benchmark corpus samples").expr)
                .collect();
            out.push((qt, qs));
        }
        TypedSuite { per_type: out }
    }
}

/// Uniform result of one engine over one query set.
#[derive(Debug, Clone)]
pub struct SystemRun {
    /// Engine label.
    pub system: String,
    /// Wall-clock seconds of the batch (makespan).
    pub seconds: f64,
    /// Queries per second.
    pub qps: f64,
    /// Achieved memory bandwidth, GB/s.
    pub bandwidth_gbps: f64,
    /// Merged traffic.
    pub mem: MemStats,
    /// Merged evaluation counters.
    pub eval: EvalCounts,
    /// Per-query outcomes.
    pub outcomes: Vec<QueryOutcome>,
}

/// Runs any [`SearchEngine`] over a query set through the deterministic
/// [`BatchExecutor`] — the one batch driver every figure shares. The
/// `threads` value changes wall-clock time only; every [`SystemRun`]
/// field is bit-identical across thread counts.
///
/// # Panics
///
/// Panics if a query fails to plan (the samplers only produce plannable
/// shapes) or if an installed fault plan fails a query under the
/// `FailQuery` degradation policy — pass `--degrade skip` when running
/// figures against a faulty device.
pub fn run_system<E: SearchEngine + Send>(
    engine: &E,
    queries: &[QueryExpr],
    k: usize,
    threads: usize,
) -> SystemRun {
    let batch = BatchExecutor::with_threads(threads)
        .run(engine, queries, k)
        .expect("sampled queries plan and decode (use --degrade skip on a faulty device)");
    let clock = engine.clock_ghz();
    SystemRun {
        system: engine.label(),
        seconds: batch.seconds(clock),
        qps: batch.throughput_qps(clock),
        bandwidth_gbps: engine.bandwidth_gbps(&batch.mem, batch.makespan_cycles),
        mem: batch.mem,
        eval: batch.eval,
        outcomes: batch.outcomes,
    }
}

/// Engine knobs shared by the figure binaries: decoded-block cache,
/// bulk-scoring toggle, and (BOSS-only) the SCM fault plan and
/// degradation policy. [`BenchArgs::tuning`] builds one from the CLI.
#[derive(Debug, Clone)]
pub struct EngineTuning {
    /// Decoded-block cache capacity per engine fork, in blocks.
    pub block_cache: usize,
    /// Block-at-a-time scoring kernels on or off.
    pub bulk_score: bool,
    /// Seed of a [`boss_scm::FaultPlan`] to install on the BOSS device.
    pub fault_seed: Option<u64>,
    /// Uncorrectable-line rate of the installed plan (0.0 keeps it quiet).
    pub fault_rate: f64,
    /// `SkipBlock` instead of the default `FailQuery` degradation.
    pub degrade_skip: bool,
}

impl EngineTuning {
    /// Tuning with only the cache/bulk knobs set; no fault plan.
    pub fn new(block_cache: usize, bulk_score: bool) -> Self {
        EngineTuning {
            block_cache,
            bulk_score,
            fault_seed: None,
            fault_rate: 0.0,
            degrade_skip: false,
        }
    }

    /// The fault plan these knobs describe, if any.
    pub fn fault_plan(&self) -> Option<boss_scm::FaultPlan> {
        self.fault_seed
            .map(|seed| boss_scm::FaultPlan::quiet(seed).with_uncorrectable_rate(self.fault_rate))
    }

    /// The degradation policy these knobs describe.
    pub fn degrade(&self) -> DegradePolicy {
        if self.degrade_skip {
            DegradePolicy::SkipBlock
        } else {
            DegradePolicy::FailQuery
        }
    }
}

/// A BOSS engine in the paper's evaluation configuration. `block_cache`
/// is the decoded-block cache capacity (0 disables it) and `bulk`
/// selects the block-at-a-time scoring hot loop; both speed up the
/// simulation without changing any simulated number.
pub fn boss_engine<'a>(
    index: &'a InvertedIndex,
    cores: u32,
    et: EtMode,
    memory: MemoryConfig,
    k: usize,
    tuning: &EngineTuning,
) -> Boss<'a> {
    Boss::new(
        index,
        BossConfig::with_cores(cores)
            .with_et(et)
            .with_k(k)
            .on_memory(memory)
            .with_block_cache(tuning.block_cache)
            .with_bulk_score(tuning.bulk_score)
            .with_fault_plan(tuning.fault_plan())
            .with_degrade(tuning.degrade()),
    )
}

/// An IIU engine in the paper's evaluation configuration. Fault-plan
/// tuning fields are BOSS-only (the fault model lives in the BOSS
/// device's memory controller) and are ignored here.
pub fn iiu_engine<'a>(
    index: &'a InvertedIndex,
    cores: u32,
    memory: MemoryConfig,
    tuning: &EngineTuning,
) -> Iiu<'a> {
    Iiu::new(
        index,
        IiuConfig::with_cores(cores)
            .on_memory(memory)
            .with_block_cache(tuning.block_cache)
            .with_bulk_score(tuning.bulk_score),
    )
}

/// A Lucene-like engine in the paper's evaluation configuration.
/// Fault-plan tuning fields are BOSS-only and are ignored here.
pub fn lucene_engine<'a>(
    index: &'a InvertedIndex,
    threads: u32,
    memory: MemoryConfig,
    tuning: &EngineTuning,
) -> Lucene<'a> {
    Lucene::new(
        index,
        LuceneConfig::with_threads(threads)
            .on_memory(memory)
            .with_block_cache(tuning.block_cache)
            .with_bulk_score(tuning.bulk_score),
    )
}

/// The two corpora of the paper's evaluation, at the requested scale.
pub fn both_corpora(scale: Scale) -> Vec<(&'static str, InvertedIndex)> {
    vec![
        (
            "clueweb12-like",
            CorpusSpec::clueweb12_like(scale)
                .build()
                .expect("corpus builds"),
        ),
        (
            "ccnews-like",
            CorpusSpec::ccnews_like(scale)
                .build()
                .expect("corpus builds"),
        ),
    ]
}

/// Prints a TSV header row.
pub fn header(cols: &[&str]) {
    println!("{}", cols.join("\t"));
}

/// Prints a TSV data row.
pub fn row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

/// Formats a float tersely.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Geometric mean of positive values (0.0 for empty input).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let s: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (s / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_and_engines_agree_functionally() {
        let index = CorpusSpec::ccnews_like(Scale::Smoke).build().unwrap();
        let suite = TypedSuite::sample(&index, 2, 5);
        assert_eq!(suite.per_type.len(), 6);
        for (qt, qs) in &suite.per_type {
            assert_eq!(qs.len(), 2, "{qt:?}");
            let tuning = EngineTuning::new(64, true);
            let boss = run_system(
                &boss_engine(
                    &index,
                    2,
                    EtMode::Full,
                    MemoryConfig::optane_dcpmm(),
                    50,
                    &tuning,
                ),
                qs,
                50,
                2,
            );
            let iiu = run_system(
                &iiu_engine(&index, 2, MemoryConfig::optane_dcpmm(), &tuning),
                qs,
                50,
                2,
            );
            let luc = run_system(
                &lucene_engine(&index, 2, MemoryConfig::host_scm_6ch(), &tuning),
                qs,
                50,
                2,
            );
            for i in 0..qs.len() {
                assert_eq!(boss.outcomes[i].hits, iiu.outcomes[i].hits, "{qt:?} q{i}");
                assert_eq!(boss.outcomes[i].hits, luc.outcomes[i].hits, "{qt:?} q{i}");
            }
            assert!(boss.qps > 0.0 && iiu.qps > 0.0 && luc.qps > 0.0);
        }
    }

    #[test]
    fn formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(123.456), "123");
        assert_eq!(f(3.21987), "3.22");
        assert_eq!(f(0.01234), "0.0123");
    }

    #[test]
    fn geomean_math() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }
}
