//! Shared harness for the figure/table binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the BOSS
//! paper (see `DESIGN.md` for the index). They share:
//!
//! * [`BenchArgs`] — a tiny `--scale smoke|small|full`, `--seed`,
//!   `--queries-per-type`, `--k` argument parser;
//! * corpus/query construction helpers;
//! * batch drivers for the three engines (BOSS, IIU, Lucene-like) that
//!   return uniform [`SystemRun`] rows;
//! * TSV emission helpers (rows go to stdout; commentary lines start
//!   with `#`).

pub mod figures;

use boss_core::{BatchOutcome, BossConfig, BossDevice, EtMode, EvalCounts, QueryOutcome};
use boss_iiu::{IiuConfig, IiuEngine};
use boss_index::{InvertedIndex, QueryExpr};
use boss_luceneish::{LuceneConfig, LuceneEngine};
use boss_scm::{MemStats, MemoryConfig};
use boss_workload::corpus::{CorpusSpec, Scale};
use boss_workload::queries::{QuerySampler, QueryType, ALL_QUERY_TYPES};

/// Common command-line arguments of the figure binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Corpus scale.
    pub scale: Scale,
    /// Sampler seed.
    pub seed: u64,
    /// Queries sampled per Table II type.
    pub queries_per_type: usize,
    /// Results per query.
    pub k: usize,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs { scale: Scale::Small, seed: 42, queries_per_type: 10, k: 1000 }
    }
}

impl BenchArgs {
    /// Parses `std::env::args()`; unknown flags abort with usage help.
    pub fn parse() -> Self {
        let mut args = BenchArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut take = |name: &str| {
                it.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--scale" => {
                    args.scale = take("--scale").parse().unwrap_or_else(|e| {
                        eprintln!("{e}");
                        std::process::exit(2);
                    });
                }
                "--seed" => args.seed = take("--seed").parse().expect("numeric seed"),
                "--queries-per-type" => {
                    args.queries_per_type = take("--queries-per-type").parse().expect("numeric count");
                }
                "--k" => args.k = take("--k").parse().expect("numeric k"),
                "--help" | "-h" => {
                    println!("usage: [--scale smoke|small|full] [--seed N] [--queries-per-type N] [--k N]");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        args
    }
}

/// A query suite grouped by Table II type.
#[derive(Debug)]
pub struct TypedSuite {
    /// `(type, queries)` in Table II order.
    pub per_type: Vec<(QueryType, Vec<QueryExpr>)>,
}

impl TypedSuite {
    /// Samples `per_type` queries of each type from `index`.
    pub fn sample(index: &InvertedIndex, per_type: usize, seed: u64) -> Self {
        let mut sampler = QuerySampler::new(index, seed);
        let mut out = Vec::new();
        for qt in ALL_QUERY_TYPES {
            let qs = (0..per_type).map(|_| sampler.sample(qt).expr).collect();
            out.push((qt, qs));
        }
        TypedSuite { per_type: out }
    }
}

/// Uniform result of one engine over one query set.
#[derive(Debug, Clone)]
pub struct SystemRun {
    /// Engine label.
    pub system: String,
    /// Wall-clock seconds of the batch (makespan).
    pub seconds: f64,
    /// Queries per second.
    pub qps: f64,
    /// Achieved memory bandwidth, GB/s.
    pub bandwidth_gbps: f64,
    /// Merged traffic.
    pub mem: MemStats,
    /// Merged evaluation counters.
    pub eval: EvalCounts,
    /// Per-query outcomes.
    pub outcomes: Vec<QueryOutcome>,
}

/// Runs BOSS over a query set.
///
/// # Panics
///
/// Panics if a query fails to plan (the samplers only produce plannable
/// shapes).
pub fn run_boss(
    index: &InvertedIndex,
    queries: &[QueryExpr],
    cores: u32,
    et: EtMode,
    memory: MemoryConfig,
    k: usize,
) -> SystemRun {
    let cfg = BossConfig::with_cores(cores).with_et(et).with_k(k).on_memory(memory);
    let clock = cfg.clock_ghz;
    let mut dev = BossDevice::new(index, cfg);
    let batch: BatchOutcome = dev.run_batch(queries, k).expect("sampled queries plan");
    let seconds = batch.makespan_cycles as f64 / (clock * 1e9);
    SystemRun {
        system: format!("{}x{}", et.label(), cores),
        seconds,
        qps: batch.throughput_qps(clock),
        bandwidth_gbps: batch.bandwidth_gbps(),
        mem: batch.mem,
        eval: batch.eval,
        outcomes: batch.outcomes,
    }
}

/// Runs IIU over a query set with greedy query-to-core scheduling.
///
/// # Panics
///
/// Panics if a query fails to plan.
pub fn run_iiu(
    index: &InvertedIndex,
    queries: &[QueryExpr],
    cores: u32,
    memory: MemoryConfig,
    k: usize,
) -> SystemRun {
    let cfg = IiuConfig::with_cores(cores).on_memory(memory);
    let clock = cfg.clock_ghz;
    let engine = IiuEngine::new(index, cfg);
    let mut busy = vec![0u64; cores as usize];
    let mut mem = MemStats::new();
    let mut eval = EvalCounts::default();
    let mut outcomes = Vec::with_capacity(queries.len());
    for q in queries {
        let out = engine.execute(q, k).expect("sampled queries plan");
        let b = busy.iter_mut().min_by_key(|x| **x).expect("cores > 0");
        *b += out.cycles;
        mem.merge(&out.mem);
        eval.merge(&out.eval);
        outcomes.push(out);
    }
    let core_limited = busy.into_iter().max().unwrap_or(0);
    let bw_limited = mem.busy_cycles / u64::from(engine.config().memory.channels.max(1));
    let makespan = core_limited.max(bw_limited);
    let seconds = makespan as f64 / (clock * 1e9);
    SystemRun {
        system: format!("IIUx{cores}"),
        seconds,
        qps: if makespan == 0 { 0.0 } else { queries.len() as f64 / seconds },
        bandwidth_gbps: mem.achieved_gbps(makespan),
        mem,
        eval,
        outcomes,
    }
}

/// Runs the Lucene-like baseline over a query set.
///
/// # Panics
///
/// Panics if a query fails to plan.
pub fn run_lucene(
    index: &InvertedIndex,
    queries: &[QueryExpr],
    threads: u32,
    memory: MemoryConfig,
    k: usize,
) -> SystemRun {
    let cfg = LuceneConfig::with_threads(threads).on_memory(memory);
    let clock = cfg.clock_ghz;
    let engine = LuceneEngine::new(index, cfg);
    let (outcomes, makespan) = engine.run_batch(queries, k).expect("sampled queries plan");
    let mem = LuceneEngine::merge_mem(&outcomes);
    let mut eval = EvalCounts::default();
    for o in &outcomes {
        eval.merge(&o.eval);
    }
    let seconds = makespan as f64 / (clock * 1e9);
    let bandwidth_gbps = if seconds > 0.0 {
        mem.total_bytes() as f64 / (seconds * 1e9)
    } else {
        0.0
    };
    SystemRun {
        system: format!("Lucene x{threads}"),
        seconds,
        qps: if makespan == 0 { 0.0 } else { queries.len() as f64 / seconds },
        bandwidth_gbps,
        mem,
        eval,
        outcomes,
    }
}

/// The two corpora of the paper's evaluation, at the requested scale.
pub fn both_corpora(scale: Scale) -> Vec<(&'static str, InvertedIndex)> {
    vec![
        ("clueweb12-like", CorpusSpec::clueweb12_like(scale).build().expect("corpus builds")),
        ("ccnews-like", CorpusSpec::ccnews_like(scale).build().expect("corpus builds")),
    ]
}

/// Prints a TSV header row.
pub fn header(cols: &[&str]) {
    println!("{}", cols.join("\t"));
}

/// Prints a TSV data row.
pub fn row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

/// Formats a float tersely.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Geometric mean of positive values (0.0 for empty input).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let s: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (s / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_and_engines_agree_functionally() {
        let index = CorpusSpec::ccnews_like(Scale::Smoke).build().unwrap();
        let suite = TypedSuite::sample(&index, 2, 5);
        assert_eq!(suite.per_type.len(), 6);
        for (qt, qs) in &suite.per_type {
            assert_eq!(qs.len(), 2, "{qt:?}");
            let boss = run_boss(&index, qs, 2, EtMode::Full, MemoryConfig::optane_dcpmm(), 50);
            let iiu = run_iiu(&index, qs, 2, MemoryConfig::optane_dcpmm(), 50);
            let luc = run_lucene(&index, qs, 2, MemoryConfig::host_scm_6ch(), 50);
            for i in 0..qs.len() {
                assert_eq!(boss.outcomes[i].hits, iiu.outcomes[i].hits, "{qt:?} q{i}");
                assert_eq!(boss.outcomes[i].hits, luc.outcomes[i].hits, "{qt:?} q{i}");
            }
            assert!(boss.qps > 0.0 && iiu.qps > 0.0 && luc.qps > 0.0);
        }
    }

    #[test]
    fn formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(123.456), "123");
        assert_eq!(f(3.21987), "3.22");
        assert_eq!(f(0.01234), "0.0123");
    }

    #[test]
    fn geomean_math() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }
}
