//! Shared harness for the figure/table binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the BOSS
//! paper (see `DESIGN.md` for the index). They share:
//!
//! * [`BenchArgs`] — a tiny `--scale smoke|small|full`, `--seed`,
//!   `--queries-per-type`, `--k`, `--threads`, `--engines` argument
//!   parser;
//! * corpus/query construction helpers;
//! * [`run_system`] — the one generic batch driver: any
//!   [`SearchEngine`] through the deterministic [`BatchExecutor`] into a
//!   uniform [`SystemRun`] row (results are bit-identical at every
//!   `--threads` value);
//! * TSV emission helpers (rows go to stdout; commentary lines start
//!   with `#`).

pub mod corruption;
pub mod figures;

use boss_core::{BossConfig, DegradePolicy, EtMode, EvalCounts, QueryAlgorithm, QueryOutcome};
use boss_engine::{
    BatchExecutor, Boss, Iiu, Lucene, OverloadConfig, SearchEngine, ServePolicy, ServingConfig,
    ShardTiming, Sharded,
};
use boss_iiu::IiuConfig;
use boss_index::shard::ShardedIndex;
use boss_index::{DecodeBackend, InvertedIndex, QueryExpr};
use boss_luceneish::LuceneConfig;
use boss_scm::{FaultPlan, MemStats, MemoryConfig};
use boss_workload::arrivals::{self, ArrivalKind};
use boss_workload::corpus::{CorpusSpec, Scale};
use boss_workload::queries::{QuerySampler, QueryType, ALL_QUERY_TYPES};

/// Which of the three systems a binary should simulate (`--engines`).
///
/// Normalization baselines still run when deselected — the paper's
/// figures normalize to Lucene, so its throughput is needed even when
/// its rows are not printed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineSelection {
    /// Simulate BOSS.
    pub boss: bool,
    /// Simulate the IIU baseline.
    pub iiu: bool,
    /// Simulate the Lucene-like baseline.
    pub lucene: bool,
}

impl Default for EngineSelection {
    fn default() -> Self {
        EngineSelection {
            boss: true,
            iiu: true,
            lucene: true,
        }
    }
}

impl std::str::FromStr for EngineSelection {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut sel = EngineSelection {
            boss: false,
            iiu: false,
            lucene: false,
        };
        for name in s.split(',').filter(|n| !n.is_empty()) {
            match name.trim() {
                "boss" => sel.boss = true,
                "iiu" => sel.iiu = true,
                "lucene" => sel.lucene = true,
                other => {
                    return Err(format!(
                        "unknown engine {other:?}: expected a comma-separated subset of boss,iiu,lucene"
                    ))
                }
            }
        }
        if sel
            == (EngineSelection {
                boss: false,
                iiu: false,
                lucene: false,
            })
        {
            return Err("--engines selects no engine".into());
        }
        Ok(sel)
    }
}

/// Common command-line arguments of the figure binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Corpus scale.
    pub scale: Scale,
    /// Sampler seed.
    pub seed: u64,
    /// Queries sampled per Table II type.
    pub queries_per_type: usize,
    /// Results per query.
    pub k: usize,
    /// OS threads the batch executor shards queries across.
    pub threads: usize,
    /// Systems to simulate.
    pub engines: EngineSelection,
    /// Decoded-block cache capacity per engine fork, in blocks (0
    /// disables it). Wall-clock only — never changes a data row.
    pub block_cache: usize,
    /// Whether the engines run the block-at-a-time scoring kernels
    /// (`--no-bulk` reverts to the seed per-document hot loop).
    /// Wall-clock only — never changes a data row.
    pub bulk_score: bool,
    /// Seed of an SCM [`boss_scm::FaultPlan`] installed on the BOSS
    /// device (`--fault-plan SEED`); `None` runs fault-free. With the
    /// default zero fault rate the plan is quiet, and the invariance
    /// contract requires byte-identical output to a fault-free run.
    pub fault_seed: Option<u64>,
    /// Uncorrectable-line error rate of the installed plan
    /// (`--fault-rate F`); only meaningful with `--fault-plan`.
    pub fault_rate: f64,
    /// Degradation policy for faulted/corrupt blocks (`--degrade
    /// fail|skip`).
    pub degrade_skip: bool,
    /// Shard count of the simulated multi-device system (`--shards N`).
    /// 1 keeps the single-device code path (no shard layer at all), so
    /// the default run is byte-identical to the pre-shard harness.
    pub shards: u32,
    /// Replicas per shard (`--replicas N`); only meaningful with
    /// `--shards` > 1. Extra replicas give the health-aware router a
    /// clean device to steer to when a shard's primary degrades.
    pub replicas: u32,
    /// Confines the installed fault plan to one shard (`--shard-fault
    /// S`): the plan lands on (shard S, replica 0) only, and the
    /// canonical timing engine plus every other leaf stays quiet.
    /// Without it the plan applies to the canonical engine and all
    /// leaves uniformly.
    pub shard_fault: Option<usize>,
    /// Dynamic-pruning query plan (`--algorithm exhaustive|maxscore|
    /// wand|bmw|bmm`) installed on every selected engine. Safe pruning:
    /// hits stay bit-identical to the default exhaustive traversal at
    /// every thread and shard count; only the work/timing columns move.
    pub algorithm: QueryAlgorithm,
    /// Host decode implementation (`--decode-netlist` routes block
    /// decodes through the compiled Fig. 8 netlist engine,
    /// `--interpret-netlist` through its interpreter oracle). All three
    /// backends are bit-equal: figure data rows must stay byte-identical,
    /// only wall-clock moves.
    pub decode_backend: DecodeBackend,
    /// Open-loop serving scenario (`--serve` and the `--serve-*`
    /// knobs); `None` keeps the closed-batch figure path untouched.
    /// Serving counters are reported only in `#` comment lines, so the
    /// data-row invariance contract is unaffected.
    pub serving: Option<ServingSpec>,
    /// Build the corpora through the SPIMI spill/merge path with this
    /// many on-disk segments (`--segments N`) instead of in memory.
    /// The merge is bit-identical to the in-memory build, so figure
    /// data rows must stay byte-identical — CI diffs the two paths.
    pub segments: Option<u32>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: Scale::Small,
            seed: 42,
            queries_per_type: 10,
            k: 1000,
            threads: default_threads(),
            engines: EngineSelection::default(),
            block_cache: 0,
            bulk_score: true,
            fault_seed: None,
            fault_rate: 0.0,
            degrade_skip: false,
            shards: 1,
            replicas: 1,
            shard_fault: None,
            algorithm: QueryAlgorithm::Exhaustive,
            decode_backend: DecodeBackend::Codec,
            serving: None,
            segments: None,
        }
    }
}

/// Available hardware parallelism (1 if it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl BenchArgs {
    /// Parses `std::env::args()`; invalid values and unknown flags print
    /// a diagnostic and exit with status 2.
    pub fn parse() -> Self {
        let mut args = BenchArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut take = |name: &str| {
                it.next().unwrap_or_else(|| {
                    eprintln!("missing value for {name}");
                    std::process::exit(2);
                })
            };
            match flag.as_str() {
                "--scale" => {
                    args.scale = take("--scale").parse().unwrap_or_else(|e| {
                        eprintln!("{e}");
                        std::process::exit(2);
                    });
                }
                "--seed" => args.seed = parsed_value(&take("--seed"), "--seed"),
                "--queries-per-type" => {
                    args.queries_per_type =
                        parsed_value(&take("--queries-per-type"), "--queries-per-type");
                }
                "--k" => args.k = parsed_value(&take("--k"), "--k"),
                "--threads" => {
                    args.threads = parsed_value::<usize>(&take("--threads"), "--threads").max(1);
                }
                "--engines" => args.engines = parsed_value(&take("--engines"), "--engines"),
                "--block-cache" => {
                    args.block_cache = parsed_value(&take("--block-cache"), "--block-cache");
                }
                "--no-bulk" => args.bulk_score = false,
                "--fault-plan" => {
                    args.fault_seed = Some(parsed_value(&take("--fault-plan"), "--fault-plan"));
                }
                "--fault-rate" => {
                    args.fault_rate = parsed_value(&take("--fault-rate"), "--fault-rate");
                }
                "--shards" => {
                    args.shards = parsed_value::<u32>(&take("--shards"), "--shards").max(1);
                }
                "--replicas" => {
                    args.replicas = parsed_value::<u32>(&take("--replicas"), "--replicas").max(1);
                }
                "--shard-fault" => {
                    args.shard_fault = Some(parsed_value(&take("--shard-fault"), "--shard-fault"));
                }
                "--segments" => {
                    args.segments =
                        Some(parsed_value::<u32>(&take("--segments"), "--segments").max(1));
                }
                "--algorithm" => {
                    args.algorithm = parsed_value(&take("--algorithm"), "--algorithm");
                }
                "--decode-netlist" => args.decode_backend = DecodeBackend::NetlistCompiled,
                "--interpret-netlist" => args.decode_backend = DecodeBackend::NetlistInterpreted,
                "--serve" => {
                    args.serving.get_or_insert_with(ServingSpec::default);
                }
                "--serve-load" => {
                    args.serving.get_or_insert_with(ServingSpec::default).load =
                        parsed_value(&take("--serve-load"), "--serve-load");
                }
                "--serve-queue" => {
                    args.serving.get_or_insert_with(ServingSpec::default).queue =
                        parsed_value::<usize>(&take("--serve-queue"), "--serve-queue").max(1);
                }
                "--serve-deadline-x" => {
                    args.serving
                        .get_or_insert_with(ServingSpec::default)
                        .deadline_x =
                        parsed_value(&take("--serve-deadline-x"), "--serve-deadline-x");
                }
                "--serve-policy" => {
                    args.serving.get_or_insert_with(ServingSpec::default).policy =
                        parsed_value(&take("--serve-policy"), "--serve-policy");
                }
                "--serve-arrivals" => {
                    args.serving
                        .get_or_insert_with(ServingSpec::default)
                        .arrivals = parsed_value(&take("--serve-arrivals"), "--serve-arrivals");
                }
                "--serve-degrade" => {
                    args.serving
                        .get_or_insert_with(ServingSpec::default)
                        .degrade = true;
                }
                "--degrade" => match take("--degrade").as_str() {
                    "fail" => args.degrade_skip = false,
                    "skip" => args.degrade_skip = true,
                    other => {
                        eprintln!("unknown degrade policy {other:?}: expected fail or skip");
                        std::process::exit(2);
                    }
                },
                "--help" | "-h" => {
                    println!(
                        "usage: [--scale smoke|small|full] [--seed N] [--queries-per-type N] \
                         [--k N] [--threads N] [--engines boss,iiu,lucene] [--block-cache BLOCKS] \
                         [--no-bulk] [--fault-plan SEED] [--fault-rate F] [--degrade fail|skip] \
                         [--shards N] [--replicas N] [--shard-fault S] [--segments N] \
                         [--algorithm exhaustive|maxscore|wand|bmw|bmm] \
                         [--decode-netlist] [--interpret-netlist] \
                         [--serve] [--serve-load F] [--serve-queue N] [--serve-deadline-x F] \
                         [--serve-policy fifo|sjf|edf|shed] [--serve-arrivals poisson|bursty] \
                         [--serve-degrade]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
        // The backend is a process-wide switch; install it once at parse
        // time so every decode in the run takes the selected path.
        boss_index::set_decode_backend(args.decode_backend);
        args
    }

    /// The engine tuning these arguments describe.
    pub fn tuning(&self) -> EngineTuning {
        EngineTuning {
            block_cache: self.block_cache,
            bulk_score: self.bulk_score,
            fault_seed: self.fault_seed,
            fault_rate: self.fault_rate,
            degrade_skip: self.degrade_skip,
            replicas: self.replicas.max(1) as usize,
            shard_fault: self.shard_fault,
            algorithm: self.algorithm,
            serving: self.serving.clone(),
        }
    }

    /// Splits `index` per `--shards`, or `None` for the single-device
    /// path (`--shards 1`). Invalid shard counts (more shards than
    /// documents) print a diagnostic and exit with status 2, like every
    /// other bad flag value.
    pub fn shard_split(&self, index: &InvertedIndex) -> Option<ShardedIndex> {
        if self.shards <= 1 {
            return None;
        }
        match ShardedIndex::split(index, self.shards) {
            Ok(sh) => Some(sh),
            Err(e) => {
                eprintln!("invalid --shards {}: {e}", self.shards);
                std::process::exit(2);
            }
        }
    }

    /// Prints the `# threads` line of the TSV preamble. Thread count is
    /// the only run parameter that must NOT change any data row (the
    /// executor is deterministic), so it lives in a comment the diff
    /// tooling can strip. Shard count shares the invariant (the shard
    /// layer's `Logical` timing sources every observable except the hits
    /// from the canonical engine, and the hits merge bit-identically),
    /// so it is printed as a comment too.
    pub fn print_threads_comment(&self) {
        println!("# threads {}", self.threads);
        if self.shards > 1 {
            println!("# shards {} replicas {}", self.shards, self.replicas.max(1));
        }
        if self.algorithm != QueryAlgorithm::Exhaustive {
            println!("# algorithm {}", self.algorithm);
        }
        match self.decode_backend {
            DecodeBackend::Codec => {}
            DecodeBackend::NetlistCompiled => println!("# decode netlist-compiled"),
            DecodeBackend::NetlistInterpreted => println!("# decode netlist-interpreted"),
        }
    }
}

/// Parses a flag value, exiting with a diagnostic on bad input.
fn parsed_value<T: std::str::FromStr>(raw: &str, flag: &str) -> T
where
    T::Err: std::fmt::Display,
{
    raw.parse().unwrap_or_else(|e| {
        eprintln!("invalid value {raw:?} for {flag}: {e}");
        std::process::exit(2);
    })
}

/// A query suite grouped by Table II type.
#[derive(Debug)]
pub struct TypedSuite {
    /// `(type, queries)` in Table II order.
    pub per_type: Vec<(QueryType, Vec<QueryExpr>)>,
}

impl TypedSuite {
    /// Samples `per_type` queries of each type from `index`.
    ///
    /// # Panics
    ///
    /// Panics if the corpus vocabulary is too small to sample from; the
    /// benchmark corpora are generated large enough by construction.
    pub fn sample(index: &InvertedIndex, per_type: usize, seed: u64) -> Self {
        let mut sampler =
            QuerySampler::new(index, seed).expect("benchmark corpus has a vocabulary");
        let mut out = Vec::new();
        for qt in ALL_QUERY_TYPES {
            let qs = (0..per_type)
                .map(|_| sampler.sample(qt).expect("benchmark corpus samples").expr)
                .collect();
            out.push((qt, qs));
        }
        TypedSuite { per_type: out }
    }
}

/// Uniform result of one engine over one query set.
#[derive(Debug, Clone)]
pub struct SystemRun {
    /// Engine label.
    pub system: String,
    /// Wall-clock seconds of the batch (makespan).
    pub seconds: f64,
    /// Queries per second.
    pub qps: f64,
    /// Achieved memory bandwidth, GB/s.
    pub bandwidth_gbps: f64,
    /// Merged traffic.
    pub mem: MemStats,
    /// Merged evaluation counters.
    pub eval: EvalCounts,
    /// Per-query outcomes.
    pub outcomes: Vec<QueryOutcome>,
}

/// Runs any [`SearchEngine`] over a query set through the deterministic
/// [`BatchExecutor`] — the one batch driver every figure shares. The
/// `threads` value changes wall-clock time only; every [`SystemRun`]
/// field is bit-identical across thread counts.
///
/// # Panics
///
/// Panics if a query fails to plan (the samplers only produce plannable
/// shapes) or if an installed fault plan fails a query under the
/// `FailQuery` degradation policy — pass `--degrade skip` when running
/// figures against a faulty device.
pub fn run_system<E: SearchEngine + Send>(
    engine: &E,
    queries: &[QueryExpr],
    k: usize,
    threads: usize,
) -> SystemRun {
    let batch = BatchExecutor::with_threads(threads)
        .run(engine, queries, k)
        .expect("sampled queries plan and decode (use --degrade skip on a faulty device)");
    let clock = engine.clock_ghz();
    SystemRun {
        system: engine.label(),
        seconds: batch.seconds(clock),
        qps: batch.throughput_qps(clock),
        bandwidth_gbps: engine.bandwidth_gbps(&batch.mem, batch.makespan_cycles),
        mem: batch.mem,
        eval: batch.eval,
        outcomes: batch.outcomes,
    }
}

/// Open-loop serving scenario: which arrival process hits the engine,
/// how hard, and what the admission/deadline/degradation posture is.
/// The CLI builds one from the `--serve-*` flags; the [`ServingConfig`]
/// it compiles to is relative to the engine's measured mean service time
/// and lane count, so one spec describes the same *relative* load on any
/// engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingSpec {
    /// Arrival process shape.
    pub arrivals: ArrivalKind,
    /// Offered load as a fraction of pool capacity (arrival rate ×
    /// mean normal service time ÷ servers); 1.0 is saturation.
    pub load: f64,
    /// Admission queue bound.
    pub queue: usize,
    /// Per-query deadline as a multiple of the mean normal service
    /// time; 0 disables deadlines.
    pub deadline_x: f64,
    /// Dequeue policy.
    pub policy: ServePolicy,
    /// Overload controller (degrade-under-pressure) on or off.
    pub degrade: bool,
}

impl Default for ServingSpec {
    fn default() -> Self {
        ServingSpec {
            arrivals: ArrivalKind::Poisson,
            load: 0.8,
            queue: 64,
            deadline_x: 20.0,
            policy: ServePolicy::Edf,
            degrade: false,
        }
    }
}

impl ServingSpec {
    /// Mean inter-arrival time in cycles that offers `self.load` to a
    /// pool of `servers` lanes with the given mean service time.
    pub fn mean_interarrival(&self, mean_svc_cycles: f64, servers: usize) -> f64 {
        mean_svc_cycles.max(1.0) / (servers.max(1) as f64 * self.load.max(1e-3))
    }

    /// Absolute deadline budget in cycles, `None` when disabled.
    pub fn deadline_cycles(&self, mean_svc_cycles: f64) -> Option<u64> {
        (self.deadline_x > 0.0).then(|| (self.deadline_x * mean_svc_cycles.max(1.0)).round() as u64)
    }

    /// Compiles the spec against a measured engine: `servers` lanes and
    /// the table's mean normal service time.
    pub fn config(&self, servers: usize, mean_svc_cycles: f64) -> ServingConfig {
        ServingConfig {
            servers: servers.max(1),
            queue_bound: self.queue.max(1),
            deadline_cycles: self.deadline_cycles(mean_svc_cycles),
            policy: self.policy,
            overload: self.degrade.then(OverloadConfig::default),
        }
    }

    /// The deterministic arrival trace this spec offers to a pool of
    /// `servers` lanes: `n` arrivals at the spec's load and shape.
    pub fn arrival_trace(
        &self,
        n: usize,
        mean_svc_cycles: f64,
        servers: usize,
        seed: u64,
    ) -> Vec<u64> {
        arrivals::generate(
            self.arrivals,
            n,
            self.mean_interarrival(mean_svc_cycles, servers),
            seed,
        )
    }
}

/// One serving simulation over an engine: measures the per-query
/// [`boss_engine::ServiceTable`] (on `pruned` too when the spec enables
/// degradation), generates the spec's arrival trace, and replays it.
/// Returns the run plus the measured mean normal service time in cycles
/// (the capacity anchor the spec's load and deadline were scaled by).
/// Deterministic: bit-identical at every `threads` value.
///
/// # Errors
///
/// The first query that fails to plan or decode on either engine.
pub fn run_serving<E: SearchEngine + Send>(
    engine: &E,
    pruned: Option<&E>,
    queries: &[QueryExpr],
    k: usize,
    spec: &ServingSpec,
    seed: u64,
    threads: usize,
) -> Result<(boss_engine::ServingRun, f64), boss_engine::Error> {
    let degraded = if spec.degrade { pruned } else { None };
    let brownout_k = (k / 4).max(1);
    let table =
        boss_engine::ServiceTable::measure(engine, degraded, queries, k, brownout_k, threads)?;
    let mean_svc = table.mean_normal_cycles();
    let servers = engine.lanes();
    let arrivals = spec.arrival_trace(queries.len(), mean_svc, servers, seed);
    let config = spec.config(servers, mean_svc);
    Ok((boss_engine::simulate(&config, &arrivals, &table), mean_svc))
}

/// Engine knobs shared by the figure binaries: decoded-block cache,
/// bulk-scoring toggle, and (BOSS-only) the SCM fault plan and
/// degradation policy. [`BenchArgs::tuning`] builds one from the CLI.
#[derive(Debug, Clone)]
pub struct EngineTuning {
    /// Decoded-block cache capacity per engine fork, in blocks.
    pub block_cache: usize,
    /// Block-at-a-time scoring kernels on or off.
    pub bulk_score: bool,
    /// Seed of a [`boss_scm::FaultPlan`] to install on the BOSS device.
    pub fault_seed: Option<u64>,
    /// Uncorrectable-line rate of the installed plan (0.0 keeps it quiet).
    pub fault_rate: f64,
    /// `SkipBlock` instead of the default `FailQuery` degradation.
    pub degrade_skip: bool,
    /// Replicas per shard when the target is sharded (min 1).
    pub replicas: usize,
    /// Confine the fault plan to (shard S, replica 0); see
    /// [`BenchArgs::shard_fault`].
    pub shard_fault: Option<usize>,
    /// Dynamic-pruning query plan installed on every engine the helpers
    /// build (leaves included). Hits are bit-identical to exhaustive.
    pub algorithm: QueryAlgorithm,
    /// Open-loop serving scenario, when the binary should also report
    /// serving counters (`# serving` comment block); `None` otherwise.
    pub serving: Option<ServingSpec>,
}

impl EngineTuning {
    /// Tuning with only the cache/bulk knobs set; no fault plan.
    pub fn new(block_cache: usize, bulk_score: bool) -> Self {
        EngineTuning {
            block_cache,
            bulk_score,
            fault_seed: None,
            fault_rate: 0.0,
            degrade_skip: false,
            replicas: 1,
            shard_fault: None,
            algorithm: QueryAlgorithm::Exhaustive,
            serving: None,
        }
    }

    /// The same tuning with `algorithm` replaced.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: QueryAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// The fault plan these knobs describe, if any.
    pub fn fault_plan(&self) -> Option<boss_scm::FaultPlan> {
        self.fault_seed
            .map(|seed| boss_scm::FaultPlan::quiet(seed).with_uncorrectable_rate(self.fault_rate))
    }

    /// The degradation policy these knobs describe.
    pub fn degrade(&self) -> DegradePolicy {
        if self.degrade_skip {
            DegradePolicy::SkipBlock
        } else {
            DegradePolicy::FailQuery
        }
    }
}

/// What a figure binary simulates: the canonical single-device index,
/// plus (optionally) its shard split for the multi-device layer.
///
/// With `shards: None` the engine helpers build pure pass-through
/// wrappers — no shard layer exists at all, so a `--shards 1` run is
/// byte-identical to the pre-shard harness by construction.
#[derive(Debug, Clone, Copy)]
pub struct BenchTarget<'a> {
    /// The unsplit index every engine's canonical device runs on.
    pub index: &'a InvertedIndex,
    /// The shard split, when `--shards` > 1.
    pub shards: Option<&'a ShardedIndex>,
}

impl<'a> BenchTarget<'a> {
    /// A single-device target.
    pub fn single(index: &'a InvertedIndex) -> Self {
        BenchTarget {
            index,
            shards: None,
        }
    }

    /// A target over `index` with an optional shard split (pass
    /// [`BenchArgs::shard_split`]'s result with `.as_ref()`).
    pub fn new(index: &'a InvertedIndex, shards: Option<&'a ShardedIndex>) -> Self {
        BenchTarget { index, shards }
    }
}

/// Builds the sharded wrapper for any engine family: a canonical device
/// over the unsplit index plus `replicas` leaves per shard, with the
/// fault plan placed per the tuning (uniform, or confined to one shard's
/// primary replica).
fn sharded_engine<'a, E: SearchEngine>(
    target: &BenchTarget<'a>,
    tuning: &EngineTuning,
    make: impl Fn(&'a InvertedIndex, Option<FaultPlan>) -> E,
) -> Sharded<'a, E> {
    let plan = tuning.fault_plan();
    let Some(sh) = target.shards else {
        return Sharded::single(make(target.index, plan));
    };
    // With `--shard-fault` the canonical timing engine stays quiet: the
    // fault is a property of one leaf device, and the figures keep
    // reporting the healthy-system timing.
    let canonical_plan = if tuning.shard_fault.is_some() {
        None
    } else {
        plan.clone()
    };
    let canonical = make(target.index, canonical_plan);
    let replicas = tuning.replicas.max(1);
    let leaves: Vec<Vec<E>> = sh
        .shards()
        .iter()
        .enumerate()
        .map(|(s, shard)| {
            (0..replicas)
                .map(|r| {
                    let leaf_plan = match tuning.shard_fault {
                        // The fault is confined to shard S's primary.
                        Some(fs) => (fs == s && r == 0).then(|| plan.clone()).flatten(),
                        // Uniform fault: every leaf sees the same plan.
                        None => plan.clone(),
                    };
                    make(shard, leaf_plan)
                })
                .collect()
        })
        .collect();
    Sharded::new(canonical, sh, leaves, ShardTiming::Logical)
}

/// A BOSS engine in the paper's evaluation configuration. `block_cache`
/// is the decoded-block cache capacity (0 disables it) and `bulk`
/// selects the block-at-a-time scoring hot loop; both speed up the
/// simulation without changing any simulated number. When `target`
/// carries a shard split, the result is a scatter-gather system of
/// per-shard BOSS devices behind the figure-preserving `Logical` timing.
pub fn boss_engine<'a>(
    target: &BenchTarget<'a>,
    cores: u32,
    et: EtMode,
    memory: MemoryConfig,
    k: usize,
    tuning: &EngineTuning,
) -> Sharded<'a, Boss<'a>> {
    let degrade = tuning.degrade();
    sharded_engine(target, tuning, move |index, plan| {
        Boss::new(
            index,
            BossConfig::with_cores(cores)
                .with_et(et)
                .with_k(k)
                .on_memory(memory.clone())
                .with_block_cache(tuning.block_cache)
                .with_bulk_score(tuning.bulk_score)
                .with_algorithm(tuning.algorithm)
                .with_fault_plan(plan)
                .with_degrade(degrade),
        )
    })
}

/// An IIU engine in the paper's evaluation configuration. Fault-plan
/// tuning fields are BOSS-only (the fault model lives in the BOSS
/// device's memory controller) and are ignored here.
pub fn iiu_engine<'a>(
    target: &BenchTarget<'a>,
    cores: u32,
    memory: MemoryConfig,
    tuning: &EngineTuning,
) -> Sharded<'a, Iiu<'a>> {
    sharded_engine(target, tuning, move |index, _plan| {
        Iiu::new(
            index,
            IiuConfig::with_cores(cores)
                .on_memory(memory.clone())
                .with_block_cache(tuning.block_cache)
                .with_bulk_score(tuning.bulk_score)
                .with_algorithm(tuning.algorithm),
        )
    })
}

/// A Lucene-like engine in the paper's evaluation configuration.
/// Fault-plan tuning fields are BOSS-only and are ignored here.
pub fn lucene_engine<'a>(
    target: &BenchTarget<'a>,
    threads: u32,
    memory: MemoryConfig,
    tuning: &EngineTuning,
) -> Sharded<'a, Lucene<'a>> {
    sharded_engine(target, tuning, move |index, _plan| {
        Lucene::new(
            index,
            LuceneConfig::with_threads(threads)
                .on_memory(memory.clone())
                .with_block_cache(tuning.block_cache)
                .with_bulk_score(tuning.bulk_score)
                .with_algorithm(tuning.algorithm),
        )
    })
}

/// The two corpora of the paper's evaluation, at the requested scale.
pub fn both_corpora(scale: Scale) -> Vec<(&'static str, InvertedIndex)> {
    vec![
        (
            "clueweb12-like",
            CorpusSpec::clueweb12_like(scale)
                .build()
                .expect("corpus builds"),
        ),
        (
            "ccnews-like",
            CorpusSpec::ccnews_like(scale)
                .build()
                .expect("corpus builds"),
        ),
    ]
}

impl BenchArgs {
    /// Builds one corpus through the path `--segments` selects: the
    /// in-memory `IndexBuilder` (default), or a SPIMI spill to `N`
    /// on-disk segments in a scratch directory merged back
    /// (bit-identical, so figure data rows must not move). `name` only
    /// scopes the scratch directory.
    ///
    /// # Errors
    ///
    /// The build/spill/merge failure, rendered for the binaries' exit-2
    /// diagnostics.
    pub fn try_build_corpus(&self, name: &str, spec: &CorpusSpec) -> Result<InvertedIndex, String> {
        let Some(n_segments) = self.segments else {
            return spec.build().map_err(|e| e.to_string());
        };
        let dir = std::env::temp_dir().join(format!(
            "boss-bench-seg-{name}-{}-{n_segments}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let set = spec
            .build_segments(&dir, n_segments)
            .map_err(|e| e.to_string())?;
        let index = set.merge().map_err(|e| e.to_string())?;
        std::fs::remove_dir_all(&dir).ok();
        Ok(index)
    }

    /// [`BenchArgs::try_build_corpus`] for binaries that treat a corpus
    /// build failure as fatal.
    ///
    /// # Panics
    ///
    /// On any build/spill/merge failure.
    pub fn build_corpus(&self, name: &str, spec: &CorpusSpec) -> InvertedIndex {
        self.try_build_corpus(name, spec).expect("corpus builds")
    }
}

/// [`both_corpora`], routed through the build path `args` selects:
/// `--segments N` spills each corpus to `N` on-disk SPIMI segments in a
/// scratch directory and merges them back; otherwise the plain in-memory
/// build. The merge is bit-identical, so every figure's data rows must
/// not move — CI diffs the two paths.
pub fn both_corpora_for(args: &BenchArgs) -> Vec<(&'static str, InvertedIndex)> {
    [
        ("clueweb12-like", CorpusSpec::clueweb12_like(args.scale)),
        ("ccnews-like", CorpusSpec::ccnews_like(args.scale)),
    ]
    .into_iter()
    .map(|(name, spec)| (name, args.build_corpus(name, &spec)))
    .collect()
}

/// Prints a TSV header row.
pub fn header(cols: &[&str]) {
    println!("{}", cols.join("\t"));
}

/// Prints a TSV data row.
pub fn row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

/// Formats a float tersely.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Geometric mean of positive values (0.0 for empty input).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let s: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (s / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_and_engines_agree_functionally() {
        let index = CorpusSpec::ccnews_like(Scale::Smoke).build().unwrap();
        let target = BenchTarget::single(&index);
        let suite = TypedSuite::sample(&index, 2, 5);
        assert_eq!(suite.per_type.len(), 6);
        for (qt, qs) in &suite.per_type {
            assert_eq!(qs.len(), 2, "{qt:?}");
            let tuning = EngineTuning::new(64, true);
            let boss = run_system(
                &boss_engine(
                    &target,
                    2,
                    EtMode::Full,
                    MemoryConfig::optane_dcpmm(),
                    50,
                    &tuning,
                ),
                qs,
                50,
                2,
            );
            let iiu = run_system(
                &iiu_engine(&target, 2, MemoryConfig::optane_dcpmm(), &tuning),
                qs,
                50,
                2,
            );
            let luc = run_system(
                &lucene_engine(&target, 2, MemoryConfig::host_scm_6ch(), &tuning),
                qs,
                50,
                2,
            );
            for i in 0..qs.len() {
                assert_eq!(boss.outcomes[i].hits, iiu.outcomes[i].hits, "{qt:?} q{i}");
                assert_eq!(boss.outcomes[i].hits, luc.outcomes[i].hits, "{qt:?} q{i}");
            }
            assert!(boss.qps > 0.0 && iiu.qps > 0.0 && luc.qps > 0.0);
        }
    }

    #[test]
    fn sharded_target_runs_are_bit_identical_to_single_device() {
        let index = CorpusSpec::ccnews_like(Scale::Smoke).build().unwrap();
        let sh = ShardedIndex::split(&index, 3).unwrap();
        let single = BenchTarget::single(&index);
        let multi = BenchTarget::new(&index, Some(&sh));
        let suite = TypedSuite::sample(&index, 2, 9);
        let mut tuning = EngineTuning::new(0, true);
        tuning.replicas = 2;
        for (qt, qs) in &suite.per_type {
            let a = run_system(
                &boss_engine(
                    &single,
                    2,
                    EtMode::Full,
                    MemoryConfig::optane_dcpmm(),
                    20,
                    &tuning,
                ),
                qs,
                20,
                2,
            );
            let b = run_system(
                &boss_engine(
                    &multi,
                    2,
                    EtMode::Full,
                    MemoryConfig::optane_dcpmm(),
                    20,
                    &tuning,
                ),
                qs,
                20,
                1,
            );
            assert_eq!(a.seconds, b.seconds, "{qt:?}");
            assert_eq!(a.mem, b.mem, "{qt:?}");
            assert_eq!(a.eval, b.eval, "{qt:?}");
            for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
                assert_eq!(x.hits, y.hits, "{qt:?}");
                assert_eq!(x.cycles, y.cycles, "{qt:?}");
            }
        }
    }

    #[test]
    fn formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(123.456), "123");
        assert_eq!(f(3.21987), "3.22");
        assert_eq!(f(0.01234), "0.0123");
    }

    #[test]
    fn geomean_math() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }
}
