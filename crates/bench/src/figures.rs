//! Shared figure drivers (Figures 9–17 differ only in corpus or axis).
//!
//! Every driver funnels through [`run_system`], so its TSV data rows are
//! bit-identical at every `--threads` value; the thread count appears
//! only in the `# threads` comment. `--engines` gates the row-oriented
//! figures (9–12, 16); the column-style comparisons (13–15, 17) always
//! simulate the systems they compare, since each column normalizes
//! against another.

use crate::{
    boss_engine, f, geomean, header, iiu_engine, lucene_engine, row, run_system, BenchArgs,
    BenchTarget, SystemRun, TypedSuite,
};
use boss_core::power::AreaPowerModel;
use boss_core::{EtMode, QueryAlgorithm};
use boss_scm::{AccessCategory, MemoryConfig};
use boss_workload::queries::QueryType;

/// Core counts swept by Figures 9–12.
pub const CORE_SWEEP: [u32; 4] = [1, 2, 4, 8];

/// The dynamic-pruning plans must be opt-in only: under the default
/// `--algorithm exhaustive`, no simulated system may book pruning work,
/// i.e. the figures' counts are unchanged from before pruning existed.
fn assert_exhaustive_untouched(args: &BenchArgs, system: &str, run: &SystemRun) {
    if args.algorithm == QueryAlgorithm::Exhaustive {
        assert_eq!(
            (run.eval.blocks_skipped_prune, run.eval.docs_skipped_prune),
            (0, 0),
            "exhaustive {system} run booked dynamic-pruning work"
        );
    }
}

/// Figures 9/10: per-query-type throughput of IIU and BOSS with 1/2/4/8
/// cores, normalized to 8-thread Lucene on SCM.
pub fn multicore_throughput(
    name: &str,
    target: &BenchTarget,
    suite: &TypedSuite,
    args: &BenchArgs,
) {
    let k = args.k;
    println!("# Figure 9/10 ({name}): throughput normalized to Lucene x8 on SCM");
    println!("# paper shape: BOSS ~7.5-8.7x at 8 cores, IIU ~1.7x, IIU flattens early");
    args.print_threads_comment();
    header(&["qtype", "system", "cores", "norm_throughput", "qps"]);
    let mut boss8_norms = Vec::new();
    let mut iiu8_norms = Vec::new();
    for (qt, queries) in &suite.per_type {
        // The Lucene baseline always runs: every row normalizes to it.
        let lucene = run_system(
            &lucene_engine(target, 8, MemoryConfig::host_scm_6ch(), &args.tuning()),
            queries,
            k,
            args.threads,
        );
        let base = lucene.qps;
        if args.engines.lucene {
            row(&[
                qt.label().into(),
                "Lucene".into(),
                "8".into(),
                "1.00".into(),
                f(base),
            ]);
        }
        if args.engines.iiu {
            for &cores in &CORE_SWEEP {
                let iiu = run_system(
                    &iiu_engine(target, cores, MemoryConfig::optane_dcpmm(), &args.tuning()),
                    queries,
                    k,
                    args.threads,
                );
                row(&[
                    qt.label().into(),
                    "IIU".into(),
                    cores.to_string(),
                    f(iiu.qps / base),
                    f(iiu.qps),
                ]);
                if cores == 8 {
                    iiu8_norms.push(iiu.qps / base);
                }
            }
        }
        if args.engines.boss {
            for &cores in &CORE_SWEEP {
                let boss = run_system(
                    &boss_engine(
                        target,
                        cores,
                        EtMode::Full,
                        MemoryConfig::optane_dcpmm(),
                        k,
                        &args.tuning(),
                    ),
                    queries,
                    k,
                    args.threads,
                );
                row(&[
                    qt.label().into(),
                    "BOSS".into(),
                    cores.to_string(),
                    f(boss.qps / base),
                    f(boss.qps),
                ]);
                if cores == 8 {
                    boss8_norms.push(boss.qps / base);
                }
            }
        }
    }
    println!(
        "# geomean at 8 cores: BOSS {}x, IIU {}x (paper {}: BOSS 7.54x/8.7x, IIU 1.69x/1.75x)",
        f(geomean(&boss8_norms)),
        f(geomean(&iiu8_norms)),
        name
    );
}

/// Figures 11/12: achieved bandwidth (GB/s) of IIU and BOSS per query
/// type and core count.
pub fn bandwidth_utilization(
    name: &str,
    target: &BenchTarget,
    suite: &TypedSuite,
    args: &BenchArgs,
) {
    let k = args.k;
    println!("# Figure 11/12 ({name}): bandwidth utilization (GB/s)");
    println!("# paper shape: IIU consumes more bandwidth than BOSS at equal core counts");
    args.print_threads_comment();
    header(&[
        "qtype",
        "system",
        "cores",
        "bandwidth_gbps",
        "bytes_per_query_mb",
    ]);
    for (qt, queries) in &suite.per_type {
        for &cores in &CORE_SWEEP {
            let mut runs: Vec<(&str, SystemRun)> = Vec::new();
            if args.engines.iiu {
                runs.push((
                    "IIU",
                    run_system(
                        &iiu_engine(target, cores, MemoryConfig::optane_dcpmm(), &args.tuning()),
                        queries,
                        k,
                        args.threads,
                    ),
                ));
            }
            if args.engines.boss {
                runs.push((
                    "BOSS",
                    run_system(
                        &boss_engine(
                            target,
                            cores,
                            EtMode::Full,
                            MemoryConfig::optane_dcpmm(),
                            k,
                            &args.tuning(),
                        ),
                        queries,
                        k,
                        args.threads,
                    ),
                ));
            }
            for (label, run) in &runs {
                row(&[
                    qt.label().into(),
                    (*label).into(),
                    cores.to_string(),
                    f(run.bandwidth_gbps),
                    f(run.mem.total_bytes() as f64 / queries.len() as f64 / 1e6),
                ]);
            }
        }
    }
}

/// Figure 13: single-core throughput of Lucene / IIU / BOSS-exhaustive /
/// BOSS, normalized to 1-core Lucene on SCM.
pub fn single_core(name: &str, target: &BenchTarget, suite: &TypedSuite, args: &BenchArgs) {
    let k = args.k;
    println!("# Figure 13 ({name}): single-core throughput normalized to Lucene x1 on SCM");
    println!("# paper shape: BOSS > BOSS-exhaustive > IIU on most types; ET gain shrinks with union width, grows with intersection width");
    args.print_threads_comment();
    header(&["qtype", "Lucene", "IIU", "BOSS-exhaustive", "BOSS"]);
    for (qt, queries) in &suite.per_type {
        let lucene = run_system(
            &lucene_engine(target, 1, MemoryConfig::host_scm_6ch(), &args.tuning()),
            queries,
            k,
            args.threads,
        );
        let base = lucene.qps;
        let iiu = run_system(
            &iiu_engine(target, 1, MemoryConfig::optane_dcpmm(), &args.tuning()),
            queries,
            k,
            args.threads,
        );
        let ex = run_system(
            &boss_engine(
                target,
                1,
                EtMode::Exhaustive,
                MemoryConfig::optane_dcpmm(),
                k,
                &args.tuning(),
            ),
            queries,
            k,
            args.threads,
        );
        let full = run_system(
            &boss_engine(
                target,
                1,
                EtMode::Full,
                MemoryConfig::optane_dcpmm(),
                k,
                &args.tuning(),
            ),
            queries,
            k,
            args.threads,
        );
        row(&[
            qt.label().into(),
            "1.00".into(),
            f(iiu.qps / base),
            f(ex.qps / base),
            f(full.qps / base),
        ]);
    }
}

/// Figure 14: number of evaluated (scored) documents for the union query
/// types, normalized to IIU (which scores everything).
pub fn evaluated_docs(name: &str, target: &BenchTarget, suite: &TypedSuite, args: &BenchArgs) {
    let k = args.k;
    println!("# Figure 14 ({name}): evaluated documents, normalized to IIU (=1.0)");
    println!("# paper shape: block-only skips shrink as terms grow; WAND recovers them");
    args.print_threads_comment();
    header(&["qtype", "IIU", "BOSS-block-only", "BOSS"]);
    for (qt, queries) in &suite.per_type {
        if !matches!(qt, QueryType::Q1 | QueryType::Q3 | QueryType::Q5) {
            continue; // the paper plots the union types
        }
        let iiu = run_system(
            &iiu_engine(target, 1, MemoryConfig::optane_dcpmm(), &args.tuning()),
            queries,
            k,
            args.threads,
        );
        let block = run_system(
            &boss_engine(
                target,
                1,
                EtMode::BlockOnly,
                MemoryConfig::optane_dcpmm(),
                k,
                &args.tuning(),
            ),
            queries,
            k,
            args.threads,
        );
        let full = run_system(
            &boss_engine(
                target,
                1,
                EtMode::Full,
                MemoryConfig::optane_dcpmm(),
                k,
                &args.tuning(),
            ),
            queries,
            k,
            args.threads,
        );
        assert_exhaustive_untouched(args, "IIU", &iiu);
        assert_exhaustive_untouched(args, "BOSS-block-only", &block);
        assert_exhaustive_untouched(args, "BOSS", &full);
        let base = iiu.eval.docs_scored.max(1) as f64;
        row(&[
            qt.label().into(),
            "1.00".into(),
            f(block.eval.docs_scored as f64 / base),
            f(full.eval.docs_scored as f64 / base),
        ]);
    }
    let _ = name;
}

/// Figure 15: memory access bytes by category, normalized to IIU's total.
pub fn memory_accesses(name: &str, target: &BenchTarget, suite: &TypedSuite, args: &BenchArgs) {
    let k = args.k;
    println!(
        "# Figure 15 ({name}): memory access volume by category, normalized to IIU total per type"
    );
    println!(
        "# paper shape: BOSS eliminates LD/ST Inter and ST Result, shrinks LD List + LD Score"
    );
    args.print_threads_comment();
    header(&[
        "qtype",
        "system",
        "ld_list",
        "ld_score",
        "ld_inter",
        "st_inter",
        "st_result",
        "total",
    ]);
    for (qt, queries) in &suite.per_type {
        let iiu = run_system(
            &iiu_engine(target, 1, MemoryConfig::optane_dcpmm(), &args.tuning()),
            queries,
            k,
            args.threads,
        );
        let boss = run_system(
            &boss_engine(
                target,
                1,
                EtMode::Full,
                MemoryConfig::optane_dcpmm(),
                k,
                &args.tuning(),
            ),
            queries,
            k,
            args.threads,
        );
        assert_exhaustive_untouched(args, "IIU", &iiu);
        assert_exhaustive_untouched(args, "BOSS", &boss);
        let base = iiu.mem.total_bytes().max(1) as f64;
        for (label, m) in [("IIU", &iiu.mem), ("BOSS", &boss.mem)] {
            let ld_list = m.bytes(AccessCategory::LdList) + m.bytes(AccessCategory::LdMeta);
            row(&[
                qt.label().into(),
                label.into(),
                f(ld_list as f64 / base),
                f(m.bytes(AccessCategory::LdScore) as f64 / base),
                f(m.bytes(AccessCategory::LdInter) as f64 / base),
                f(m.bytes(AccessCategory::StInter) as f64 / base),
                f(m.bytes(AccessCategory::StResult) as f64 / base),
                f(m.total_bytes() as f64 / base),
            ]);
        }
    }
    let _ = name;
}

/// Figure 16: all three systems on DRAM vs SCM, 8 cores, normalized to
/// Lucene x8 on SCM.
pub fn dram_vs_scm(name: &str, target: &BenchTarget, suite: &TypedSuite, args: &BenchArgs) {
    let k = args.k;
    println!("# Figure 16 ({name}): DRAM vs SCM at 8 cores, normalized to Lucene x8 on SCM");
    println!("# paper shape: Lucene barely moves (<=15%); IIU gains ~3.3x on DRAM, BOSS ~2.3x");
    args.print_threads_comment();
    header(&["qtype", "system", "memory", "norm_throughput"]);
    let mut ratios: Vec<(String, Vec<f64>, Vec<f64>)> = vec![
        ("Lucene".into(), vec![], vec![]),
        ("IIU".into(), vec![], vec![]),
        ("BOSS".into(), vec![], vec![]),
    ];
    for (qt, queries) in &suite.per_type {
        let base = run_system(
            &lucene_engine(target, 8, MemoryConfig::host_scm_6ch(), &args.tuning()),
            queries,
            k,
            args.threads,
        )
        .qps;
        let mut runs: Vec<(&str, &str, SystemRun)> = Vec::new();
        if args.engines.lucene {
            runs.push((
                "Lucene",
                "SCM",
                run_system(
                    &lucene_engine(target, 8, MemoryConfig::host_scm_6ch(), &args.tuning()),
                    queries,
                    k,
                    args.threads,
                ),
            ));
            runs.push((
                "Lucene",
                "DRAM",
                run_system(
                    &lucene_engine(target, 8, MemoryConfig::host_ddr4_6ch(), &args.tuning()),
                    queries,
                    k,
                    args.threads,
                ),
            ));
        }
        if args.engines.iiu {
            runs.push((
                "IIU",
                "SCM",
                run_system(
                    &iiu_engine(target, 8, MemoryConfig::optane_dcpmm(), &args.tuning()),
                    queries,
                    k,
                    args.threads,
                ),
            ));
            runs.push((
                "IIU",
                "DRAM",
                run_system(
                    &iiu_engine(target, 8, MemoryConfig::ddr4_2666(), &args.tuning()),
                    queries,
                    k,
                    args.threads,
                ),
            ));
        }
        if args.engines.boss {
            runs.push((
                "BOSS",
                "SCM",
                run_system(
                    &boss_engine(
                        target,
                        8,
                        EtMode::Full,
                        MemoryConfig::optane_dcpmm(),
                        k,
                        &args.tuning(),
                    ),
                    queries,
                    k,
                    args.threads,
                ),
            ));
            runs.push((
                "BOSS",
                "DRAM",
                run_system(
                    &boss_engine(
                        target,
                        8,
                        EtMode::Full,
                        MemoryConfig::ddr4_2666(),
                        k,
                        &args.tuning(),
                    ),
                    queries,
                    k,
                    args.threads,
                ),
            ));
        }
        for (sys, mem_label, r) in &runs {
            row(&[
                qt.label().into(),
                (*sys).into(),
                (*mem_label).into(),
                f(r.qps / base),
            ]);
            let slot = ratios
                .iter_mut()
                .find(|(n, _, _)| n == sys)
                .expect("known system");
            if *mem_label == "SCM" {
                slot.1.push(r.qps);
            } else {
                slot.2.push(r.qps);
            }
        }
    }
    for (sys, scm, dram) in &ratios {
        if scm.is_empty() {
            continue;
        }
        let r: Vec<f64> = scm.iter().zip(dram).map(|(s, d)| d / s).collect();
        println!("# {sys}: DRAM/SCM geomean {}x", f(geomean(&r)));
    }
    let _ = name;
}

/// Figure 17: energy per query batch, normalized to Lucene x8 on SCM
/// (log-scale bars in the paper; we print the ratio).
pub fn energy(name: &str, target: &BenchTarget, suite: &TypedSuite, args: &BenchArgs) {
    let k = args.k;
    println!("# Figure 17 ({name}): energy normalized to Lucene x8 on SCM (lower is better)");
    println!("# paper shape: BOSS ~189x less energy on average");
    args.print_threads_comment();
    header(&["qtype", "lucene_j", "boss_j", "savings_x"]);
    let model = AreaPowerModel::new(8);
    let mut savings = Vec::new();
    for (qt, queries) in &suite.per_type {
        let lucene = run_system(
            &lucene_engine(target, 8, MemoryConfig::host_scm_6ch(), &args.tuning()),
            queries,
            k,
            args.threads,
        );
        let boss = run_system(
            &boss_engine(
                target,
                8,
                EtMode::Full,
                MemoryConfig::optane_dcpmm(),
                k,
                &args.tuning(),
            ),
            queries,
            k,
            args.threads,
        );
        let e_lucene = AreaPowerModel::host_energy_joules(lucene.seconds);
        let e_boss = model.device_power_w() * boss.seconds;
        let s = e_lucene / e_boss.max(1e-12);
        savings.push(s);
        row(&[qt.label().into(), f(e_lucene), f(e_boss), f(s)]);
    }
    println!(
        "# geomean savings {}x (paper: 189x average)",
        f(geomean(&savings))
    );
    let _ = name;
}
