//! Ablation: core scaling beyond the paper's 8, exposing the SCM
//! bandwidth ceiling — the "scale-out further" argument of Section III-A.

use boss_bench::{boss_engine, f, header, iiu_engine, row, run_system, BenchArgs, BenchTarget};
use boss_core::EtMode;
use boss_scm::MemoryConfig;
use boss_workload::corpus::CorpusSpec;
use boss_workload::queries::QuerySampler;

fn main() {
    let args = BenchArgs::parse();
    let index = args.build_corpus("clueweb12-like", &CorpusSpec::clueweb12_like(args.scale));
    let sharded = args.shard_split(&index);
    let target = BenchTarget::new(&index, sharded.as_ref());
    let mut sampler = QuerySampler::new(&index, args.seed).expect("corpus vocabulary");
    let queries: Vec<_> = sampler
        .trec_like_mix(args.queries_per_type * 6)
        .expect("corpus samples")
        .into_iter()
        .map(|t| t.expr)
        .collect();
    println!(
        "# Ablation: core-count sweep on the TREC-like mix (k={})",
        args.k
    );
    args.print_threads_comment();
    header(&[
        "cores",
        "boss_qps",
        "iiu_qps",
        "boss_gbps",
        "iiu_gbps",
        "boss_speedup_vs_iiu",
    ]);
    for cores in [1u32, 2, 4, 8, 16, 32] {
        let b = run_system(
            &boss_engine(
                &target,
                cores,
                EtMode::Full,
                MemoryConfig::optane_dcpmm(),
                args.k,
                &args.tuning(),
            ),
            &queries,
            args.k,
            args.threads,
        );
        let i = run_system(
            &iiu_engine(&target, cores, MemoryConfig::optane_dcpmm(), &args.tuning()),
            &queries,
            args.k,
            args.threads,
        );
        row(&[
            cores.to_string(),
            f(b.qps),
            f(i.qps),
            f(b.bandwidth_gbps),
            f(i.bandwidth_gbps),
            f(b.qps / i.qps.max(1e-9)),
        ]);
    }
}
