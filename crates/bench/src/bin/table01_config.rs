//! Table I: hardware methodology configuration, printed from the actual
//! model constants so drift between the docs and the code is impossible.

use boss_core::BossConfig;
use boss_luceneish::LuceneConfig;
use boss_scm::MemoryConfig;

fn main() {
    let boss = BossConfig::default();
    let lucene = LuceneConfig::default();
    let host_dram = MemoryConfig::host_ddr4_6ch();
    let host_scm = MemoryConfig::host_scm_6ch();
    let node = &boss.memory;

    println!("# Table I: hardware methodology");
    println!("[Host Processor]");
    println!(
        "Core\tXeon-8280M-like @ {:.2} GHz, {} threads",
        lucene.clock_ghz, lucene.n_threads
    );
    println!("[Host Memory System]");
    println!(
        "DRAM\t{} channels, {:.2} GB/s",
        host_dram.channels, host_dram.seq_read_gbps
    );
    println!(
        "SCM\t{} channels, {:.1} GB/s ({:.2} GB/s per channel)",
        host_scm.channels,
        host_scm.seq_read_gbps,
        host_scm.seq_read_gbps / f64::from(host_scm.channels)
    );
    println!("[BOSS Configuration]");
    println!("BOSS\t{} cores @ {:.1} GHz", boss.n_cores, boss.clock_ghz);
    println!(
        "BOSS Core\t1 block fetch, {} decompression, 1 intersection, 1 union, {} scoring, 1 top-k (k={})",
        boss.decompressors_per_core, boss.scorers_per_core, boss.k
    );
    println!("[BOSS Memory System]");
    println!("Organization\tSCM, {} channels", node.channels);
    println!(
        "Bandwidth\tread {:.1} GB/s seq, {:.1} GB/s random; write {:.1} GB/s; {} B granule",
        node.seq_read_gbps, node.rand_read_gbps, node.write_gbps, node.granule_bytes
    );
}
