//! Hits-only top-k dump for the CI algorithm-invariance diffs.
//!
//! Prints one data row per (query type, system, query, rank) with the
//! document id and the score's exact bit pattern in hex. No cycle,
//! bandwidth, or counter columns: everything in a data row must be
//! bit-identical across `--algorithm`, `--threads`, and `--shards`, so
//! CI can compare runs with
//!
//! ```sh
//! diff <(grep -v '^#' exhaustive.tsv) <(grep -v '^#' bmw.tsv)
//! ```
//!
//! and any divergence — a pruning plan dropping a hit, a shard merge
//! reordering a tie — shows up as a diff failure rather than a subtle
//! quality regression.

use boss_bench::TypedSuite;
use boss_bench::{boss_engine, header, iiu_engine, lucene_engine, BenchArgs, BenchTarget};
use boss_core::EtMode;
use boss_engine::SearchEngine;
use boss_scm::MemoryConfig;
use boss_workload::corpus::CorpusSpec;

fn dump<E: SearchEngine>(name: &str, engine: &mut E, suite: &TypedSuite, k: usize) {
    for (qt, queries) in &suite.per_type {
        for (qi, q) in queries.iter().enumerate() {
            let out = engine.search(q, k).expect("query runs");
            for (rank, h) in out.hits.iter().enumerate() {
                println!(
                    "{}\t{}\t{}\t{}\t{}\t{:08x}",
                    qt.label(),
                    name,
                    qi,
                    rank,
                    h.doc,
                    h.score.to_bits(),
                );
            }
        }
    }
}

fn main() {
    let args = BenchArgs::parse();
    let index = args.build_corpus("ccnews-like", &CorpusSpec::ccnews_like(args.scale));
    let sharded = args.shard_split(&index);
    let target = BenchTarget::new(&index, sharded.as_ref());
    let suite = TypedSuite::sample(&index, args.queries_per_type, args.seed);
    println!("# Top-k hit dump (doc id + score bits); data rows are invariant");
    println!("# across --algorithm / --threads / --shards by construction");
    args.print_threads_comment();
    header(&["qtype", "system", "query", "rank", "doc", "score_bits"]);
    if args.engines.lucene {
        let mut luc = lucene_engine(&target, 1, MemoryConfig::host_scm_6ch(), &args.tuning());
        dump("Lucene", &mut luc, &suite, args.k);
    }
    if args.engines.iiu {
        let mut iiu = iiu_engine(&target, 1, MemoryConfig::optane_dcpmm(), &args.tuning());
        dump("IIU", &mut iiu, &suite, args.k);
    }
    if args.engines.boss {
        let mut boss = boss_engine(
            &target,
            1,
            EtMode::Full,
            MemoryConfig::optane_dcpmm(),
            args.k,
            &args.tuning(),
        );
        dump("BOSS", &mut boss, &suite, args.k);
    }
}
