//! Wall-clock decode microbenchmark: seed per-value path vs word-level
//! kernels.
//!
//! For each compression scheme, encodes a corpus of 128-value d-gap
//! blocks and times two functionally identical decode paths:
//!
//! * **seed** — [`Codec::decode_reference`], the per-value `bitio` loop
//!   the repo shipped with (for BP/OptPFD; schemes without a rerouted
//!   kernel report the same path twice);
//! * **kernel** — [`Codec::decode`], which for BP and the regular part
//!   of OptPFD now runs the word-level unpack kernels.
//!
//! A second sweep times the Fig. 8 stage-2 netlist over the same blocks:
//!
//! * **interpreted** — the structural-netlist interpreter
//!   ([`DecompEngine::with_interpreter`]), hashing wire names per unit;
//! * **compiled** — the default straight-line plan compiled from the
//!   same netlist (dense slots, zero per-unit allocation).
//!
//! Outputs decoded MB/s (decoded output bytes over wall time, best of
//! `--reps` repetitions) per scheme as TSV on stdout, verifies each
//! path pair decodes bit-identically (the netlist pair must also charge
//! identical simulated cycles), and writes a machine-readable summary
//! to `BENCH_decode.json` (`--json PATH` to move it). Each JSON row
//! carries a `path` tag: `codec` rows compare seed vs kernel,
//! `netlist_compiled` rows put the interpreter in `seed_mbps` and the
//! compiled plan in `kernel_mbps`.
//!
//! This is the one binary in the harness that measures *host* wall-clock
//! time: its numbers vary run to run and machine to machine, unlike the
//! simulated figures, which are deterministic.

use boss_bench::{f, header, row};
use boss_compress::{codec_for, BlockInfo, Scheme, ALL_SCHEMES};
use boss_decomp::DecompEngine;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::time::Instant;

const VALUES_PER_BLOCK: usize = 128;

#[derive(Debug, Serialize)]
struct SchemeResult {
    scheme: String,
    /// `codec` (seed vs kernel) or `netlist_compiled` (interpreter vs
    /// compiled plan, in the same `seed_mbps`/`kernel_mbps` slots).
    path: String,
    blocks: usize,
    values_per_block: usize,
    encoded_bytes: usize,
    seed_mbps: f64,
    kernel_mbps: f64,
    speedup: f64,
    bit_identical: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    bench: String,
    reps: usize,
    results: Vec<SchemeResult>,
}

struct Args {
    blocks: usize,
    reps: usize,
    seed: u64,
    json: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        blocks: 4096,
        reps: 5,
        seed: 42,
        json: "BENCH_decode.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--blocks" => args.blocks = take("--blocks").parse().expect("--blocks N"),
            "--reps" => args.reps = take("--reps").parse::<usize>().expect("--reps N").max(1),
            "--seed" => args.seed = take("--seed").parse().expect("--seed N"),
            "--json" => args.json = take("--json"),
            "--help" | "-h" => {
                println!("usage: [--blocks N] [--reps N] [--seed N] [--json PATH]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// A 128-value d-gap block with the paper's skewed gap distribution:
/// mostly small gaps, occasional large outliers (which exercises OptPFD
/// exceptions and the full BP width range).
fn gap_block(rng: &mut ChaCha8Rng) -> Vec<u32> {
    (0..VALUES_PER_BLOCK)
        .map(|_| match rng.random_range(0..10u32) {
            0..=5 => rng.random_range(0..16u32),
            6..=7 => rng.random_range(0..256u32),
            8 => rng.random_range(0..65536u32),
            _ => rng.random_range(0..(1u32 << 27)),
        })
        .collect()
}

/// Times `pass` over all blocks, returning the best-of-`reps` decoded
/// MB/s. The decoded output buffer is reused across blocks, as the
/// query hot path does.
fn throughput_mbps(
    reps: usize,
    blocks: &[(Vec<u8>, BlockInfo)],
    pass: impl Fn(&[u8], &BlockInfo, &mut Vec<u32>),
) -> f64 {
    let decoded_bytes: usize = blocks.iter().map(|(_, info)| info.count as usize * 4).sum();
    let mut best = f64::INFINITY;
    let mut out: Vec<u32> = Vec::with_capacity(VALUES_PER_BLOCK);
    for _ in 0..reps {
        let start = Instant::now();
        for (data, info) in blocks {
            out.clear();
            pass(data, info, &mut out);
        }
        let elapsed = start.elapsed().as_secs_f64();
        best = best.min(elapsed);
        std::hint::black_box(&out);
    }
    decoded_bytes as f64 / best / 1e6
}

fn main() {
    let args = parse_args();
    println!("# Wall-clock decode throughput, seed per-value path vs word-level kernels");
    println!(
        "# {} blocks x {} values, best of {} reps; MB/s of decoded output",
        args.blocks, VALUES_PER_BLOCK, args.reps
    );
    header(&[
        "scheme",
        "encoded_mb",
        "seed_mbps",
        "kernel_mbps",
        "speedup",
        "netlist_interp_mbps",
        "netlist_compiled_mbps",
        "netlist_speedup",
    ]);

    let mut results = Vec::new();
    for scheme in ALL_SCHEMES {
        let codec = codec_for(scheme);
        let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
        let mut blocks: Vec<(Vec<u8>, BlockInfo)> = Vec::with_capacity(args.blocks);
        for _ in 0..args.blocks {
            let values = gap_block(&mut rng);
            let mut data = Vec::new();
            let info = codec.encode(&values, &mut data).expect("block encodes");
            blocks.push((data, info));
        }
        let encoded_bytes: usize = blocks.iter().map(|(d, _)| d.len()).sum();

        // Bit-identity first: the kernel path must reproduce the seed
        // path exactly on every block.
        let mut identical = true;
        for (data, info) in &blocks {
            let mut fast = Vec::new();
            codec.decode(data, info, &mut fast).expect("decodes");
            let mut slow = Vec::new();
            codec
                .decode_reference(data, info, &mut slow)
                .expect("decodes");
            if fast != slow {
                identical = false;
            }
        }
        assert!(identical, "{scheme}: kernel path diverged from seed path");

        let seed_mbps = throughput_mbps(args.reps, &blocks, |d, i, out| {
            codec.decode_reference(d, i, out).expect("decodes");
        });
        let kernel_mbps = throughput_mbps(args.reps, &blocks, |d, i, out| {
            codec.decode(d, i, out).expect("decodes");
        });
        let speedup = kernel_mbps / seed_mbps;

        // Netlist sweep: the same blocks through the Fig. 8 stage-2
        // engine, interpreter vs compiled plan. The pair must agree on
        // the whole outcome — values *and* simulated cycles — and match
        // the codec reference bit-for-bit.
        let engine = DecompEngine::for_scheme(scheme).expect("stock netlist parses");
        let interp = engine.clone().with_interpreter(true);
        let mut netlist_identical = true;
        for (data, info) in &blocks {
            let compiled = engine.decode(data, info).expect("netlist decodes");
            let interpreted = interp.decode(data, info).expect("netlist decodes");
            if compiled != interpreted {
                netlist_identical = false;
            }
            let mut reference = Vec::new();
            codec.decode(data, info, &mut reference).expect("decodes");
            if compiled.values != reference {
                netlist_identical = false;
            }
        }
        assert!(
            netlist_identical,
            "{scheme}: compiled plan diverged from netlist interpreter"
        );

        let netlist_interp_mbps = throughput_mbps(args.reps, &blocks, |d, i, out| {
            interp.decode_into(d, i, out).expect("netlist decodes");
        });
        let netlist_compiled_mbps = throughput_mbps(args.reps, &blocks, |d, i, out| {
            engine.decode_into(d, i, out).expect("netlist decodes");
        });
        let netlist_speedup = netlist_compiled_mbps / netlist_interp_mbps;

        row(&[
            scheme.to_string(),
            f(encoded_bytes as f64 / 1e6),
            f(seed_mbps),
            f(kernel_mbps),
            f(speedup),
            f(netlist_interp_mbps),
            f(netlist_compiled_mbps),
            f(netlist_speedup),
        ]);
        results.push(SchemeResult {
            scheme: scheme.to_string(),
            path: "codec".into(),
            blocks: args.blocks,
            values_per_block: VALUES_PER_BLOCK,
            encoded_bytes,
            seed_mbps,
            kernel_mbps,
            speedup,
            bit_identical: identical,
        });
        results.push(SchemeResult {
            scheme: scheme.to_string(),
            path: "netlist_compiled".into(),
            blocks: args.blocks,
            values_per_block: VALUES_PER_BLOCK,
            encoded_bytes,
            seed_mbps: netlist_interp_mbps,
            kernel_mbps: netlist_compiled_mbps,
            speedup: netlist_speedup,
            bit_identical: netlist_identical,
        });
    }

    let bp = results
        .iter()
        .find(|r| r.scheme == Scheme::Bp.to_string() && r.path == "codec")
        .expect("BP is benchmarked");
    println!(
        "# BP kernel speedup over seed path: {}x (target >= 2x on 128-value blocks)",
        f(bp.speedup)
    );
    for target in [Scheme::Bp, Scheme::OptPfd] {
        let r = results
            .iter()
            .find(|r| r.scheme == target.to_string() && r.path == "netlist_compiled")
            .expect("netlist sweep covers target scheme");
        println!(
            "# {target} netlist compiled speedup over interpreter: {}x (target >= 2x)",
            f(r.speedup)
        );
    }

    let report = Report {
        bench: "wallclock_decode".into(),
        reps: args.reps,
        results,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&args.json, json + "\n").expect("report written");
    eprintln!("wrote {}", args.json);
}
