//! Wall-clock scoring microbenchmark: seed per-document hot loop vs the
//! block-at-a-time kernels vs the software-pipelined traversal.
//!
//! Over the same encoded 128-value posting blocks, times three
//! functionally identical host paths feeding one top-k heap:
//!
//! * **scalar** — the seed hot loop: decode a block, then per document
//!   compute [`Bm25::term_score`] and [`TopK::offer`] it;
//! * **bulk** — decode a block, score all 128 documents with
//!   [`Bm25::score_block`], then [`TopK::sift_block`] the results;
//! * **bulk+pipelined** — the bulk kernels on a double-buffered
//!   traversal that decodes block `i + 1` before sifting block `i`, the
//!   structure `boss_core::fetch` uses on the query hot path.
//!
//! Outputs millions of documents scored per second (best of `--reps`
//! repetitions) per mode as TSV, verifies all three paths produce
//! bit-identical top-k hits, and writes a machine-readable summary to
//! `BENCH_score.json` (`--json PATH` to move it) that also carries the
//! decoded-block cache hit/miss/eviction counters from a smoke-scale
//! engine run.
//!
//! Like `wallclock_decode`, this binary measures *host* wall-clock time:
//! its numbers vary run to run, unlike the simulated figures.

use boss_bench::{boss_engine, f, header, iiu_engine, lucene_engine, row, BenchTarget, TypedSuite};
use boss_compress::{BitPacking, BlockInfo, Codec};
use boss_core::{EtMode, TopK};
use boss_engine::SearchEngine;
use boss_index::{Bm25, Bm25Params, ScoreScratch};
use boss_scm::MemoryConfig;
use boss_workload::corpus::{CorpusSpec, Scale};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::time::Instant;

const VALUES_PER_BLOCK: usize = 128;

#[derive(Debug, Serialize)]
struct ModeResult {
    mode: String,
    blocks: usize,
    values_per_block: usize,
    mdocs_per_sec: f64,
    speedup_vs_scalar: f64,
    bit_identical: bool,
}

#[derive(Debug, Serialize)]
struct CacheCounters {
    engine: String,
    hits: u64,
    misses: u64,
    evictions: u64,
    hit_rate: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    bench: String,
    reps: usize,
    k: usize,
    results: Vec<ModeResult>,
    block_cache: Vec<CacheCounters>,
}

struct Args {
    blocks: usize,
    reps: usize,
    seed: u64,
    k: usize,
    json: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        blocks: 8192,
        reps: 5,
        seed: 42,
        k: 100,
        json: "BENCH_score.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--blocks" => args.blocks = take("--blocks").parse().expect("--blocks N"),
            "--reps" => args.reps = take("--reps").parse::<usize>().expect("--reps N").max(1),
            "--seed" => args.seed = take("--seed").parse().expect("--seed N"),
            "--k" => args.k = take("--k").parse::<usize>().expect("--k N").max(1),
            "--json" => args.json = take("--json"),
            "--help" | "-h" => {
                println!("usage: [--blocks N] [--reps N] [--seed N] [--k N] [--json PATH]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One encoded posting block: BP-packed docID d-gaps and tf values.
struct EncodedBlock {
    gaps: Vec<u8>,
    gaps_info: BlockInfo,
    tfs: Vec<u8>,
    tfs_info: BlockInfo,
    first_doc: u32,
}

/// Reusable decode buffers, double-buffered for the pipelined mode —
/// the host-side mirror of `boss_core::fetch::DecodeScratch`.
#[derive(Default)]
struct Decoded {
    docs: Vec<u32>,
    tfs: Vec<u32>,
}

fn decode_block(block: &EncodedBlock, out: &mut Decoded) {
    // Concrete codec: static dispatch keeps the word-level kernels
    // inlinable into the traversal loop.
    let codec = BitPacking;
    out.docs.clear();
    out.tfs.clear();
    // d-gap decode with the fused prefix-sum, as the posting traversal
    // does.
    codec
        .decode_d1(
            &block.gaps,
            &block.gaps_info,
            block.first_doc,
            &mut out.docs,
        )
        .expect("block decodes");
    codec
        .decode(&block.tfs, &block.tfs_info, &mut out.tfs)
        .expect("block decodes");
}

/// A synthetic dense posting list — small d-gaps and low term
/// frequencies, as in the high-df lists where query time is spent (and
/// where the bulk scoring path runs).
fn posting_blocks(n: usize, rng: &mut ChaCha8Rng) -> (Vec<EncodedBlock>, Vec<f32>) {
    let codec = BitPacking;
    let bm25 = scoring_model();
    let mut blocks = Vec::with_capacity(n);
    let mut doc = 0u32;
    for _ in 0..n {
        let first_doc = doc;
        let gaps: Vec<u32> = (0..VALUES_PER_BLOCK)
            .map(|_| match rng.random_range(0..10u32) {
                0..=7 => rng.random_range(1..8u32),
                8 => rng.random_range(8..64u32),
                _ => rng.random_range(64..512u32),
            })
            .collect();
        doc += gaps.iter().sum::<u32>();
        let tfs: Vec<u32> = (0..VALUES_PER_BLOCK)
            .map(|_| match rng.random_range(0..10u32) {
                0..=5 => rng.random_range(1..4u32),
                6..=7 => rng.random_range(4..16u32),
                _ => rng.random_range(16..1024u32),
            })
            .collect();
        let mut gaps_buf = Vec::new();
        let gaps_info = codec.encode(&gaps, &mut gaps_buf).expect("block encodes");
        let mut tfs_buf = Vec::new();
        let tfs_info = codec.encode(&tfs, &mut tfs_buf).expect("block encodes");
        blocks.push(EncodedBlock {
            gaps: gaps_buf,
            gaps_info,
            tfs: tfs_buf,
            tfs_info,
            first_doc,
        });
    }
    let norms: Vec<f32> = (0..=doc)
        .map(|_| bm25.doc_norm(rng.random_range(64..2048u32)))
        .collect();
    (blocks, norms)
}

fn scoring_model() -> Bm25 {
    Bm25::new(Bm25Params::default(), 1_000_000, 320.0)
}

/// The three traversal modes under test.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Scalar,
    Bulk,
    Pipelined,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Scalar => "scalar",
            Mode::Bulk => "bulk",
            Mode::Pipelined => "bulk+pipelined",
        }
    }
}

/// Runs one full traversal of `blocks` (visited in `order`, the same
/// for every mode) into a fresh top-k heap. The shuffled order models a
/// skip-heavy traversal: the next block is usually not in cache, which
/// is the latency the pipelined mode's decode-ahead exists to hide.
#[allow(clippy::too_many_arguments)]
fn traverse(
    mode: Mode,
    blocks: &[EncodedBlock],
    order: &[usize],
    norms: &[f32],
    idf: f32,
    k: usize,
    bufs: &mut [Decoded; 2],
    scratch: &mut ScoreScratch,
) -> TopK {
    let bm25 = scoring_model();
    let mut topk = TopK::new(k);
    match mode {
        Mode::Scalar => {
            let buf = &mut bufs[0];
            for &b in order {
                decode_block(&blocks[b], buf);
                for (&d, &tf) in buf.docs.iter().zip(&buf.tfs) {
                    topk.offer(d, bm25.term_score(idf, tf, norms[d as usize]));
                }
            }
        }
        Mode::Bulk => {
            let buf = &mut bufs[0];
            for &b in order {
                decode_block(&blocks[b], buf);
                bm25.score_block(idf, &buf.docs, &buf.tfs, norms, scratch);
                topk.sift_block(&buf.docs, scratch.scores());
            }
        }
        Mode::Pipelined => {
            // Double buffer: decode block i + 1 before sifting block i,
            // so its cache misses resolve under the scoring arithmetic.
            let [cur, next] = bufs;
            if let Some(&first) = order.first() {
                decode_block(&blocks[first], cur);
            }
            for i in 0..order.len() {
                if let Some(&ahead) = order.get(i + 1) {
                    decode_block(&blocks[ahead], next);
                }
                bm25.score_block(idf, &cur.docs, &cur.tfs, norms, scratch);
                topk.sift_block(&cur.docs, scratch.scores());
                std::mem::swap(cur, next);
            }
        }
    }
    topk
}

/// Best-of-`reps` millions of documents scored per second.
#[allow(clippy::too_many_arguments)]
fn throughput_mdocs(
    mode: Mode,
    reps: usize,
    blocks: &[EncodedBlock],
    order: &[usize],
    norms: &[f32],
    idf: f32,
    k: usize,
) -> f64 {
    let docs = (blocks.len() * VALUES_PER_BLOCK) as f64;
    let mut bufs = [Decoded::default(), Decoded::default()];
    let mut scratch = ScoreScratch::new();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let topk = traverse(mode, blocks, order, norms, idf, k, &mut bufs, &mut scratch);
        best = best.min(start.elapsed().as_secs_f64());
        std::hint::black_box(topk.hits());
    }
    docs / best / 1e6
}

/// Decoded-block cache counters from a smoke-scale engine run (bulk path
/// on), surfaced into the JSON report.
fn cache_counters(seed: u64, k: usize) -> Vec<CacheCounters> {
    let index = CorpusSpec::ccnews_like(Scale::Smoke)
        .build()
        .expect("corpus builds");
    let target = BenchTarget::single(&index);
    let suite = TypedSuite::sample(&index, 5, seed);
    let queries: Vec<_> = suite
        .per_type
        .iter()
        .flat_map(|(_, qs)| qs.iter().cloned())
        .collect();
    const CACHE_BLOCKS: usize = 256;
    let mut boss = boss_engine(
        &target,
        1,
        EtMode::Full,
        MemoryConfig::optane_dcpmm(),
        k,
        &boss_bench::EngineTuning::new(CACHE_BLOCKS, true),
    );
    let mut iiu = iiu_engine(
        &target,
        1,
        MemoryConfig::optane_dcpmm(),
        &boss_bench::EngineTuning::new(CACHE_BLOCKS, true),
    );
    let mut luc = lucene_engine(
        &target,
        1,
        MemoryConfig::host_scm_6ch(),
        &boss_bench::EngineTuning::new(CACHE_BLOCKS, true),
    );
    let mut out = Vec::new();
    for (label, stats) in [
        ("BOSS", {
            for q in &queries {
                boss.search(q, k).expect("query runs");
            }
            boss.block_cache_stats()
        }),
        ("IIU", {
            for q in &queries {
                iiu.search(q, k).expect("query runs");
            }
            iiu.block_cache_stats()
        }),
        ("Lucene", {
            for q in &queries {
                luc.search(q, k).expect("query runs");
            }
            luc.block_cache_stats()
        }),
    ] {
        if let Some(c) = stats {
            out.push(CacheCounters {
                engine: label.into(),
                hits: c.hits,
                misses: c.misses,
                evictions: c.evictions,
                hit_rate: c.hit_rate(),
            });
        }
    }
    out
}

fn main() {
    let args = parse_args();
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    let (blocks, norms) = posting_blocks(args.blocks, &mut rng);
    let bm25 = scoring_model();
    let idf = bm25.idf((args.blocks * VALUES_PER_BLOCK) as u32);
    // Skip-heavy visit order, shared by every mode (Fisher–Yates).
    let mut order: Vec<usize> = (0..blocks.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.random_range(0..=i as u32) as usize);
    }

    println!("# Wall-clock scoring throughput, seed per-document loop vs block kernels");
    println!(
        "# {} blocks x {} values, k {}, best of {} reps; Mdocs/s scored into top-k",
        args.blocks, VALUES_PER_BLOCK, args.k, args.reps
    );
    header(&[
        "mode",
        "mdocs_per_sec",
        "speedup_vs_scalar",
        "bit_identical",
    ]);

    // Bit-identity first: all three modes must produce the same hits,
    // score bits included.
    let mut bufs = [Decoded::default(), Decoded::default()];
    let mut scratch = ScoreScratch::new();
    let key = |t: &TopK| -> Vec<(u32, u32)> {
        t.hits()
            .iter()
            .map(|h| (h.doc, h.score.to_bits()))
            .collect()
    };
    let baseline = key(&traverse(
        Mode::Scalar,
        &blocks,
        &order,
        &norms,
        idf,
        args.k,
        &mut bufs,
        &mut scratch,
    ));

    let mut results = Vec::new();
    let mut scalar_mdocs = 0.0;
    for mode in [Mode::Scalar, Mode::Bulk, Mode::Pipelined] {
        let identical = key(&traverse(
            mode,
            &blocks,
            &order,
            &norms,
            idf,
            args.k,
            &mut bufs,
            &mut scratch,
        )) == baseline;
        assert!(
            identical,
            "{}: top-k diverged from scalar path",
            mode.label()
        );
        let mdocs = throughput_mdocs(mode, args.reps, &blocks, &order, &norms, idf, args.k);
        if mode == Mode::Scalar {
            scalar_mdocs = mdocs;
        }
        let speedup = mdocs / scalar_mdocs;
        row(&[
            mode.label().into(),
            f(mdocs),
            f(speedup),
            identical.to_string(),
        ]);
        results.push(ModeResult {
            mode: mode.label().into(),
            blocks: args.blocks,
            values_per_block: VALUES_PER_BLOCK,
            mdocs_per_sec: mdocs,
            speedup_vs_scalar: speedup,
            bit_identical: identical,
        });
    }

    let pipelined = results.last().expect("three modes ran");
    println!(
        "# bulk+pipelined speedup over scalar: {}x (target >= 1.5x)",
        f(pipelined.speedup_vs_scalar)
    );

    let block_cache = cache_counters(args.seed, args.k);
    for c in &block_cache {
        println!(
            "# block-cache {}: hits {} misses {} evictions {} hit_rate {}",
            c.engine,
            c.hits,
            c.misses,
            c.evictions,
            f(c.hit_rate),
        );
    }

    let report = Report {
        bench: "wallclock_score".into(),
        reps: args.reps,
        k: args.k,
        results,
        block_cache,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&args.json, json + "\n").expect("report written");
    eprintln!("wrote {}", args.json);
}
