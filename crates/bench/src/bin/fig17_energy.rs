//! Figure 17: energy consumption of BOSS (8 cores) normalized to 8-core
//! Lucene on SCM. The paper reports ~189x average savings.

use boss_bench::{both_corpora_for, figures, BenchArgs, BenchTarget, TypedSuite};

fn main() {
    let args = BenchArgs::parse();
    for (name, index) in both_corpora_for(&args) {
        let suite = TypedSuite::sample(&index, args.queries_per_type, args.seed);
        let sharded = args.shard_split(&index);
        let target = BenchTarget::new(&index, sharded.as_ref());
        figures::energy(name, &target, &suite, &args);
    }
}
