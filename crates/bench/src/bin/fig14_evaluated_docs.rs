//! Figure 14: normalized number of evaluated documents (Q1/Q3/Q5) for
//! IIU, BOSS-block-only, and full BOSS.

use boss_bench::{both_corpora_for, figures, BenchArgs, BenchTarget, TypedSuite};

fn main() {
    let args = BenchArgs::parse();
    for (name, index) in both_corpora_for(&args) {
        let suite = TypedSuite::sample(&index, args.queries_per_type, args.seed);
        let sharded = args.shard_split(&index);
        let target = BenchTarget::new(&index, sharded.as_ref());
        figures::evaluated_docs(name, &target, &suite, &args);
    }
}
