//! Scatter-gather throughput scaling across shard counts — the
//! multi-device payoff the pool argument of Section II-C predicts.
//!
//! Splits the ccnews-like corpus into 1/2/4/8 shards, builds one BOSS
//! device per shard behind the engine-layer scatter-gather coordinator
//! in its honest `ScatterGather` timing mode (slowest leaf + shared-link
//! transfer + root merge, per-shard traffic summed, bandwidth roofline
//! divided by the shard count), and reports batch throughput per shard
//! count as TSV plus a machine-readable `BENCH_shard.json` (`--json
//! PATH` to move it).
//!
//! Unlike the figure binaries (whose `--shards` flag keeps the
//! figure-preserving `Logical` timing), these numbers are *supposed* to
//! move with the shard count — that is the experiment.

use boss_bench::{f, header, row, run_system, TypedSuite};
use boss_core::BossConfig;
use boss_engine::{Boss, ShardTiming, Sharded};
use boss_index::shard::ShardedIndex;
use boss_workload::corpus::{CorpusSpec, Scale};
use serde::Serialize;

/// Shard counts swept.
const SHARD_SWEEP: [u32; 4] = [1, 2, 4, 8];

#[derive(Debug, Serialize)]
struct ShardRun {
    shards: u32,
    replicas: usize,
    qps: f64,
    seconds: f64,
    speedup_vs_one_shard: f64,
    mem_total_bytes: u64,
}

#[derive(Debug, Serialize)]
struct Report {
    bench: String,
    corpus: String,
    queries: usize,
    k: usize,
    cores_per_shard: u32,
    results: Vec<ShardRun>,
}

struct Args {
    scale: Scale,
    seed: u64,
    queries_per_type: usize,
    k: usize,
    threads: usize,
    replicas: usize,
    cores: u32,
    json: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale::Small,
        seed: 42,
        queries_per_type: 10,
        k: 100,
        threads: boss_bench::default_threads(),
        replicas: 1,
        cores: 4,
        json: "BENCH_shard.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--scale" => {
                args.scale = take("--scale").parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--seed" => args.seed = take("--seed").parse().expect("--seed N"),
            "--queries-per-type" => {
                args.queries_per_type = take("--queries-per-type")
                    .parse()
                    .expect("--queries-per-type N");
            }
            "--k" => args.k = take("--k").parse::<usize>().expect("--k N").max(1),
            "--threads" => {
                args.threads = take("--threads")
                    .parse::<usize>()
                    .expect("--threads N")
                    .max(1);
            }
            "--replicas" => {
                args.replicas = take("--replicas")
                    .parse::<usize>()
                    .expect("--replicas N")
                    .max(1);
            }
            "--cores" => args.cores = take("--cores").parse::<u32>().expect("--cores N").max(1),
            "--json" => args.json = take("--json"),
            "--help" | "-h" => {
                println!(
                    "usage: [--scale smoke|small|full] [--seed N] [--queries-per-type N] [--k N] \
                     [--threads N] [--replicas N] [--cores N] [--json PATH]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let index = CorpusSpec::ccnews_like(args.scale)
        .build()
        .expect("corpus builds");
    let suite = TypedSuite::sample(&index, args.queries_per_type, args.seed);
    let queries: Vec<_> = suite
        .per_type
        .iter()
        .flat_map(|(_, qs)| qs.iter().cloned())
        .collect();

    println!(
        "# Scatter-gather shard scaling (ccnews-like, {} queries, k={}, {} cores/shard, {} replica(s))",
        queries.len(),
        args.k,
        args.cores,
        args.replicas
    );
    println!("# honest multi-device timing: slowest leaf + link transfer + root merge");
    println!("# threads {}", args.threads);
    header(&[
        "shards",
        "qps",
        "seconds",
        "speedup_vs_one_shard",
        "mem_total_mb",
    ]);

    let config = || BossConfig::with_cores(args.cores).with_k(args.k);
    let mut results: Vec<ShardRun> = Vec::new();
    let mut base_qps = 0.0;
    for n in SHARD_SWEEP {
        let sharded = ShardedIndex::split(&index, n).expect("corpus larger than shard count");
        let leaves: Vec<Vec<Boss>> = sharded
            .shards()
            .iter()
            .map(|shard| {
                (0..args.replicas)
                    .map(|_| Boss::new(shard, config()))
                    .collect()
            })
            .collect();
        let engine = Sharded::new(
            Boss::new(&index, config()),
            &sharded,
            leaves,
            ShardTiming::ScatterGather,
        );
        let run = run_system(&engine, &queries, args.k, args.threads);
        if n == 1 {
            base_qps = run.qps;
        }
        let speedup = run.qps / base_qps.max(1e-12);
        row(&[
            n.to_string(),
            f(run.qps),
            f(run.seconds),
            f(speedup),
            f(run.mem.total_bytes() as f64 / 1e6),
        ]);
        results.push(ShardRun {
            shards: n,
            replicas: args.replicas,
            qps: run.qps,
            seconds: run.seconds,
            speedup_vs_one_shard: speedup,
            mem_total_bytes: run.mem.total_bytes(),
        });
    }

    let last = results.last().expect("sweep ran");
    println!(
        "# {}-shard speedup over 1 shard: {}x",
        last.shards,
        f(last.speedup_vs_one_shard)
    );

    let report = Report {
        bench: "shard_scaling".into(),
        corpus: "ccnews-like".into(),
        queries: queries.len(),
        k: args.k,
        cores_per_shard: args.cores,
        results,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&args.json, json + "\n").expect("report written");
    eprintln!("wrote {}", args.json);
}
