//! CLI: build a synthetic corpus and save it as a `.bossidx` file for
//! `search_index` (the artifact `init(indexFile, ...)` consumes).
//!
//! Usage: `cargo run --release -p boss-bench --bin build_index -- <out.bossidx> [--scale smoke|small|full] [--corpus ccnews|clueweb]`

use boss_index::io;
use boss_workload::corpus::{CorpusSpec, Scale};

fn main() {
    let mut out: Option<String> = None;
    let mut scale = Scale::Smoke;
    let mut corpus = "ccnews".to_owned();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .expect("scale value")
                    .parse()
                    .expect("valid scale")
            }
            "--corpus" => corpus = it.next().expect("corpus value"),
            "--help" | "-h" => {
                println!("usage: build_index <out.bossidx> [--scale smoke|small|full] [--corpus ccnews|clueweb]");
                return;
            }
            other => out = Some(other.to_owned()),
        }
    }
    let Some(out) = out else {
        eprintln!("missing output path; see --help");
        std::process::exit(2);
    };
    let spec = match corpus.as_str() {
        "ccnews" => CorpusSpec::ccnews_like(scale),
        "clueweb" => CorpusSpec::clueweb12_like(scale),
        other => {
            eprintln!("unknown corpus {other:?} (use ccnews|clueweb)");
            std::process::exit(2);
        }
    };
    eprintln!("building {} ...", spec.name);
    let index = spec.build().expect("corpus builds");
    io::save(&index, &out).expect("index file written");
    eprintln!(
        "wrote {out}: {} docs, {} terms, {:.1} MiB compressed postings",
        index.n_docs(),
        index.n_terms(),
        index.total_data_bytes() as f64 / (1 << 20) as f64
    );
}
