//! Latency vs offered load: the command queue (Figure 4(a)) under an
//! open-loop arrival process — mean and p99 sojourn time as load
//! approaches the device's capacity, plus admission drops beyond it.

use boss_bench::{f, header, row, BenchArgs};
use boss_core::BossConfig;
use boss_engine::{Boss, SearchEngine};
use boss_workload::corpus::CorpusSpec;
use boss_workload::queries::QuerySampler;

fn main() {
    let args = BenchArgs::parse();
    let index = CorpusSpec::ccnews_like(args.scale)
        .build()
        .expect("corpus builds");
    let mut sampler = QuerySampler::new(&index, args.seed).expect("corpus vocabulary");
    let queries: Vec<_> = sampler
        .trec_like_mix((args.queries_per_type * 6).max(60))
        .expect("corpus samples")
        .into_iter()
        .map(|t| t.expr)
        .collect();

    // Capacity estimate: mean service time over the mix on 8 cores.
    let mut engine = Boss::new(&index, BossConfig::with_cores(8).with_k(args.k));
    let mean_service: f64 = queries
        .iter()
        .map(|q| engine.search(q, args.k).expect("runs").cycles as f64)
        .sum::<f64>()
        / queries.len() as f64;
    let capacity_period = mean_service / 8.0; // 8 cores drain in parallel

    println!(
        "# Latency vs offered load (8 cores, queue depth 64, k={})",
        args.k
    );
    println!(
        "# mean service {:.1} us; capacity ~{:.0} qps",
        mean_service / 1e3,
        1e9 / capacity_period
    );
    header(&[
        "load_frac",
        "mean_latency_us",
        "p99_latency_us",
        "queue_wait_us",
        "dropped",
    ]);
    for load in [0.2, 0.5, 0.7, 0.9, 1.1, 1.5] {
        let period = (capacity_period / load).max(1.0) as u64;
        let r = engine
            .device_mut()
            .run_open_loop(&queries, args.k, period, 64)
            .expect("runs");
        row(&[
            f(load),
            f(r.mean_latency_cycles / 1e3),
            f(r.p99_latency_cycles as f64 / 1e3),
            f(r.mean_queue_wait_cycles / 1e3),
            r.dropped.to_string(),
        ]);
    }
    println!("# the hockey stick: waits explode past load 1.0 and the queue starts dropping");
}
