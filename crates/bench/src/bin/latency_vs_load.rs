//! Latency vs offered load — the M/M/k-style sanity view of the serving
//! harness: mean and p99 sojourn time as Poisson load approaches the
//! device's capacity, plus admission drops beyond it.
//!
//! This is the simplest serving scenario the harness supports (FIFO, no
//! deadlines, no degradation, queue bound 64) swept across load, so the
//! hockey stick is pure queueing theory: waits explode past load 1.0 and
//! the bounded queue starts rejecting. The full scheduler × degradation
//! × load matrix — and the machine-readable report — lives in
//! `serving_latency`; at the same seed and query set both replay the
//! same measured service table, so this binary is the quick cross-check,
//! not a second model.

use boss_bench::{boss_engine, f, header, row, BenchArgs, BenchTarget, ServingSpec};
use boss_core::EtMode;
use boss_engine::{simulate, SearchEngine, ServePolicy, ServiceTable};
use boss_scm::MemoryConfig;
use boss_workload::arrivals::ArrivalKind;
use boss_workload::corpus::CorpusSpec;
use boss_workload::queries::QuerySampler;

/// Admission bound of the sanity view (the command-queue depth of the
/// seed's Figure 4(a) model).
const QUEUE_BOUND: usize = 64;

fn bail(msg: impl std::fmt::Display) -> ! {
    eprintln!("latency_vs_load: {msg}");
    std::process::exit(2);
}

fn main() {
    let args = BenchArgs::parse();
    let index = match args.try_build_corpus("ccnews-like", &CorpusSpec::ccnews_like(args.scale)) {
        Ok(i) => i,
        Err(e) => bail(format!("corpus build failed: {e}")),
    };
    let shard_split = args.shard_split(&index);
    let target = BenchTarget::new(&index, shard_split.as_ref());
    let mut sampler = match QuerySampler::new(&index, args.seed) {
        Ok(s) => s,
        Err(e) => bail(format!("corpus has no usable vocabulary: {e}")),
    };
    let queries: Vec<_> = match sampler.trec_like_mix((args.queries_per_type * 6).max(60)) {
        Ok(qs) => qs.into_iter().map(|t| t.expr).collect(),
        Err(e) => bail(format!("query sampling failed: {e}")),
    };

    let engine = boss_engine(
        &target,
        8,
        EtMode::Full,
        MemoryConfig::optane_dcpmm(),
        args.k,
        &args.tuning(),
    );
    // One deterministic measurement pass; the load sweep replays it.
    let table = match ServiceTable::measure(&engine, None, &queries, args.k, args.k, args.threads) {
        Ok(t) => t,
        Err(e) => bail(format!(
            "service measurement failed: {e} (use --degrade skip on a faulty device)"
        )),
    };
    let mean_service = table.mean_normal_cycles();
    let servers = engine.lanes();

    println!(
        "# Latency vs offered load ({servers} cores, queue depth {QUEUE_BOUND}, k={})",
        args.k
    );
    println!(
        "# mean service {:.1} us; capacity ~{:.0} qps",
        mean_service / 1e3,
        servers as f64 * 1e9 / mean_service.max(1.0)
    );
    println!(
        "# full scheduler x degrade x load matrix: serving_latency (same table at the same seed)"
    );
    args.print_threads_comment();
    header(&[
        "load_frac",
        "mean_latency_us",
        "p99_latency_us",
        "queue_wait_us",
        "dropped",
    ]);
    for load in [0.2, 0.5, 0.7, 0.9, 1.1, 1.5] {
        let spec = ServingSpec {
            arrivals: ArrivalKind::Poisson,
            load,
            queue: QUEUE_BOUND,
            deadline_x: 0.0,
            policy: ServePolicy::Fifo,
            degrade: false,
        };
        let arrivals = spec.arrival_trace(queries.len(), mean_service, servers, args.seed);
        let run = simulate(&spec.config(servers, mean_service), &arrivals, &table);
        let mean_sojourn = run.mean_sojourn_cycles();
        row(&[
            f(load),
            f(mean_sojourn / 1e3),
            f(run.sojourn_percentile(0.99) as f64 / 1e3),
            f((mean_sojourn - mean_service).max(0.0) / 1e3),
            run.rejected.to_string(),
        ]);
    }
    println!("# the hockey stick: waits explode past load 1.0 and the queue starts dropping");
}
