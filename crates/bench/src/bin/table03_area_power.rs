//! Table III: area and power breakdown from the analytical model seeded
//! with the paper's synthesis results.

use boss_core::power::{AreaPowerModel, CORE_MODULES, DEVICE_MODULES, HOST_CPU_POWER_W};

fn main() {
    let m = AreaPowerModel::new(8);
    println!("# Table III: area and power of BOSS (TSMC 40nm constants)");
    println!("component\tcount\tarea_mm2\tpower_mw");
    println!(
        "BOSS Core\t8\t{:.3}\t{:.1}",
        8.0 * m.core_area_mm2(),
        8.0 * m.core_power_mw()
    );
    for c in DEVICE_MODULES {
        println!(
            "{}\t{}\t{:.3}\t{:.3}",
            c.name, c.count, c.area_mm2, c.power_mw
        );
    }
    println!(
        "Total\t-\t{:.2}\t{:.2} W",
        m.device_area_mm2(),
        m.device_power_w()
    );
    println!();
    println!("# per-core breakdown");
    println!("component\tcount\tarea_mm2\tpower_mw");
    for c in CORE_MODULES {
        println!(
            "{}\t{}\t{:.3}\t{:.2}",
            c.name, c.count, c.area_mm2, c.power_mw
        );
    }
    println!(
        "Core total\t-\t{:.3}\t{:.1}",
        m.core_area_mm2(),
        m.core_power_mw()
    );
    println!();
    println!(
        "# power advantage vs host CPU: {:.1}x (paper: 23.3x)",
        HOST_CPU_POWER_W / m.device_power_w()
    );
}
