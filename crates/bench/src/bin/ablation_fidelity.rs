//! Ablation: timing fidelity — the bottleneck-stage roofline vs the
//! event-driven pipeline replay, per query type. Functional results are
//! identical by construction (enforced by tests); this quantifies how
//! much latency the roofline's `max()` hides.

use boss_bench::{f, header, row, BenchArgs, TypedSuite};
use boss_core::{BossConfig, BossDevice, TimingFidelity};
use boss_workload::corpus::CorpusSpec;

fn main() {
    let args = BenchArgs::parse();
    let index = args.build_corpus("ccnews-like", &CorpusSpec::ccnews_like(args.scale));
    let suite = TypedSuite::sample(&index, args.queries_per_type, args.seed);
    println!("# Ablation: timing fidelity (1 BOSS core, k={})", args.k);
    header(&["qtype", "roofline_us", "pipelined_us", "ratio"]);
    for (qt, queries) in &suite.per_type {
        let mut total = [0u64; 2];
        for (slot, fid) in [
            (0usize, TimingFidelity::Roofline),
            (1, TimingFidelity::Pipelined),
        ] {
            let mut dev = BossDevice::new(
                &index,
                BossConfig::with_cores(1).with_k(args.k).with_fidelity(fid),
            );
            for q in queries {
                total[slot] += dev.search_expr(q, args.k).expect("runs").cycles;
            }
        }
        let n = queries.len() as f64;
        row(&[
            qt.label().into(),
            f(total[0] as f64 / n / 1e3),
            f(total[1] as f64 / n / 1e3),
            f(total[1] as f64 / total[0].max(1) as f64),
        ]);
    }
    println!(
        "# ratio > 1 = stage imbalance the roofline hides; both models share the functional layer"
    );
}
