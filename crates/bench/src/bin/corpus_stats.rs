//! Corpus statistics report: the evidence behind DESIGN.md §2's claim that
//! the synthetic corpora match the statistical properties the paper's
//! experiments exercise (Zipfian df, small clustered d-gaps, skewed tf,
//! per-list scheme diversity).

use boss_bench::{both_corpora_for, f, header, row, BenchArgs};
use boss_compress::ALL_SCHEMES;

fn main() {
    let args = BenchArgs::parse();
    for (name, index) in both_corpora_for(&args) {
        println!(
            "# {name}: {} docs, {} terms",
            index.n_docs(),
            index.n_terms()
        );
        // Document-frequency distribution.
        let mut dfs: Vec<u32> = index.term_ids().map(|t| index.term_info(t).df).collect();
        dfs.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = dfs.iter().map(|&d| u64::from(d)).sum();
        let top1pct: u64 = dfs[..dfs.len() / 100].iter().map(|&d| u64::from(d)).sum();
        header(&["stat", "value"]);
        row(&["postings".into(), total.to_string()]);
        row(&["df_max".into(), dfs[0].to_string()]);
        row(&["df_median".into(), dfs[dfs.len() / 2].to_string()]);
        row(&[
            "top1pct_posting_share".into(),
            f(top1pct as f64 / total as f64),
        ]);
        // Document lengths.
        let lens = index.doc_lens();
        let mut sorted = lens.to_vec();
        sorted.sort_unstable();
        row(&["doclen_p50".into(), sorted[sorted.len() / 2].to_string()]);
        row(&[
            "doclen_p99".into(),
            sorted[sorted.len() * 99 / 100].to_string(),
        ]);
        // Compression: per-list scheme histogram + overall ratio.
        let mut counts = std::collections::HashMap::new();
        for t in index.term_ids() {
            *counts.entry(index.list(t).scheme()).or_insert(0u32) += 1;
        }
        for s in ALL_SCHEMES {
            row(&[
                format!("lists_encoded_{s}"),
                counts.get(&s).copied().unwrap_or(0).to_string(),
            ]);
        }
        row(&[
            "bits_per_posting".into(),
            f(index.total_data_bytes() as f64 * 8.0 / total as f64),
        ]);
        row(&[
            "compression_vs_raw".into(),
            f(index.total_raw_bytes() as f64 / index.total_data_bytes() as f64),
        ]);
        println!();
    }
}
