//! Latency percentiles (p50/p95/p99) per engine and query type — serving
//! systems live and die on tail latency, which throughput figures hide.

use boss_bench::{f, header, row, BenchArgs, TypedSuite};
use boss_core::{BossConfig, BossDevice, EtMode};
use boss_iiu::{IiuConfig, IiuEngine};
use boss_luceneish::{LuceneConfig, LuceneEngine};
use boss_workload::corpus::CorpusSpec;

fn pct(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

fn main() {
    let args = BenchArgs::parse();
    let index = CorpusSpec::ccnews_like(args.scale).build().expect("corpus builds");
    let suite = TypedSuite::sample(&index, args.queries_per_type.max(20), args.seed);
    println!("# Per-query latency percentiles (single engine instance, us)");
    header(&["qtype", "system", "p50_us", "p95_us", "p99_us"]);
    for (qt, queries) in &suite.per_type {
        // BOSS (1 core, query runs alone).
        let mut dev = BossDevice::new(&index, BossConfig::with_cores(1).with_et(EtMode::Full).with_k(args.k));
        let mut boss: Vec<f64> = queries
            .iter()
            .map(|q| dev.search_expr(q, args.k).expect("runs").cycles as f64 / 1e3)
            .collect();
        boss.sort_by(f64::total_cmp);
        // IIU.
        let iiu_engine = IiuEngine::new(&index, IiuConfig::with_cores(1));
        let mut iiu: Vec<f64> = queries
            .iter()
            .map(|q| iiu_engine.execute(q, args.k).expect("runs").cycles as f64 / 1e3)
            .collect();
        iiu.sort_by(f64::total_cmp);
        // Lucene (cycles are host cycles at 2.7 GHz).
        let luc_engine = LuceneEngine::new(&index, LuceneConfig::with_threads(1));
        let clk = luc_engine.config().clock_ghz;
        let mut luc: Vec<f64> = queries
            .iter()
            .map(|q| luc_engine.execute(q, args.k).expect("runs").cycles as f64 / (clk * 1e3))
            .collect();
        luc.sort_by(f64::total_cmp);
        for (name, v) in [("Lucene", &luc), ("IIU", &iiu), ("BOSS", &boss)] {
            row(&[
                qt.label().into(),
                name.into(),
                f(pct(v, 0.50)),
                f(pct(v, 0.95)),
                f(pct(v, 0.99)),
            ]);
        }
    }
}
