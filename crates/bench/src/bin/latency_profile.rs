//! Latency percentiles (p50/p95/p99) per engine and query type — serving
//! systems live and die on tail latency, which throughput figures hide.
//!
//! When `--block-cache` is set, per-engine decoded-block cache counters
//! (hits/misses/evictions) are reported as `#` comment lines: the cache
//! is wall-clock only, so its counters must stay out of the data rows
//! the invariance diffs compare. The same rule covers the shard layer
//! (`--shards`/`--replicas`): per-(shard, replica) fault counters and
//! routing tallies are diagnostics, printed as labeled `# shard-health`
//! comments, and the serving harness (`--serve`/`--serve-*`): each
//! engine's open-loop rejected/expired/shed breakdown and served-tail
//! percentiles print as a `# serving` block after the data rows.

use boss_bench::{
    boss_engine, f, header, iiu_engine, lucene_engine, row, run_serving, BenchArgs, BenchTarget,
    ServingSpec, TypedSuite,
};
use boss_core::{EtMode, QueryAlgorithm};
use boss_engine::{SearchEngine, ShardReplicaStats};
use boss_index::BlockCacheStats;
use boss_scm::MemoryConfig;
use boss_workload::corpus::CorpusSpec;

fn pct(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

/// Per-query latencies in microseconds, sorted (cycles at the engine's
/// own clock — host cycles for Lucene, 1 GHz device cycles otherwise),
/// plus the engine's decoded-block cache counters and skip tallies
/// (fault-skipped blocks, pruning-skipped blocks/docs) after the run.
fn latencies_us<E: SearchEngine>(
    engine: &mut E,
    queries: &[boss_index::QueryExpr],
    k: usize,
) -> (Vec<f64>, Option<BlockCacheStats>, u64, (u64, u64)) {
    let clk = engine.clock_ghz();
    let mut us: Vec<f64> = queries
        .iter()
        .map(|q| engine.search(q, k).expect("runs").cycles as f64 / (clk * 1e3))
        .collect();
    us.sort_by(f64::total_cmp);
    let eval = engine.eval_counts();
    let skipped = eval.blocks_skipped_fault;
    let pruned = (eval.blocks_skipped_prune, eval.docs_skipped_prune);
    (us, engine.block_cache_stats(), skipped, pruned)
}

/// Prints one engine family's `# serving` diagnostic line: the open-loop
/// scenario of `--serve-*` replayed over this engine's measured service
/// table. Comment-only by the same rule as the cache and shard-health
/// counters — serving outcomes depend on the scenario knobs, never on
/// `--threads`, but they are diagnostics, not figure data.
fn serving_comment<E: SearchEngine + Send>(
    name: &str,
    engine: &E,
    pruned: Option<&E>,
    queries: &[boss_index::QueryExpr],
    spec: &ServingSpec,
    args: &BenchArgs,
) {
    match run_serving(
        engine,
        pruned,
        queries,
        args.k,
        spec,
        args.seed,
        args.threads,
    ) {
        Ok((run, _mean)) => {
            let clk = engine.clock_ghz();
            let us = |c: u64| c as f64 / (clk * 1e3);
            println!(
                "# serving {name} {} load {} policy {} degrade {}: served {}/{} \
                 (normal {} pruned {} brownout {}) rejected {} expired {} shed {} late {} \
                 p50 {}us p99 {}us goodput {} qps",
                spec.arrivals,
                f(spec.load),
                spec.policy,
                if spec.degrade { "on" } else { "off" },
                run.served(),
                queries.len(),
                run.served_by_level[0],
                run.served_by_level[1],
                run.served_by_level[2],
                run.rejected,
                run.expired,
                run.shed,
                run.served_late,
                f(us(run.sojourn_percentile(0.50))),
                f(us(run.sojourn_percentile(0.99))),
                f(run.goodput_qps(clk)),
            );
        }
        Err(e) => println!("# serving {name}: measurement failed: {e}"),
    }
}

/// One engine's row data plus its out-of-band diagnostics.
struct EngineRow {
    name: &'static str,
    us: Vec<f64>,
    cache: Option<BlockCacheStats>,
    skipped: u64,
    pruned: (u64, u64),
    shard_health: Vec<ShardReplicaStats>,
}

fn main() {
    let args = BenchArgs::parse();
    let index = args.build_corpus("ccnews-like", &CorpusSpec::ccnews_like(args.scale));
    let sharded = args.shard_split(&index);
    let target = BenchTarget::new(&index, sharded.as_ref());
    let suite = TypedSuite::sample(&index, args.queries_per_type.max(20), args.seed);
    println!("# Per-query latency percentiles (single engine instance, us)");
    header(&["qtype", "system", "p50_us", "p95_us", "p99_us"]);
    for (qt, queries) in &suite.per_type {
        let mut rows: Vec<EngineRow> = Vec::new();
        if args.engines.lucene {
            let mut luc = lucene_engine(&target, 1, MemoryConfig::host_scm_6ch(), &args.tuning());
            let (us, cache, skipped, pruned) = latencies_us(&mut luc, queries, args.k);
            rows.push(EngineRow {
                name: "Lucene",
                us,
                cache,
                skipped,
                pruned,
                shard_health: luc.shard_stats(),
            });
        }
        if args.engines.iiu {
            let mut iiu = iiu_engine(&target, 1, MemoryConfig::optane_dcpmm(), &args.tuning());
            let (us, cache, skipped, pruned) = latencies_us(&mut iiu, queries, args.k);
            rows.push(EngineRow {
                name: "IIU",
                us,
                cache,
                skipped,
                pruned,
                shard_health: iiu.shard_stats(),
            });
        }
        if args.engines.boss {
            let mut boss = boss_engine(
                &target,
                1,
                EtMode::Full,
                MemoryConfig::optane_dcpmm(),
                args.k,
                &args.tuning(),
            );
            let (us, cache, skipped, pruned) = latencies_us(&mut boss, queries, args.k);
            rows.push(EngineRow {
                name: "BOSS",
                us,
                cache,
                skipped,
                pruned,
                shard_health: boss.shard_stats(),
            });
        }
        for r in &rows {
            row(&[
                qt.label().into(),
                r.name.into(),
                f(pct(&r.us, 0.50)),
                f(pct(&r.us, 0.95)),
                f(pct(&r.us, 0.99)),
            ]);
        }
        // Cache, fault, and shard-health counters ride in comments:
        // wall-clock / degradation diagnostics only, stripped by the
        // invariance diffs.
        for r in &rows {
            if let Some(c) = &r.cache {
                println!(
                    "# block-cache {} {}: hits {} misses {} evictions {} hit_rate {}",
                    qt.label(),
                    r.name,
                    c.hits,
                    c.misses,
                    c.evictions,
                    f(c.hit_rate()),
                );
            }
            if r.skipped > 0 {
                println!(
                    "# fault-skipped-blocks {} {}: {}",
                    qt.label(),
                    r.name,
                    r.skipped
                );
            }
            // Dynamic-pruning savings (non-zero only under --algorithm
            // maxscore/wand/bmw/bmm): work avoided, never hits changed,
            // so these too stay out of the diffed data rows.
            if r.pruned.0 > 0 || r.pruned.1 > 0 {
                println!(
                    "# prune {} {}: blocks_skipped {} docs_skipped {}",
                    qt.label(),
                    r.name,
                    r.pruned.0,
                    r.pruned.1,
                );
            }
            // Labeled per-shard breakdown: which device is sick, with
            // which symptom, and where the router sent the traffic.
            for s in &r.shard_health {
                if s.faults.total() > 0 || s.blocks_skipped_fault > 0 {
                    println!(
                        "# shard-health {} {} shard {} replica {}: {} skipped_blocks {} attempts {} selected {}",
                        qt.label(),
                        r.name,
                        s.shard,
                        s.replica,
                        s.faults,
                        s.blocks_skipped_fault,
                        s.attempts,
                        s.selected,
                    );
                }
            }
        }
    }

    // Open-loop serving diagnostics over the whole suite, one line per
    // engine family. Degradation needs a pruned companion engine (the
    // overload controller's cheaper service level), built only when the
    // scenario can actually use it.
    if let Some(spec) = &args.serving {
        let queries: Vec<_> = suite
            .per_type
            .iter()
            .flat_map(|(_, qs)| qs.iter().cloned())
            .collect();
        let tuning = args.tuning();
        let pruned_tuning = tuning
            .clone()
            .with_algorithm(QueryAlgorithm::BlockMaxMaxScore);
        if args.engines.lucene {
            let e = lucene_engine(&target, 1, MemoryConfig::host_scm_6ch(), &tuning);
            let p = spec
                .degrade
                .then(|| lucene_engine(&target, 1, MemoryConfig::host_scm_6ch(), &pruned_tuning));
            serving_comment("Lucene", &e, p.as_ref(), &queries, spec, &args);
        }
        if args.engines.iiu {
            let e = iiu_engine(&target, 1, MemoryConfig::optane_dcpmm(), &tuning);
            let p = spec
                .degrade
                .then(|| iiu_engine(&target, 1, MemoryConfig::optane_dcpmm(), &pruned_tuning));
            serving_comment("IIU", &e, p.as_ref(), &queries, spec, &args);
        }
        if args.engines.boss {
            let e = boss_engine(
                &target,
                1,
                EtMode::Full,
                MemoryConfig::optane_dcpmm(),
                args.k,
                &tuning,
            );
            let p = spec.degrade.then(|| {
                boss_engine(
                    &target,
                    1,
                    EtMode::Full,
                    MemoryConfig::optane_dcpmm(),
                    args.k,
                    &pruned_tuning,
                )
            });
            serving_comment("BOSS", &e, p.as_ref(), &queries, spec, &args);
        }
    }
}
