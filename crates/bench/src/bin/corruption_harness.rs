//! Deterministic corruption harness (CI smoke binary).
//!
//! Feeds seeded mutations — bit flips, byte overwrites, truncations,
//! extensions, descriptor corruption — to every stock codec's fast and
//! reference decode paths, the Fig. 8 netlist interpreter (encoded data
//! *and* configuration text), index-level `decode_block` with corrupted
//! `BlockMeta`, the on-disk SPIMI segment format (header, dictionary,
//! descriptor, payload, and checksum mutations plus whole-file
//! truncation/extension), and single shards of a sharded index run
//! through the BOSS engine under the `SkipBlock` degradation policy.
//! Passes iff every mutated input produces a typed error or a
//! bit-correct decode: no panics, no fast/reference disagreement, no
//! out-of-bounds reserve, no segment checksum accepting a changed byte
//! image, and no degradation leaking past the shard that owns the
//! mutated bytes (sibling shards must stay byte-identical to a quiet
//! run).
//!
//! ```text
//! corruption_harness [--seed N] [--trials-per-scheme N] [--interpret-netlist]
//! ```
//!
//! Netlist trials run the compiled straight-line plan by default and
//! cross-check every outcome against the interpreter oracle (identical
//! values, cycles, or typed error — any divergence is a violation);
//! `--interpret-netlist` swaps which path is primary.
//!
//! The default volume (2400 per scheme across the trial categories)
//! exceeds 10,000 total mutations; `--trials-per-scheme 400` is a fast
//! smoke. Exit status 1 on any violation, each printed with the seed
//! that reproduces it.

use boss_bench::corruption;

fn parsed_flag(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map_or(default, |v| {
            v.parse().unwrap_or_else(|e| {
                eprintln!("invalid value {v:?} for {flag}: {e}");
                std::process::exit(2);
            })
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = parsed_flag(&args, "--seed", 2026);
    let trials = parsed_flag(&args, "--trials-per-scheme", 2400);
    let interpret = args.iter().any(|a| a == "--interpret-netlist");

    // Trial panics are caught and tallied; silence the default hook so a
    // caught panic does not spray a backtrace into the CI log.
    std::panic::set_hook(Box::new(|_| {}));
    let tally = corruption::run_with(seed, trials, interpret);
    let _ = std::panic::take_hook();

    println!(
        "# corruption harness: seed {seed}, {trials} trials/scheme, netlist {}",
        if interpret { "interpreted" } else { "compiled" }
    );
    println!("trials\taccepted\trejected\tviolations");
    println!(
        "{}\t{}\t{}\t{}",
        tally.trials,
        tally.accepted,
        tally.rejected,
        tally.violations.len()
    );
    if !tally.violations.is_empty() {
        for v in &tally.violations {
            eprintln!("VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}
