//! Ablation: query-scheduler policy (FIFO vs shortest-job-first) on
//! batches with skewed query sizes — the query scheduler of Figure 4(a)
//! is a design point the paper fixes as FIFO; this quantifies the
//! headroom.

use boss_bench::{f, header, row, BenchArgs};
use boss_core::BossConfig;
use boss_engine::{BatchExecutor, Boss, SchedPolicy};
use boss_workload::corpus::CorpusSpec;
use boss_workload::queries::QuerySampler;

fn main() {
    let args = BenchArgs::parse();
    let index = args.build_corpus("ccnews-like", &CorpusSpec::ccnews_like(args.scale));
    let mut sampler = QuerySampler::new(&index, args.seed).expect("corpus vocabulary");
    let queries: Vec<_> = sampler
        .trec_like_mix(args.queries_per_type * 6)
        .expect("corpus samples")
        .into_iter()
        .map(|t| t.expr)
        .collect();
    println!(
        "# Ablation: scheduler policy, {} queries, k={}",
        queries.len(),
        args.k
    );
    args.print_threads_comment();
    header(&["cores", "fifo_makespan_ms", "sjf_makespan_ms", "sjf_gain"]);
    for cores in [2u32, 4, 8] {
        let engine = Boss::new(&index, BossConfig::with_cores(cores).with_k(args.k));
        let run = |policy: SchedPolicy| {
            BatchExecutor::with_threads(args.threads)
                .with_policy(policy)
                .run(&engine, &queries, args.k)
                .expect("runs")
        };
        let fifo = run(SchedPolicy::Fifo);
        let sjf = run(SchedPolicy::Sjf);
        row(&[
            cores.to_string(),
            f(fifo.makespan_cycles as f64 / 1e6),
            f(sjf.makespan_cycles as f64 / 1e6),
            f(fifo.makespan_cycles as f64 / sjf.makespan_cycles.max(1) as f64),
        ]);
    }
}
