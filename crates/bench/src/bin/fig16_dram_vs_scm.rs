//! Figure 16: Lucene / IIU / BOSS on DRAM vs SCM at 8 cores, normalized
//! to 8-core Lucene on SCM.

use boss_bench::{both_corpora_for, figures, BenchArgs, BenchTarget, TypedSuite};

fn main() {
    let args = BenchArgs::parse();
    for (name, index) in both_corpora_for(&args) {
        let suite = TypedSuite::sample(&index, args.queries_per_type, args.seed);
        let sharded = args.shard_split(&index);
        let target = BenchTarget::new(&index, sharded.as_ref());
        figures::dram_vs_scm(name, &target, &suite, &args);
    }
}
