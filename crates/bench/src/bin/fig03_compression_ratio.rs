//! Figure 3: compression ratio of BP/VB/OptPFD/S16/S8b and the hybrid
//! pick on seven synthetic streams and the two corpus stand-ins.
//! Higher is better; the star in the paper marks the per-dataset best.

use boss_bench::{f, header, row, BenchArgs};
use boss_compress::{best_scheme, compression_ratio, ALL_SCHEMES};
use boss_index::BLOCK_SIZE;
use boss_workload::corpus::{CorpusSpec, Scale};
use boss_workload::streams::{generate, ALL_STREAMS};

fn stream_len(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 100_000,
        Scale::Small => 1_000_000,
        Scale::Full => 10_000_000, // the paper's 10M integers
    }
}

fn main() {
    let args = BenchArgs::parse();
    println!("# Figure 3: compression ratio (raw 4B/int over encoded), higher is better");
    println!("# paper shape: best scheme differs per dataset; hybrid matches the best");
    header(&[
        "dataset", "BP", "VB", "OptPFD", "S16", "S8b", "hybrid", "best",
    ]);

    for kind in ALL_STREAMS {
        let values = generate(kind, stream_len(args.scale), args.seed);
        // Block the stream like a posting list (128-value blocks).
        let mut cells = vec![kind.label().to_owned()];
        let mut sizes = Vec::new();
        for s in ALL_SCHEMES {
            let total: Option<usize> = values
                .chunks(BLOCK_SIZE)
                .map(|c| {
                    let mut buf = Vec::new();
                    boss_compress::codec_for(s)
                        .encode(c, &mut buf)
                        .ok()
                        .map(|_| buf.len())
                })
                .sum();
            sizes.push(total);
            cells.push(match total {
                Some(t) => f(compression_ratio(values.len(), t)),
                None => "n/a".into(),
            });
        }
        let hybrid = best_scheme(&values);
        cells.push(f(compression_ratio(values.len(), hybrid.bytes)));
        cells.push(hybrid.scheme.label().to_owned());
        row(&cells);
    }

    // Corpus stand-ins: hybrid applies the best scheme per posting list.
    for (name, spec) in [
        ("clueweb12-like", CorpusSpec::clueweb12_like(args.scale)),
        ("ccnews-like", CorpusSpec::ccnews_like(args.scale)),
    ] {
        let index = spec.build().expect("corpus builds");
        let raw = index.total_raw_bytes() / 2; // docID column only, like the streams
        let mut cells = vec![name.to_owned()];
        for s in ALL_SCHEMES {
            let mut total = 0u64;
            let mut ok = true;
            for id in index.term_ids() {
                let (docs, _) = index.list(id).decode_all().expect("decodes");
                let mut gaps = Vec::with_capacity(docs.len());
                let mut prev = 0u32;
                for (i, &d) in docs.iter().enumerate() {
                    gaps.push(if i == 0 { d } else { d - prev });
                    prev = d;
                }
                match boss_compress::encoded_size(s, &gaps) {
                    Ok(sz) => total += sz as u64,
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            cells.push(if ok {
                f(raw as f64 / total as f64)
            } else {
                "n/a".into()
            });
        }
        // The index itself is hybrid-encoded (docIDs + tfs); report the
        // docID-equivalent ratio from per-list best choices.
        let mut hybrid_total = 0u64;
        for id in index.term_ids() {
            let (docs, _) = index.list(id).decode_all().expect("decodes");
            let mut gaps = Vec::with_capacity(docs.len());
            let mut prev = 0u32;
            for (i, &d) in docs.iter().enumerate() {
                gaps.push(if i == 0 { d } else { d - prev });
                prev = d;
            }
            hybrid_total += best_scheme(&gaps).bytes as u64;
        }
        cells.push(f(raw as f64 / hybrid_total as f64));
        cells.push("per-list".into());
        row(&cells);
    }
}
