//! Ablation: block size (64/128/256 postings) vs skip precision and
//! metadata overhead — the design choice behind the paper's 128.

use boss_bench::{f, header, row, BenchArgs};
use boss_index::{Bm25, Bm25Params, EncodedList, PostingList};
use boss_workload::rng;
use rand::RngExt;

fn main() {
    let args = BenchArgs::parse();
    let mut r = rng::rng(args.seed);
    // A clustered list (skipping-friendly) and a uniform probe list.
    let n_docs = 400_000u32;
    let clustered: Vec<u32> = {
        let mut v = Vec::new();
        for _ in 0..40 {
            let base = r.random_range(0..n_docs - 2000);
            v.extend(
                rng::sorted_distinct(&mut r, 800, 2000)
                    .into_iter()
                    .map(|x| base + x),
            );
        }
        v.sort_unstable();
        v.dedup();
        v
    };
    let probes = rng::sorted_distinct(&mut r, 3_000, n_docs);

    let bm25 = Bm25::new(Bm25Params::default(), n_docs, 100.0);
    let norms = vec![1.2f32; n_docs as usize];
    let tfs = vec![1u32; clustered.len()];
    let list = PostingList::from_columns(clustered.clone(), tfs).expect("valid");

    println!("# Ablation: block size vs skip precision (clustered list, uniform probes)");
    header(&[
        "block_size",
        "blocks",
        "meta_bytes",
        "data_bytes",
        "blocks_touched",
        "touch_frac",
    ]);
    for bs in [32usize, 64, 128, 256, 512] {
        let enc = EncodedList::encode_with_block_size(
            &list,
            boss_compress::Scheme::OptPfd,
            &bm25,
            1.5,
            &norms,
            bs,
        )
        .expect("encodes");
        // Blocks an intersection with the probe list must fetch: any block
        // whose [first,last] range contains a probe.
        let mut touched = 0usize;
        let mut pi = 0usize;
        for b in enc.blocks() {
            while pi < probes.len() && probes[pi] < b.first_doc {
                pi += 1;
            }
            if pi < probes.len() && probes[pi] <= b.last_doc {
                touched += 1;
            }
        }
        row(&[
            bs.to_string(),
            enc.n_blocks().to_string(),
            enc.meta_bytes().to_string(),
            enc.data_bytes().to_string(),
            touched.to_string(),
            f(touched as f64 / enc.n_blocks().max(1) as f64),
        ]);
    }
    println!("# smaller blocks skip more precisely but cost more metadata; 128 balances both");
}
