//! Open-loop serving under overload: the goodput knee and what
//! admission control, deadlines, and graceful degradation buy back.
//!
//! Sweeps offered load × scheduling policy × degradation posture over a
//! BOSS device (optionally sharded) serving a deterministic arrival
//! trace, and reports per-scenario sojourn percentiles, goodput, and the
//! shed/expired/rejected breakdown as TSV plus a machine-readable
//! `BENCH_serving.json` (`--json PATH` to move it).
//!
//! The per-query service table is measured **once** through the
//! deterministic batch executor and reused across the whole sweep, so
//! the sweep itself is a pure replay: every admission, drop, and
//! served-result decision is bit-identical at any `--threads` and
//! `--shards` value (CI diffs the `--decisions` log across 1/2/4
//! workers × 1/4 shards to enforce exactly that).
//!
//! Four postures per load point:
//!
//! * `fifo` — deadline-free FIFO: the naive queue whose p99 marches to
//!   the queue-bound horizon as load crosses 1.0;
//! * `sjf` — deadline-free oracle SJF: better mean, same unbounded tail;
//! * `edf` — deadlines with on-dequeue expiry, no degradation;
//! * `shed` — EDF + predictive shed + the overload controller flipping
//!   the pruned/brownout levers: the "graceful" column whose served-p99
//!   stays bounded past saturation.

use boss_bench::{boss_engine, f, header, row, BenchTarget, EngineTuning, ServingSpec, TypedSuite};
use boss_core::{EtMode, QueryAlgorithm};
use boss_engine::{simulate, Disposition, SearchEngine, ServePolicy, ServiceTable, ServingRun};
use boss_index::shard::ShardedIndex;
use boss_scm::MemoryConfig;
use boss_workload::arrivals::ArrivalKind;
use boss_workload::corpus::{CorpusSpec, Scale};
use serde::Serialize;

/// One (policy, degradation) posture of the sweep.
#[derive(Debug, Clone, Copy)]
struct Posture {
    policy: ServePolicy,
    /// Deadlines on (off for the divergent baselines).
    deadlines: bool,
    /// Overload controller on.
    degrade: bool,
}

const POSTURES: [Posture; 4] = [
    Posture {
        policy: ServePolicy::Fifo,
        deadlines: false,
        degrade: false,
    },
    Posture {
        policy: ServePolicy::Sjf,
        deadlines: false,
        degrade: false,
    },
    Posture {
        policy: ServePolicy::Edf,
        deadlines: true,
        degrade: false,
    },
    Posture {
        policy: ServePolicy::EdfShed,
        deadlines: true,
        degrade: true,
    },
];

#[derive(Debug, Serialize)]
struct ScenarioRun {
    load: f64,
    policy: String,
    deadlines: bool,
    degrade: bool,
    served: usize,
    served_normal: usize,
    served_pruned: usize,
    served_brownout: usize,
    rejected: usize,
    expired: usize,
    shed: usize,
    served_late: usize,
    p50_cycles: u64,
    p99_cycles: u64,
    p999_cycles: u64,
    goodput_qps: f64,
    max_queue_depth: usize,
    controller_transitions: u64,
}

#[derive(Debug, Serialize)]
struct Knee {
    load: f64,
    fifo_p99_cycles: u64,
    shed_p99_cycles: u64,
    shed_goodput_qps: f64,
    fifo_goodput_qps: f64,
    bounded: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    bench: String,
    corpus: String,
    queries: usize,
    k: usize,
    cores: u32,
    shards: u32,
    queue: usize,
    deadline_x: f64,
    arrivals: String,
    results: Vec<ScenarioRun>,
    knee: Knee,
}

struct Args {
    scale: Scale,
    seed: u64,
    queries_per_type: usize,
    k: usize,
    threads: usize,
    cores: u32,
    shards: u32,
    replicas: u32,
    queue: usize,
    deadline_x: f64,
    arrivals: ArrivalKind,
    loads: Vec<f64>,
    json: String,
    decisions: bool,
}

fn bail(msg: impl std::fmt::Display) -> ! {
    eprintln!("serving_latency: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scale::Small,
        seed: 42,
        queries_per_type: 100,
        k: 100,
        threads: boss_bench::default_threads(),
        cores: 4,
        shards: 1,
        replicas: 1,
        queue: 256,
        deadline_x: 20.0,
        arrivals: ArrivalKind::Poisson,
        loads: vec![0.5, 0.8, 1.2, 2.0],
        json: "BENCH_serving.json".into(),
        decisions: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .unwrap_or_else(|| bail(format!("missing value for {name}")))
        };
        fn val<T: std::str::FromStr>(raw: &str, flag: &str) -> T
        where
            T::Err: std::fmt::Display,
        {
            raw.parse()
                .unwrap_or_else(|e| bail(format!("invalid value {raw:?} for {flag}: {e}")))
        }
        match flag.as_str() {
            "--scale" => args.scale = val(&take("--scale"), "--scale"),
            "--seed" => args.seed = val(&take("--seed"), "--seed"),
            "--queries-per-type" => {
                args.queries_per_type = val(&take("--queries-per-type"), "--queries-per-type");
            }
            "--k" => args.k = val::<usize>(&take("--k"), "--k").max(1),
            "--threads" => args.threads = val::<usize>(&take("--threads"), "--threads").max(1),
            "--cores" => args.cores = val::<u32>(&take("--cores"), "--cores").max(1),
            "--shards" => args.shards = val::<u32>(&take("--shards"), "--shards").max(1),
            "--replicas" => args.replicas = val::<u32>(&take("--replicas"), "--replicas").max(1),
            "--queue" => args.queue = val::<usize>(&take("--queue"), "--queue").max(1),
            "--deadline-x" => args.deadline_x = val(&take("--deadline-x"), "--deadline-x"),
            "--arrivals" => args.arrivals = val(&take("--arrivals"), "--arrivals"),
            "--loads" => {
                let raw = take("--loads");
                args.loads = raw
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| val::<f64>(s, "--loads"))
                    .collect();
                if args.loads.is_empty() {
                    bail("--loads selects no load points");
                }
            }
            "--json" => args.json = take("--json"),
            "--decisions" => args.decisions = true,
            "--help" | "-h" => {
                println!(
                    "usage: [--scale smoke|small|full] [--seed N] [--queries-per-type N] [--k N] \
                     [--threads N] [--cores N] [--shards N] [--replicas N] [--queue N] \
                     [--deadline-x F] [--arrivals poisson|bursty] [--loads F,F,...] \
                     [--json PATH] [--decisions]"
                );
                std::process::exit(0);
            }
            other => bail(format!("unknown flag {other}")),
        }
    }
    args
}

fn scenario_row(load: f64, p: Posture, run: &ServingRun, clock_ghz: f64) -> ScenarioRun {
    ScenarioRun {
        load,
        policy: p.policy.label().into(),
        deadlines: p.deadlines,
        degrade: p.degrade,
        served: run.served(),
        served_normal: run.served_by_level[0],
        served_pruned: run.served_by_level[1],
        served_brownout: run.served_by_level[2],
        rejected: run.rejected,
        expired: run.expired,
        shed: run.shed,
        served_late: run.served_late,
        p50_cycles: run.sojourn_percentile(0.50),
        p99_cycles: run.sojourn_percentile(0.99),
        p999_cycles: run.sojourn_percentile(0.999),
        goodput_qps: run.goodput_qps(clock_ghz),
        max_queue_depth: run.max_queue_depth,
        controller_transitions: run.controller_transitions,
    }
}

fn main() {
    let args = parse_args();
    let index = match CorpusSpec::ccnews_like(args.scale).build() {
        Ok(i) => i,
        Err(e) => bail(format!("corpus build failed: {e}")),
    };
    let shard_split = if args.shards > 1 {
        match ShardedIndex::split(&index, args.shards) {
            Ok(sh) => Some(sh),
            Err(e) => bail(format!("invalid --shards {}: {e}", args.shards)),
        }
    } else {
        None
    };
    let target = BenchTarget::new(&index, shard_split.as_ref());
    let suite = TypedSuite::sample(&index, args.queries_per_type, args.seed);
    let queries: Vec<_> = suite
        .per_type
        .iter()
        .flat_map(|(_, qs)| qs.iter().cloned())
        .collect();

    let mut tuning = EngineTuning::new(0, true);
    tuning.replicas = args.replicas.max(1) as usize;
    let memory = MemoryConfig::optane_dcpmm();
    let normal = boss_engine(
        &target,
        args.cores,
        EtMode::Full,
        memory.clone(),
        args.k,
        &tuning,
    );
    let pruned_tuning = tuning
        .clone()
        .with_algorithm(QueryAlgorithm::BlockMaxMaxScore);
    let pruned = boss_engine(
        &target,
        args.cores,
        EtMode::Full,
        memory,
        args.k,
        &pruned_tuning,
    );

    // One measurement pass feeds the entire sweep: the table carries all
    // three degrade levels, and postures that never degrade simply index
    // the normal level.
    let brownout_k = (args.k / 4).max(1);
    let table = match ServiceTable::measure(
        &normal,
        Some(&pruned),
        &queries,
        args.k,
        brownout_k,
        args.threads,
    ) {
        Ok(t) => t,
        Err(e) => bail(format!("service measurement failed: {e}")),
    };
    let mean_svc = table.mean_normal_cycles();
    let servers = normal.lanes();
    let clock = normal.clock_ghz();

    println!(
        "# Open-loop serving sweep (ccnews-like, {} queries, k={}, {} cores, queue {}, deadline {}x mean service)",
        queries.len(),
        args.k,
        args.cores,
        args.queue,
        f(args.deadline_x)
    );
    println!(
        "# arrivals {} | mean service {} cycles | {} simulated servers",
        args.arrivals,
        f(mean_svc),
        servers
    );
    println!("# threads {}", args.threads);
    if args.shards > 1 {
        println!("# shards {} replicas {}", args.shards, args.replicas.max(1));
    }
    header(&[
        "load",
        "policy",
        "degrade",
        "served",
        "rejected",
        "expired",
        "shed",
        "late",
        "p50_us",
        "p99_us",
        "p999_us",
        "goodput_qps",
    ]);

    let us = |cycles: u64| cycles as f64 / (clock * 1e3);
    let mut results: Vec<ScenarioRun> = Vec::new();
    let mut decisions: Vec<(f64, Posture, ServingRun)> = Vec::new();
    for &load in &args.loads {
        let spec_for = |p: Posture| ServingSpec {
            arrivals: args.arrivals,
            load,
            queue: args.queue,
            deadline_x: if p.deadlines { args.deadline_x } else { 0.0 },
            policy: p.policy,
            degrade: p.degrade,
        };
        for p in POSTURES {
            let spec = spec_for(p);
            let arrivals = spec.arrival_trace(queries.len(), mean_svc, servers, args.seed);
            let config = spec.config(servers, mean_svc);
            let run = simulate(&config, &arrivals, &table);
            row(&[
                f(load),
                p.policy.label().into(),
                if p.degrade { "on" } else { "off" }.into(),
                run.served().to_string(),
                run.rejected.to_string(),
                run.expired.to_string(),
                run.shed.to_string(),
                run.served_late.to_string(),
                f(us(run.sojourn_percentile(0.50))),
                f(us(run.sojourn_percentile(0.99))),
                f(us(run.sojourn_percentile(0.999))),
                f(run.goodput_qps(clock)),
            ]);
            results.push(scenario_row(load, p, &run, clock));
            if args.decisions {
                decisions.push((load, p, run));
            }
        }
    }

    // The knee: at the heaviest load the graceful posture's served-p99
    // must stay bounded while deadline-free FIFO's marches toward the
    // queue-bound horizon.
    let top = args.loads.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let at_top = |policy: ServePolicy| {
        results
            .iter()
            .rfind(|r| r.load == top && r.policy == policy.label())
    };
    let (fifo, shed) = match (at_top(ServePolicy::Fifo), at_top(ServePolicy::EdfShed)) {
        (Some(a), Some(b)) => (a, b),
        _ => bail("sweep produced no fifo/shed scenario at the top load"),
    };
    let bounded = shed.p99_cycles < fifo.p99_cycles;
    println!(
        "# knee @ load {}: fifo p99 {} us vs shed+degrade p99 {} us ({})",
        f(top),
        f(us(fifo.p99_cycles)),
        f(us(shed.p99_cycles)),
        if bounded {
            "graceful posture bounded"
        } else {
            "NO knee - inspect configuration"
        }
    );
    let knee = Knee {
        load: top,
        fifo_p99_cycles: fifo.p99_cycles,
        shed_p99_cycles: shed.p99_cycles,
        shed_goodput_qps: shed.goodput_qps,
        fifo_goodput_qps: fifo.goodput_qps,
        bounded,
    };

    if args.decisions {
        // The drop log CI diffs across worker/shard counts: one row per
        // query per scenario, covering every disposition field.
        header(&[
            "load",
            "policy",
            "seq",
            "arrival",
            "outcome",
            "level",
            "start",
            "finish",
            "hits_hash",
        ]);
        for (load, p, run) in &decisions {
            for (seq, r) in run.records.iter().enumerate() {
                let (level, start, finish, hash) = match r.disposition {
                    Disposition::Served {
                        level,
                        start,
                        finish,
                        hits_hash,
                    } => (
                        level.label().to_string(),
                        start.to_string(),
                        finish.to_string(),
                        format!("{hits_hash:016x}"),
                    ),
                    Disposition::Rejected => ("-".into(), "-".into(), "-".into(), "-".into()),
                    Disposition::Expired { at } | Disposition::Shed { at } => {
                        ("-".into(), at.to_string(), "-".into(), "-".into())
                    }
                };
                row(&[
                    f(*load),
                    p.policy.label().into(),
                    seq.to_string(),
                    r.arrival.to_string(),
                    r.disposition.label().into(),
                    level,
                    start,
                    finish,
                    hash,
                ]);
            }
        }
    }

    let report = Report {
        bench: "serving_latency".into(),
        corpus: "ccnews-like".into(),
        queries: queries.len(),
        k: args.k,
        cores: args.cores,
        shards: args.shards,
        queue: args.queue,
        deadline_x: args.deadline_x,
        arrivals: args.arrivals.label().into(),
        results,
        knee,
    };
    let json = match serde_json::to_string(&report) {
        Ok(j) => j,
        Err(e) => bail(format!("report serialization failed: {e}")),
    };
    if let Err(e) = std::fs::write(&args.json, json + "\n") {
        bail(format!("cannot write {}: {e}", args.json));
    }
    eprintln!("wrote {}", args.json);
}
