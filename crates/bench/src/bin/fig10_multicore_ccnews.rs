//! Figure 10: multi-core throughput analysis (CC-News-like).
//!
//! Regenerates the figure for the ccnews-like corpus stand-in. Accepts the common
//! harness flags (`--scale`, `--seed`, `--queries-per-type`, `--k`, `--threads`, `--engines`).

use boss_bench::{figures, BenchArgs, BenchTarget, TypedSuite};
use boss_workload::corpus::CorpusSpec;

fn main() {
    let args = BenchArgs::parse();
    let index = args.build_corpus("ccnews-like", &CorpusSpec::ccnews_like(args.scale));
    let suite = TypedSuite::sample(&index, args.queries_per_type, args.seed);
    let sharded = args.shard_split(&index);
    let target = BenchTarget::new(&index, sharded.as_ref());
    figures::multicore_throughput("ccnews-like", &target, &suite, &args);
}
