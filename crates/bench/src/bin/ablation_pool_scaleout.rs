//! Ablation: memory-pool scale-out (Figure 2 / Section III-A).
//!
//! Splits the corpus across 1..16 memory nodes, each with its own BOSS
//! device, behind one shared 64 GB/s CXL-like link, and compares the
//! interconnect traffic of BOSS's hardware top-k against a host-side
//! design that ships every node's full scored candidate list to the CPU.

use boss_bench::{f, header, row, BenchArgs};
use boss_core::pool::{InterconnectConfig, MemoryPool};
use boss_core::BossConfig;
use boss_index::shard::ShardedIndex;
use boss_workload::corpus::CorpusSpec;
use boss_workload::queries::{QuerySampler, QueryType};

fn main() {
    let args = BenchArgs::parse();
    let index = args.build_corpus("ccnews-like", &CorpusSpec::ccnews_like(args.scale));
    let mut sampler = QuerySampler::new(&index, args.seed).expect("corpus vocabulary");
    let queries: Vec<_> = (0..args.queries_per_type.max(4))
        .map(|i| {
            sampler
                .sample(if i % 2 == 0 {
                    QueryType::Q3
                } else {
                    QueryType::Q5
                })
                .expect("corpus samples")
                .expr
        })
        .collect();

    println!(
        "# Ablation: pool scale-out, k={} — interconnect bytes per query",
        args.k
    );
    header(&[
        "nodes",
        "topk_link_bytes",
        "hostside_link_bytes",
        "reduction_x",
        "mean_query_us",
    ]);
    for nodes in [1u32, 2, 4, 8, 16] {
        let sharded = ShardedIndex::split(&index, nodes).expect("splits");
        let mut pool = MemoryPool::new(
            &sharded,
            BossConfig::with_cores(2),
            InterconnectConfig::default(),
        );
        let mut link = 0u64;
        let mut host = 0u64;
        let mut cycles = 0u64;
        for q in &queries {
            let out = pool.search(q, args.k).expect("pool search runs");
            link += out.interconnect_bytes;
            host += pool
                .hostside_interconnect_bytes(q)
                .expect("hostside estimate");
            cycles += out.cycles;
        }
        let n = queries.len() as f64;
        row(&[
            nodes.to_string(),
            f(link as f64 / n),
            f(host as f64 / n),
            f(host as f64 / link.max(1) as f64),
            f(cycles as f64 / n / 1e3),
        ]);
    }
    println!(
        "# top-k traffic grows with nodes*k; host-side traffic stays at the full candidate volume"
    );
}
