//! CLI: load a `.bossidx` file and serve queries through the BOSS offload
//! API — the end-to-end `init()` + `search()` flow of Section IV-D.
//!
//! Usage: `cargo run --release -p boss-bench --bin search_index -- <index.bossidx> '<expr>' [k]`
//! Example expr: `"t0001" AND ("t0002" OR "t0003")`

use boss_core::{BossConfig, BossHandle, SearchRequest};
use boss_index::io;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: search_index <index.bossidx> '<query expression>' [k]");
        std::process::exit(2);
    }
    let k: usize = args.get(2).map_or(10, |s| {
        s.parse().unwrap_or_else(|e| {
            eprintln!("invalid k {s:?}: {e}");
            std::process::exit(2);
        })
    });
    let index = match io::load(&args[0]) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("failed to load {}: {e}", args[0]);
            std::process::exit(1);
        }
    };
    let mut boss = BossHandle::init(&index, BossConfig::default().with_k(k));
    match boss.search(&SearchRequest::new(&args[1]).with_k(k)) {
        Ok(out) => {
            for h in &out.hits {
                println!("{}\t{:.4}", h.doc, h.score);
            }
            eprintln!(
                "# {} hits, {} core cycles ({:.1} us at 1 GHz), {} bytes of SCM traffic, {} docs scored / {} skipped",
                out.hits.len(),
                out.cycles,
                out.cycles as f64 / 1e3,
                out.mem.total_bytes(),
                out.eval.docs_scored,
                out.eval.docs_skipped_block + out.eval.docs_skipped_wand,
            );
        }
        Err(e) => {
            eprintln!("query failed: {e}");
            std::process::exit(1);
        }
    }
}
