//! Figure 15: normalized memory access volume by category (LD List,
//! LD Score, LD Inter, ST Inter, ST Result) for IIU vs BOSS.

use boss_bench::{both_corpora_for, figures, BenchArgs, BenchTarget, TypedSuite};

fn main() {
    let args = BenchArgs::parse();
    for (name, index) in both_corpora_for(&args) {
        let suite = TypedSuite::sample(&index, args.queries_per_type, args.seed);
        let sharded = args.shard_split(&index);
        let target = BenchTarget::new(&index, sharded.as_ref());
        figures::memory_accesses(name, &target, &suite, &args);
    }
}
