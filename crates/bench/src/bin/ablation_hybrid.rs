//! Ablation: hybrid per-list compression vs a single fixed scheme —
//! index footprint and posting-fetch traffic for the same query set.

use boss_bench::{f, header, row, BenchArgs};
use boss_compress::ALL_SCHEMES;
use boss_workload::corpus::CorpusSpec;

fn main() {
    let args = BenchArgs::parse();
    let spec = CorpusSpec::ccnews_like(args.scale);
    println!("# Ablation: hybrid vs fixed-scheme index footprint");
    header(&["scheme", "data_mb", "vs_hybrid", "vs_raw"]);
    // Build once per policy by re-deriving from raw postings.
    let hybrid = spec.build().expect("corpus builds");
    let raw = hybrid.total_raw_bytes() as f64;
    let hybrid_bytes = hybrid.total_data_bytes() as f64;
    row(&[
        "hybrid".into(),
        f(hybrid_bytes / 1e6),
        "1.00".into(),
        f(hybrid_bytes / raw),
    ]);
    for s in ALL_SCHEMES {
        // Re-encode each list under the fixed scheme.
        let mut total = 0u64;
        let mut representable = true;
        for id in hybrid.term_ids() {
            let (docs, tfs) = hybrid.list(id).decode_all().expect("decodes");
            let list = boss_index::PostingList::from_columns(docs, tfs).expect("valid");
            let idf = hybrid.term_info(id).idf;
            match boss_index::EncodedList::encode(&list, s, hybrid.bm25(), idf, hybrid.doc_norms())
            {
                Ok(enc) => total += enc.data_bytes() as u64,
                Err(_) => {
                    representable = false;
                    break;
                }
            }
        }
        if representable {
            row(&[
                s.label().into(),
                f(total as f64 / 1e6),
                f(total as f64 / hybrid_bytes),
                f(total as f64 / raw),
            ]);
        } else {
            row(&[s.label().into(), "n/a".into(), "n/a".into(), "n/a".into()]);
        }
    }
}
