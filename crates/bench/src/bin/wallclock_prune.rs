//! Wall-clock dynamic-pruning microbenchmark: exhaustive union traversal
//! vs the MaxScore / WAND / BMW / BMM query plans.
//!
//! Sweeps algorithm × codec × k over union workloads on a synthetic
//! corpus with per-block score skew (the regime block-max pruning
//! exists for), driving the portable pruned evaluator
//! (`boss_index::prune`) that the IIU and Lucene-like engines share.
//! Every configuration verifies its top-k is bit-identical to the
//! exhaustive oracle before it is timed.
//!
//! Outputs one TSV row per (codec, algorithm, k) with blocks decoded
//! and documents evaluated alongside best-of-`--reps` wall-clock
//! microseconds per query, and writes a machine-readable summary to
//! `BENCH_prune.json` (`--json PATH` to move it).
//!
//! Like the other `wallclock_*` binaries, this measures *host*
//! wall-clock time: the timing columns vary run to run, unlike the
//! simulated figures. The counter columns (blocks decoded, documents
//! evaluated/skipped) are deterministic.

use boss_bench::{f, header, row};
use boss_compress::Scheme;
use boss_index::prune::{pruned_union_topk, NullSink, PruneCounters};
use boss_index::{
    IndexBuilder, InvertedIndex, QueryAlgorithm, QueryExpr, SchemeChoice, SearchHit, TermId,
    ALL_ALGORITHMS,
};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct ConfigResult {
    codec: String,
    algorithm: String,
    k: usize,
    blocks_decoded: u64,
    blocks_skipped: u64,
    docs_evaluated: u64,
    docs_skipped: u64,
    wall_us_per_query: f64,
    speedup_vs_exhaustive: f64,
    bit_identical: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    bench: String,
    docs: usize,
    reps: usize,
    queries: usize,
    results: Vec<ConfigResult>,
    /// Configurations (codec, k) where a block-max plan beat the
    /// exhaustive traversal on wall-clock.
    wallclock_wins: Vec<String>,
}

struct Args {
    docs: usize,
    reps: usize,
    json: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        docs: 24_000,
        reps: 5,
        json: "BENCH_prune.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--docs" => args.docs = take("--docs").parse().expect("--docs N"),
            "--reps" => args.reps = take("--reps").parse::<usize>().expect("--reps N").max(1),
            "--json" => args.json = take("--json"),
            "--help" | "-h" => {
                println!("usage: [--docs N] [--reps N] [--json PATH]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Corpus with per-block tf variation, so block-max scores differ enough
/// for the block-max plans to have something to skip — the same shape as
/// the `boss_index::prune` skip tests.
fn skewed_corpus(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2_654_435_761);
            let mut words: Vec<&str> = vec!["common"];
            if h.is_multiple_of(2) {
                let tf = 1 + (i / 128) % 7;
                words.extend(std::iter::repeat_n("alpha", tf));
            }
            if h.is_multiple_of(3) {
                words.push("beta");
            }
            if h.is_multiple_of(13) {
                let tf = 1 + (i / 256) % 5;
                words.extend(std::iter::repeat_n("mid", tf));
            }
            if h.is_multiple_of(97) {
                words.push("rare");
            }
            words.join(" ")
        })
        .collect()
}

/// The union workloads of the sweep: top-heavy two-term through flat
/// four-term unions over lists of very different lengths and skews.
fn union_workloads(index: &InvertedIndex) -> Vec<(QueryExpr, Vec<TermId>)> {
    let sets: [&[&str]; 3] = [
        &["alpha", "rare"],
        &["alpha", "mid", "rare"],
        &["alpha", "beta", "mid", "common"],
    ];
    sets.iter()
        .map(|words| {
            let expr = QueryExpr::or(words.iter().map(|w| QueryExpr::term(*w)));
            let terms = words
                .iter()
                .map(|w| index.term_id(w).expect("term exists in corpus"))
                .collect();
            (expr, terms)
        })
        .collect()
}

fn hit_key(hits: &[SearchHit]) -> Vec<(u32, u32)> {
    hits.iter().map(|h| (h.doc, h.score.to_bits())).collect()
}

fn main() {
    let args = parse_args();
    let docs = skewed_corpus(args.docs);

    let codecs: [(&str, SchemeChoice); 3] = [
        ("hybrid", SchemeChoice::Hybrid),
        ("bp", SchemeChoice::Fixed(Scheme::Bp)),
        ("vb", SchemeChoice::Fixed(Scheme::Vb)),
    ];
    let ks = [10usize, 100, 1000];

    println!("# Wall-clock dynamic pruning: algorithm x codec x k on union workloads");
    println!(
        "# {} docs, best of {} reps; every plan verified bit-identical to exhaustive",
        args.docs, args.reps
    );
    header(&[
        "codec",
        "algorithm",
        "k",
        "blocks_decoded",
        "blocks_skipped",
        "docs_evaluated",
        "docs_skipped",
        "wall_us_per_query",
        "speedup_vs_exhaustive",
        "bit_identical",
    ]);

    let mut results: Vec<ConfigResult> = Vec::new();
    let mut wallclock_wins: Vec<String> = Vec::new();
    let mut n_queries = 0usize;

    for (codec_name, scheme) in codecs {
        let index = IndexBuilder::new()
            .scheme(scheme)
            .add_documents(docs.iter().map(String::as_str))
            .build()
            .expect("index builds");
        let workloads = union_workloads(&index);
        n_queries = workloads.len();

        for k in ks {
            // Exhaustive oracle per query, for bit-identity checks.
            let oracles: Vec<Vec<(u32, u32)>> = workloads
                .iter()
                .map(|(expr, _)| {
                    hit_key(&boss_index::reference::evaluate(&index, expr, k).expect("oracle"))
                })
                .collect();
            let mut exhaustive_us = 0.0f64;
            for algo in ALL_ALGORITHMS {
                // Deterministic work counters, one untimed pass.
                let mut counters = PruneCounters::default();
                let mut identical = true;
                for ((_, terms), oracle) in workloads.iter().zip(&oracles) {
                    let out = pruned_union_topk(&index, terms, algo, k, &mut counters)
                        .expect("pruned evaluation");
                    identical &= hit_key(&out.hits) == *oracle;
                }
                assert!(
                    identical,
                    "{algo} diverged from the exhaustive oracle (codec {codec_name}, k {k})"
                );
                // Best-of-reps wall-clock over the whole workload set.
                let mut best = f64::INFINITY;
                for _ in 0..args.reps {
                    let start = Instant::now();
                    for (_, terms) in &workloads {
                        let out = pruned_union_topk(&index, terms, algo, k, &mut NullSink)
                            .expect("pruned evaluation");
                        std::hint::black_box(&out.hits);
                    }
                    best = best.min(start.elapsed().as_secs_f64());
                }
                let wall_us = best * 1e6 / workloads.len() as f64;
                if algo == QueryAlgorithm::Exhaustive {
                    exhaustive_us = wall_us;
                }
                let speedup = exhaustive_us / wall_us;
                if algo.is_block_max() && speedup > 1.0 {
                    wallclock_wins.push(format!("{codec_name}/k{k}/{algo}"));
                }
                row(&[
                    codec_name.into(),
                    algo.label().into(),
                    k.to_string(),
                    counters.blocks_decoded.to_string(),
                    counters.blocks_skipped.to_string(),
                    counters.docs_scored.to_string(),
                    (counters.docs_skipped + counters.docs_skipped_blocks).to_string(),
                    f(wall_us),
                    f(speedup),
                    identical.to_string(),
                ]);
                results.push(ConfigResult {
                    codec: codec_name.into(),
                    algorithm: algo.label().into(),
                    k,
                    blocks_decoded: counters.blocks_decoded,
                    blocks_skipped: counters.blocks_skipped,
                    docs_evaluated: counters.docs_scored,
                    docs_skipped: counters.docs_skipped + counters.docs_skipped_blocks,
                    wall_us_per_query: wall_us,
                    speedup_vs_exhaustive: speedup,
                    bit_identical: identical,
                });
            }
        }
    }

    // Acceptance: the block-max plans must decode strictly fewer blocks
    // than the exhaustive traversal on every codec x k configuration.
    for (codec_name, _) in codecs {
        for k in ks {
            let blocks = |label: &str| {
                results
                    .iter()
                    .find(|r| r.codec == codec_name && r.k == k && r.algorithm == label)
                    .map(|r| r.blocks_decoded)
                    .expect("configuration ran")
            };
            let exhaustive = blocks("exhaustive");
            for label in ["bmw", "bmm"] {
                assert!(
                    blocks(label) < exhaustive,
                    "{label} decoded {} blocks, exhaustive {exhaustive} (codec {codec_name}, k {k})",
                    blocks(label)
                );
            }
        }
    }
    println!(
        "# block-max plans decoded strictly fewer blocks than exhaustive on all {} configs",
        codecs.len() * ks.len()
    );
    println!(
        "# wall-clock wins (block-max vs exhaustive): {}",
        if wallclock_wins.is_empty() {
            "none".to_string()
        } else {
            wallclock_wins.join(", ")
        }
    );

    let report = Report {
        bench: "wallclock_prune".into(),
        docs: args.docs,
        reps: args.reps,
        queries: n_queries,
        results,
        wallclock_wins,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&args.json, json + "\n").expect("report written");
    eprintln!("wrote {}", args.json);
}
