//! Memory-bounded SPIMI segment-build benchmark and verifier.
//!
//! Streams a synthetic corpus ([`StreamingCorpusSpec`] — documents are
//! generated on demand, never materialized) into a
//! [`boss_index::SpimiBuilder`] under a fixed in-memory byte budget,
//! spilling on-disk segments, then (unless `--no-merge`) merges them
//! back into one [`boss_index::InvertedIndex`]. Reports build/merge
//! throughput and the builder's memory accounting as TSV on stdout and
//! as machine-readable JSON to `BENCH_segment.json` (`--json PATH`).
//!
//! Two enforcement knobs make this CI-able:
//!
//! * the peak in-memory postings bytes must stay within the budget plus
//!   one document's worst-case contribution (the builder checks the
//!   budget *after* each document) — violation exits non-zero;
//! * `--min-spills N` requires at least `N` spilled segments —
//!   proving the budget actually forced spills, not that it was sized
//!   above the whole corpus.
//!
//! `--verify` runs an orthogonal bit-identity sweep instead: both smoke
//! corpora × every codec (hybrid + the five fixed schemes) are built
//! through the segment spill/merge path and in memory, the two indexes
//! compared for equality, and every engine × [`QueryAlgorithm`] batch
//! checked for identical outcomes. Any mismatch exits non-zero.
//!
//! Like the wallclock binaries, the throughput numbers here are *host*
//! wall-clock and vary machine to machine; everything under `--verify`
//! is exact.

use boss_bench::{header, row};
use boss_core::{BossConfig, QueryAlgorithm};
use boss_engine::{BatchExecutor, Boss, Iiu, Lucene, SearchEngine};
use boss_iiu::IiuConfig;
use boss_index::{
    IndexBuilder, InvertedIndex, QueryExpr, SchemeChoice, SpimiBuilder, SpimiConfig,
    ALL_ALGORITHMS, POSTING_BYTES, TERM_OVERHEAD_BYTES,
};
use boss_luceneish::LuceneConfig;
use boss_workload::corpus::{CorpusSpec, Scale, StreamingCorpusSpec};
use boss_workload::queries::{QuerySampler, ALL_QUERY_TYPES};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct Report {
    bench: String,
    docs: u64,
    vocab: usize,
    terms_per_doc: u32,
    scheme: String,
    seed: u64,
    budget_bytes: usize,
    postings: u64,
    spills: u32,
    peak_inmem_bytes: usize,
    doc_slack_bytes: usize,
    budget_bounded: bool,
    segment_bytes: u64,
    build_secs: f64,
    build_docs_per_sec: f64,
    merge_secs: f64,
    merge_postings_per_sec: f64,
    merged_terms: usize,
}

struct Args {
    docs: u32,
    vocab: usize,
    terms_per_doc: u32,
    zipf_s: f64,
    budget_mb: usize,
    scheme: SchemeChoice,
    seed: u64,
    dir: Option<String>,
    json: String,
    min_spills: u32,
    merge: bool,
    verify: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        docs: 200_000,
        vocab: 20_000,
        terms_per_doc: 3,
        zipf_s: 1.07,
        budget_mb: 8,
        scheme: SchemeChoice::Hybrid,
        seed: 42,
        dir: None,
        json: "BENCH_segment.json".into(),
        min_spills: 0,
        merge: true,
        verify: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--docs" => args.docs = take("--docs").parse().expect("--docs N"),
            "--vocab" => args.vocab = take("--vocab").parse().expect("--vocab N"),
            "--terms-per-doc" => {
                args.terms_per_doc = take("--terms-per-doc").parse().expect("--terms-per-doc N");
            }
            "--zipf" => args.zipf_s = take("--zipf").parse().expect("--zipf F"),
            "--budget-mb" => {
                args.budget_mb = take("--budget-mb")
                    .parse::<usize>()
                    .expect("--budget-mb N")
                    .max(1);
            }
            "--scheme" => {
                args.scheme = take("--scheme").parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--seed" => args.seed = take("--seed").parse().expect("--seed N"),
            "--dir" => args.dir = Some(take("--dir")),
            "--json" => args.json = take("--json"),
            "--min-spills" => {
                args.min_spills = take("--min-spills").parse().expect("--min-spills N");
            }
            "--no-merge" => args.merge = false,
            "--verify" => args.verify = true,
            "--help" | "-h" => {
                println!(
                    "usage: [--docs N] [--vocab N] [--terms-per-doc N] [--zipf F] \
                     [--budget-mb N] [--scheme hybrid|BP|VB|OptPFD|S16|S8b|GVB] [--seed N] \
                     [--dir PATH] [--json PATH] [--min-spills N] [--no-merge] [--verify]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Worst-case in-memory bytes one document can add before the builder's
/// post-document budget check fires: every draw a previously-unseen
/// term, charged at the map's own accounting rates.
fn doc_slack_bytes(args: &Args) -> usize {
    let term_name = 1 + (args.vocab.max(10) as f64).log10().ceil() as usize;
    args.terms_per_doc as usize * (POSTING_BYTES + TERM_OVERHEAD_BYTES + term_name) + 4
}

fn run_build(args: &Args) -> i32 {
    let dir = match &args.dir {
        Some(d) => std::path::PathBuf::from(d),
        None => std::env::temp_dir().join(format!("boss-segment-build-{}", std::process::id())),
    };
    std::fs::remove_dir_all(&dir).ok();

    let spec = StreamingCorpusSpec {
        n_docs: args.docs,
        vocab_size: args.vocab,
        zipf_s: args.zipf_s,
        terms_per_doc: args.terms_per_doc,
        seed: args.seed,
    };
    let streamer = spec.streamer();
    let budget_bytes = args.budget_mb << 20;
    let cfg = SpimiConfig {
        budget_bytes,
        scheme: args.scheme,
        ..SpimiConfig::default()
    };

    let t_build = Instant::now();
    let mut builder = SpimiBuilder::create(&dir, cfg).expect("create segment dir");
    let mut terms = Vec::new();
    for doc in 0..args.docs {
        let len = streamer.doc_terms(doc, &mut terms);
        builder
            .add_document(terms.iter().map(|(t, tf)| (t.as_str(), *tf)), len)
            .expect("add document");
    }
    let set = builder.finish().expect("finish segment set");
    let build_secs = t_build.elapsed().as_secs_f64();
    let stats = *set.stats();

    let (merge_secs, merged_terms) = if args.merge {
        let t_merge = Instant::now();
        let index = set.merge().expect("merge segments");
        (t_merge.elapsed().as_secs_f64(), index.n_terms())
    } else {
        (0.0, 0)
    };
    if args.dir.is_none() {
        std::fs::remove_dir_all(&dir).ok();
    }

    let slack = doc_slack_bytes(args);
    let bounded = stats.peak_inmem_bytes <= budget_bytes + slack;
    let report = Report {
        bench: "segment_build".into(),
        docs: stats.docs,
        vocab: args.vocab,
        terms_per_doc: args.terms_per_doc,
        scheme: args.scheme.to_string(),
        seed: args.seed,
        budget_bytes,
        postings: stats.postings,
        spills: stats.spills,
        peak_inmem_bytes: stats.peak_inmem_bytes,
        doc_slack_bytes: slack,
        budget_bounded: bounded,
        segment_bytes: stats.segment_bytes,
        build_secs,
        build_docs_per_sec: stats.docs as f64 / build_secs.max(1e-9),
        merge_secs,
        merge_postings_per_sec: if args.merge {
            stats.postings as f64 / merge_secs.max(1e-9)
        } else {
            0.0
        },
        merged_terms,
    };

    header(&[
        "docs",
        "postings",
        "spills",
        "peak_inmem_bytes",
        "budget_bytes",
        "segment_bytes",
        "build_docs_per_sec",
        "merge_postings_per_sec",
    ]);
    row(&[
        report.docs.to_string(),
        report.postings.to_string(),
        report.spills.to_string(),
        report.peak_inmem_bytes.to_string(),
        report.budget_bytes.to_string(),
        report.segment_bytes.to_string(),
        format!("{:.0}", report.build_docs_per_sec),
        format!("{:.0}", report.merge_postings_per_sec),
    ]);

    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&args.json, json.as_bytes()).expect("write report json");
    println!("# wrote {}", args.json);

    if !bounded {
        eprintln!(
            "FAIL: peak in-memory bytes {} exceed budget {} + per-doc slack {}",
            stats.peak_inmem_bytes, budget_bytes, slack
        );
        return 1;
    }
    if stats.spills < args.min_spills {
        eprintln!(
            "FAIL: {} spilled segments < required --min-spills {}",
            stats.spills, args.min_spills
        );
        return 1;
    }
    println!(
        "# budget bounded ({} <= {} + {}), {} spills",
        stats.peak_inmem_bytes, budget_bytes, slack, stats.spills
    );
    0
}

/// Two-query-per-type suite over the index's own vocabulary.
fn suite(index: &InvertedIndex, seed: u64) -> Vec<QueryExpr> {
    let mut sampler = QuerySampler::new(index, seed).expect("sampler");
    let mut queries = Vec::new();
    for qt in ALL_QUERY_TYPES {
        for _ in 0..2 {
            queries.push(sampler.sample(qt).expect("sample").expr);
        }
    }
    queries
}

fn batch_identical<E: SearchEngine + Send>(mem: &E, seg: &E, queries: &[QueryExpr]) -> bool {
    let a = BatchExecutor::with_threads(2)
        .run(mem, queries, 20)
        .expect("in-memory batch");
    let b = BatchExecutor::with_threads(2)
        .run(seg, queries, 20)
        .expect("segment batch");
    a.makespan_cycles == b.makespan_cycles
        && a.mem == b.mem
        && a.eval == b.eval
        && a.outcomes == b.outcomes
}

fn engines_identical(
    mem: &InvertedIndex,
    seg: &InvertedIndex,
    algo: QueryAlgorithm,
    queries: &[QueryExpr],
) -> Vec<(&'static str, bool)> {
    vec![
        (
            "boss",
            batch_identical(
                &Boss::new(
                    mem,
                    BossConfig::with_cores(4).with_k(20).with_algorithm(algo),
                ),
                &Boss::new(
                    seg,
                    BossConfig::with_cores(4).with_k(20).with_algorithm(algo),
                ),
                queries,
            ),
        ),
        (
            "iiu",
            batch_identical(
                &Iiu::new(mem, IiuConfig::with_cores(4).with_algorithm(algo)),
                &Iiu::new(seg, IiuConfig::with_cores(4).with_algorithm(algo)),
                queries,
            ),
        ),
        (
            "lucene",
            batch_identical(
                &Lucene::new(mem, LuceneConfig::with_threads(4).with_algorithm(algo)),
                &Lucene::new(seg, LuceneConfig::with_threads(4).with_algorithm(algo)),
                queries,
            ),
        ),
    ]
}

fn run_verify(args: &Args) -> i32 {
    let schemes: Vec<SchemeChoice> = std::iter::once(SchemeChoice::Hybrid)
        .chain(
            boss_compress::ALL_SCHEMES
                .iter()
                .map(|&s| SchemeChoice::Fixed(s)),
        )
        .collect();
    let corpora = [
        ("clueweb12-like", CorpusSpec::clueweb12_like(Scale::Smoke)),
        ("ccnews-like", CorpusSpec::ccnews_like(Scale::Smoke)),
    ];
    header(&[
        "corpus",
        "scheme",
        "index_equal",
        "engine",
        "algorithm",
        "identical",
    ]);
    let mut failures = 0u32;
    for (name, spec) in corpora {
        for &scheme in &schemes {
            let dir = std::env::temp_dir().join(format!(
                "boss-segment-verify-{name}-{scheme}-{}",
                std::process::id()
            ));
            std::fs::remove_dir_all(&dir).ok();
            let seg = spec
                .build_segments_with(&dir, 4, scheme)
                .expect("segment build")
                .merge()
                .expect("merge");
            std::fs::remove_dir_all(&dir).ok();
            let mut builder = IndexBuilder::new().scheme(scheme);
            for (term, list) in spec.term_lists().expect("term lists") {
                builder = builder.add_posting_list(&term, &list);
            }
            let mem = builder.build().expect("in-memory build");
            let index_equal = mem == seg;
            if !index_equal {
                failures += 1;
            }
            let queries = suite(&mem, args.seed);
            for algo in ALL_ALGORITHMS {
                for (engine, ok) in engines_identical(&mem, &seg, algo, &queries) {
                    if !ok {
                        failures += 1;
                    }
                    row(&[
                        name.to_string(),
                        scheme.to_string(),
                        index_equal.to_string(),
                        engine.to_string(),
                        format!("{algo:?}"),
                        ok.to_string(),
                    ]);
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("FAIL: {failures} segment-vs-memory mismatches");
        return 1;
    }
    println!("# all segment-loaded engines bit-identical to in-memory builds");
    0
}

fn main() {
    let args = parse_args();
    let code = if args.verify {
        run_verify(&args)
    } else {
        run_build(&args)
    };
    std::process::exit(code);
}
