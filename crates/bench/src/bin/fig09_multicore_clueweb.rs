//! Figure 9: multi-core throughput analysis (ClueWeb12-like).
//!
//! Regenerates the figure for the clueweb12-like corpus stand-in. Accepts the common
//! harness flags (`--scale`, `--seed`, `--queries-per-type`, `--k`, `--threads`, `--engines`).

use boss_bench::{figures, BenchArgs, BenchTarget, TypedSuite};
use boss_workload::corpus::CorpusSpec;

fn main() {
    let args = BenchArgs::parse();
    let index = args.build_corpus("clueweb12-like", &CorpusSpec::clueweb12_like(args.scale));
    let suite = TypedSuite::sample(&index, args.queries_per_type, args.seed);
    let sharded = args.shard_split(&index);
    let target = BenchTarget::new(&index, sharded.as_ref());
    figures::multicore_throughput("clueweb12-like", &target, &suite, &args);
}
