//! Ablation: how the result count k drives early-termination efficacy and
//! host-interconnect traffic (the DESIGN.md `ablation_k` study).
//!
//! The paper fixes k = 1000; this sweep shows why the top-k module's
//! bandwidth saving grows as k shrinks, and that ET gets sharper.

use boss_bench::{boss_engine, f, header, row, run_system, BenchArgs, BenchTarget, TypedSuite};
use boss_core::EtMode;
use boss_scm::{AccessCategory, MemoryConfig};
use boss_workload::corpus::CorpusSpec;
use boss_workload::queries::QueryType;

fn main() {
    let args = BenchArgs::parse();
    let index = args.build_corpus("ccnews-like", &CorpusSpec::ccnews_like(args.scale));
    let sharded = args.shard_split(&index);
    let target = BenchTarget::new(&index, sharded.as_ref());
    let suite = TypedSuite::sample(&index, args.queries_per_type, args.seed);
    println!("# Ablation: k sweep (BOSS, 1 core, union queries)");
    args.print_threads_comment();
    header(&[
        "qtype",
        "k",
        "docs_scored",
        "frac_scored",
        "st_result_bytes",
        "qps",
    ]);
    for (qt, queries) in &suite.per_type {
        if !matches!(qt, QueryType::Q3 | QueryType::Q5) {
            continue;
        }
        let exhaustive = run_system(
            &boss_engine(
                &target,
                1,
                EtMode::Exhaustive,
                MemoryConfig::optane_dcpmm(),
                10,
                &args.tuning(),
            ),
            queries,
            10,
            args.threads,
        );
        let total = exhaustive.eval.docs_scored.max(1);
        for k in [10usize, 100, 1000] {
            let r = run_system(
                &boss_engine(
                    &target,
                    1,
                    EtMode::Full,
                    MemoryConfig::optane_dcpmm(),
                    k,
                    &args.tuning(),
                ),
                queries,
                k,
                args.threads,
            );
            row(&[
                qt.label().into(),
                k.to_string(),
                r.eval.docs_scored.to_string(),
                f(r.eval.docs_scored as f64 / total as f64),
                r.mem.bytes(AccessCategory::StResult).to_string(),
                f(r.qps),
            ]);
        }
    }
}
