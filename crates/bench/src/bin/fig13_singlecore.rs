//! Figure 13: single-core throughput analysis on both corpora,
//! normalized to 1-core Lucene on SCM.

use boss_bench::{both_corpora, figures, BenchArgs, TypedSuite};

fn main() {
    let args = BenchArgs::parse();
    for (name, index) in both_corpora(args.scale) {
        let suite = TypedSuite::sample(&index, args.queries_per_type, args.seed);
        figures::single_core(name, &index, &suite, &args);
    }
}
