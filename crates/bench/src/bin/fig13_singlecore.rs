//! Figure 13: single-core throughput analysis on both corpora,
//! normalized to 1-core Lucene on SCM.

use boss_bench::{both_corpora_for, figures, BenchArgs, BenchTarget, TypedSuite};

fn main() {
    let args = BenchArgs::parse();
    for (name, index) in both_corpora_for(&args) {
        let suite = TypedSuite::sample(&index, args.queries_per_type, args.seed);
        let sharded = args.shard_split(&index);
        let target = BenchTarget::new(&index, sharded.as_ref());
        figures::single_core(name, &target, &suite, &args);
    }
}
