//! Query planning: normalizing a [`QueryExpr`] into BOSS's execution form.
//!
//! BOSS "performs intersections first" (Section IV-B "Mixed Query"): a
//! mixed query is rewritten by distributing AND over OR, e.g.
//! `A ∩ (B ∪ C ∪ D)` becomes `(A∩B) ∪ (A∩C) ∪ (A∩D)`. The normalized plan
//! is therefore a union of intersection groups:
//!
//! * `Q1 A`            → `[[A]]`
//! * `Q2 A AND B`      → `[[A, B]]`
//! * `Q3 A OR B`       → `[[A], [B]]`
//! * `Q5 A OR B OR C OR D` → `[[A], [B], [C], [D]]`
//! * `Q6 A AND (B OR C OR D)` → `[[A,B], [A,C], [A,D]]`

use crate::config::BossConfig;
use boss_index::{Error, InvertedIndex, QueryExpr, TermId};

/// The normalized execution plan: a union over intersection groups of
/// term ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    groups: Vec<Vec<TermId>>,
    n_distinct_terms: usize,
}

impl QueryPlan {
    /// Normalizes `expr` against `index` under `config`'s hardware limits.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownTerm`] for out-of-vocabulary terms;
    /// * [`Error::InvalidQuery`] when the query is structurally invalid,
    ///   exceeds the 16-term hardware limit, an intersection group exceeds
    ///   the per-core width, or distribution blows past 16 groups.
    pub fn from_expr(
        index: &InvertedIndex,
        expr: &QueryExpr,
        config: &BossConfig,
    ) -> Result<Self, Error> {
        expr.validate(config.max_terms)?;
        let mut groups = to_dnf(index, expr)?;
        // Exact duplicates are redundant; subset absorption is NOT applied
        // because a superset group can still contribute extra term scores
        // to documents that satisfy it (clause-matching semantics).
        groups.sort();
        groups.dedup();
        if groups.len() > config.max_terms {
            return Err(Error::InvalidQuery {
                reason: format!(
                    "query expands to {} intersection groups; the hardware handles {}",
                    groups.len(),
                    config.max_terms
                ),
            });
        }
        for g in &groups {
            // A single core pipelines up to 4 terms; chaining the mergers
            // of 4 cores extends an intersection to the 16-term device
            // limit (Section IV-D).
            if g.len() > config.max_terms {
                return Err(Error::InvalidQuery {
                    reason: format!(
                        "an intersection group has {} terms; the hardware chains up to {}",
                        g.len(),
                        config.max_terms
                    ),
                });
            }
        }
        // Deterministic group order (by first term, then lexicographic).
        groups.sort();
        let mut all: Vec<TermId> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        Ok(QueryPlan {
            groups,
            n_distinct_terms: all.len(),
        })
    }

    /// The intersection groups (each sorted by ascending document
    /// frequency is the *executor's* job; here they are sorted by id).
    pub fn groups(&self) -> &[Vec<TermId>] {
        &self.groups
    }

    /// Number of distinct terms in the plan.
    pub fn n_distinct_terms(&self) -> usize {
        self.n_distinct_terms
    }

    /// Whether the plan is a pure union of single terms.
    pub fn is_pure_union(&self) -> bool {
        self.groups.iter().all(|g| g.len() == 1)
    }

    /// Whether the plan is a single intersection group.
    pub fn is_pure_intersection(&self) -> bool {
        self.groups.len() == 1
    }
}

fn to_dnf(index: &InvertedIndex, expr: &QueryExpr) -> Result<Vec<Vec<TermId>>, Error> {
    const EXPANSION_LIMIT: usize = 256;
    match expr {
        QueryExpr::Term(t) => Ok(vec![vec![index.term_id(t)?]]),
        QueryExpr::Or(subs) => {
            let mut out = Vec::new();
            for s in subs {
                out.extend(to_dnf(index, s)?);
                if out.len() > EXPANSION_LIMIT {
                    return Err(Error::InvalidQuery {
                        reason: "query too complex to distribute".into(),
                    });
                }
            }
            Ok(out)
        }
        QueryExpr::And(subs) => {
            let mut acc: Vec<Vec<TermId>> = vec![vec![]];
            for s in subs {
                let rhs = to_dnf(index, s)?;
                let mut next = Vec::with_capacity(acc.len() * rhs.len());
                for a in &acc {
                    for r in &rhs {
                        let mut g = a.clone();
                        g.extend_from_slice(r);
                        g.sort_unstable();
                        g.dedup();
                        next.push(g);
                    }
                }
                if next.len() > EXPANSION_LIMIT {
                    return Err(Error::InvalidQuery {
                        reason: "query too complex to distribute".into(),
                    });
                }
                acc = next;
            }
            Ok(acc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boss_index::IndexBuilder;

    fn setup() -> (InvertedIndex, BossConfig) {
        let idx = IndexBuilder::new()
            .add_documents(["a b c d e f", "a b", "c d", "e f", "a c e"])
            .build()
            .unwrap();
        (idx, BossConfig::default())
    }

    fn ids(index: &InvertedIndex, terms: &[&str]) -> Vec<TermId> {
        terms.iter().map(|t| index.term_id(t).unwrap()).collect()
    }

    #[test]
    fn table2_plans() {
        let (idx, cfg) = setup();
        let t = |s: &str| QueryExpr::term(s);

        let p = QueryPlan::from_expr(&idx, &t("a"), &cfg).unwrap();
        assert_eq!(p.groups(), &[ids(&idx, &["a"])]);
        assert!(p.is_pure_union() && p.is_pure_intersection());

        let p = QueryPlan::from_expr(&idx, &QueryExpr::and([t("a"), t("b")]), &cfg).unwrap();
        assert_eq!(p.groups(), &[ids(&idx, &["a", "b"])]);
        assert!(p.is_pure_intersection());

        let p = QueryPlan::from_expr(&idx, &QueryExpr::or([t("a"), t("b")]), &cfg).unwrap();
        assert_eq!(p.groups().len(), 2);
        assert!(p.is_pure_union());

        // Q6: A AND (B OR C OR D) -> (A∩B) ∪ (A∩C) ∪ (A∩D)
        let q6 = QueryExpr::and([t("a"), QueryExpr::or([t("b"), t("c"), t("d")])]);
        let p = QueryPlan::from_expr(&idx, &q6, &cfg).unwrap();
        assert_eq!(p.groups().len(), 3);
        for g in p.groups() {
            assert_eq!(g.len(), 2);
            assert!(g.contains(&idx.term_id("a").unwrap()));
        }
        assert_eq!(p.n_distinct_terms(), 4);
    }

    #[test]
    fn exact_duplicate_groups_collapse() {
        let (idx, cfg) = setup();
        let t = |s: &str| QueryExpr::term(s);
        let q = QueryExpr::or([
            QueryExpr::and([t("a"), t("b")]),
            QueryExpr::and([t("b"), t("a")]),
        ]);
        let p = QueryPlan::from_expr(&idx, &q, &cfg).unwrap();
        assert_eq!(p.groups(), &[ids(&idx, &["a", "b"])]);
    }

    #[test]
    fn duplicate_terms_collapse() {
        let (idx, cfg) = setup();
        let t = |s: &str| QueryExpr::term(s);
        let q = QueryExpr::and([t("a"), t("a")]);
        let p = QueryPlan::from_expr(&idx, &q, &cfg).unwrap();
        assert_eq!(p.groups(), &[ids(&idx, &["a"])]);
    }

    #[test]
    fn redundant_groups_kept_for_clause_scoring() {
        let (idx, cfg) = setup();
        let t = |s: &str| QueryExpr::term(s);
        // a OR (a AND b): the (a AND b) group is candidate-redundant but
        // still contributes b's score to documents holding both, so the
        // planner must keep it.
        let q = QueryExpr::or([t("a"), QueryExpr::and([t("a"), t("b")])]);
        let p = QueryPlan::from_expr(&idx, &q, &cfg).unwrap();
        assert_eq!(p.groups().len(), 2);
    }

    #[test]
    fn five_term_and_spans_chained_cores() {
        let (idx, cfg) = setup();
        let t = |s: &str| QueryExpr::term(s);
        let q = QueryExpr::and([t("a"), t("b"), t("c"), t("d"), t("e")]);
        let p = QueryPlan::from_expr(&idx, &q, &cfg).unwrap();
        assert_eq!(p.groups().len(), 1);
        assert_eq!(p.groups()[0].len(), 5);
    }

    #[test]
    fn unknown_term() {
        let (idx, cfg) = setup();
        let err = QueryPlan::from_expr(&idx, &QueryExpr::term("zzz"), &cfg).unwrap_err();
        assert!(matches!(err, Error::UnknownTerm { .. }));
    }

    #[test]
    fn nested_mixed_distributes() {
        let (idx, cfg) = setup();
        let t = |s: &str| QueryExpr::term(s);
        // (a OR b) AND (c OR d) -> 4 groups of 2.
        let q = QueryExpr::and([
            QueryExpr::or([t("a"), t("b")]),
            QueryExpr::or([t("c"), t("d")]),
        ]);
        let p = QueryPlan::from_expr(&idx, &q, &cfg).unwrap();
        assert_eq!(p.groups().len(), 4);
        assert!(p.groups().iter().all(|g| g.len() == 2));
    }
}
