//! Event-driven pipeline timing (the higher-fidelity alternative to the
//! bottleneck-stage roofline).
//!
//! The execution context records a *block trace* — every fetched block
//! with its memory completion time, decompression cost and unit binding,
//! plus the scored-document and top-k event counts. This module replays
//! that trace through explicit pipeline resources with
//! `start = max(data_ready, resource_free)` semantics, yielding the cycle
//! at which the last result drains. Compared to the roofline
//! (`max` of per-module totals) it captures stage *imbalance over time*:
//! a burst of large blocks stalls downstream modules even when average
//! utilization is low.
//!
//! Select with [`crate::TimingModel::fidelity`]. Both models share the
//! same functional execution and memory simulation; property tests pin
//! the invariant `roofline <= pipelined <= sum-of-stages`.

use serde::{Deserialize, Serialize};

/// Which latency estimator a core uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TimingFidelity {
    /// Bottleneck-stage roofline: `max` over module cycle totals.
    #[default]
    Roofline,
    /// Event-driven replay of the block trace through pipeline resources.
    Pipelined,
}

/// One fetched block in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockEvent {
    /// Memory cycle at which the block's data is available.
    pub data_ready: u64,
    /// Decompression cycles the block costs.
    pub dec_cycles: u64,
    /// Which decompression module the block's list is bound to.
    pub dec_unit: usize,
    /// Postings in the block (drives the set-operation stage).
    pub postings: u32,
}

/// A pipeline resource: busy until `free`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Resource {
    free: u64,
}

impl Resource {
    /// Schedules work of `duration` cycles that cannot start before
    /// `earliest`; returns the completion cycle.
    pub fn schedule(&mut self, earliest: u64, duration: u64) -> u64 {
        let start = earliest.max(self.free);
        self.free = start + duration;
        self.free
    }

    /// The cycle at which the resource becomes idle.
    pub fn free_at(&self) -> u64 {
        self.free
    }
}

/// Inputs to the replay beyond the block trace.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayCounts {
    /// Documents scored.
    pub scored: u64,
    /// Set-operation comparisons.
    pub comparisons: u64,
    /// WAND pivot rounds.
    pub pivot_rounds: u64,
    /// Top-k insertions.
    pub topk_inserts: u64,
    /// Effective scoring modules for this query.
    pub scorers: u64,
}

/// Replays a block trace through the core's resources.
///
/// Stages: per-unit decompression (blocks in trace order per unit), a
/// set-operation engine consuming decompressed blocks, scoring spread
/// over the effective scorer count, and the top-k queue. Scoring and
/// top-k work is charged proportionally as the set-op stage progresses,
/// which models their overlap with upstream work.
pub fn replay(
    events: &[BlockEvent],
    counts: &ReplayCounts,
    n_dec_units: usize,
    cycles_per_comparison: f64,
    cycles_per_score: f64,
    cycles_per_topk_insert: f64,
    cycles_per_pivot_round: f64,
) -> u64 {
    let mut dec_units = vec![Resource::default(); n_dec_units.max(1)];
    let mut setop = Resource::default();

    let total_postings: u64 = events
        .iter()
        .map(|e| u64::from(e.postings))
        .sum::<u64>()
        .max(1);
    let setop_total = (counts.comparisons as f64 * cycles_per_comparison
        + counts.pivot_rounds as f64 * cycles_per_pivot_round) as u64;
    let score_total =
        (counts.scored as f64 * cycles_per_score / counts.scorers.max(1) as f64) as u64;
    let topk_total = (counts.topk_inserts as f64 * cycles_per_topk_insert) as u64;

    let mut last_drain = 0u64;
    let mut downstream_done = 0u64; // postings fully consumed downstream
    for e in events {
        let unit = e.dec_unit % dec_units.len();
        let decoded_at = dec_units[unit].schedule(e.data_ready, e.dec_cycles);
        // The set-op stage consumes this block's share of the comparison
        // work once the block is decoded.
        downstream_done += u64::from(e.postings);
        let share = |total: u64, prev: u64| -> u64 {
            total * downstream_done / total_postings - total * prev / total_postings
        };
        let prev = downstream_done - u64::from(e.postings);
        let setop_cycles = share(setop_total, prev);
        let merged_at = setop.schedule(decoded_at, setop_cycles);
        // Scoring + top-k drain proportionally after the merge.
        let tail = share(score_total, prev) + share(topk_total, prev);
        last_drain = last_drain.max(merged_at + tail);
    }
    if events.is_empty() {
        // Pure register-path queries (everything skipped): the drain is
        // the scoring/top-k work alone.
        return setop_total + score_total + topk_total;
    }
    last_drain
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(data_ready: u64, dec: u64, unit: usize, postings: u32) -> BlockEvent {
        BlockEvent {
            data_ready,
            dec_cycles: dec,
            dec_unit: unit,
            postings,
        }
    }

    #[test]
    fn resource_serializes_work() {
        let mut r = Resource::default();
        assert_eq!(r.schedule(0, 10), 10);
        assert_eq!(r.schedule(5, 10), 20, "waits for the resource");
        assert_eq!(r.schedule(50, 10), 60, "waits for the data");
        assert_eq!(r.free_at(), 60);
    }

    #[test]
    fn perfectly_overlapped_pipeline() {
        // 4 blocks, one per unit, all data ready at 0: decompression is
        // fully parallel and the set-op stage serializes.
        let events: Vec<BlockEvent> = (0..4).map(|u| ev(0, 100, u, 128)).collect();
        let counts = ReplayCounts {
            scored: 0,
            comparisons: 400,
            pivot_rounds: 0,
            topk_inserts: 0,
            scorers: 1,
        };
        let cycles = replay(&events, &counts, 4, 1.0, 1.0, 1.0, 0.0);
        // First block decoded at 100; 400 comparisons spread across blocks.
        assert!(cycles >= 100 + 400, "{cycles}");
        assert!(cycles <= 100 + 400 + 4, "{cycles}");
    }

    #[test]
    fn single_unit_serializes_decompression() {
        let events: Vec<BlockEvent> = (0..4).map(|_| ev(0, 100, 0, 1)).collect();
        let counts = ReplayCounts {
            scorers: 1,
            ..Default::default()
        };
        let cycles = replay(&events, &counts, 1, 1.0, 1.0, 1.0, 0.0);
        assert!(cycles >= 400, "blocks on one unit serialize: {cycles}");
    }

    #[test]
    fn memory_stall_propagates() {
        let events = vec![ev(10_000, 10, 0, 1)];
        let counts = ReplayCounts {
            scorers: 1,
            ..Default::default()
        };
        let cycles = replay(&events, &counts, 4, 1.0, 1.0, 1.0, 0.0);
        assert!(cycles >= 10_010);
    }

    #[test]
    fn empty_trace_is_tail_work_only() {
        let counts = ReplayCounts {
            scored: 100,
            comparisons: 0,
            pivot_rounds: 0,
            topk_inserts: 50,
            scorers: 2,
        };
        let cycles = replay(&[], &counts, 4, 1.0, 1.0, 1.0, 2.0);
        assert_eq!(cycles, 100 / 2 + 50);
    }

    #[test]
    fn pipelined_bounded_by_roofline_and_sum() {
        // pipelined >= max(stage totals started at their earliest), and
        // <= sum of all stage totals + max data_ready.
        let events: Vec<BlockEvent> = (0..16)
            .map(|i| ev(i * 50, 64 + (i % 3) * 40, (i % 4) as usize, 128))
            .collect();
        let counts = ReplayCounts {
            scored: 500,
            comparisons: 2048,
            pivot_rounds: 100,
            topk_inserts: 200,
            scorers: 4,
        };
        let cycles = replay(&events, &counts, 4, 1.0, 1.0, 1.0, 2.0);
        let dec_per_unit: u64 = events
            .iter()
            .filter(|e| e.dec_unit == 0)
            .map(|e| e.dec_cycles)
            .sum();
        let setop = 2048 + 200;
        let roofline = dec_per_unit.max(setop);
        let sum_all: u64 =
            events.iter().map(|e| e.dec_cycles).sum::<u64>() + setop + 500 / 4 + 200 + 800;
        assert!(cycles >= roofline, "{cycles} >= {roofline}");
        assert!(cycles <= sum_all + 800, "{cycles} <= {sum_all}");
    }
}
