//! Whole-query fault-injection tests: the [`crate::DegradePolicy`]
//! contract from the device API down through the traversal.

use crate::config::{BossConfig, DegradePolicy, EtMode};
use crate::device::BossDevice;
use boss_index::{IndexBuilder, InvertedIndex, QueryExpr};
use boss_scm::FaultPlan;

fn corpus() -> InvertedIndex {
    // Several blocks per list so block-granular faults hit mid-list.
    let docs: Vec<String> = (0u32..1200)
        .map(|i| {
            let mut t = String::from("common");
            let h = i.wrapping_mul(2654435761);
            if h % 2 == 0 {
                t.push_str(" left");
            }
            if h % 3 == 0 {
                t.push_str(" right right");
            }
            t
        })
        .collect();
    IndexBuilder::new()
        .add_documents(docs.iter().map(String::as_str))
        .build()
        .unwrap()
}

fn queries() -> Vec<QueryExpr> {
    vec![
        QueryExpr::term("common"),
        QueryExpr::or([QueryExpr::term("left"), QueryExpr::term("right")]),
        QueryExpr::and([QueryExpr::term("left"), QueryExpr::term("right")]),
    ]
}

#[test]
fn fail_query_surfaces_typed_read_fault() {
    let idx = corpus();
    let plan = FaultPlan::quiet(11).with_uncorrectable_rate(1.0);
    let cfg = BossConfig::default().with_fault_plan(Some(plan));
    assert_eq!(cfg.degrade, DegradePolicy::FailQuery);
    let mut dev = BossDevice::new(&idx, cfg);
    for q in queries() {
        let err = dev.search_expr(&q, 10).unwrap_err();
        assert!(
            matches!(err, boss_index::Error::ReadFault { .. }),
            "{q}: {err}"
        );
    }
}

#[test]
fn skip_block_completes_and_counts_dropped_blocks() {
    let idx = corpus();
    let plan = FaultPlan::quiet(7).with_uncorrectable_rate(0.6);
    let cfg = BossConfig::default()
        .with_fault_plan(Some(plan))
        .with_degrade(DegradePolicy::SkipBlock)
        .with_et(EtMode::Exhaustive);
    let mut dev = BossDevice::new(&idx, cfg);
    let mut any_skipped = false;
    for q in queries() {
        let out = dev.search_expr(&q, 10).unwrap();
        any_skipped |= out.eval.blocks_skipped_fault > 0;
        if out.eval.blocks_skipped_fault > 0 {
            assert!(out.mem.faulted_reads > 0, "{q}: fault accounted in traffic");
        }
    }
    assert!(any_skipped, "rate 0.3 must hit at least one block");
}

#[test]
fn skip_block_is_deterministic_across_runs() {
    let idx = corpus();
    let plan = FaultPlan::quiet(23).with_uncorrectable_rate(0.3);
    let run = || {
        let cfg = BossConfig::default()
            .with_fault_plan(Some(plan.clone()))
            .with_degrade(DegradePolicy::SkipBlock);
        let mut dev = BossDevice::new(&idx, cfg);
        queries()
            .iter()
            .map(|q| dev.search_expr(q, 10).unwrap())
            .collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x, y, "same plan, same outcome");
    }
}

#[test]
fn quiet_plan_and_no_plan_are_bit_identical() {
    // The invariance contract: an installed-but-silent plan, and either
    // degradation policy, change nothing when no fault ever fires.
    let idx = corpus();
    let run = |plan: Option<FaultPlan>, degrade: DegradePolicy| {
        let cfg = BossConfig::default()
            .with_fault_plan(plan)
            .with_degrade(degrade);
        let mut dev = BossDevice::new(&idx, cfg);
        queries()
            .iter()
            .map(|q| dev.search_expr(q, 25).unwrap())
            .collect::<Vec<_>>()
    };
    let base = run(None, DegradePolicy::FailQuery);
    assert_eq!(
        base,
        run(Some(FaultPlan::quiet(99)), DegradePolicy::FailQuery)
    );
    assert_eq!(
        base,
        run(Some(FaultPlan::quiet(99)), DegradePolicy::SkipBlock)
    );
    assert_eq!(base, run(None, DegradePolicy::SkipBlock));
    for out in &base {
        assert_eq!(out.eval.blocks_skipped_fault, 0);
        assert_eq!(out.mem.faulted_reads, 0);
    }
}

#[test]
fn bandwidth_degradation_slows_but_does_not_fail() {
    let idx = corpus();
    let q = QueryExpr::or([QueryExpr::term("left"), QueryExpr::term("right")]);
    let run = |plan: Option<FaultPlan>| {
        let mut dev = BossDevice::new(&idx, BossConfig::default().with_fault_plan(plan));
        dev.search_expr(&q, 10).unwrap()
    };
    let clean = run(None);
    let slow = run(Some(FaultPlan::quiet(5).with_channel_bw(vec![0.5])));
    assert_eq!(clean.hits, slow.hits, "degradation never changes results");
    assert!(slow.mem.degraded_accesses > 0);
    assert!(
        slow.mem.last_done_cycle > clean.mem.last_done_cycle,
        "half-bandwidth channels finish later"
    );
}
