//! Area, power, and energy model (Table III of the paper).
//!
//! The paper synthesizes the Chisel RTL with a TSMC 40 nm library; this
//! reproduction seeds an analytical model with the published per-module
//! constants and derives device-level totals and energies from them.

use serde::{Deserialize, Serialize};

/// Area (mm²) and average power (mW) of one module instance group, as
/// Table III reports them (the table's Area/Power columns are totals over
/// the instance count).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModuleCost {
    /// Component name as printed in Table III.
    pub name: &'static str,
    /// Instances per core (or per device for peripherals).
    pub count: u32,
    /// Total area of the instances, mm².
    pub area_mm2: f64,
    /// Total average power of the instances, mW.
    pub power_mw: f64,
}

/// Per-core module costs (Table III, "BOSS Core" section).
pub const CORE_MODULES: [ModuleCost; 6] = [
    ModuleCost {
        name: "Block Fetch Module",
        count: 1,
        area_mm2: 0.108,
        power_mw: 10.5,
    },
    ModuleCost {
        name: "Decompression Module",
        count: 4,
        area_mm2: 0.093,
        power_mw: 43.0,
    },
    ModuleCost {
        name: "Intersection Module",
        count: 1,
        area_mm2: 0.003,
        power_mw: 0.49,
    },
    ModuleCost {
        name: "Union Module",
        count: 1,
        area_mm2: 0.011,
        power_mw: 5.55,
    },
    ModuleCost {
        name: "Scoring Module",
        count: 4,
        area_mm2: 0.464,
        power_mw: 200.0,
    },
    ModuleCost {
        name: "Top-k Module",
        count: 1,
        area_mm2: 0.324,
        power_mw: 147.1,
    },
];

/// Device-level peripheral costs (Table III, "BOSS" section, minus cores).
pub const DEVICE_MODULES: [ModuleCost; 3] = [
    ModuleCost {
        name: "Command Queue",
        count: 1,
        area_mm2: 0.078,
        power_mw: 0.078,
    },
    ModuleCost {
        name: "Query Scheduler",
        count: 1,
        area_mm2: 0.001,
        power_mw: 1.96,
    },
    ModuleCost {
        name: "MAI (with TLB)",
        count: 1,
        area_mm2: 0.127,
        power_mw: 1.20,
    },
];

/// Average package power of the evaluation host CPU (Section V-C), watts.
pub const HOST_CPU_POWER_W: f64 = 74.8;

/// The assembled area/power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaPowerModel {
    /// Number of BOSS cores.
    pub n_cores: u32,
}

impl AreaPowerModel {
    /// Model for a device with `n_cores` cores.
    pub fn new(n_cores: u32) -> Self {
        AreaPowerModel { n_cores }
    }

    /// Area of one core, mm² (Table III: 1.003 mm²).
    pub fn core_area_mm2(&self) -> f64 {
        CORE_MODULES.iter().map(|m| m.area_mm2).sum()
    }

    /// Average power of one core, mW (Table III: 406.6 mW).
    pub fn core_power_mw(&self) -> f64 {
        CORE_MODULES.iter().map(|m| m.power_mw).sum()
    }

    /// Total device area, mm² (Table III: 8.27 mm² at 8 cores).
    pub fn device_area_mm2(&self) -> f64 {
        f64::from(self.n_cores) * self.core_area_mm2()
            + DEVICE_MODULES.iter().map(|m| m.area_mm2).sum::<f64>()
    }

    /// Total device power, W (Table III: 3.2 W at 8 cores).
    pub fn device_power_w(&self) -> f64 {
        (f64::from(self.n_cores) * self.core_power_mw()
            + DEVICE_MODULES.iter().map(|m| m.power_mw).sum::<f64>())
            / 1e3
    }

    /// Energy of a run of `cycles` core cycles at `clock_ghz`, joules.
    pub fn energy_joules(&self, cycles: u64, clock_ghz: f64) -> f64 {
        self.device_power_w() * (cycles as f64 / (clock_ghz * 1e9))
    }

    /// Host-CPU energy for the same wall-clock interval, joules — the
    /// Lucene side of Figure 17.
    pub fn host_energy_joules(seconds: f64) -> f64 {
        HOST_CPU_POWER_W * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_totals_match_table3() {
        let m = AreaPowerModel::new(8);
        assert!((m.core_area_mm2() - 1.003).abs() < 1e-9);
        assert!((m.core_power_mw() - 406.64).abs() < 0.01);
    }

    #[test]
    fn device_totals_match_table3() {
        let m = AreaPowerModel::new(8);
        // Table III prints 8.27 mm² total, but its own components sum to
        // 8.23 (8 x 1.003 + 0.206); accept the table's internal rounding.
        assert!(
            (m.device_area_mm2() - 8.27).abs() < 0.05,
            "{}",
            m.device_area_mm2()
        );
        assert!(
            (m.device_power_w() - 3.2).abs() < 0.1,
            "{}",
            m.device_power_w()
        );
    }

    #[test]
    fn power_ratio_vs_host_cpu() {
        // The paper: BOSS consumes 23.3x less power than the host CPU.
        let m = AreaPowerModel::new(8);
        let ratio = HOST_CPU_POWER_W / m.device_power_w();
        assert!((ratio - 23.3).abs() < 0.6, "ratio {ratio}");
    }

    #[test]
    fn energy_scales_with_time_and_cores() {
        let m8 = AreaPowerModel::new(8);
        let m1 = AreaPowerModel::new(1);
        let e8 = m8.energy_joules(1_000_000_000, 1.0);
        let e1 = m1.energy_joules(1_000_000_000, 1.0);
        assert!(e8 > e1);
        assert!((m8.energy_joules(2_000_000_000, 1.0) - 2.0 * e8).abs() < 1e-9);
    }

    #[test]
    fn host_energy() {
        assert!((AreaPowerModel::host_energy_joules(2.0) - 149.6).abs() < 1e-9);
    }
}
