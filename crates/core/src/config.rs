//! Accelerator configuration and timing constants.

use crate::pipeline::TimingFidelity;
use boss_index::QueryAlgorithm;
use boss_scm::MemoryConfig;
use serde::{Deserialize, Serialize};

/// Early-termination mode of a BOSS core (Figures 13/14 compare these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EtMode {
    /// No pruning: every candidate block is fetched and every candidate
    /// document scored ("BOSS-exhaustive" in Figure 13).
    Exhaustive,
    /// Only block-level score estimation in the block fetch module
    /// ("BOSS-block-only" in Figure 14).
    BlockOnly,
    /// Block-level estimation plus document-level WAND in the union module
    /// (full BOSS).
    #[default]
    Full,
}

impl EtMode {
    /// Label used by figures.
    pub fn label(self) -> &'static str {
        match self {
            EtMode::Exhaustive => "BOSS-exhaustive",
            EtMode::BlockOnly => "BOSS-block-only",
            EtMode::Full => "BOSS",
        }
    }
}

/// What a query does when a posting block cannot be used — its simulated
/// read came back flagged uncorrectable by the active fault plan, or its
/// bytes/metadata failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DegradePolicy {
    /// The query fails with a typed error (the default: no silent
    /// degradation unless explicitly opted into).
    #[default]
    FailQuery,
    /// The block is skipped and the query continues on the remaining
    /// postings; `EvalCounts::blocks_skipped_fault` counts the loss.
    SkipBlock,
}

/// Per-module cycle costs at the 1 GHz core clock.
///
/// The defaults follow the module descriptions of Section IV-C: one merge
/// comparison per cycle per intersection unit, fully pipelined scoring
/// (one document per cycle per module once the fixed-point divider is
/// filled), one top-k shift-insert per cycle, and the decompression cycle
/// counts of the `boss-decomp` engine (one extraction unit per cycle plus
/// pipeline fill).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Pipeline-fill cycles charged per decoded block.
    pub decomp_fill: u64,
    /// Cycles per set-operation comparison.
    pub cycles_per_comparison: f64,
    /// Cycles per scored document per scoring module (pipelined).
    pub cycles_per_score: f64,
    /// One-time fill of the fixed-point divider pipeline per query.
    pub scoring_fill: u64,
    /// Cycles per top-k insertion.
    pub cycles_per_topk_insert: f64,
    /// Fixed per-query overhead (command decode, scheduling, drain).
    pub query_overhead: u64,
    /// Cycles per WAND pivot-selection round in the union module
    /// (sorter + score loader + pivot selector).
    pub cycles_per_pivot_round: f64,
    /// Which latency estimator to use (roofline or event-driven replay).
    pub fidelity: TimingFidelity,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            decomp_fill: 4,
            cycles_per_comparison: 1.0,
            cycles_per_score: 1.0,
            scoring_fill: 16,
            cycles_per_topk_insert: 1.0,
            query_overhead: 200,
            cycles_per_pivot_round: 2.0,
            fidelity: TimingFidelity::Roofline,
        }
    }
}

/// Configuration of a BOSS device (Table I "BOSS Configuration").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BossConfig {
    /// Number of BOSS cores on the memory node.
    pub n_cores: u32,
    /// Core clock in GHz (the paper's cores run at 1.0).
    pub clock_ghz: f64,
    /// Results returned per query (the paper defaults to 1000).
    pub k: usize,
    /// Early-termination mode.
    pub et_mode: EtMode,
    /// Dynamic-pruning query plan for union-bearing queries. The default
    /// ([`QueryAlgorithm::Exhaustive`]) keeps the paper's traversal with
    /// `et_mode` as the early-termination axis; any other value replaces
    /// the union traversal with that pruning algorithm (`crate::prune`),
    /// still returning bit-identical top-k results.
    pub algorithm: QueryAlgorithm,
    /// Decompression modules per core.
    pub decompressors_per_core: u32,
    /// Scoring modules per core.
    pub scorers_per_core: u32,
    /// Maximum terms a single core handles natively.
    pub max_terms_per_core: usize,
    /// Maximum terms the device handles in hardware (4 chained cores).
    pub max_terms: usize,
    /// The memory node configuration.
    pub memory: MemoryConfig,
    /// Timing constants.
    pub timing: TimingModel,
    /// Capacity (in decoded blocks) of the host-side decoded-block cache;
    /// 0 disables it. Wall-clock only: simulated cycles and traffic are
    /// independent of this setting (see `boss_index::cache`).
    pub block_cache_blocks: usize,
    /// Whether the host executes the query hot loop with the
    /// block-at-a-time scoring kernels and the software-pipelined
    /// (double-buffered) posting traversal. Wall-clock only: simulated
    /// cycles, traffic, and every evaluation counter are bit-identical
    /// with this on or off (see `crate::union`).
    pub bulk_score: bool,
    /// Optional SCM fault-injection plan applied to every simulated
    /// memory access. `None` (the default) means a fault-free device and
    /// bit-identical figures to a build without fault support.
    pub fault_plan: Option<boss_scm::FaultPlan>,
    /// How a query reacts to an unusable posting block (uncorrectable
    /// read or corrupt decode). Irrelevant while no fault fires.
    pub degrade: DegradePolicy,
}

impl Default for BossConfig {
    fn default() -> Self {
        BossConfig {
            n_cores: 8,
            clock_ghz: 1.0,
            k: 1000,
            et_mode: EtMode::Full,
            algorithm: QueryAlgorithm::Exhaustive,
            decompressors_per_core: 4,
            scorers_per_core: 4,
            max_terms_per_core: 4,
            max_terms: 16,
            memory: MemoryConfig::optane_dcpmm(),
            timing: TimingModel::default(),
            block_cache_blocks: 0,
            bulk_score: true,
            fault_plan: None,
            degrade: DegradePolicy::FailQuery,
        }
    }
}

impl BossConfig {
    /// A configuration with `n` cores and defaults elsewhere.
    pub fn with_cores(n: u32) -> Self {
        BossConfig {
            n_cores: n,
            ..Self::default()
        }
    }

    /// Replaces the memory node configuration.
    #[must_use]
    pub fn on_memory(mut self, memory: MemoryConfig) -> Self {
        self.memory = memory;
        self
    }

    /// Replaces the early-termination mode.
    #[must_use]
    pub fn with_et(mut self, et: EtMode) -> Self {
        self.et_mode = et;
        self
    }

    /// Replaces the dynamic-pruning query algorithm.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: QueryAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Replaces `k`.
    #[must_use]
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Replaces the timing fidelity.
    #[must_use]
    pub fn with_fidelity(mut self, fidelity: TimingFidelity) -> Self {
        self.timing.fidelity = fidelity;
        self
    }

    /// Replaces the decoded-block cache capacity (0 disables the cache).
    #[must_use]
    pub fn with_block_cache(mut self, blocks: usize) -> Self {
        self.block_cache_blocks = blocks;
        self
    }

    /// Enables or disables the bulk scoring hot loop (wall-clock only;
    /// simulated figures do not depend on this).
    #[must_use]
    pub fn with_bulk_score(mut self, on: bool) -> Self {
        self.bulk_score = on;
        self
    }

    /// Installs (or clears) the SCM fault-injection plan.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: Option<boss_scm::FaultPlan>) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Replaces the degradation policy for unusable posting blocks.
    #[must_use]
    pub fn with_degrade(mut self, policy: DegradePolicy) -> Self {
        self.degrade = policy;
        self
    }

    /// Converts core cycles to seconds at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let c = BossConfig::default();
        assert_eq!(c.algorithm, QueryAlgorithm::Exhaustive);
        assert_eq!(c.n_cores, 8);
        assert_eq!(c.k, 1000);
        assert_eq!(c.decompressors_per_core, 4);
        assert_eq!(c.scorers_per_core, 4);
        assert_eq!(c.max_terms_per_core, 4);
        assert_eq!(c.max_terms, 16);
        assert_eq!(c.memory.channels, 4);
    }

    #[test]
    fn builder_methods() {
        let c = BossConfig::with_cores(2)
            .with_et(EtMode::BlockOnly)
            .with_k(10)
            .on_memory(boss_scm::MemoryConfig::ddr4_2666());
        assert_eq!(c.n_cores, 2);
        assert_eq!(c.et_mode, EtMode::BlockOnly);
        assert_eq!(c.k, 10);
        assert_eq!(c.memory.kind, boss_scm::MemoryKind::Dram);
    }

    #[test]
    fn cycles_to_seconds_at_1ghz() {
        let c = BossConfig::default();
        assert!((c.cycles_to_seconds(1_000_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn et_labels() {
        assert_eq!(EtMode::Full.label(), "BOSS");
        assert_eq!(EtMode::Exhaustive.label(), "BOSS-exhaustive");
        assert_eq!(EtMode::BlockOnly.label(), "BOSS-block-only");
    }
}
