//! The BOSS device: command queue, query scheduler, and a set of cores
//! sharing one SCM memory node (Figure 4(a)).

use crate::config::BossConfig;
use crate::core::{BossCore, CoreScratch};
use crate::plan::QueryPlan;
use crate::stats::{EvalCounts, QueryOutcome};
use boss_index::layout::IndexImage;
use boss_index::{BlockCache, BlockCacheStats, Error, InvertedIndex, QueryExpr};
use boss_scm::MemStats;
use serde::{Deserialize, Serialize};

/// Query-to-core scheduling policy of the query scheduler (Figure 4(a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// Queries dispatch in arrival order to the earliest-free core.
    #[default]
    Fifo,
    /// Shortest-job-first by estimated work (total document frequency of
    /// the plan's terms) — reduces makespan for skewed batches at the cost
    /// of potential starvation, which the ablation quantifies.
    Sjf,
}

/// Aggregate result of a query batch.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-query outcomes, in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// Makespan across cores, in core cycles.
    pub makespan_cycles: u64,
    /// Merged memory traffic.
    pub mem: MemStats,
    /// Merged evaluation counters.
    pub eval: EvalCounts,
}

impl BatchOutcome {
    /// Batch throughput in queries/second at `clock_ghz`.
    pub fn throughput_qps(&self, clock_ghz: f64) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.outcomes.len() as f64 / (self.makespan_cycles as f64 / (clock_ghz * 1e9))
    }

    /// Achieved memory bandwidth in GB/s over the makespan.
    pub fn bandwidth_gbps(&self) -> f64 {
        self.mem.achieved_gbps(self.makespan_cycles)
    }
}

/// A BOSS device attached to one memory node holding `index`.
#[derive(Debug)]
pub struct BossDevice<'a> {
    index: &'a InvertedIndex,
    image: IndexImage,
    config: BossConfig,
    cores: Vec<BossCore>,
    /// Host-side decoded-block cache shared by this device's cores
    /// (wall-clock only; `None` when `config.block_cache_blocks == 0`).
    cache: Option<BlockCache>,
    /// Reusable query buffers (top-k queue + bulk scoring scratch),
    /// recycled across every query this device runs.
    scratch: CoreScratch,
}

impl<'a> BossDevice<'a> {
    /// Instantiates the device over an index (the `init()` intrinsic's
    /// image load is modeled by the [`IndexImage`] layout).
    pub fn new(index: &'a InvertedIndex, config: BossConfig) -> Self {
        let cores = (0..config.n_cores)
            .map(|_| BossCore::new(config.clone()))
            .collect();
        let cache =
            (config.block_cache_blocks > 0).then(|| BlockCache::new(config.block_cache_blocks));
        BossDevice {
            index,
            image: IndexImage::new(index),
            config,
            cores,
            cache,
            scratch: CoreScratch::new(),
        }
    }

    /// Decoded-block cache counters, when a cache is configured.
    pub fn block_cache_stats(&self) -> Option<BlockCacheStats> {
        self.cache.as_ref().map(BlockCache::stats)
    }

    /// The device configuration.
    pub fn config(&self) -> &BossConfig {
        &self.config
    }

    /// The index image layout.
    pub fn image(&self) -> &IndexImage {
        &self.image
    }

    /// The index this device serves.
    pub fn index(&self) -> &'a InvertedIndex {
        self.index
    }

    /// Executes a query whose term count exceeds the 16-term hardware
    /// limit, the way Section IV-D describes: the host splits it into
    /// hardware-sized subqueries which BOSS processes *without pruning or
    /// top-k selection*, stores every subquery's scored candidates in host
    /// memory, and the host merges and selects the final top-k.
    ///
    /// Queries within the hardware limit are dispatched normally.
    /// Oversized queries are supported for pure unions (the realistic
    /// long-query case — TREC-style bags of words).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidQuery`] for oversized non-union shapes, plus the
    /// usual planning errors per subquery.
    pub fn search_host_merged(
        &mut self,
        expr: &QueryExpr,
        k: usize,
    ) -> Result<QueryOutcome, Error> {
        let terms = expr.terms();
        if terms.len() <= self.config.max_terms {
            return self.search_expr(expr, k);
        }
        let is_pure_union = matches!(expr, QueryExpr::Or(subs)
            if subs.iter().all(|s| matches!(s, QueryExpr::Term(_))));
        if !is_pure_union {
            return Err(Error::InvalidQuery {
                reason: format!(
                    "{}-term non-union queries exceed the {}-term hardware limit",
                    terms.len(),
                    self.config.max_terms
                ),
            });
        }
        // Host-side split into <=16-term subqueries.
        let exhaustive_k = self.index.n_docs() as usize;
        let original_et = self.config.et_mode;
        let original_algorithm = self.config.algorithm;
        // Subqueries run without pruning (their local cutoffs would be
        // wrong for the combined query) — both the ET machinery and any
        // dynamic-pruning plan are forced off.
        for c in &mut self.cores {
            c.set_et_mode(crate::config::EtMode::Exhaustive);
            c.set_algorithm(boss_index::QueryAlgorithm::Exhaustive);
        }
        let mut scores: std::collections::HashMap<boss_index::DocId, f32> =
            std::collections::HashMap::new();
        let mut cycles = 0u64;
        let mut mem = MemStats::new();
        let mut eval = EvalCounts::default();
        let mut result = Ok(());
        for chunk in terms.chunks(self.config.max_terms) {
            let sub = QueryExpr::or(chunk.iter().map(|t| QueryExpr::term(*t)));
            match self.search_expr(&sub, exhaustive_k) {
                Ok(out) => {
                    cycles += out.cycles;
                    mem.merge(&out.mem);
                    eval.merge(&out.eval);
                    for h in out.hits {
                        *scores.entry(h.doc).or_insert(0.0) += h.score;
                    }
                }
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        for c in &mut self.cores {
            c.set_et_mode(original_et);
            c.set_algorithm(original_algorithm);
        }
        result?;
        let mut hits: Vec<boss_index::SearchHit> = scores
            .into_iter()
            .map(|(doc, score)| boss_index::SearchHit { doc, score })
            .collect();
        hits.sort_by(boss_index::SearchHit::ranking_cmp);
        hits.truncate(k);
        // Host merge cost: one pass over the gathered candidates.
        cycles += eval.docs_scored / 4;
        Ok(QueryOutcome {
            hits,
            cycles,
            mem,
            eval,
        })
    }

    /// Executes one query on an idle core.
    ///
    /// # Errors
    ///
    /// Returns planning errors ([`Error::UnknownTerm`],
    /// [`Error::InvalidQuery`]) without touching the cores.
    pub fn search_expr(&mut self, expr: &QueryExpr, k: usize) -> Result<QueryOutcome, Error> {
        self.search_expr_seeded(expr, k, f32::NEG_INFINITY)
    }

    /// [`BossDevice::search_expr`] with an externally seeded top-k score
    /// floor: a sharded coordinator passes the running k-th score of its
    /// scatter-gather merge so this device's pruning plan can skip
    /// against the global threshold from the first posting. Passing
    /// `f32::NEG_INFINITY` is exactly [`BossDevice::search_expr`].
    ///
    /// # Errors
    ///
    /// Same surface as [`BossDevice::search_expr`].
    pub fn search_expr_seeded(
        &mut self,
        expr: &QueryExpr,
        k: usize,
        floor: f32,
    ) -> Result<QueryOutcome, Error> {
        let plan = QueryPlan::from_expr(self.index, expr, &self.config)?;
        self.cores[0].execute_with_scratch_seeded(
            self.index,
            &self.image,
            &plan,
            k,
            self.cache.as_ref(),
            &mut self.scratch,
            floor,
        )
    }

    /// Runs a batch with greedy list scheduling: each query goes to the
    /// earliest-free core; a query whose plan has more than
    /// `max_terms_per_core` streams gangs the required number of cores
    /// (their union/intersection mergers chain, Section IV-D).
    ///
    /// # Errors
    ///
    /// Fails on the first unplannable query, before running anything.
    pub fn run_batch(&mut self, queries: &[QueryExpr], k: usize) -> Result<BatchOutcome, Error> {
        self.run_batch_with_policy(queries, k, SchedPolicy::Fifo)
    }

    /// [`BossDevice::run_batch`] with an explicit scheduling policy.
    ///
    /// Per-query outcomes are returned in *submission* order regardless of
    /// execution order.
    ///
    /// # Errors
    ///
    /// Fails on the first unplannable query, before running anything.
    pub fn run_batch_with_policy(
        &mut self,
        queries: &[QueryExpr],
        k: usize,
        policy: SchedPolicy,
    ) -> Result<BatchOutcome, Error> {
        let plans: Vec<QueryPlan> = queries
            .iter()
            .map(|q| QueryPlan::from_expr(self.index, q, &self.config))
            .collect::<Result<_, _>>()?;
        let mut order: Vec<usize> = (0..plans.len()).collect();
        if policy == SchedPolicy::Sjf {
            let estimate = |p: &QueryPlan| -> u64 {
                p.groups()
                    .iter()
                    .flatten()
                    .map(|&t| u64::from(self.index.list(t).df()))
                    .sum()
            };
            order.sort_by_key(|&i| estimate(&plans[i]));
        }
        for c in &mut self.cores {
            c.busy_until = 0;
        }
        let mut outcomes: Vec<Option<QueryOutcome>> = (0..plans.len()).map(|_| None).collect();
        let mut mem = MemStats::new();
        let mut eval = EvalCounts::default();
        for &qi in &order {
            let plan = &plans[qi];
            let gang = plan
                .n_distinct_terms()
                .div_ceil(self.config.max_terms_per_core)
                .max(1);
            let gang = gang.min(self.cores.len());
            // Pick the `gang` earliest-free cores.
            let mut idx: Vec<usize> = (0..self.cores.len()).collect();
            idx.sort_by_key(|&i| self.cores[i].busy_until);
            let chosen = &idx[..gang];
            let start = chosen
                .iter()
                .map(|&i| self.cores[i].busy_until)
                .max()
                .expect("gang non-empty");
            let out = self.cores[chosen[0]].execute_with_scratch(
                self.index,
                &self.image,
                plan,
                k,
                self.cache.as_ref(),
                &mut self.scratch,
            )?;
            let end = start + out.cycles;
            for &i in chosen {
                self.cores[i].busy_until = end;
            }
            mem.merge(&out.mem);
            eval.merge(&out.eval);
            outcomes[qi] = Some(out);
        }
        let outcomes: Vec<QueryOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("every query executed"))
            .collect();
        // Bottleneck correction: per-query timing was simulated at full
        // node bandwidth (a core running alone); when many cores run, the
        // node can serve at most `channels` channel-cycles per cycle, so
        // the batch cannot finish faster than the aggregate occupancy
        // allows. max(core-limited, bandwidth-limited) is the roofline
        // that produces the saturation behaviour of Figures 9/10.
        let core_limited = self.cores.iter().map(|c| c.busy_until).max().unwrap_or(0);
        let bw_limited = mem.busy_cycles / u64::from(self.config.memory.channels).max(1);
        let makespan_cycles = core_limited.max(bw_limited);
        Ok(BatchOutcome {
            outcomes,
            makespan_cycles,
            mem,
            eval,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boss_index::{reference, IndexBuilder};

    fn corpus() -> InvertedIndex {
        let docs: Vec<String> = (0u32..600)
            .map(|i| {
                let mut t = String::from("all");
                if i % 2 == 0 {
                    t.push_str(" even");
                }
                if i % 3 == 0 {
                    t.push_str(" three");
                }
                if i % 5 == 0 {
                    t.push_str(" five");
                }
                t
            })
            .collect();
        IndexBuilder::new()
            .add_documents(docs.iter().map(String::as_str))
            .build()
            .unwrap()
    }

    #[test]
    fn single_query_matches_reference() {
        let idx = corpus();
        let mut dev = BossDevice::new(&idx, BossConfig::default());
        let q = QueryExpr::or([QueryExpr::term("even"), QueryExpr::term("five")]);
        let out = dev.search_expr(&q, 12).unwrap();
        assert_eq!(out.hits, reference::evaluate(&idx, &q, 12).unwrap());
    }

    #[test]
    fn batch_parallelism_shrinks_makespan() {
        let idx = corpus();
        let queries: Vec<QueryExpr> = (0..8)
            .map(|i| {
                if i % 2 == 0 {
                    QueryExpr::term("even")
                } else {
                    QueryExpr::and([QueryExpr::term("three"), QueryExpr::term("five")])
                }
            })
            .collect();
        let mut dev1 = BossDevice::new(&idx, BossConfig::with_cores(1));
        let mut dev8 = BossDevice::new(&idx, BossConfig::with_cores(8));
        let b1 = dev1.run_batch(&queries, 10).unwrap();
        let b8 = dev8.run_batch(&queries, 10).unwrap();
        assert!(b8.makespan_cycles < b1.makespan_cycles);
        assert!(b8.throughput_qps(1.0) > b1.throughput_qps(1.0));
        assert_eq!(b1.outcomes.len(), 8);
        // Functional results identical across core counts.
        for (a, b) in b1.outcomes.iter().zip(&b8.outcomes) {
            assert_eq!(a.hits, b.hits);
        }
    }

    #[test]
    fn batch_merges_stats() {
        let idx = corpus();
        let mut dev = BossDevice::new(&idx, BossConfig::with_cores(2));
        let queries = vec![QueryExpr::term("even"), QueryExpr::term("three")];
        let b = dev.run_batch(&queries, 5).unwrap();
        let sum: u64 = b.outcomes.iter().map(|o| o.mem.total_bytes()).sum();
        assert_eq!(b.mem.total_bytes(), sum);
        assert!(b.eval.docs_scored > 0);
        assert!(b.bandwidth_gbps() > 0.0);
    }

    #[test]
    fn unplannable_query_fails_cleanly() {
        let idx = corpus();
        let mut dev = BossDevice::new(&idx, BossConfig::default());
        let err = dev.search_expr(&QueryExpr::term("missing"), 5).unwrap_err();
        assert!(matches!(err, Error::UnknownTerm { .. }));
        let err = dev
            .run_batch(&[QueryExpr::term("even"), QueryExpr::term("missing")], 5)
            .unwrap_err();
        assert!(matches!(err, Error::UnknownTerm { .. }));
    }

    #[test]
    fn wide_union_gangs_cores() {
        // 6 single-term groups -> 2 cores ganged per query.
        let idx = corpus();
        let mut dev = BossDevice::new(&idx, BossConfig::with_cores(4));
        let q = QueryExpr::or(
            ["all", "even", "three", "five", "all", "even"]
                .iter()
                .map(|t| QueryExpr::term(*t)),
        );
        // Terms deduplicate to 4 -> fits one core; use truly distinct wider
        // union via a fresh corpus with more terms instead.
        let out = dev.search_expr(&q, 5).unwrap();
        assert_eq!(out.hits, reference::evaluate(&idx, &q, 5).unwrap());
    }
}

#[cfg(test)]
mod wide_query_tests {
    use super::*;
    use crate::config::EtMode;
    use boss_index::{reference, IndexBuilder, SearchHit};

    fn wide_corpus() -> InvertedIndex {
        // 20 distinct terms spread over 500 docs.
        let docs: Vec<String> = (0u32..500)
            .map(|i| {
                let mut t = String::from("base");
                for w in 0..20u32 {
                    if i.wrapping_mul(2654435761).wrapping_add(w * 97) % 9 == 0 {
                        t.push_str(&format!(" w{w:02}"));
                    }
                }
                t
            })
            .collect();
        IndexBuilder::new()
            .add_documents(docs.iter().map(String::as_str))
            .build()
            .unwrap()
    }

    #[test]
    fn wide_union_matches_reference_approximately() {
        let idx = wide_corpus();
        let mut dev = BossDevice::new(&idx, BossConfig::default());
        let q = QueryExpr::or((0..20).map(|w| QueryExpr::term(format!("w{w:02}"))));
        assert!(q.terms().len() > dev.config().max_terms);
        let got = dev.search_host_merged(&q, 50).unwrap();
        let expect = reference::evaluate(&idx, &q, 50).unwrap();
        // Chunked host merging re-associates the f32 sums, so scores can
        // differ in the last bits; documents and near-exact scores must
        // agree.
        let gd: Vec<u32> = got.hits.iter().map(|h| h.doc).collect();
        let ed: Vec<u32> = expect.iter().map(|h| h.doc).collect();
        assert_eq!(gd, ed);
        for (g, e) in got.hits.iter().zip(&expect) {
            assert!((g.score - e.score).abs() < 1e-3 * e.score.abs().max(1.0));
        }
        assert!(
            got.eval.docs_skipped_wand + got.eval.docs_skipped_block == 0,
            "no pruning in subqueries"
        );
    }

    #[test]
    fn wide_path_restores_et_mode() {
        let idx = wide_corpus();
        let mut dev = BossDevice::new(&idx, BossConfig::default().with_et(EtMode::Full).with_k(5));
        let q = QueryExpr::or((0..20).map(|w| QueryExpr::term(format!("w{w:02}"))));
        let _ = dev.search_host_merged(&q, 5).unwrap();
        // A narrow union afterwards must prune again.
        let narrow = QueryExpr::or((0..4).map(|w| QueryExpr::term(format!("w{w:02}"))));
        let out = dev.search_expr(&narrow, 5).unwrap();
        assert!(
            out.eval.docs_skipped_wand + out.eval.docs_skipped_block > 0,
            "ET restored"
        );
    }

    #[test]
    fn narrow_queries_pass_through() {
        let idx = wide_corpus();
        let mut dev = BossDevice::new(&idx, BossConfig::default());
        let q = QueryExpr::term("base");
        let a = dev.search_host_merged(&q, 10).unwrap();
        let b = dev.search_expr(&q, 10).unwrap();
        assert_eq!(a.hits, b.hits);
    }

    #[test]
    fn oversized_intersection_rejected() {
        let idx = wide_corpus();
        let mut dev = BossDevice::new(&idx, BossConfig::default());
        let q = QueryExpr::and((0..20).map(|w| QueryExpr::term(format!("w{w:02}"))));
        assert!(dev.search_host_merged(&q, 10).is_err());
    }

    #[test]
    fn sixteen_term_intersection_runs_in_hardware() {
        let idx = wide_corpus();
        let mut dev = BossDevice::new(&idx, BossConfig::default());
        // 16-way intersection (may be empty; must agree with reference).
        let q = QueryExpr::and((0..16).map(|w| QueryExpr::term(format!("w{w:02}"))));
        let got = dev.search_expr(&q, 10).unwrap();
        let expect = reference::evaluate(&idx, &q, 10).unwrap();
        let gd: Vec<SearchHit> = got.hits;
        assert_eq!(gd, expect);
    }
}

#[cfg(test)]
mod sched_tests {
    use super::*;
    use boss_index::IndexBuilder;

    fn corpus() -> InvertedIndex {
        let docs: Vec<String> = (0u32..800)
            .map(|i| {
                let mut t = String::from("huge"); // df = 800
                if i % 40 == 0 {
                    t.push_str(" tiny"); // df = 20
                }
                if i % 5 == 0 {
                    t.push_str(" mid");
                }
                t
            })
            .collect();
        IndexBuilder::new()
            .add_documents(docs.iter().map(String::as_str))
            .build()
            .unwrap()
    }

    #[test]
    fn sjf_never_worse_than_fifo_for_skewed_tail() {
        let idx = corpus();
        // A long job submitted last under FIFO pushes the makespan out on
        // a 2-core device; SJF runs the short jobs around it.
        let queries: Vec<QueryExpr> = vec![
            QueryExpr::term("tiny"),
            QueryExpr::term("tiny"),
            QueryExpr::term("tiny"),
            QueryExpr::term("huge"),
            QueryExpr::term("huge"),
        ];
        let mut dev = BossDevice::new(&idx, BossConfig::with_cores(2));
        let fifo = dev
            .run_batch_with_policy(&queries, 10, SchedPolicy::Fifo)
            .unwrap();
        let sjf = dev
            .run_batch_with_policy(&queries, 10, SchedPolicy::Sjf)
            .unwrap();
        assert!(sjf.makespan_cycles <= fifo.makespan_cycles);
        // Results identical and in submission order under both policies.
        for (a, b) in fifo.outcomes.iter().zip(&sjf.outcomes) {
            assert_eq!(a.hits, b.hits);
        }
    }

    #[test]
    fn outcomes_in_submission_order_under_sjf() {
        let idx = corpus();
        let queries = vec![QueryExpr::term("huge"), QueryExpr::term("tiny")];
        let mut dev = BossDevice::new(&idx, BossConfig::with_cores(1));
        let batch = dev
            .run_batch_with_policy(&queries, 5, SchedPolicy::Sjf)
            .unwrap();
        // First outcome corresponds to "huge" (df 800) even though SJF ran
        // "tiny" first.
        assert!(batch.outcomes[0].eval.docs_scored > batch.outcomes[1].eval.docs_scored);
    }
}
