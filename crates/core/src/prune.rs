//! Dynamic-pruning query plans over the union module's streams: the
//! device-side half of the pruning family (the portable half lives in
//! [`boss_index::prune`] and drives the CPU baselines and property
//! tests).
//!
//! Four plans share this module ([`QueryAlgorithm`]):
//!
//! * **WAND** — pivot selection over the ascending-docID frontier using
//!   list-level upper bounds only.
//! * **Block-Max WAND** — WAND plus a shallow block-max probe of the
//!   pivot set; whole windows whose summed block maxes cannot beat θ
//!   are skipped before any block is fetched or decoded.
//! * **MaxScore** — a fixed ascending-bound stream order split into
//!   non-essential/essential by prefix sums against θ; candidates come
//!   from essential streams only, and non-essential streams are probed
//!   in descending-bound order with early abandoning.
//! * **Block-Max MaxScore** — MaxScore with the essential bound refined
//!   by the block maxes of the streams actually positioned on the
//!   candidate.
//!
//! Safety contract (the repo's signature invariant): every plan returns
//! the *bit-identical* top-k of the exhaustive traversal. Upper bounds
//! are summed in `f64` and compared through [`cannot_beat`], whose
//! slack strictly exceeds the f32 summation drift of a ≤ `max_terms`
//! query, and offered scores are always recomputed canonically (sorted,
//! deduped term order, f32 accumulation) — partial sums only gate skip
//! and abandon decisions, never the ranking.
//!
//! Every access the plans do make is charged to the simulated SCM
//! exactly like the exhaustive path: metadata reads on block advance,
//! block data reads at decode entry, line-buffered norm loads at
//! scoring. Skipped work is attributed to the dedicated
//! `blocks_skipped_prune` / `docs_skipped_prune` counters
//! ([`SkipReason::Prune`]) so the exhaustive path's figures stay
//! untouched.

use crate::fetch::{ExecCtx, SkipReason};
use crate::topk::TopK;
use crate::union::{cannot_beat, drain_wand_tail, BulkScratch, UnionStream};
use boss_index::{DocId, Error, QueryAlgorithm, TermId};

/// Runs the pruned union + scoring + top-k stage over `streams` with
/// the chosen algorithm.
///
/// Single-stream queries route through the WAND-family loop whatever
/// the algorithm: with one stream MaxScore's split degenerates to the
/// same list-bound test, and the WAND loop is the one whose bulk tail
/// drain is counter-identical to its scalar form.
///
/// # Errors
///
/// Same surface as [`crate::union::union_topk`]: faulted reads or
/// corrupt blocks under [`crate::DegradePolicy::FailQuery`] surface as
/// typed errors; under `SkipBlock` the affected block is dropped and
/// the traversal continues.
pub(crate) fn pruned_union_topk(
    ctx: &mut ExecCtx<'_>,
    streams: Vec<UnionStream<'_>>,
    algorithm: QueryAlgorithm,
    topk: &mut TopK,
    bulk: &mut BulkScratch,
) -> Result<(), Error> {
    debug_assert!(algorithm.prunes(), "exhaustive plans use union_topk");
    let maxscore_family = matches!(
        algorithm,
        QueryAlgorithm::MaxScore | QueryAlgorithm::BlockMaxMaxScore
    );
    if maxscore_family && streams.len() > 1 {
        maxscore_union(ctx, streams, algorithm.is_block_max(), topk, bulk)?;
    } else {
        wand_union(ctx, streams, algorithm.is_block_max(), topk, bulk)?;
    }
    ctx.eval.topk_inserts = topk.inserts();
    Ok(())
}

/// WAND / Block-Max WAND over union streams.
///
/// Mirrors the round structure of the exhaustive union module — sort
/// the frontier, pick a pivot, align, gather, score — but the pivot
/// comes from the upper-bound prefix scan against θ, and (with
/// `block_check`) whole windows are skipped on block maxes before any
/// fetch. Once one live posting-list stream remains and the bulk path
/// is on, [`drain_wand_tail`] finishes it with the block-at-a-time
/// kernels, counter-identical to this scalar loop.
fn wand_union(
    ctx: &mut ExecCtx<'_>,
    mut streams: Vec<UnionStream<'_>>,
    block_check: bool,
    topk: &mut TopK,
    bulk: &mut BulkScratch,
) -> Result<(), Error> {
    let mut order: Vec<usize> = Vec::with_capacity(streams.len());
    let mut entries: Vec<(TermId, u32)> = Vec::with_capacity(8);
    loop {
        order.clear();
        order.extend((0..streams.len()).filter(|&i| !streams[i].exhausted()));
        if order.is_empty() {
            break;
        }
        if ctx.bulk && order.len() == 1 {
            if let UnionStream::List(c) = &mut streams[order[0]] {
                drain_wand_tail(ctx, c, topk, bulk, block_check, true)?;
                break;
            }
        }
        order.sort_by_key(|&i| streams[i].current_doc());
        ctx.eval.pivot_rounds += 1;
        let theta = topk.cutoff();

        // Pivot selection: walk the ascending-docID frontier summing
        // list bounds until the accumulated bound could beat θ.
        let mut acc = 0.0f64;
        let mut found = None;
        for (pos, &i) in order.iter().enumerate() {
            acc += f64::from(streams[i].max_score());
            if !cannot_beat(acc, theta) {
                found = Some(pos);
                break;
            }
        }
        let pivot_pos = match found {
            Some(p) => p,
            None => {
                // Even all streams together cannot beat θ: terminate.
                for &i in &order {
                    ctx.eval.docs_skipped_prune += streams[i].remaining();
                }
                break;
            }
        };
        let pivot = streams[order[pivot_pos]].current_doc();
        let mut pivot_end = pivot_pos;
        while pivot_end + 1 < order.len() && streams[order[pivot_end + 1]].current_doc() == pivot {
            pivot_end += 1;
        }

        if block_check {
            // Shallow block-max probe of the pivot set: metadata only,
            // no fetch, no decode.
            let mut ub = 0.0f64;
            let mut min_boundary = DocId::MAX;
            let mut all_have_blocks = true;
            for &i in &order[..=pivot_end] {
                match streams[i].shallow_block_max(pivot) {
                    Some((m, last)) => {
                        ub += f64::from(m);
                        min_boundary = min_boundary.min(last);
                    }
                    None => {
                        all_have_blocks = false;
                        break;
                    }
                }
            }
            if pivot_end + 1 < order.len() {
                let next_cur = streams[order[pivot_end + 1]].current_doc();
                min_boundary = min_boundary.min(next_cur.saturating_sub(1));
            }
            if all_have_blocks && cannot_beat(ub, theta) {
                let next = min_boundary.saturating_add(1).max(pivot.saturating_add(1));
                for &i in &order[..=pivot_end] {
                    streams[i].seek(ctx, next, SkipReason::Prune)?;
                }
                continue;
            }
        }

        // Alignment: pop below-pivot documents off the leading streams.
        let aligned = order[..=pivot_pos]
            .iter()
            .all(|&i| streams[i].current_doc() == pivot);
        if !aligned {
            for &i in &order[..pivot_pos] {
                if streams[i].current_doc() < pivot {
                    streams[i].seek(ctx, pivot, SkipReason::Prune)?;
                }
            }
            continue;
        }

        // Gather and score the pivot canonically.
        entries.clear();
        for &i in &order {
            if !streams[i].exhausted() && streams[i].current_doc() == pivot {
                streams[i].take_entries(ctx, &mut entries)?;
            }
        }
        if entries.is_empty() {
            continue;
        }
        entries.sort_unstable_by_key(|&(t, _)| t);
        entries.dedup_by_key(|&mut (t, _)| t);
        let norm = ctx.load_norm(pivot);
        let mut score = 0.0f32;
        for &(term, tf) in &entries {
            let idf = ctx.index.term_info(term).idf;
            score += ctx.index.bm25().term_score(idf, tf, norm);
        }
        ctx.scored += 1;
        ctx.eval.docs_scored += 1;
        topk.offer(pivot, score);
    }
    Ok(())
}

/// MaxScore / Block-Max MaxScore over union streams.
///
/// The stream order is fixed once, ascending by upper bound; `prefix`
/// sums stay valid for the whole query (an exhausted stream's bound is
/// a conservative over-estimate of its zero remaining contribution).
/// Candidates come from essential streams; non-essential streams are
/// probed descending with early abandoning against the f64 partial.
/// Never hands off to the bulk tail drain: the prefix-sum bound differs
/// from the drain's list-bound check, and the bulk path must stay
/// observable-identical on or off.
fn maxscore_union(
    ctx: &mut ExecCtx<'_>,
    mut streams: Vec<UnionStream<'_>>,
    block_max: bool,
    topk: &mut TopK,
    _bulk: &mut BulkScratch,
) -> Result<(), Error> {
    let n = streams.len();
    let mut ord: Vec<usize> = (0..n).collect();
    ord.sort_by(|&a, &b| {
        streams[a]
            .max_score()
            .total_cmp(&streams[b].max_score())
            .then(a.cmp(&b))
    });
    let mut prefix = vec![0f64; n + 1];
    for (j, &i) in ord.iter().enumerate() {
        prefix[j + 1] = prefix[j] + f64::from(streams[i].max_score());
    }
    let mut entries: Vec<(TermId, u32)> = Vec::with_capacity(8);
    loop {
        let theta = topk.cutoff();
        let mut ness = 0usize;
        while ness < n && cannot_beat(prefix[ness + 1], theta) {
            ness += 1;
        }
        if ness == n {
            // No stream can contribute a top-k change any more.
            for s in &streams {
                ctx.eval.docs_skipped_prune += s.remaining();
            }
            break;
        }
        // Next candidate: minimum current docID over live essential
        // streams.
        let mut cand = None;
        for &i in &ord[ness..] {
            if !streams[i].exhausted() {
                let d = streams[i].current_doc();
                cand = Some(cand.map_or(d, |x: DocId| x.min(d)));
            }
        }
        let Some(d) = cand else {
            // Essential streams exhausted; the non-essential prefix
            // cannot beat θ alone.
            for s in &streams {
                ctx.eval.docs_skipped_prune += s.remaining();
            }
            break;
        };
        ctx.eval.pivot_rounds += 1;

        if block_max {
            // Refine the essential bound with the block maxes of the
            // streams actually positioned on `d` (shallow: metadata
            // only).
            let mut ub = prefix[ness];
            let mut min_boundary = DocId::MAX;
            let mut next_cur = DocId::MAX;
            let mut refinable = true;
            for &i in &ord[ness..] {
                if streams[i].exhausted() {
                    continue;
                }
                if streams[i].current_doc() == d {
                    match streams[i].shallow_block_max(d) {
                        Some((u, last)) => {
                            ub += f64::from(u);
                            min_boundary = min_boundary.min(last);
                        }
                        None => {
                            refinable = false;
                            break;
                        }
                    }
                } else {
                    next_cur = next_cur.min(streams[i].current_doc());
                }
            }
            if refinable && cannot_beat(ub, theta) {
                // Skip the window the bound covers: up to the earliest
                // block boundary, capped by the next essential
                // candidate, always making progress past `d`.
                let next = min_boundary
                    .saturating_add(1)
                    .min(next_cur)
                    .max(d.saturating_add(1));
                for &i in &ord[ness..] {
                    if !streams[i].exhausted() && streams[i].current_doc() == d {
                        streams[i].seek(ctx, next, SkipReason::Prune)?;
                    }
                }
                continue;
            }
        }

        // Gather essential contributions at `d` (decoding only now).
        // The norm is loaded up front because the partial-score probe
        // needs it; the line buffer makes the later canonical use free.
        let norm = ctx.load_norm(d);
        entries.clear();
        let mut partial = 0f64;
        for &i in &ord[ness..] {
            if !streams[i].exhausted() && streams[i].current_doc() == d {
                let before = entries.len();
                streams[i].take_entries(ctx, &mut entries)?;
                for &(term, tf) in &entries[before..] {
                    let idf = ctx.index.term_info(term).idf;
                    partial += f64::from(ctx.index.bm25().term_score(idf, tf, norm));
                }
            }
        }
        if entries.is_empty() {
            // Every stream at `d` fault-skipped its block: the
            // candidate is gone and all of them moved forward.
            continue;
        }
        // Probe non-essential streams in descending-bound order, early
        // abandoning when the partial plus the unprobed tail cannot
        // beat θ. (The f64 partial only gates abandonment; the offered
        // score is recomputed canonically below.)
        let mut abandoned = false;
        for j in (0..ness).rev() {
            if cannot_beat(partial + prefix[j + 1], theta) {
                abandoned = true;
                break;
            }
            let i = ord[j];
            streams[i].seek(ctx, d, SkipReason::Prune)?;
            if !streams[i].exhausted() && streams[i].current_doc() == d {
                let before = entries.len();
                streams[i].take_entries(ctx, &mut entries)?;
                for &(term, tf) in &entries[before..] {
                    let idf = ctx.index.term_info(term).idf;
                    partial += f64::from(ctx.index.bm25().term_score(idf, tf, norm));
                }
            }
        }
        if abandoned {
            ctx.eval.docs_skipped_prune += 1;
        } else {
            entries.sort_unstable_by_key(|&(t, _)| t);
            entries.dedup_by_key(|&mut (t, _)| t);
            let mut score = 0.0f32;
            for &(term, tf) in &entries {
                let idf = ctx.index.term_info(term).idf;
                score += ctx.index.bm25().term_score(idf, tf, norm);
            }
            ctx.scored += 1;
            ctx.eval.docs_scored += 1;
            topk.offer(d, score);
        }
    }
    Ok(())
}
