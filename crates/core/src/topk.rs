//! The hardware top-k module: a shift-register priority queue with `k`
//! entries of (docID, query-score), sorted by descending score
//! (Section IV-C "Top-k Module").
//!
//! Functionally a bounded sorted list with the workspace-wide ranking
//! order (score descending, docID ascending on ties); the hardware's
//! broadcast-insert is one cycle per accepted entry, which the timing model
//! charges via [`TopK::inserts`].

use boss_index::{DocId, SearchHit};

/// A bounded top-k collector.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    entries: Vec<SearchHit>,
    inserts: u64,
    offers: u64,
    /// Externally seeded score floor (sharded scatter-gather threshold
    /// sharing): the cutoff never reports below this, so pruning can
    /// engage before the local queue fills. `-inf` when unseeded.
    floor: f32,
}

impl TopK {
    /// Creates an empty queue with capacity `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-k capacity must be positive");
        TopK {
            k,
            entries: Vec::with_capacity(k.min(4096)),
            inserts: 0,
            offers: 0,
            floor: f32::NEG_INFINITY,
        }
    }

    /// Capacity.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Empties the queue and resets both counters for a new query of
    /// capacity `k`, keeping the entry allocation (per-worker scratch
    /// reuse across a batch).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn reset(&mut self, k: usize) {
        assert!(k > 0, "top-k capacity must be positive");
        self.k = k;
        self.entries.clear();
        self.inserts = 0;
        self.offers = 0;
        self.floor = f32::NEG_INFINITY;
    }

    /// Seeds the cutoff with an externally known score floor (the running
    /// k-th score of a scatter-gather merge across earlier shards, whose
    /// documents precede this shard's in global docID order). Documents
    /// provably below the floor cannot enter the *merged* top-k, so
    /// pruning may engage against it before this queue fills. Safe only
    /// under that merge contract; plain single-index queries leave it at
    /// `-inf`.
    pub fn seed_cutoff(&mut self, floor: f32) {
        self.floor = floor;
    }

    /// The current cutoff θ: the score of the lowest-ranked entry once the
    /// queue is full, `f32::NEG_INFINITY` before that.
    ///
    /// Early termination may skip any document whose score upper bound does
    /// not *exceed* θ — a document scoring exactly θ would lose the tie to
    /// the incumbents (they have smaller docIDs, having arrived earlier in
    /// docID order).
    pub fn cutoff(&self) -> f32 {
        if self.entries.len() < self.k {
            self.floor
        } else {
            self.entries
                .last()
                .expect("queue is full")
                .score
                .max(self.floor)
        }
    }

    /// Offers a scored document. Returns `true` if it entered the queue.
    ///
    /// Documents must be offered in ascending docID order for tie-breaking
    /// to match the reference ranking (the pipeline produces them that
    /// way).
    pub fn offer(&mut self, doc: DocId, score: f32) -> bool {
        self.offers += 1;
        if self.entries.len() == self.k && score <= self.cutoff() {
            return false;
        }
        let hit = SearchHit { doc, score };
        // Insertion point: after all entries that rank at-or-above `hit`.
        // Offers arrive in ascending docID order, so equal scores keep the
        // earlier (smaller) docID first — the reference order.
        let pos = self.entries.partition_point(|e| e.score >= score);
        self.entries.insert(pos, hit);
        if self.entries.len() > self.k {
            self.entries.pop();
        }
        self.inserts += 1;
        true
    }

    /// Number of accepted insertions (each costs one broadcast cycle).
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Number of offered documents (accepted or not).
    pub fn offers(&self) -> u64 {
        self.offers
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no documents were accepted yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Offers a whole scored block, exactly equivalent to calling
    /// [`TopK::offer`] once per posting in order (same entries, same
    /// `inserts`/`offers` counters), but without touching the queue for
    /// runs of losers: once the queue is full, a posting with
    /// `score <= θ` can only be rejected, and rejections leave θ
    /// unchanged, so a cheap compare sweep stands in for those calls.
    ///
    /// Like `offer`, postings must arrive in ascending docID order.
    ///
    /// # Panics
    ///
    /// Panics if `docs` and `scores` differ in length.
    pub fn sift_block(&mut self, docs: &[DocId], scores: &[f32]) {
        assert_eq!(docs.len(), scores.len(), "docID / score streams must align");
        let n = docs.len();
        let mut i = 0;
        while i < n {
            if self.entries.len() == self.k {
                let theta = self.cutoff();
                let start = i;
                while i < n && scores[i] <= theta {
                    i += 1;
                }
                self.offers += (i - start) as u64;
                if i == n {
                    break;
                }
            }
            self.offer(docs[i], scores[i]);
            i += 1;
        }
    }

    /// The current hits in ranking order, without consuming the queue
    /// (used by the scratch-reuse path, which copies results out and
    /// recycles the allocation).
    pub fn hits(&self) -> &[SearchHit] {
        &self.entries
    }

    /// Consumes the queue, returning hits in ranking order.
    pub fn into_hits(self) -> Vec<SearchHit> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k() {
        let mut q = TopK::new(3);
        for (doc, score) in [(0, 1.0f32), (1, 5.0), (2, 3.0), (3, 4.0), (4, 0.5)] {
            q.offer(doc, score);
        }
        let hits = q.into_hits();
        let docs: Vec<_> = hits.iter().map(|h| h.doc).collect();
        assert_eq!(docs, vec![1, 3, 2]);
    }

    #[test]
    fn cutoff_tracks_kth_score() {
        let mut q = TopK::new(2);
        assert_eq!(q.cutoff(), f32::NEG_INFINITY);
        q.offer(0, 2.0);
        assert_eq!(q.cutoff(), f32::NEG_INFINITY, "not full yet");
        q.offer(1, 5.0);
        assert_eq!(q.cutoff(), 2.0);
        q.offer(2, 3.0);
        assert_eq!(q.cutoff(), 3.0);
    }

    #[test]
    fn tie_prefers_earlier_doc() {
        let mut q = TopK::new(2);
        q.offer(10, 1.0);
        q.offer(20, 1.0);
        assert!(!q.offer(30, 1.0), "tie with cutoff is rejected");
        let hits = q.into_hits();
        assert_eq!(hits[0].doc, 10);
        assert_eq!(hits[1].doc, 20);
    }

    #[test]
    fn matches_reference_ordering_on_random_input() {
        // Pseudo-random but doc-ordered offers, as the pipeline produces.
        let scores: Vec<f32> = (0..500u32)
            .map(|i| ((i.wrapping_mul(2654435761) >> 7) % 1000) as f32 / 10.0)
            .collect();
        let mut q = TopK::new(50);
        for (doc, &s) in scores.iter().enumerate() {
            q.offer(doc as u32, s);
        }
        let got = q.into_hits();
        let mut expect: Vec<SearchHit> = scores
            .iter()
            .enumerate()
            .map(|(d, &s)| SearchHit {
                doc: d as u32,
                score: s,
            })
            .collect();
        expect.sort_by(SearchHit::ranking_cmp);
        expect.truncate(50);
        assert_eq!(got, expect);
    }

    #[test]
    fn insert_and_offer_counters() {
        let mut q = TopK::new(1);
        q.offer(0, 1.0);
        q.offer(1, 0.5);
        q.offer(2, 2.0);
        assert_eq!(q.offers(), 3);
        assert_eq!(q.inserts(), 2);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn sift_block_equals_sequential_offers() {
        let scores: Vec<f32> = (0..640u32)
            .map(|i| ((i.wrapping_mul(2654435761) >> 9) % 997) as f32 / 31.0)
            .collect();
        let docs: Vec<u32> = (0..640).collect();
        for k in [1usize, 7, 50, 640, 1000] {
            let mut seq = TopK::new(k);
            for (&d, &s) in docs.iter().zip(&scores) {
                seq.offer(d, s);
            }
            let mut bulk = TopK::new(k);
            for chunk in 0..5 {
                let r = chunk * 128..(chunk + 1) * 128;
                bulk.sift_block(&docs[r.clone()], &scores[r]);
            }
            assert_eq!(bulk.hits(), seq.hits(), "k={k}");
            assert_eq!(bulk.offers(), seq.offers(), "k={k}");
            assert_eq!(bulk.inserts(), seq.inserts(), "k={k}");
        }
    }

    #[test]
    fn reset_keeps_allocation_and_clears_state() {
        let mut q = TopK::new(3);
        q.offer(0, 1.0);
        q.offer(1, 2.0);
        q.reset(2);
        assert_eq!(q.k(), 2);
        assert!(q.is_empty());
        assert_eq!(q.offers(), 0);
        assert_eq!(q.inserts(), 0);
        assert_eq!(q.cutoff(), f32::NEG_INFINITY);
        q.offer(5, 4.0);
        assert_eq!(q.hits(), &[boss_index::SearchHit { doc: 5, score: 4.0 }]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_panics() {
        let _ = TopK::new(0);
    }
}
