//! Per-query statistics: the numbers behind Figures 11–15.

use boss_index::SearchHit;
use boss_scm::MemStats;
use serde::{Deserialize, Serialize};

/// Decoded-block cache counters, re-exported for stats consumers.
///
/// Deliberately **not** part of [`EvalCounts`] or [`QueryOutcome`]: those
/// are asserted bit-identical across thread counts and cache settings,
/// while cache hit patterns legitimately depend on batch chunking (each
/// executor worker forks its own cache). Callers read these via
/// `BossDevice::block_cache_stats` and report them out of band.
pub use boss_index::BlockCacheStats;

/// Document/block evaluation counters (Figure 14's "evaluated documents"
/// and the skip statistics behind it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalCounts {
    /// Documents actually scored.
    pub docs_scored: u64,
    /// Documents skipped by document-level WAND in the union module.
    pub docs_skipped_wand: u64,
    /// Documents inside blocks that were never fetched (block-level skips
    /// from the block fetch module, both overlap-check and score
    /// estimation).
    pub docs_skipped_block: u64,
    /// Blocks fetched and decompressed.
    pub blocks_fetched: u64,
    /// Blocks skipped via metadata.
    pub blocks_skipped: u64,
    /// Block metadata records read.
    pub metas_read: u64,
    /// Set-operation comparisons performed.
    pub comparisons: u64,
    /// Top-k insertions performed.
    pub topk_inserts: u64,
    /// WAND pivot-selection rounds.
    pub pivot_rounds: u64,
    /// Blocks dropped by the [`crate::DegradePolicy::SkipBlock`] policy
    /// because their read faulted or their bytes failed to decode. Always
    /// zero without an active fault plan (or with uncorrupted data).
    pub blocks_skipped_fault: u64,
    /// Blocks skipped undecoded by a dynamic-pruning query plan
    /// (`QueryAlgorithm` other than `Exhaustive`). Also counted in
    /// `blocks_skipped`; this field attributes them to the pruning
    /// algorithm. Always zero on the exhaustive path.
    pub blocks_skipped_prune: u64,
    /// Documents skipped by a dynamic-pruning query plan — inside
    /// prune-skipped blocks, popped from decoded blocks, or abandoned
    /// mid-probe. Always zero on the exhaustive path.
    pub docs_skipped_prune: u64,
}

impl EvalCounts {
    /// Documents whose evaluation was attempted or skipped — the
    /// denominator of Figure 14's normalization.
    pub fn docs_total(&self) -> u64 {
        self.docs_scored
            + self.docs_skipped_wand
            + self.docs_skipped_block
            + self.docs_skipped_prune
    }

    /// Merges counters (across queries or cores).
    pub fn merge(&mut self, o: &EvalCounts) {
        self.docs_scored += o.docs_scored;
        self.docs_skipped_wand += o.docs_skipped_wand;
        self.docs_skipped_block += o.docs_skipped_block;
        self.blocks_fetched += o.blocks_fetched;
        self.blocks_skipped += o.blocks_skipped;
        self.metas_read += o.metas_read;
        self.comparisons += o.comparisons;
        self.topk_inserts += o.topk_inserts;
        self.pivot_rounds += o.pivot_rounds;
        self.blocks_skipped_fault += o.blocks_skipped_fault;
        self.blocks_skipped_prune += o.blocks_skipped_prune;
        self.docs_skipped_prune += o.docs_skipped_prune;
    }
}

/// Everything one query execution produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// The top-k hits, in ranking order.
    pub hits: Vec<SearchHit>,
    /// Core cycles the query occupied its core.
    pub cycles: u64,
    /// Memory traffic it generated.
    pub mem: MemStats,
    /// Evaluation counters.
    pub eval: EvalCounts,
}

impl QueryOutcome {
    /// Query latency in seconds at `clock_ghz`.
    pub fn seconds(&self, clock_ghz: f64) -> f64 {
        self.cycles as f64 / (clock_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_merge() {
        let mut a = EvalCounts {
            docs_scored: 10,
            docs_skipped_wand: 5,
            docs_skipped_block: 85,
            ..Default::default()
        };
        assert_eq!(a.docs_total(), 100);
        let b = EvalCounts {
            docs_scored: 1,
            blocks_fetched: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.docs_scored, 11);
        assert_eq!(a.blocks_fetched, 2);
        assert_eq!(a.docs_total(), 101);
    }

    #[test]
    fn outcome_seconds() {
        let o = QueryOutcome {
            hits: vec![],
            cycles: 2_000_000_000,
            mem: MemStats::new(),
            eval: EvalCounts::default(),
        };
        assert!((o.seconds(1.0) - 2.0).abs() < 1e-12);
        assert!((o.seconds(2.0) - 1.0).abs() < 1e-12);
    }
}
