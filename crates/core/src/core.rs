//! One BOSS core: executes a normalized [`QueryPlan`] through the
//! fetch → decompress → set-op → score → top-k pipeline and accounts the
//! cycles each module consumed.
//!
//! Timing uses the bottleneck-stage model described in `DESIGN.md`: the
//! pipeline is fully overlapped (Section IV-C), so a query's latency is
//! the maximum over the module-level cycle totals — memory (through the
//! shared channel model), decompression (per module, since a list is bound
//! to one decompressor), set operations, scoring, and top-k — plus fixed
//! per-query overhead.

use crate::config::{BossConfig, EtMode};
use crate::fetch::{ExecCtx, ListCursor};
use crate::intersect::intersect_group;
use crate::plan::QueryPlan;
use crate::prune::pruned_union_topk;
use crate::stats::QueryOutcome;
use crate::topk::TopK;
use crate::union::{union_topk, BulkScratch, UnionStream};
use boss_index::layout::IndexImage;
use boss_index::{BlockCache, InvertedIndex, QueryAlgorithm};
use boss_scm::AccessCategory;

/// Reusable per-core (or per-worker) query buffers: the top-k queue and
/// the bulk scoring scratch. Recycling these across the queries of a
/// batch removes the per-query heap allocations from the hot path;
/// results are unaffected ([`TopK::reset`] restores a pristine queue).
#[derive(Debug, Default)]
pub struct CoreScratch {
    topk: Option<TopK>,
    bulk: BulkScratch,
}

impl CoreScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        CoreScratch::default()
    }
}

/// One BOSS core (Figure 4(b)): block fetch, four decompression modules,
/// intersection and union modules, four scoring modules and a top-k queue.
#[derive(Debug)]
pub struct BossCore {
    config: BossConfig,
    /// Cycle at which this core becomes free (device scheduling).
    pub(crate) busy_until: u64,
}

impl BossCore {
    /// Creates an idle core.
    pub fn new(config: BossConfig) -> Self {
        BossCore {
            config,
            busy_until: 0,
        }
    }

    /// The core's configuration.
    pub fn config(&self) -> &BossConfig {
        &self.config
    }

    /// Overrides the early-termination mode (the device uses this to run
    /// host-merged subqueries without pruning).
    pub(crate) fn set_et_mode(&mut self, et: EtMode) {
        self.config.et_mode = et;
    }

    /// Overrides the dynamic-pruning query algorithm (the device uses
    /// this to force host-merged subqueries onto the exhaustive plan).
    pub(crate) fn set_algorithm(&mut self, algorithm: QueryAlgorithm) {
        self.config.algorithm = algorithm;
    }

    /// Executes one planned query against `index` laid out at `image`,
    /// returning hits, cycles and traffic.
    ///
    /// # Errors
    ///
    /// Under the default [`crate::DegradePolicy::FailQuery`] policy a
    /// faulted simulated read ([`boss_index::Error::ReadFault`]) or a
    /// corrupt posting block (any other decode error) fails the query
    /// with a typed error. Under `SkipBlock` the affected blocks are
    /// dropped, counted in `eval.blocks_skipped_fault`, and the query
    /// completes on the surviving postings. Without a fault plan and with
    /// well-formed index data, this never errors.
    pub fn execute(
        &self,
        index: &InvertedIndex,
        image: &IndexImage,
        plan: &QueryPlan,
        k: usize,
    ) -> Result<QueryOutcome, boss_index::Error> {
        self.execute_with_cache(index, image, plan, k, None)
    }

    /// [`BossCore::execute`] with an optional decoded-block cache. The
    /// cache is strictly a host-side accelerant: hits and misses charge
    /// identical simulated cycles and traffic, so the outcome is
    /// bit-identical with any cache (or none).
    pub fn execute_with_cache(
        &self,
        index: &InvertedIndex,
        image: &IndexImage,
        plan: &QueryPlan,
        k: usize,
        cache: Option<&BlockCache>,
    ) -> Result<QueryOutcome, boss_index::Error> {
        self.execute_with_scratch(index, image, plan, k, cache, &mut CoreScratch::new())
    }

    /// [`BossCore::execute_with_cache`] with caller-owned reusable query
    /// buffers, so a batch driver allocates the top-k queue and scoring
    /// scratch once per worker instead of once per query. Results are
    /// identical to the allocating paths.
    pub fn execute_with_scratch(
        &self,
        index: &InvertedIndex,
        image: &IndexImage,
        plan: &QueryPlan,
        k: usize,
        cache: Option<&BlockCache>,
        scratch: &mut CoreScratch,
    ) -> Result<QueryOutcome, boss_index::Error> {
        self.execute_with_scratch_seeded(index, image, plan, k, cache, scratch, f32::NEG_INFINITY)
    }

    /// [`BossCore::execute_with_scratch`] with an externally seeded
    /// top-k score floor ([`TopK::seed_cutoff`]). A sharded coordinator
    /// passes the running k-th score of its scatter-gather merge so a
    /// later shard's pruning plan can skip against the global threshold
    /// before its local queue fills; `f32::NEG_INFINITY` (what the plain
    /// entry points pass) restores unseeded behavior exactly.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_with_scratch_seeded(
        &self,
        index: &InvertedIndex,
        image: &IndexImage,
        plan: &QueryPlan,
        k: usize,
        cache: Option<&BlockCache>,
        scratch: &mut CoreScratch,
        floor: f32,
    ) -> Result<QueryOutcome, boss_index::Error> {
        let mut ctx = ExecCtx::with_cache(index, image, &self.config, cache);
        let fill = self.config.timing.decomp_fill;

        // Intersections first (Section IV-B "Mixed Query"), then one
        // union+scoring pass over all group streams. Early termination in
        // the union stage applies to union-bearing queries; a pure
        // intersection scores all of its (already small) matches, as the
        // paper's ET only targets OR processing.
        let et = if plan.is_pure_intersection() {
            EtMode::Exhaustive
        } else {
            self.config.et_mode
        };

        let mut streams: Vec<UnionStream<'_>> = Vec::with_capacity(plan.groups().len());
        for (gi, group) in plan.groups().iter().enumerate() {
            if group.len() == 1 {
                let unit = gi % ctx.dec_cycles.len();
                streams.push(UnionStream::List(ListCursor::new(
                    &mut ctx, group[0], unit, fill,
                )));
            } else {
                let m = intersect_group(&mut ctx, group, fill)?;
                streams.push(UnionStream::Mat(m));
            }
        }

        let CoreScratch { topk, bulk } = scratch;
        let topk = topk.get_or_insert_with(|| TopK::new(k));
        topk.reset(k);
        topk.seed_cutoff(floor);
        // A pruning algorithm replaces the union traversal wholesale;
        // pure intersections keep the existing path (their matches are
        // already small), mirroring the ET gate above.
        if self.config.algorithm.prunes() && !plan.is_pure_intersection() {
            pruned_union_topk(&mut ctx, streams, self.config.algorithm, topk, bulk)?;
        } else {
            union_topk(&mut ctx, streams, et, topk, bulk)?;
        }

        // The top-k list crosses the shared interconnect: 8 B per entry
        // (docID + score), written once at the end of the query.
        let result_bytes = (topk.len() as u64 * 8).max(8);
        ctx.write(
            image.end_addr() + (4 << 20),
            result_bytes,
            AccessCategory::StResult,
        );

        let cycles = self.pipeline_cycles(&ctx, plan);
        Ok(QueryOutcome {
            hits: topk.hits().to_vec(),
            cycles,
            mem: ctx.mem.take_stats(),
            eval: ctx.eval,
        })
    }

    /// Query latency under the configured fidelity.
    fn pipeline_cycles(&self, ctx: &ExecCtx<'_>, plan: &QueryPlan) -> u64 {
        let t = &self.config.timing;
        let t_mem = ctx.mem.stats().last_done_cycle;
        // Intra-query scoring parallelism is limited to one scoring module
        // per query term (the Figure 13 discussion).
        let eff_scorers = (self.config.scorers_per_core as usize)
            .min(plan.n_distinct_terms())
            .max(1) as u64;
        match t.fidelity {
            crate::pipeline::TimingFidelity::Roofline => {
                let t_dec = ctx.dec_cycles.iter().copied().max().unwrap_or(0);
                let t_setop = (ctx.eval.comparisons as f64 * t.cycles_per_comparison
                    + ctx.eval.pivot_rounds as f64 * t.cycles_per_pivot_round)
                    as u64;
                let t_score = (ctx.scored as f64 * t.cycles_per_score / eff_scorers as f64) as u64
                    + t.scoring_fill;
                let t_topk = (ctx.eval.topk_inserts as f64 * t.cycles_per_topk_insert) as u64;
                t_mem.max(t_dec).max(t_setop).max(t_score).max(t_topk) + t.query_overhead
            }
            crate::pipeline::TimingFidelity::Pipelined => {
                let counts = crate::pipeline::ReplayCounts {
                    scored: ctx.scored,
                    comparisons: ctx.eval.comparisons,
                    pivot_rounds: ctx.eval.pivot_rounds,
                    topk_inserts: ctx.eval.topk_inserts,
                    scorers: eff_scorers,
                };
                let replayed = crate::pipeline::replay(
                    &ctx.trace,
                    &counts,
                    self.config.decompressors_per_core as usize,
                    t.cycles_per_comparison,
                    t.cycles_per_score,
                    t.cycles_per_topk_insert,
                    t.cycles_per_pivot_round,
                );
                // Norm loads and result writes are not in the block trace;
                // the memory completion time covers them.
                replayed.max(t_mem) + t.scoring_fill + t.query_overhead
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boss_index::{reference, IndexBuilder, QueryExpr};

    fn corpus() -> InvertedIndex {
        let docs: Vec<String> = (0u32..1000)
            .map(|i| {
                let mut t = String::from("common");
                let h = i.wrapping_mul(2246822519);
                if h % 2 == 0 {
                    t.push_str(" aa");
                }
                if h % 3 == 0 {
                    t.push_str(" bb bb");
                }
                if h % 5 == 0 {
                    t.push_str(" cc");
                }
                if h % 13 == 0 {
                    t.push_str(" dd dd dd");
                }
                t
            })
            .collect();
        IndexBuilder::new()
            .add_documents(docs.iter().map(String::as_str))
            .build()
            .unwrap()
    }

    fn check(expr: &QueryExpr, k: usize, et: EtMode) {
        let idx = corpus();
        let image = IndexImage::new(&idx);
        let cfg = BossConfig::default().with_et(et).with_k(k);
        let core = BossCore::new(cfg.clone());
        let plan = QueryPlan::from_expr(&idx, expr, &cfg).unwrap();
        let got = core.execute(&idx, &image, &plan, k).unwrap();
        let expect = reference::evaluate(&idx, expr, k).unwrap();
        assert_eq!(got.hits, expect, "{expr} k={k} {et:?}");
        assert!(got.cycles > 0);
        assert!(got.mem.total_bytes() > 0);
    }

    #[test]
    fn q1_term() {
        for et in [EtMode::Exhaustive, EtMode::BlockOnly, EtMode::Full] {
            check(&QueryExpr::term("bb"), 10, et);
        }
    }

    #[test]
    fn q2_and() {
        let q = QueryExpr::and([QueryExpr::term("aa"), QueryExpr::term("bb")]);
        for et in [EtMode::Exhaustive, EtMode::Full] {
            check(&q, 20, et);
        }
    }

    #[test]
    fn q3_or() {
        let q = QueryExpr::or([QueryExpr::term("aa"), QueryExpr::term("dd")]);
        for et in [EtMode::Exhaustive, EtMode::BlockOnly, EtMode::Full] {
            check(&q, 15, et);
        }
    }

    #[test]
    fn q4_four_way_and() {
        let q = QueryExpr::and([
            QueryExpr::term("aa"),
            QueryExpr::term("bb"),
            QueryExpr::term("cc"),
            QueryExpr::term("common"),
        ]);
        check(&q, 50, EtMode::Full);
    }

    #[test]
    fn q5_four_way_or() {
        let q = QueryExpr::or([
            QueryExpr::term("aa"),
            QueryExpr::term("bb"),
            QueryExpr::term("cc"),
            QueryExpr::term("dd"),
        ]);
        for et in [EtMode::Exhaustive, EtMode::BlockOnly, EtMode::Full] {
            check(&q, 10, et);
        }
    }

    #[test]
    fn q6_mixed() {
        let q = QueryExpr::and([
            QueryExpr::term("aa"),
            QueryExpr::or([
                QueryExpr::term("bb"),
                QueryExpr::term("cc"),
                QueryExpr::term("dd"),
            ]),
        ]);
        for et in [EtMode::Exhaustive, EtMode::Full] {
            check(&q, 25, et);
        }
    }

    #[test]
    fn et_reduces_cycles_and_traffic_for_unions() {
        let idx = corpus();
        let image = IndexImage::new(&idx);
        let q = QueryExpr::or([
            QueryExpr::term("aa"),
            QueryExpr::term("bb"),
            QueryExpr::term("cc"),
            QueryExpr::term("dd"),
        ]);
        let run = |et: EtMode| {
            let cfg = BossConfig::default().with_et(et).with_k(10);
            let core = BossCore::new(cfg.clone());
            let plan = QueryPlan::from_expr(&idx, &q, &cfg).unwrap();
            core.execute(&idx, &image, &plan, 10).unwrap()
        };
        let ex = run(EtMode::Exhaustive);
        let full = run(EtMode::Full);
        assert!(full.eval.docs_scored < ex.eval.docs_scored);
        assert!(full.cycles <= ex.cycles);
        assert!(full.mem.total_bytes() <= ex.mem.total_bytes());
    }

    #[test]
    fn bulk_score_changes_nothing_observable() {
        // Whole-query invariance: cycles, traffic, counters, and hits are
        // bit-identical with the bulk hot loop on or off, and reusing one
        // CoreScratch across queries changes nothing either.
        let idx = corpus();
        let image = IndexImage::new(&idx);
        let queries = [
            QueryExpr::term("bb"),
            QueryExpr::or([QueryExpr::term("aa"), QueryExpr::term("dd")]),
            QueryExpr::and([QueryExpr::term("aa"), QueryExpr::term("bb")]),
            QueryExpr::and([
                QueryExpr::term("cc"),
                QueryExpr::or([QueryExpr::term("bb"), QueryExpr::term("dd")]),
            ]),
        ];
        for et in [EtMode::Exhaustive, EtMode::BlockOnly, EtMode::Full] {
            let mut scratch = CoreScratch::new();
            for q in &queries {
                for k in [5usize, 300] {
                    let run_with = |bulk_on: bool, scratch: &mut CoreScratch| {
                        let cfg = BossConfig::default()
                            .with_et(et)
                            .with_k(k)
                            .with_bulk_score(bulk_on);
                        let core = BossCore::new(cfg.clone());
                        let plan = QueryPlan::from_expr(&idx, q, &cfg).unwrap();
                        core.execute_with_scratch(&idx, &image, &plan, k, None, scratch)
                            .unwrap()
                    };
                    let base = run_with(false, &mut CoreScratch::new());
                    let bulk = run_with(true, &mut scratch);
                    let label = format!("{q} k={k} {et:?}");
                    assert_eq!(base.hits, bulk.hits, "hits {label}");
                    assert_eq!(base.eval, bulk.eval, "eval {label}");
                    assert_eq!(base.mem, bulk.mem, "mem {label}");
                    assert_eq!(base.cycles, bulk.cycles, "cycles {label}");
                }
            }
        }
    }

    #[test]
    fn every_algorithm_matches_reference_on_every_query_shape() {
        // The signature invariant, at the core level: each pruning plan
        // returns the exhaustive oracle's top-k bit for bit, across
        // query shapes (term, union, intersection, mixed) and k.
        let idx = corpus();
        let image = IndexImage::new(&idx);
        let queries = [
            QueryExpr::term("bb"),
            QueryExpr::or([QueryExpr::term("aa"), QueryExpr::term("dd")]),
            QueryExpr::or([
                QueryExpr::term("aa"),
                QueryExpr::term("bb"),
                QueryExpr::term("cc"),
                QueryExpr::term("dd"),
            ]),
            QueryExpr::and([QueryExpr::term("aa"), QueryExpr::term("bb")]),
            QueryExpr::and([
                QueryExpr::term("aa"),
                QueryExpr::or([
                    QueryExpr::term("bb"),
                    QueryExpr::term("cc"),
                    QueryExpr::term("dd"),
                ]),
            ]),
        ];
        for q in &queries {
            for k in [1usize, 10, 300] {
                let expect = reference::evaluate(&idx, q, k).unwrap();
                for algo in boss_index::ALL_ALGORITHMS {
                    let cfg = BossConfig::default().with_k(k).with_algorithm(algo);
                    let core = BossCore::new(cfg.clone());
                    let plan = QueryPlan::from_expr(&idx, q, &cfg).unwrap();
                    let got = core.execute(&idx, &image, &plan, k).unwrap();
                    assert_eq!(got.hits, expect, "{q} k={k} {algo}");
                }
            }
        }
    }

    #[test]
    fn pruned_plans_skip_work_and_attribute_it() {
        // A pruning plan on a small-k union scores fewer documents than
        // the exhaustive traversal and books every saving under the
        // dedicated prune counters; the exhaustive plan keeps those
        // counters at zero in every ET mode (the Figure 14/15
        // invariance).
        let idx = corpus();
        let image = IndexImage::new(&idx);
        let q = QueryExpr::or([
            QueryExpr::term("aa"),
            QueryExpr::term("bb"),
            QueryExpr::term("cc"),
            QueryExpr::term("dd"),
        ]);
        let run = |algo: boss_index::QueryAlgorithm, et: EtMode| {
            let cfg = BossConfig::default()
                .with_k(10)
                .with_et(et)
                .with_algorithm(algo);
            let core = BossCore::new(cfg.clone());
            let plan = QueryPlan::from_expr(&idx, &q, &cfg).unwrap();
            core.execute(&idx, &image, &plan, 10).unwrap()
        };
        let ex = run(QueryAlgorithm::Exhaustive, EtMode::Exhaustive);
        assert_eq!(ex.eval.docs_skipped_prune, 0);
        assert_eq!(ex.eval.blocks_skipped_prune, 0);
        for et in [EtMode::Exhaustive, EtMode::BlockOnly, EtMode::Full] {
            let o = run(QueryAlgorithm::Exhaustive, et);
            assert_eq!(o.eval.docs_skipped_prune, 0, "{et:?}");
            assert_eq!(o.eval.blocks_skipped_prune, 0, "{et:?}");
        }
        for algo in boss_index::ALL_ALGORITHMS {
            if !algo.prunes() {
                continue;
            }
            let o = run(algo, EtMode::Full);
            assert!(
                o.eval.docs_scored < ex.eval.docs_scored,
                "{algo} should score fewer docs: {} vs {}",
                o.eval.docs_scored,
                ex.eval.docs_scored
            );
            assert!(o.eval.docs_skipped_prune > 0, "{algo} attributes skips");
            assert_eq!(o.eval.docs_skipped_wand, 0, "{algo} books under prune");
            assert_eq!(o.eval.docs_skipped_block, 0, "{algo} books under prune");
            assert!(o.eval.blocks_fetched <= ex.eval.blocks_fetched, "{algo}");
        }
    }

    #[test]
    fn pruned_plans_leave_pure_intersections_untouched() {
        // `algorithm` only replaces the union traversal; a pure
        // intersection's outcome is bit-identical whatever the plan.
        let idx = corpus();
        let image = IndexImage::new(&idx);
        let q = QueryExpr::and([QueryExpr::term("aa"), QueryExpr::term("bb")]);
        let run = |algo: boss_index::QueryAlgorithm| {
            let cfg = BossConfig::default().with_k(20).with_algorithm(algo);
            let core = BossCore::new(cfg.clone());
            let plan = QueryPlan::from_expr(&idx, &q, &cfg).unwrap();
            core.execute(&idx, &image, &plan, 20).unwrap()
        };
        let base = run(QueryAlgorithm::Exhaustive);
        for algo in boss_index::ALL_ALGORITHMS {
            let got = run(algo);
            assert_eq!(got.hits, base.hits, "{algo}");
            assert_eq!(got.eval, base.eval, "{algo}");
            assert_eq!(got.mem, base.mem, "{algo}");
            assert_eq!(got.cycles, base.cycles, "{algo}");
        }
    }

    #[test]
    fn bulk_score_changes_nothing_observable_under_pruned_plans() {
        // The WAND-family tail drain is wall-clock only: with any
        // pruning algorithm, hits, counters, traffic and cycles are
        // bit-identical with the bulk path on or off.
        let idx = corpus();
        let image = IndexImage::new(&idx);
        let queries = [
            QueryExpr::term("bb"),
            QueryExpr::or([QueryExpr::term("aa"), QueryExpr::term("dd")]),
            QueryExpr::or([
                QueryExpr::term("aa"),
                QueryExpr::term("bb"),
                QueryExpr::term("cc"),
                QueryExpr::term("dd"),
            ]),
            QueryExpr::and([
                QueryExpr::term("cc"),
                QueryExpr::or([QueryExpr::term("bb"), QueryExpr::term("dd")]),
            ]),
        ];
        for algo in boss_index::ALL_ALGORITHMS {
            for q in &queries {
                for k in [5usize, 300] {
                    let run_with = |bulk_on: bool| {
                        let cfg = BossConfig::default()
                            .with_k(k)
                            .with_algorithm(algo)
                            .with_bulk_score(bulk_on);
                        let core = BossCore::new(cfg.clone());
                        let plan = QueryPlan::from_expr(&idx, q, &cfg).unwrap();
                        core.execute(&idx, &image, &plan, k).unwrap()
                    };
                    let base = run_with(false);
                    let bulk = run_with(true);
                    let label = format!("{q} k={k} {algo}");
                    assert_eq!(base.hits, bulk.hits, "hits {label}");
                    assert_eq!(base.eval, bulk.eval, "eval {label}");
                    assert_eq!(base.mem, bulk.mem, "mem {label}");
                    assert_eq!(base.cycles, bulk.cycles, "cycles {label}");
                }
            }
        }
    }

    #[test]
    fn seeded_floor_prunes_more_but_keeps_at_or_above_floor_hits() {
        // With a floor seeded from a (simulated) earlier shard, the plan
        // may drop hits at or below the floor (a tie at the running k-th
        // loses to the earlier shard's smaller-docID incumbents) but
        // must keep every hit strictly above it, in the same order — the
        // contract the sharded scatter-gather merge relies on.
        let idx = corpus();
        let image = IndexImage::new(&idx);
        let q = QueryExpr::or([
            QueryExpr::term("aa"),
            QueryExpr::term("bb"),
            QueryExpr::term("cc"),
            QueryExpr::term("dd"),
        ]);
        let k = 10;
        let expect = reference::evaluate(&idx, &q, k).unwrap();
        // Floor between the 3rd and 4th score, so a strict subset
        // survives any pruning.
        let floor = expect[3].score;
        for algo in boss_index::ALL_ALGORITHMS {
            let cfg = BossConfig::default().with_k(k).with_algorithm(algo);
            let core = BossCore::new(cfg.clone());
            let plan = QueryPlan::from_expr(&idx, &q, &cfg).unwrap();
            let got = core
                .execute_with_scratch_seeded(
                    &idx,
                    &image,
                    &plan,
                    k,
                    None,
                    &mut CoreScratch::new(),
                    floor,
                )
                .unwrap();
            let kept: Vec<_> = expect.iter().filter(|h| h.score > floor).collect();
            assert!(
                got.hits.len() >= kept.len(),
                "{algo}: floor must not drop above-floor hits"
            );
            for (g, e) in got.hits.iter().zip(&kept) {
                assert_eq!(&g, e, "{algo}");
            }
        }
    }

    #[test]
    fn topk_result_traffic_is_k_entries() {
        let idx = corpus();
        let image = IndexImage::new(&idx);
        let cfg = BossConfig::default().with_k(10);
        let core = BossCore::new(cfg.clone());
        let plan = QueryPlan::from_expr(&idx, &QueryExpr::term("aa"), &cfg).unwrap();
        let out = core.execute(&idx, &image, &plan, 10).unwrap();
        assert_eq!(out.mem.bytes(AccessCategory::StResult), 80, "10 hits x 8 B");
    }
}
