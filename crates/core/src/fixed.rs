//! Fixed-point scoring arithmetic.
//!
//! The synthesized BOSS scoring module uses *fixed-point* dividers,
//! multipliers and adders (Section IV-C, Table III) rather than IEEE
//! floats. The simulation's default path scores in `f32` so results are
//! bit-comparable with the software baselines; this module provides the
//! hardware-accurate Q16.16 path and quantifies the ranking agreement
//! between the two — the check a tape-out would need.

use boss_index::{Bm25, InvertedIndex, SearchHit, TermId};
use serde::{Deserialize, Serialize};

/// A Q16.16 fixed-point number (16 integer bits, 16 fractional bits).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Q16(i64);

#[allow(clippy::should_implement_trait)] // add/mul/div name the hardware
                                         // units deliberately; operator overloads would hide the fixed-point cost.
impl Q16 {
    /// Fractional bits.
    pub const FRAC_BITS: u32 = 16;
    /// The value 0.
    pub const ZERO: Q16 = Q16(0);
    /// The value 1.
    pub const ONE: Q16 = Q16(1 << Self::FRAC_BITS);

    /// Converts from `f32` (rounding to the nearest representable value).
    pub fn from_f32(v: f32) -> Self {
        Q16((f64::from(v) * f64::from(1u32 << Self::FRAC_BITS)).round() as i64)
    }

    /// Converts back to `f32`.
    pub fn to_f32(self) -> f32 {
        (self.0 as f64 / f64::from(1u32 << Self::FRAC_BITS)) as f32
    }

    /// Converts from an integer.
    pub fn from_u32(v: u32) -> Self {
        Q16(i64::from(v) << Self::FRAC_BITS)
    }

    /// Fixed-point addition (the scoring module's accumulator adder).
    pub fn add(self, other: Q16) -> Q16 {
        Q16(self.0 + other.0)
    }

    /// Fixed-point multiplication with truncation, like a hardware
    /// multiplier whose product is shifted back.
    pub fn mul(self, other: Q16) -> Q16 {
        Q16((self.0 * other.0) >> Self::FRAC_BITS)
    }

    /// Fixed-point division (the scoring module's pipelined divider).
    ///
    /// # Panics
    ///
    /// Panics on division by zero — BM25 denominators are `tf + K > 0`.
    pub fn div(self, other: Q16) -> Q16 {
        assert!(other.0 != 0, "fixed-point division by zero");
        Q16((self.0 << Self::FRAC_BITS) / other.0)
    }

    /// Raw representation (for tests).
    pub fn raw(self) -> i64 {
        self.0
    }
}

impl std::fmt::Display for Q16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4}", self.to_f32())
    }
}

/// Scores documents exactly as the RTL would: precomputed idf and norm
/// quantized to Q16.16, three fixed-point operations per term.
#[derive(Debug, Clone, Copy)]
pub struct FixedScorer {
    k1_plus_1: Q16,
}

impl FixedScorer {
    /// Builds the scorer from BM25 parameters.
    pub fn new(bm25: &Bm25) -> Self {
        FixedScorer {
            k1_plus_1: Q16::from_f32(bm25.params().k1 + 1.0),
        }
    }

    /// Fixed-point term score: `idf * tf*(k1+1) / (tf + K)` — one
    /// multiply, one divide, one multiply, matching the module's
    /// single-divider datapath.
    pub fn term_score(&self, idf: Q16, tf: u32, norm: Q16) -> Q16 {
        let tf_fx = Q16::from_u32(tf);
        let num = tf_fx.mul(self.k1_plus_1);
        let den = tf_fx.add(norm);
        idf.mul(num.div(den))
    }

    /// Scores one document over its `(term, tf)` entries against `index`,
    /// returning the fixed-point query score.
    pub fn doc_score(
        &self,
        index: &InvertedIndex,
        doc_norm: f32,
        entries: &[(TermId, u32)],
    ) -> Q16 {
        let norm = Q16::from_f32(doc_norm);
        let mut acc = Q16::ZERO;
        for &(t, tf) in entries {
            let idf = Q16::from_f32(index.term_info(t).idf);
            acc = acc.add(self.term_score(idf, tf, norm));
        }
        acc
    }
}

/// Fraction of overlap between two top-k lists (by document), used to
/// quantify fixed-vs-float ranking agreement.
pub fn topk_overlap(a: &[SearchHit], b: &[SearchHit]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let set: std::collections::HashSet<u32> = a.iter().map(|h| h.doc).collect();
    let inter = b.iter().filter(|h| set.contains(&h.doc)).count();
    inter as f64 / a.len().max(b.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use boss_index::{Bm25Params, IndexBuilder};

    #[test]
    fn q16_arithmetic() {
        let a = Q16::from_f32(1.5);
        let b = Q16::from_f32(2.25);
        assert!((a.add(b).to_f32() - 3.75).abs() < 1e-4);
        assert!((a.mul(b).to_f32() - 3.375).abs() < 1e-3);
        assert!((b.div(a).to_f32() - 1.5).abs() < 1e-3);
        assert_eq!(Q16::from_u32(7).to_f32(), 7.0);
        assert_eq!(Q16::ONE.to_f32(), 1.0);
        assert_eq!(Q16::ZERO.to_f32(), 0.0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Q16::ONE.div(Q16::ZERO);
    }

    #[test]
    fn fixed_term_score_close_to_float() {
        let bm25 = Bm25::new(Bm25Params::default(), 10_000, 120.0);
        let scorer = FixedScorer::new(&bm25);
        for df in [3u32, 100, 5000] {
            for tf in [1u32, 2, 10, 100] {
                for dl in [10u32, 120, 900] {
                    let idf = bm25.idf(df);
                    let norm = bm25.doc_norm(dl);
                    let float = bm25.term_score(idf, tf, norm);
                    let fixed = scorer
                        .term_score(Q16::from_f32(idf), tf, Q16::from_f32(norm))
                        .to_f32();
                    assert!(
                        (float - fixed).abs() < 0.01 * float.abs().max(0.1),
                        "df={df} tf={tf} dl={dl}: {float} vs {fixed}"
                    );
                }
            }
        }
    }

    #[test]
    fn fixed_point_ranking_agrees_with_float() {
        // Top-k under Q16.16 scoring matches f32 almost everywhere.
        let docs: Vec<String> = (0u32..500)
            .map(|i| {
                let h = i.wrapping_mul(2654435761);
                let mut t = String::from("w");
                for _ in 0..(h % 4) {
                    t.push_str(" aa");
                }
                if h % 3 == 0 {
                    t.push_str(" bb");
                }
                t
            })
            .collect();
        let index = IndexBuilder::new()
            .add_documents(docs.iter().map(String::as_str))
            .build()
            .unwrap();
        let q = boss_index::QueryExpr::or([
            boss_index::QueryExpr::term("aa"),
            boss_index::QueryExpr::term("bb"),
        ]);
        let float_hits = boss_index::reference::evaluate(&index, &q, 20).unwrap();

        // Re-rank every candidate with the fixed-point scorer.
        let scorer = FixedScorer::new(index.bm25());
        let cands = boss_index::reference::candidates(&index, &q).unwrap();
        let mut fixed_hits: Vec<SearchHit> = cands
            .iter()
            .map(|&d| {
                let mut entries = Vec::new();
                for term in ["aa", "bb"] {
                    if let Ok(id) = index.term_id(term) {
                        let (docs, tfs) = index.list(id).decode_all().unwrap();
                        if let Ok(p) = docs.binary_search(&d) {
                            entries.push((id, tfs[p]));
                        }
                    }
                }
                let s = scorer.doc_score(&index, index.doc_norms()[d as usize], &entries);
                SearchHit {
                    doc: d,
                    score: s.to_f32(),
                }
            })
            .collect();
        fixed_hits.sort_by(SearchHit::ranking_cmp);
        fixed_hits.truncate(20);

        let overlap = topk_overlap(&float_hits, &fixed_hits);
        assert!(overlap >= 0.9, "fixed-point top-20 overlap {overlap}");
    }

    #[test]
    fn overlap_math() {
        let a = vec![
            SearchHit { doc: 1, score: 1.0 },
            SearchHit { doc: 2, score: 0.5 },
        ];
        let b = vec![
            SearchHit { doc: 2, score: 0.6 },
            SearchHit { doc: 3, score: 0.4 },
        ];
        assert!((topk_overlap(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(topk_overlap(&[], &[]), 1.0);
    }
}
