//! SCM-based pooled memory serving (Figure 2 and Section II-C): multiple
//! memory nodes, each with its own shard and BOSS device, behind one
//! shared cache-coherent interconnect to the host.
//!
//! The pool is where BOSS's two host-side savings compose:
//!
//! * near-data processing keeps posting traffic inside each node, and
//! * hardware top-k means each node returns only `k` entries, so the
//!   shared link carries `n_nodes × k × 8` bytes per query instead of the
//!   full scored lists a host-side design would pull.
//!
//! [`MemoryPool::search`] runs a query on every node (leaves execute in
//! parallel), charges the link transfer, and merges at the root.

use crate::config::BossConfig;
use crate::device::BossDevice;
use crate::stats::EvalCounts;
use boss_index::shard::ShardedIndex;
use boss_index::{Error, QueryExpr, SearchHit};
use boss_scm::MemStats;
use serde::{Deserialize, Serialize};

/// The shared host interconnect (CXL-like).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterconnectConfig {
    /// Link bandwidth in GB/s (the paper cites 64 GB/s for one CXL link).
    pub bandwidth_gbps: f64,
    /// One-way message latency in nanoseconds.
    pub latency_ns: u64,
}

impl Default for InterconnectConfig {
    fn default() -> Self {
        InterconnectConfig {
            bandwidth_gbps: 64.0,
            latency_ns: 400,
        }
    }
}

impl InterconnectConfig {
    /// Cycles (at 1 GHz) to move `bytes` over the link, including latency.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        self.latency_ns + (bytes as f64 / self.bandwidth_gbps).ceil() as u64
    }

    /// Host-side cycles to k-way-merge `n_nodes` sorted top-`k` streams
    /// at the root: one comparison per emitted entry, four-wide. Shared
    /// by [`MemoryPool`] and the engine-layer scatter-gather coordinator
    /// so both charge the same root cost.
    pub fn root_merge_cycles(&self, n_nodes: usize, k: usize) -> u64 {
        (n_nodes as u64) * (k as u64).max(1) / 4
    }
}

/// Result of one pooled query.
#[derive(Debug, Clone)]
pub struct PoolOutcome {
    /// Globally merged top-k hits.
    pub hits: Vec<SearchHit>,
    /// End-to-end cycles: slowest leaf + link transfer + root merge.
    pub cycles: u64,
    /// Bytes moved over the shared interconnect.
    pub interconnect_bytes: u64,
    /// Merged node-local memory traffic.
    pub mem: MemStats,
    /// Merged evaluation counters.
    pub eval: EvalCounts,
}

/// A pool of memory nodes, each holding one shard behind one BOSS device.
#[derive(Debug)]
pub struct MemoryPool<'a> {
    sharded: &'a ShardedIndex,
    nodes: Vec<BossDevice<'a>>,
    link: InterconnectConfig,
    config: BossConfig,
}

impl<'a> MemoryPool<'a> {
    /// Builds one node per shard, each with its own copy of `config`
    /// (cores, memory channels) and a shared link.
    pub fn new(sharded: &'a ShardedIndex, config: BossConfig, link: InterconnectConfig) -> Self {
        let nodes = sharded
            .shards()
            .iter()
            .map(|s| BossDevice::new(s, config.clone()))
            .collect();
        MemoryPool {
            sharded,
            nodes,
            link,
            config,
        }
    }

    /// Number of memory nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Executes one query across all nodes and merges at the root.
    ///
    /// A term absent from some shard's vocabulary simply contributes
    /// nothing from that shard (the paper's leaves operate only on their
    /// shard); a term absent from *every* shard is an error.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTerm`] when no shard knows a term, or structural
    /// [`Error::InvalidQuery`] from planning.
    pub fn search(&mut self, expr: &QueryExpr, k: usize) -> Result<PoolOutcome, Error> {
        let mut per_shard: Vec<Vec<SearchHit>> = Vec::with_capacity(self.nodes.len());
        let mut slowest_leaf = 0u64;
        let mut mem = MemStats::new();
        let mut eval = EvalCounts::default();
        let mut any_known = false;
        let mut first_err: Option<Error> = None;
        for node in &mut self.nodes {
            match node.search_expr(expr, k) {
                Ok(out) => {
                    any_known = true;
                    slowest_leaf = slowest_leaf.max(out.cycles);
                    mem.merge(&out.mem);
                    eval.merge(&out.eval);
                    per_shard.push(out.hits);
                }
                Err(Error::UnknownTerm { .. }) => {
                    // This shard holds no postings for some query term; for
                    // pure unions other shards still answer. (A stricter
                    // semantics would re-plan per shard; interval sharding
                    // of Zipfian corpora almost never hits this.)
                    if first_err.is_none() {
                        first_err = Some(Error::UnknownTerm {
                            term: expr.terms().join(","),
                        });
                    }
                    per_shard.push(Vec::new());
                }
                Err(e) => return Err(e),
            }
        }
        if !any_known {
            return Err(first_err.unwrap_or(Error::InvalidQuery {
                reason: "empty pool".into(),
            }));
        }

        // Each leaf ships its top-k over the shared link; transfers from
        // different nodes share the one link, so bytes serialize.
        let interconnect_bytes: u64 = per_shard.iter().map(|h| h.len() as u64 * 8).sum();
        let link_cycles = self.link.transfer_cycles(interconnect_bytes);

        // Root merge: an n-way merge of sorted lists, one comparison per
        // emitted entry on the host (cheap; charged at 1 cycle each).
        let merged = self.sharded.merge_topk(&per_shard, k);
        let merge_cycles = self.link.root_merge_cycles(self.nodes.len(), k);

        Ok(PoolOutcome {
            hits: merged,
            cycles: slowest_leaf + link_cycles + merge_cycles,
            interconnect_bytes,
            mem,
            eval,
        })
    }

    /// The interconnect traffic a *host-side* accelerator without hardware
    /// top-k would generate for the same query: every node's full scored
    /// candidate list crosses the link (Section III-A's comparison).
    ///
    /// # Errors
    ///
    /// Same conditions as [`MemoryPool::search`].
    pub fn hostside_interconnect_bytes(&self, expr: &QueryExpr) -> Result<u64, Error> {
        let mut total = 0u64;
        let mut any = false;
        for shard in self.sharded.shards() {
            match boss_index::reference::candidates(shard, expr) {
                Ok(c) => {
                    any = true;
                    total += c.len() as u64 * 8;
                }
                Err(Error::UnknownTerm { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        if !any {
            return Err(Error::UnknownTerm {
                term: expr.terms().join(","),
            });
        }
        Ok(total)
    }

    /// The per-node configuration.
    pub fn config(&self) -> &BossConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boss_index::{reference, IndexBuilder, InvertedIndex};

    fn corpus() -> InvertedIndex {
        let docs: Vec<String> = (0u32..400)
            .map(|i| {
                let mut t = String::from("common");
                if i % 2 == 0 {
                    t.push_str(" even");
                }
                if i % 7 == 0 {
                    t.push_str(" seven seven");
                }
                t
            })
            .collect();
        IndexBuilder::new()
            .add_documents(docs.iter().map(String::as_str))
            .build()
            .unwrap()
    }

    #[test]
    fn pooled_union_finds_all_candidates() {
        let idx = corpus();
        let sharded = ShardedIndex::split(&idx, 4).unwrap();
        let mut pool = MemoryPool::new(
            &sharded,
            BossConfig::with_cores(2),
            InterconnectConfig::default(),
        );
        assert_eq!(pool.n_nodes(), 4);
        let q = QueryExpr::or([QueryExpr::term("even"), QueryExpr::term("seven")]);
        let out = pool.search(&q, 1000).unwrap();
        let mut got: Vec<u32> = out.hits.iter().map(|h| h.doc).collect();
        got.sort_unstable();
        assert_eq!(got, reference::candidates(&idx, &q).unwrap());
        assert!(out.cycles > 0);
        assert_eq!(out.interconnect_bytes, out.hits.len() as u64 * 8);
    }

    #[test]
    fn topk_link_traffic_far_below_hostside() {
        let idx = corpus();
        let sharded = ShardedIndex::split(&idx, 4).unwrap();
        let mut pool = MemoryPool::new(
            &sharded,
            BossConfig::default(),
            InterconnectConfig::default(),
        );
        let q = QueryExpr::term("even");
        let out = pool.search(&q, 10).unwrap();
        let hostside = pool.hostside_interconnect_bytes(&q).unwrap();
        assert!(out.interconnect_bytes <= 4 * 10 * 8);
        assert!(
            hostside > out.interconnect_bytes * 2,
            "full lists {hostside} vs top-k {}",
            out.interconnect_bytes
        );
    }

    #[test]
    fn unknown_term_everywhere_is_error() {
        let idx = corpus();
        let sharded = ShardedIndex::split(&idx, 2).unwrap();
        let mut pool = MemoryPool::new(
            &sharded,
            BossConfig::default(),
            InterconnectConfig::default(),
        );
        assert!(pool.search(&QueryExpr::term("missing"), 5).is_err());
    }

    #[test]
    fn link_transfer_math() {
        let link = InterconnectConfig {
            bandwidth_gbps: 64.0,
            latency_ns: 400,
        };
        assert_eq!(link.transfer_cycles(6400), 400 + 100);
    }
}
