//! BOSS: a bandwidth-optimized near-data search accelerator for
//! storage-class memory — functional and timing model.
//!
//! This crate is the paper's primary contribution. A [`BossDevice`] sits in
//! the memory controller of an SCM node and executes the whole inverted
//! index search pipeline — block fetch (with overlap checking and
//! score-estimation early termination), programmable decompression,
//! pipelined Small-versus-Small intersection, a hardware WAND union,
//! BM25 scoring, and a shift-register top-k queue — returning only the
//! top-k hits over the shared host interconnect.
//!
//! Two coupled layers (see `DESIGN.md`):
//!
//! * the **functional layer** produces exact results: the early-termination
//!   machinery is safe pruning, so BOSS's hits equal exhaustive evaluation
//!   ([`boss_index::reference`]) for every query and every [`EtMode`];
//! * the **timing layer** charges cycles to each pipeline module and every
//!   byte to the [`boss_scm`] channel model, producing the statistics the
//!   paper's figures report.
//!
//! # Example
//!
//! ```
//! use boss_core::{BossConfig, BossDevice};
//! use boss_index::{IndexBuilder, QueryExpr};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let index = IndexBuilder::new()
//!     .add_documents(["near data processing", "data pools", "scm data nodes"])
//!     .build()?;
//! let mut device = BossDevice::new(&index, BossConfig::default());
//! let outcome = device.search_expr(&QueryExpr::term("data"), 2)?;
//! assert_eq!(outcome.hits.len(), 2);
//! # Ok(())
//! # }
//! ```

mod api;
mod config;
mod core;
mod device;
mod expr;
#[cfg(test)]
mod fault_tests;
mod fetch;
mod fixed;
mod intersect;
mod mai;
pub mod pipeline;
mod plan;
pub mod pool;
pub mod power;
mod prune;
mod queueing;
mod stats;
mod topk;
mod union;

pub use api::{BossHandle, SearchRequest};
pub use boss_index::{QueryAlgorithm, ALL_ALGORITHMS};
pub use config::{BossConfig, DegradePolicy, EtMode, TimingModel};
pub use core::{BossCore, CoreScratch};
pub use device::{BatchOutcome, BossDevice, SchedPolicy};
pub use expr::parse_query;
pub use fixed::{topk_overlap, FixedScorer, Q16};
pub use mai::{Tlb, TlbStats};
pub use pipeline::TimingFidelity;
pub use plan::QueryPlan;
pub use queueing::OpenLoopResult;
pub use stats::{BlockCacheStats, EvalCounts, QueryOutcome};
pub use topk::TopK;
