//! Memory Access Interface: the address-translation front-end of BOSS
//! (Section IV-D "Address Translation").
//!
//! `init()` ships the virtual-to-physical mapping of the index image to
//! the MAI, which caches it in a local TLB. With 2 GB huge pages, 1 K
//! entries cover the whole 2 TB node, so steady-state lookups always hit;
//! the model still implements the lookup path (LRU over 1 K entries, a
//! 4-access page walk on miss) so the "no host intervention" claim is a
//! measured property rather than an assumption.

use serde::{Deserialize, Serialize};

/// Huge-page size used for the index image (2 GB).
pub const PAGE_SIZE: u64 = 2 << 30;

/// Number of TLB entries (covers 2 TB of physical space at 2 GB pages).
pub const TLB_ENTRIES: usize = 1024;

/// Memory accesses charged per page-table walk on a TLB miss.
pub const WALK_ACCESSES: u32 = 4;

/// TLB hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed (each costs a page walk).
    pub misses: u64,
}

impl TlbStats {
    /// Hit rate in `[0, 1]`; 1.0 for no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A small fully-associative TLB with LRU replacement.
///
/// Translation itself is a fixed offset (the model's image mapping is
/// linear); what matters to the simulation is the hit/miss accounting.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<u64>, // virtual page numbers, most recent last
    stats: TlbStats,
}

impl Default for Tlb {
    fn default() -> Self {
        Self::new()
    }
}

impl Tlb {
    /// An empty TLB.
    pub fn new() -> Self {
        Tlb {
            entries: Vec::with_capacity(TLB_ENTRIES),
            stats: TlbStats::default(),
        }
    }

    /// Translates `vaddr`; returns `(paddr, hit)`.
    pub fn translate(&mut self, vaddr: u64) -> (u64, bool) {
        let vpn = vaddr / PAGE_SIZE;
        let hit = if let Some(pos) = self.entries.iter().position(|&e| e == vpn) {
            let e = self.entries.remove(pos);
            self.entries.push(e);
            self.stats.hits += 1;
            true
        } else {
            if self.entries.len() == TLB_ENTRIES {
                self.entries.remove(0);
            }
            self.entries.push(vpn);
            self.stats.misses += 1;
            false
        };
        // Identity-with-offset mapping: virtual image pages are backed by
        // consecutive physical pages on the node.
        (vaddr, hit)
    }

    /// Counters.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_then_hits() {
        let mut t = Tlb::new();
        let (_, hit) = t.translate(0x8000_0000);
        assert!(!hit);
        let (_, hit) = t.translate(0x8000_1000);
        assert!(hit, "same 2 GB page");
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
        assert!((t.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_pages_miss() {
        let mut t = Tlb::new();
        t.translate(0);
        let (_, hit) = t.translate(PAGE_SIZE);
        assert!(!hit);
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new();
        for i in 0..TLB_ENTRIES as u64 + 1 {
            t.translate(i * PAGE_SIZE);
        }
        // Page 0 was evicted; page 1 is still resident.
        let (_, hit) = t.translate(PAGE_SIZE);
        assert!(hit);
        let (_, hit) = t.translate(0);
        assert!(!hit);
    }

    #[test]
    fn whole_image_fits_one_page_in_practice() {
        // The shard images this repo builds are far below 2 GB, so one
        // miss per query stream is the steady state the paper relies on.
        let mut t = Tlb::new();
        let mut misses = 0;
        for addr in (0..(512u64 << 20)).step_by(64 << 20) {
            let (_, hit) = t.translate(0x8000_0000 + addr);
            if !hit {
                misses += 1;
            }
        }
        assert_eq!(misses, 1);
    }

    #[test]
    fn reset_clears() {
        let mut t = Tlb::new();
        t.translate(123);
        t.reset();
        assert_eq!(t.stats().misses, 0);
        assert!((t.stats().hit_rate() - 1.0).abs() < 1e-12);
    }
}
