//! The offloading API (Section IV-D): `init()` + `search()` in Rust form.
//!
//! The C-style intrinsics of the paper map to:
//!
//! * `init(indexFile, configFile)` → [`BossHandle::init`], which lays the
//!   index image out in the memory pool and programs the decompression
//!   modules (the per-list scheme choices live in the index itself);
//! * `search(qExpression, compType[], nTerm, listAddr[], resultAddr,
//!   resultSize)` → [`BossHandle::search`] with a [`SearchRequest`]: the
//!   query expression string is parsed exactly as the API describes
//!   (quoted terms, AND/OR, parentheses), and list addresses/compression
//!   types are resolved from the image rather than passed by hand.

use crate::config::BossConfig;
use crate::device::BossDevice;
use crate::expr::parse_query;
use crate::stats::QueryOutcome;
use boss_index::{Error, InvertedIndex};

/// One `search()` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchRequest {
    /// The query expression, e.g. `"A" AND ("B" OR "C")`.
    pub q_expression: String,
    /// Number of results to return (the `resultSize` slot; the paper's
    /// default k is 1000).
    pub k: usize,
}

impl SearchRequest {
    /// A request with the device-default k.
    pub fn new(q_expression: impl Into<String>) -> Self {
        SearchRequest {
            q_expression: q_expression.into(),
            k: 0,
        }
    }

    /// Overrides k.
    #[must_use]
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }
}

/// A host-side handle to an initialized BOSS device.
#[derive(Debug)]
pub struct BossHandle<'a> {
    device: BossDevice<'a>,
}

impl<'a> BossHandle<'a> {
    /// The `init()` intrinsic: binds the index to a device and returns the
    /// communication handle.
    pub fn init(index: &'a InvertedIndex, config: BossConfig) -> Self {
        BossHandle {
            device: BossDevice::new(index, config),
        }
    }

    /// The `search()` intrinsic: parse, validate (≤16 terms), offload,
    /// and return the top-k outcome.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidQuery`] for malformed expressions or
    /// queries beyond the hardware limits, and [`Error::UnknownTerm`] for
    /// out-of-vocabulary terms.
    pub fn search(&mut self, request: &SearchRequest) -> Result<QueryOutcome, Error> {
        let expr = parse_query(&request.q_expression)?;
        let k = if request.k == 0 {
            self.device.config().k
        } else {
            request.k
        };
        self.device.search_expr(&expr, k)
    }

    /// The underlying device (for batch experiments).
    pub fn device_mut(&mut self) -> &mut BossDevice<'a> {
        &mut self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boss_index::IndexBuilder;

    fn index() -> InvertedIndex {
        IndexBuilder::new()
            .add_documents([
                "storage class memory pool",
                "memory pool node",
                "inverted index search",
                "search accelerator for memory",
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn init_and_search() {
        let idx = index();
        let mut h = BossHandle::init(&idx, BossConfig::default());
        let out = h
            .search(&SearchRequest::new(r#""memory" AND ("pool" OR "search")"#).with_k(10))
            .unwrap();
        assert!(!out.hits.is_empty());
        // Matches the reference evaluation of the same expression.
        let expr = crate::expr::parse_query(r#""memory" AND ("pool" OR "search")"#).unwrap();
        let expect = boss_index::reference::evaluate(&idx, &expr, 10).unwrap();
        assert_eq!(out.hits, expect);
    }

    #[test]
    fn default_k_comes_from_config() {
        let idx = index();
        let mut h = BossHandle::init(&idx, BossConfig::default().with_k(2));
        let out = h.search(&SearchRequest::new(r#""memory""#)).unwrap();
        assert!(out.hits.len() <= 2);
    }

    #[test]
    fn bad_expression_is_rejected() {
        let idx = index();
        let mut h = BossHandle::init(&idx, BossConfig::default());
        assert!(
            h.search(&SearchRequest::new("memory")).is_err(),
            "unquoted term"
        );
        assert!(h.search(&SearchRequest::new(r#""a" AND"#)).is_err());
    }

    #[test]
    fn too_many_terms_rejected() {
        let idx = index();
        let mut h = BossHandle::init(&idx, BossConfig::default());
        let big: Vec<String> = (0..17).map(|i| format!("\"t{i}\"")).collect();
        let q = big.join(" OR ");
        assert!(h.search(&SearchRequest::new(q)).is_err());
    }
}
