//! The intersection module: pipelined Small-versus-Small intersection
//! with block-level overlap checking (Section IV-C "Intersection Module"
//! and Figure 5).
//!
//! Terms are processed shortest-list-first. The first pair is intersected
//! by a 2-way merge whose cursors skip non-overlapping blocks via
//! metadata; each further term is intersected against the (register-held)
//! intermediate stream — fed back to the block fetch module, never
//! spilled to memory.

use crate::fetch::{ExecCtx, ListCursor, SkipReason};
use crate::union::MatStream;
use boss_index::{DocId, Error, TermId};

/// Intersects a group of terms, producing the materialized intermediate
/// stream (docs ascending, with each member term's tf attached).
///
/// # Errors
///
/// Under [`crate::DegradePolicy::FailQuery`] a faulted read or corrupt
/// block surfaces as a typed error; under `SkipBlock` the affected block
/// is dropped (its documents cannot intersect) and the merge continues.
///
/// # Panics
///
/// Panics if `terms` is empty.
pub(crate) fn intersect_group(
    ctx: &mut ExecCtx<'_>,
    terms: &[TermId],
    decomp_fill: u64,
) -> Result<MatStream, Error> {
    assert!(!terms.is_empty(), "intersection group cannot be empty");
    // Small-versus-Small: ascending document frequency.
    let mut order: Vec<TermId> = terms.to_vec();
    order.sort_by_key(|&t| ctx.index.list(t).df());

    let max_score: f32 = order.iter().map(|&t| ctx.index.list(t).max_score()).sum();

    let mut docs: Vec<DocId> = Vec::new();
    let mut entries: Vec<Vec<(TermId, u32)>> = Vec::new();
    if order.len() == 1 {
        // Degenerate single-term group: materialize the list.
        let first = order[0];
        let mut c = ListCursor::new(ctx, first, 0, decomp_fill);
        if ctx.bulk {
            // Block-at-a-time: copy each decoded run wholesale while the
            // next block decodes into the spare buffer. Charge-identical
            // to the per-posting loop (no counters fire here, and the
            // block-entry and metadata charges land at the same points).
            let cache = ctx.cache;
            while !c.exhausted() {
                if !c.fetch_block(ctx)? {
                    // Fault-skipped block: the cursor already moved on.
                    continue;
                }
                c.prefetch_next(cache);
                let n;
                {
                    let (rdocs, rtfs) = c.run();
                    n = rdocs.len();
                    docs.extend_from_slice(rdocs);
                    entries.extend(rtfs.iter().map(|&tf| vec![(first, tf)]));
                }
                c.advance_run(ctx, n);
            }
        } else {
            while !c.exhausted() {
                let d = c.current_doc();
                if let Some(tf) = c.current_tf(ctx)? {
                    docs.push(d);
                    entries.push(vec![(first, tf)]);
                    c.advance(ctx)?;
                }
            }
        }
    } else {
        // First pair: 2-way merge with *mutual* overlap checking, so both
        // lists skip the blocks the other cannot reach (Figure 5(a)).
        let (ta, tb) = (order[0], order[1]);
        let mut a = ListCursor::new(ctx, ta, 0, decomp_fill);
        let mut b = ListCursor::new(ctx, tb, 1 % ctx.dec_cycles.len(), decomp_fill);
        while !a.exhausted() && !b.exhausted() {
            let (da, db) = (a.current_doc(), b.current_doc());
            ctx.eval.comparisons += 1;
            match da.cmp(&db) {
                std::cmp::Ordering::Less => a.seek(ctx, db, SkipReason::Block)?,
                std::cmp::Ordering::Greater => b.seek(ctx, da, SkipReason::Block)?,
                std::cmp::Ordering::Equal => {
                    // A fault-skip under `SkipBlock` moves the affected
                    // cursor forward, so the merge re-compares and makes
                    // progress either way.
                    let (tfa, tfb) = (a.current_tf(ctx)?, b.current_tf(ctx)?);
                    if let (Some(tfa), Some(tfb)) = (tfa, tfb) {
                        docs.push(da);
                        entries.push(vec![(ta, tfa), (tb, tfb)]);
                        a.advance(ctx)?;
                        b.advance(ctx)?;
                    }
                }
            }
        }
    }

    for (unit, &term) in order.iter().enumerate().skip(2) {
        let mut c = ListCursor::new(ctx, term, unit % ctx.dec_cycles.len(), decomp_fill);
        let mut out_docs = Vec::with_capacity(docs.len());
        let mut out_entries = Vec::with_capacity(entries.len());
        for (d, mut e) in docs.drain(..).zip(entries.drain(..)) {
            // Overlap check: the feedback docID drives block skipping in
            // the fetched list (Figure 5(b)).
            c.seek(ctx, d, SkipReason::Block)?;
            if c.exhausted() {
                break;
            }
            ctx.eval.comparisons += 1;
            if c.current_doc() == d {
                if let Some(tf) = c.current_tf(ctx)? {
                    e.push((term, tf));
                    out_docs.push(d);
                    out_entries.push(e);
                }
            }
        }
        docs = out_docs;
        entries = out_entries;
        if docs.is_empty() {
            break;
        }
    }

    Ok(MatStream::new(docs, entries, max_score))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BossConfig;
    use boss_index::layout::IndexImage;
    use boss_index::{reference, IndexBuilder, InvertedIndex, QueryExpr};

    fn corpus() -> InvertedIndex {
        let docs: Vec<String> = (0u32..800)
            .map(|i| {
                let mut t = String::from("base");
                let h = i.wrapping_mul(40503);
                if h % 2 == 0 {
                    t.push_str(" two");
                }
                if h % 5 == 0 {
                    t.push_str(" five five");
                }
                if h % 11 == 0 {
                    t.push_str(" eleven");
                }
                if i >= 700 {
                    t.push_str(" tail");
                }
                t
            })
            .collect();
        IndexBuilder::new()
            .add_documents(docs.iter().map(String::as_str))
            .build()
            .unwrap()
    }

    fn run(index: &InvertedIndex, terms: &[&str]) -> (MatStream, crate::stats::EvalCounts) {
        let cfg = BossConfig::default();
        let image = IndexImage::new(index);
        let mut ctx = crate::fetch::ExecCtx::new(index, &image, &cfg);
        let ids: Vec<TermId> = terms.iter().map(|t| index.term_id(t).unwrap()).collect();
        let m = intersect_group(&mut ctx, &ids, 4).unwrap();
        (m, ctx.eval)
    }

    fn expect_docs(index: &InvertedIndex, terms: &[&str]) -> Vec<DocId> {
        let expr = QueryExpr::and(terms.iter().map(|t| QueryExpr::term(*t)));
        reference::candidates(index, &expr).unwrap()
    }

    #[test]
    fn pair_intersection_matches_reference() {
        let idx = corpus();
        let (m, _) = run(&idx, &["two", "five"]);
        assert_eq!(m.docs, expect_docs(&idx, &["two", "five"]));
        // Every result carries both terms' tfs.
        for e in &m.entries {
            assert_eq!(e.len(), 2);
        }
    }

    #[test]
    fn four_way_intersection_matches_reference() {
        let idx = corpus();
        let (m, _) = run(&idx, &["two", "five", "eleven", "base"]);
        assert_eq!(
            m.docs,
            expect_docs(&idx, &["two", "five", "eleven", "base"])
        );
        for e in &m.entries {
            assert_eq!(e.len(), 4);
        }
    }

    #[test]
    fn empty_intersection() {
        let idx = corpus();
        // "tail" lives in docs >= 700 with h%2==0 varying; intersect with
        // something disjoint enough to produce few/no docs — use reference
        // as the oracle either way.
        let (m, _) = run(&idx, &["tail", "eleven"]);
        assert_eq!(m.docs, expect_docs(&idx, &["tail", "eleven"]));
    }

    #[test]
    fn block_skipping_engages_for_clustered_list() {
        let idx = corpus();
        // "tail" occupies only the last blocks of "two"'s docID space, so
        // intersecting skips most of "two"'s blocks.
        let (_, eval) = run(&idx, &["tail", "two"]);
        assert!(
            eval.blocks_skipped > 0,
            "leading blocks of the larger list skipped"
        );
    }

    #[test]
    fn max_score_is_sum_of_list_maxes() {
        let idx = corpus();
        let (m, _) = run(&idx, &["two", "five"]);
        let expect = idx.list(idx.term_id("two").unwrap()).max_score()
            + idx.list(idx.term_id("five").unwrap()).max_score();
        assert!((m.max_score - expect).abs() < 1e-6);
    }

    #[test]
    fn svs_order_puts_smallest_first() {
        let idx = corpus();
        // Regardless of argument order the result is identical.
        let (a, _) = run(&idx, &["base", "eleven"]);
        let (b, _) = run(&idx, &["eleven", "base"]);
        assert_eq!(a.docs, b.docs);
    }

    #[test]
    fn bulk_materialize_changes_nothing_observable() {
        // The block-at-a-time single-term materialization must produce
        // the same stream, counters, and simulated traffic as the
        // per-posting loop.
        let idx = corpus();
        let image = IndexImage::new(&idx);
        for term in ["two", "base", "tail"] {
            let ids = [idx.term_id(term).unwrap()];
            let run_with = |bulk_on: bool| {
                let cfg = BossConfig::default().with_bulk_score(bulk_on);
                let mut ctx = crate::fetch::ExecCtx::new(&idx, &image, &cfg);
                let m = intersect_group(&mut ctx, &ids, 4).unwrap();
                (m, ctx.eval, ctx.mem.take_stats())
            };
            let (m0, e0, mem0) = run_with(false);
            let (m1, e1, mem1) = run_with(true);
            assert_eq!(m0.docs, m1.docs, "{term}");
            assert_eq!(m0.entries, m1.entries, "{term}");
            assert_eq!(e0, e1, "{term}");
            assert_eq!(mem0, mem1, "{term}");
        }
    }

    #[test]
    fn block_cache_changes_nothing_observable() {
        // Same invariant as the union module: the decoded-block cache may
        // only change host wall-clock, never the materialized stream, the
        // counters, or the simulated traffic.
        use boss_index::BlockCache;
        let idx = corpus();
        let cfg = BossConfig::default();
        let image = IndexImage::new(&idx);
        let ids: Vec<TermId> = ["two", "five", "eleven"]
            .iter()
            .map(|t| idx.term_id(t).unwrap())
            .collect();
        let run_with = |cache: Option<&boss_index::BlockCache>| {
            let mut ctx = crate::fetch::ExecCtx::with_cache(&idx, &image, &cfg, cache);
            let m = intersect_group(&mut ctx, &ids, 4).unwrap();
            (m, ctx.eval, ctx.mem.take_stats())
        };
        let (m0, eval0, mem0) = run_with(None);
        let cache = BlockCache::new(128);
        let (m1, eval1, mem1) = run_with(Some(&cache));
        assert!(cache.stats().misses > 0);
        let (m2, eval2, mem2) = run_with(Some(&cache));
        assert!(cache.stats().hits > 0, "second pass hits");
        assert_eq!(m0.docs, m1.docs);
        assert_eq!(m0.docs, m2.docs);
        assert_eq!(m0.entries, m1.entries);
        assert_eq!(eval0, eval1);
        assert_eq!(eval0, eval2);
        assert_eq!(mem0, mem1);
        assert_eq!(mem0, mem2);
    }
}
