//! Parser for the `search()` offload API's query-expression strings
//! (Section IV-D): quoted terms combined with `AND`/`OR` and round
//! brackets, e.g. `"A" AND ("B" OR "C")`.

use boss_index::{Error, QueryExpr};

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Term(String),
    And,
    Or,
    LParen,
    RParen,
}

fn lex(input: &str) -> Result<Vec<Token>, Error> {
    let mut tokens = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                tokens.push(Token::LParen);
                chars.next();
            }
            ')' => {
                tokens.push(Token::RParen);
                chars.next();
            }
            '"' => {
                chars.next();
                let mut term = String::new();
                let mut closed = false;
                for (_, c) in chars.by_ref() {
                    if c == '"' {
                        closed = true;
                        break;
                    }
                    term.push(c);
                }
                if !closed {
                    return Err(Error::InvalidQuery {
                        reason: format!("unterminated quote at byte {i}"),
                    });
                }
                if term.is_empty() {
                    return Err(Error::InvalidQuery {
                        reason: "empty quoted term".into(),
                    });
                }
                tokens.push(Token::Term(term));
            }
            _ => {
                let mut word = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        word.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                match word.to_ascii_uppercase().as_str() {
                    "AND" => tokens.push(Token::And),
                    "OR" => tokens.push(Token::Or),
                    "" => {
                        return Err(Error::InvalidQuery {
                            reason: format!("unexpected character {c:?} at byte {i}"),
                        });
                    }
                    _ => {
                        return Err(Error::InvalidQuery {
                            reason: format!("bare word {word:?}; query terms must be quoted"),
                        });
                    }
                }
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    // or_expr := and_expr (OR and_expr)*
    fn or_expr(&mut self) -> Result<QueryExpr, Error> {
        let mut subs = vec![self.and_expr()?];
        while matches!(self.peek(), Some(Token::Or)) {
            self.next();
            subs.push(self.and_expr()?);
        }
        Ok(if subs.len() == 1 {
            subs.pop().expect("one element")
        } else {
            QueryExpr::Or(subs)
        })
    }

    // and_expr := atom (AND atom)*
    fn and_expr(&mut self) -> Result<QueryExpr, Error> {
        let mut subs = vec![self.atom()?];
        while matches!(self.peek(), Some(Token::And)) {
            self.next();
            subs.push(self.atom()?);
        }
        Ok(if subs.len() == 1 {
            subs.pop().expect("one element")
        } else {
            QueryExpr::And(subs)
        })
    }

    fn atom(&mut self) -> Result<QueryExpr, Error> {
        match self.next() {
            Some(Token::Term(t)) => Ok(QueryExpr::Term(t)),
            Some(Token::LParen) => {
                let inner = self.or_expr()?;
                match self.next() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(Error::InvalidQuery {
                        reason: "missing closing parenthesis".into(),
                    }),
                }
            }
            other => Err(Error::InvalidQuery {
                reason: format!("expected term or '(', found {other:?}"),
            }),
        }
    }
}

/// Parses a `search()` query-expression string into a [`QueryExpr`].
///
/// `AND` binds tighter than `OR`, matching conventional boolean-query
/// semantics; parentheses override.
///
/// # Errors
///
/// Returns [`Error::InvalidQuery`] for lexical or structural problems
/// (bare unquoted words, unbalanced parentheses, empty input).
///
/// # Example
///
/// ```
/// use boss_core::parse_query;
///
/// # fn main() -> Result<(), boss_index::Error> {
/// let q = parse_query(r#""scm" AND ("pool" OR "node")"#)?;
/// assert_eq!(q.terms(), vec!["scm", "pool", "node"]);
/// # Ok(())
/// # }
/// ```
pub fn parse_query(input: &str) -> Result<QueryExpr, Error> {
    let tokens = lex(input)?;
    if tokens.is_empty() {
        return Err(Error::InvalidQuery {
            reason: "empty query".into(),
        });
    }
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.or_expr()?;
    if p.pos != p.tokens.len() {
        return Err(Error::InvalidQuery {
            reason: format!("trailing tokens after position {}", p.pos),
        });
    }
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_term() {
        assert_eq!(parse_query(r#""hello""#).unwrap(), QueryExpr::term("hello"));
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let q = parse_query(r#""a" OR "b" AND "c""#).unwrap();
        assert_eq!(
            q,
            QueryExpr::or([
                QueryExpr::term("a"),
                QueryExpr::and([QueryExpr::term("b"), QueryExpr::term("c")]),
            ])
        );
    }

    #[test]
    fn parens_override() {
        let q = parse_query(r#"("a" OR "b") AND "c""#).unwrap();
        assert_eq!(
            q,
            QueryExpr::and([
                QueryExpr::or([QueryExpr::term("a"), QueryExpr::term("b")]),
                QueryExpr::term("c"),
            ])
        );
    }

    #[test]
    fn figure_example() {
        // The exact example from Section IV-D.
        let q = parse_query(r#""A" AND ("B" OR "C")"#).unwrap();
        assert_eq!(q.terms(), vec!["A", "B", "C"]);
    }

    #[test]
    fn keywords_case_insensitive() {
        let q = parse_query(r#""a" and "b" or "c""#).unwrap();
        assert_eq!(q.terms().len(), 3);
    }

    #[test]
    fn error_cases() {
        assert!(parse_query("").is_err());
        assert!(parse_query(r#""a" AND"#).is_err());
        assert!(parse_query(r#"("a" OR "b""#).is_err());
        assert!(parse_query(r#"bare AND "b""#).is_err());
        assert!(parse_query(r#""unterminated"#).is_err());
        assert!(parse_query(r#""" AND "b""#).is_err());
        assert!(
            parse_query(r#""a" "b""#).is_err(),
            "juxtaposition is not an operator"
        );
        assert!(parse_query("@!").is_err());
    }

    #[test]
    fn multibyte_terms() {
        let q = parse_query("\"héllo wörld\"").unwrap();
        assert_eq!(q, QueryExpr::term("héllo wörld"));
    }
}
