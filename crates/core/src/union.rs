//! The union module: a hardware WAND (Section IV-C "Union Module")
//! combined with the block fetch module's score-estimation early
//! termination (Block-Max style, Section IV-C "Block Fetch Module").
//!
//! The module consumes up to four *streams* — posting-list cursors, or the
//! materialized outputs of intersection groups for mixed queries — and
//! drives scoring + top-k. All three [`EtMode`]s produce identical top-k
//! results; they differ only in how much work is skipped.

use crate::config::EtMode;
use crate::fetch::{ExecCtx, ListCursor, SkipReason};
use crate::topk::TopK;
use boss_index::{DocId, Error, ScoreScratch, TermId};

/// Reusable buffers for the block-at-a-time scoring path: one decoded
/// run's docIDs plus the matching [`ScoreScratch`]. Held per core/worker
/// so the bulk path allocates nothing per query.
#[derive(Debug, Default)]
pub(crate) struct BulkScratch {
    pub scores: ScoreScratch,
    pub docs: Vec<DocId>,
}

/// A materialized intermediate stream (the output of an intersection
/// group), held in on-chip buffers — BOSS never spills it to memory.
#[derive(Debug, Default)]
pub(crate) struct MatStream {
    pub docs: Vec<DocId>,
    /// Per-document `(term, tf)` entries (group size ≤ 4).
    pub entries: Vec<Vec<(TermId, u32)>>,
    /// Upper bound of this stream's score contribution.
    pub max_score: f32,
    pos: usize,
}

impl MatStream {
    pub(crate) fn new(docs: Vec<DocId>, entries: Vec<Vec<(TermId, u32)>>, max_score: f32) -> Self {
        debug_assert_eq!(docs.len(), entries.len());
        MatStream {
            docs,
            entries,
            max_score,
            pos: 0,
        }
    }

    fn exhausted(&self) -> bool {
        self.pos >= self.docs.len()
    }

    fn current_doc(&self) -> DocId {
        self.docs[self.pos]
    }
}

/// One input of the union module.
#[derive(Debug)]
pub(crate) enum UnionStream<'a> {
    /// A posting-list cursor (single-term group).
    List(ListCursor<'a>),
    /// A materialized intersection output.
    Mat(MatStream),
}

impl<'a> UnionStream<'a> {
    pub(crate) fn exhausted(&self) -> bool {
        match self {
            UnionStream::List(c) => c.exhausted(),
            UnionStream::Mat(m) => m.exhausted(),
        }
    }

    pub(crate) fn current_doc(&self) -> DocId {
        match self {
            UnionStream::List(c) => c.current_doc(),
            UnionStream::Mat(m) => m.current_doc(),
        }
    }

    /// List-level (or group-level) max score: the WAND lookup-table value.
    pub(crate) fn max_score(&self) -> f32 {
        match self {
            UnionStream::List(c) => c.list_max(),
            UnionStream::Mat(m) => m.max_score,
        }
    }

    /// Block-max refinement for Block-Max early termination: the max score
    /// of the block that covers (or would cover) `target`, and that
    /// block's last docID. Materialized streams have no block structure,
    /// so their global max and last doc stand in.
    pub(crate) fn shallow_block_max(&self, target: DocId) -> Option<(f32, DocId)> {
        match self {
            UnionStream::List(c) => c.shallow_block_max(target),
            UnionStream::Mat(m) => {
                if m.exhausted() {
                    None
                } else {
                    Some((m.max_score, *m.docs.last().expect("non-empty")))
                }
            }
        }
    }

    /// Collects this stream's `(term, tf)` entries at `doc` (which must be
    /// the current document) and advances past it. If the stream's block
    /// turns out unusable and the `SkipBlock` policy drops it, the stream
    /// simply contributes nothing for `doc`.
    pub(crate) fn take_entries(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        out: &mut Vec<(TermId, u32)>,
    ) -> Result<(), Error> {
        match self {
            UnionStream::List(c) => {
                if let Some(tf) = c.current_tf(ctx)? {
                    out.push((c.term, tf));
                    c.advance(ctx)?;
                }
            }
            UnionStream::Mat(m) => {
                out.extend_from_slice(&m.entries[m.pos]);
                m.pos += 1;
            }
        }
        Ok(())
    }

    /// Skips to the first document `>= target`, attributing the bypassed
    /// documents to `reason`.
    pub(crate) fn seek(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        target: DocId,
        reason: SkipReason,
    ) -> Result<(), Error> {
        match self {
            UnionStream::List(c) => c.seek(ctx, target, reason)?,
            UnionStream::Mat(m) => {
                while !m.exhausted() && m.docs[m.pos] < target {
                    m.pos += 1;
                    ctx.eval.comparisons += 1;
                    match reason {
                        SkipReason::Block => ctx.eval.docs_skipped_block += 1,
                        SkipReason::Wand => ctx.eval.docs_skipped_wand += 1,
                        SkipReason::Prune => ctx.eval.docs_skipped_prune += 1,
                    }
                }
            }
        }
        Ok(())
    }

    pub(crate) fn remaining(&self) -> u64 {
        match self {
            UnionStream::List(c) => c.remaining(),
            UnionStream::Mat(m) => (m.docs.len() - m.pos) as u64,
        }
    }

    /// Whole-block skip probe (block fetch module capability): `Some`
    /// with the block's last docID when the stream sits at an unfetched
    /// block boundary. Materialized streams live in registers and have no
    /// blocks to skip.
    fn whole_block_skippable(&self) -> Option<DocId> {
        match self {
            UnionStream::List(c) => c.whole_block_skippable(),
            UnionStream::Mat(_) => None,
        }
    }
}

/// The score loader's lookup table (Section IV-C, union module step ②):
/// upper-bound query-scores for every subset of up to four streams are
/// pre-computed at query start — "the unique combinations for the
/// upper-bound query-score are limited to 16 for 4-way unions" — so the
/// pivot selector reads a sum instead of adding at runtime.
#[derive(Debug, Clone)]
pub(crate) struct ScoreLut {
    combos: Vec<f64>,
}

impl ScoreLut {
    /// Pre-computes the 2^n subset sums of the streams' max scores.
    pub(crate) fn new(max_scores: &[f32]) -> Self {
        let n = max_scores.len();
        let mut combos = vec![0.0f64; 1 << n];
        for mask in 1usize..(1 << n) {
            let low = mask & mask.wrapping_neg(); // lowest set bit
            let i = low.trailing_zeros() as usize;
            combos[mask] = combos[mask ^ low] + f64::from(max_scores[i]);
        }
        ScoreLut { combos }
    }

    /// Upper-bound query-score of the stream subset `mask`.
    pub(crate) fn upper_bound(&self, mask: usize) -> f64 {
        self.combos[mask]
    }
}

/// Conservative slack for upper-bound comparisons: a value can be declared
/// "cannot beat the cutoff" only if it trails by more than the worst-case
/// f32 rounding drift, so early termination never drops a document the
/// exhaustive reference would keep.
pub(crate) fn cannot_beat(upper: f64, theta: f32) -> bool {
    if !theta.is_finite() {
        return false;
    }
    let slack = 1e-4 * (1.0 + theta.abs() as f64);
    upper <= f64::from(theta) - slack
}

/// Runs the union + scoring + top-k stage over `streams`.
///
/// The caller supplies streams in any order; documents are emitted in
/// ascending docID order, with each document's score summed over the
/// *distinct* terms contributed by all streams that contain it.
///
/// # Errors
///
/// Under [`crate::DegradePolicy::FailQuery`] a faulted read or corrupt
/// block surfaces here as a typed error; under `SkipBlock` the affected
/// block is dropped and the union continues on the remaining postings.
pub(crate) fn union_topk(
    ctx: &mut ExecCtx<'_>,
    mut streams: Vec<UnionStream<'_>>,
    et: EtMode,
    topk: &mut TopK,
    bulk: &mut BulkScratch,
) -> Result<(), Error> {
    let mut order: Vec<usize> = Vec::with_capacity(streams.len());
    let mut entries: Vec<(TermId, u32)> = Vec::with_capacity(8);
    // Score loader: the pre-computed LUT is exact for up to 4 streams
    // (the paper's per-core width); wider ganged unions fall back to
    // incremental summation, exactly as chained mergers would.
    let lut = (streams.len() <= 4).then(|| {
        let maxes: Vec<f32> = streams.iter().map(UnionStream::max_score).collect();
        ScoreLut::new(&maxes)
    });

    loop {
        order.clear();
        order.extend((0..streams.len()).filter(|&i| !streams[i].exhausted()));
        if order.is_empty() {
            break;
        }
        // Block-at-a-time fast path: once a single live posting-list
        // stream remains (which covers single-term queries entirely and
        // the tail of multi-stream unions), drain it with the bulk
        // scoring kernels. Wall-clock only — the drain replicates every
        // counter and simulated charge of the per-posting iterations.
        if ctx.bulk && order.len() == 1 {
            if let UnionStream::List(c) = &mut streams[order[0]] {
                drain_single_list(ctx, c, et, topk, bulk)?;
                break;
            }
        }
        // ① The sorter orders streams by sID.
        order.sort_by_key(|&i| streams[i].current_doc());
        ctx.eval.pivot_rounds += 1;
        let theta = topk.cutoff();

        // ②/③ Score loader + pivot selector (document-level WAND).
        let pivot_pos = if et == EtMode::Full {
            let mut acc = 0.0f64;
            let mut mask = 0usize;
            let mut found = None;
            for (pos, &i) in order.iter().enumerate() {
                acc = match &lut {
                    Some(lut) => {
                        mask |= 1 << i;
                        lut.upper_bound(mask)
                    }
                    None => acc + f64::from(streams[i].max_score()),
                };
                if !cannot_beat(acc, theta) {
                    found = Some(pos);
                    break;
                }
            }
            match found {
                Some(p) => p,
                None => {
                    // No document anywhere can beat θ: terminate the query.
                    for &i in &order {
                        ctx.eval.docs_skipped_wand += streams[i].remaining();
                    }
                    break;
                }
            }
        } else {
            // Without document-level ET the pivot is simply the smallest
            // sID — every document is considered in order.
            0
        };
        let pivot = streams[order[pivot_pos]].current_doc();

        // Block-level score estimation (block fetch module). The pivot
        // set is every stream whose current document is <= pivot —
        // including streams tied at the pivot beyond the WAND pivot
        // position — because any document in the skip window could draw
        // contributions from all of them.
        let mut pivot_end = pivot_pos;
        while pivot_end + 1 < order.len() && streams[order[pivot_end + 1]].current_doc() == pivot {
            pivot_end += 1;
        }
        if et != EtMode::Exhaustive {
            let mut ub = 0.0f64;
            let mut min_boundary = DocId::MAX;
            let mut all_have_blocks = true;
            for &i in &order[..=pivot_end] {
                match streams[i].shallow_block_max(pivot) {
                    Some((m, last)) => {
                        ub += f64::from(m);
                        min_boundary = min_boundary.min(last);
                    }
                    None => {
                        all_have_blocks = false;
                        break;
                    }
                }
            }
            // Streams outside the pivot set must not reach into the skip
            // window: cap it at the next stream's current document.
            if pivot_end + 1 < order.len() {
                let next_cur = streams[order[pivot_end + 1]].current_doc();
                min_boundary = min_boundary.min(next_cur.saturating_sub(1));
            }
            if all_have_blocks && cannot_beat(ub, theta) {
                let next = min_boundary.saturating_add(1).max(pivot.saturating_add(1));
                if et == EtMode::Full {
                    // WAND's document scheduler can pop below-window docs
                    // even inside fetched blocks: jump the whole pivot set.
                    for &i in &order[..=pivot_end] {
                        streams[i].seek(ctx, next, SkipReason::Block)?;
                    }
                    continue;
                }
                // Block-only mode: the block fetch module can avoid
                // *fetching* whole blocks the window covers, but documents
                // already inside fetched blocks must still be scored — that
                // is exactly the capability split Figure 14 measures.
                let mut skipped_any = false;
                for &i in &order[..=pivot_end] {
                    if let Some(last) = streams[i].whole_block_skippable() {
                        if last < next {
                            streams[i].seek(ctx, last.saturating_add(1), SkipReason::Block)?;
                            skipped_any = true;
                        }
                    }
                }
                if skipped_any {
                    continue;
                }
                // No skippable whole block: fall through and score.
            }
        }

        // ④ Document scheduler: pop below-pivot documents, then score the
        // pivot if every stream at or below it aligned.
        let aligned = order[..=pivot_pos]
            .iter()
            .all(|&i| streams[i].current_doc() == pivot);
        if !aligned {
            for &i in &order[..pivot_pos] {
                if streams[i].current_doc() < pivot {
                    streams[i].seek(ctx, pivot, SkipReason::Wand)?;
                }
            }
            continue;
        }

        // Gather contributions from every stream positioned at the pivot
        // (streams beyond the pivot position may coincidentally align).
        entries.clear();
        for &i in &order {
            if !streams[i].exhausted() && streams[i].current_doc() == pivot {
                streams[i].take_entries(ctx, &mut entries)?;
            }
        }
        // All contributing streams may have fault-skipped their blocks
        // under `SkipBlock`; the pivot document is gone, and every such
        // stream has moved forward, so re-running the round terminates.
        if entries.is_empty() {
            continue;
        }
        // Distinct terms only: a term shared by several intersection
        // groups contributes once.
        entries.sort_unstable_by_key(|&(t, _)| t);
        entries.dedup_by_key(|&mut (t, _)| t);

        // Scoring module: one norm load, then one fused op per term.
        let norm = ctx.load_norm(pivot);
        let mut score = 0.0f32;
        for &(term, tf) in &entries {
            let idf = ctx.index.term_info(term).idf;
            score += ctx.index.bm25().term_score(idf, tf, norm);
        }
        ctx.scored += 1;
        ctx.eval.docs_scored += 1;
        topk.offer(pivot, score);
    }
    ctx.eval.topk_inserts = topk.inserts();
    Ok(())
}

/// Drains the last live posting-list stream with the block-at-a-time
/// kernels ([`boss_index::Bm25::score_block`] + [`TopK::sift_block`]) and
/// the double-buffered traversal ([`ListCursor::prefetch_next`]).
///
/// Exactly equivalent — counter for counter, charge for charge, bit for
/// bit — to running the per-posting `union_topk` loop with this stream as
/// the only live entry:
///
/// * A per-posting scalar iteration does `pivot_rounds += 1`, reads θ,
///   runs the ET checks, then scores `0.0 + term_score(...)` (bitwise
///   `term_score`, which is positive) and offers. The drain batches the
///   iterations whose checks are provably no-ops and replicates the rest.
/// * In `Exhaustive` mode no check has any effect, so a whole decoded run
///   is scored with one kernel call (`pivot_rounds += run length`).
/// * In `BlockOnly` mode the only effective check happens at an undecoded
///   block boundary (inside a decoded block `whole_block_skippable` is
///   `None` and the scalar loop falls through to scoring); the drain
///   replays that boundary round and bulk-scores the rest.
/// * In `Full` mode θ feeds back per posting, so the drain keeps the
///   per-posting round structure but precomputes the run's scores with
///   the kernel and strips the per-posting stream dispatch.
///
/// Simulated charge order is preserved: block data reads happen at decode
/// entry, next-block metadata is charged by the advance that crosses the
/// boundary *before* the final norm load of the run, and norm loads occur
/// in document order.
fn drain_single_list(
    ctx: &mut ExecCtx<'_>,
    c: &mut ListCursor<'_>,
    et: EtMode,
    topk: &mut TopK,
    bulk: &mut BulkScratch,
) -> Result<(), Error> {
    let cache = ctx.cache;
    let bm25 = *ctx.index.bm25();
    let norms = ctx.index.doc_norms();
    let idf = ctx.index.term_info(c.term).idf;

    // Scores the whole unconsumed run of the current block and offers it.
    // `pre_counted` pivot rounds were already charged by a boundary round.
    // Returns early (without scoring) when the block was fault-skipped or
    // the cursor ran out; the outer loop then re-examines the cursor.
    let drain_run = |ctx: &mut ExecCtx<'_>,
                     c: &mut ListCursor<'_>,
                     topk: &mut TopK,
                     bulk: &mut BulkScratch,
                     pre_counted: u64|
     -> Result<(), Error> {
        if !c.fetch_block(ctx)? {
            return Ok(());
        }
        c.prefetch_next(cache);
        {
            let (rdocs, rtfs) = c.run();
            bulk.docs.clear();
            bulk.docs.extend_from_slice(rdocs);
            bm25.score_block(idf, rdocs, rtfs, norms, &mut bulk.scores);
        }
        let n = bulk.docs.len();
        ctx.eval.pivot_rounds += n as u64 - pre_counted;
        for j in 0..n {
            if j + 1 == n {
                // The advance that crosses the block boundary charges the
                // next block's metadata before the last norm load, exactly
                // as the per-posting order does.
                c.advance_run(ctx, n);
            }
            ctx.load_norm(bulk.docs[j]);
        }
        ctx.scored += n as u64;
        ctx.eval.docs_scored += n as u64;
        topk.sift_block(&bulk.docs, bulk.scores.scores());
        Ok(())
    };

    match et {
        EtMode::Exhaustive => {
            while !c.exhausted() {
                drain_run(ctx, c, topk, bulk, 0)?;
            }
        }
        EtMode::BlockOnly => {
            while !c.exhausted() {
                let mut pre = 0;
                if !c.is_decoded() {
                    // Boundary round: the block fetch module may skip the
                    // whole unfetched block.
                    ctx.eval.pivot_rounds += 1;
                    let theta = topk.cutoff();
                    if cannot_beat(f64::from(c.block_max()), theta) {
                        let pivot = c.current_doc();
                        let last = c.block_last_doc();
                        let next = last.saturating_add(1).max(pivot.saturating_add(1));
                        if last < next {
                            c.seek(ctx, last.saturating_add(1), SkipReason::Block)?;
                            continue;
                        }
                    }
                    pre = 1;
                }
                drain_run(ctx, c, topk, bulk, pre)?;
            }
        }
        EtMode::Full => drain_wand_tail(ctx, c, topk, bulk, true, false)?,
    }
    Ok(())
}

/// Drains a single live posting-list stream with per-posting θ feedback:
/// the `Full` ET arm of [`drain_single_list`] and, with `prune` set, the
/// bulk tail of the WAND-family pruned query plans.
///
/// * `block_check` gates the block-max skip test (on for `Full` ET and
///   the block-max algorithms, off for plain WAND, whose scalar loop
///   consults only list-level bounds).
/// * `prune` attributes skipped work to the pruning counters
///   ([`SkipReason::Prune`] / `docs_skipped_prune`) instead of the
///   exhaustive-path ET counters, so the exhaustive plan's figures stay
///   untouched by the new plans.
///
/// Counter for counter, charge for charge, this loop is the scalar
/// per-posting round structure with the stream dispatch stripped and the
/// run's scores precomputed by the block kernel — the property the
/// `bulk_*_changes_nothing_observable` tests pin down.
pub(crate) fn drain_wand_tail(
    ctx: &mut ExecCtx<'_>,
    c: &mut ListCursor<'_>,
    topk: &mut TopK,
    bulk: &mut BulkScratch,
    block_check: bool,
    prune: bool,
) -> Result<(), Error> {
    let cache = ctx.cache;
    let bm25 = *ctx.index.bm25();
    let norms = ctx.index.doc_norms();
    let idf = ctx.index.term_info(c.term).idf;
    let skip_reason = if prune {
        SkipReason::Prune
    } else {
        SkipReason::Block
    };
    let list_ub = f64::from(c.list_max());
    let mut run_valid = false;
    let mut run_j = 0usize;
    while !c.exhausted() {
        ctx.eval.pivot_rounds += 1;
        let theta = topk.cutoff();
        if cannot_beat(list_ub, theta) {
            // Document-level termination: nothing left can beat θ.
            let rem = c.remaining();
            if prune {
                ctx.eval.docs_skipped_prune += rem;
            } else {
                ctx.eval.docs_skipped_wand += rem;
            }
            break;
        }
        let pivot = c.current_doc();
        if block_check && cannot_beat(f64::from(c.block_max()), theta) {
            let next = c
                .block_last_doc()
                .saturating_add(1)
                .max(pivot.saturating_add(1));
            c.seek(ctx, next, skip_reason)?;
            run_valid = false;
            continue;
        }
        if !c.is_decoded() {
            run_valid = false;
        }
        if !run_valid {
            if !c.fetch_block(ctx)? {
                // Fault-skipped block: the cursor already moved on.
                continue;
            }
            c.prefetch_next(cache);
            let (rdocs, rtfs) = c.run();
            bulk.docs.clear();
            bulk.docs.extend_from_slice(rdocs);
            bm25.score_block(idf, rdocs, rtfs, norms, &mut bulk.scores);
            run_valid = true;
            run_j = 0;
        }
        let score = bulk.scores.scores()[run_j];
        run_j += 1;
        c.advance_run(ctx, 1);
        ctx.load_norm(pivot);
        ctx.scored += 1;
        ctx.eval.docs_scored += 1;
        topk.offer(pivot, score);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BossConfig;
    use crate::fetch::ExecCtx;
    use boss_index::layout::IndexImage;
    use boss_index::{reference, IndexBuilder, InvertedIndex, QueryExpr, SearchHit};

    fn corpus() -> InvertedIndex {
        // Deterministic pseudo-random corpus large enough for several
        // blocks per list.
        let docs: Vec<String> = (0u32..900)
            .map(|i| {
                let mut t = String::new();
                let h = i.wrapping_mul(2654435761);
                if h % 2 == 0 {
                    t.push_str(" alpha");
                }
                if h % 3 == 0 {
                    t.push_str(" beta beta");
                }
                if h % 7 == 0 {
                    t.push_str(" gamma");
                }
                if h % 31 == 0 {
                    t.push_str(" delta delta delta");
                }
                t.push_str(" filler");
                t
            })
            .collect();
        IndexBuilder::new()
            .add_documents(docs.iter().map(String::as_str))
            .build()
            .unwrap()
    }

    fn run_union(
        index: &InvertedIndex,
        terms: &[&str],
        et: EtMode,
        k: usize,
    ) -> (Vec<SearchHit>, crate::stats::EvalCounts) {
        let cfg = BossConfig::default().with_et(et).with_k(k);
        let image = IndexImage::new(index);
        let mut ctx = ExecCtx::new(index, &image, &cfg);
        let streams: Vec<UnionStream> = terms
            .iter()
            .enumerate()
            .map(|(u, t)| {
                let id = index.term_id(t).unwrap();
                UnionStream::List(ListCursor::new(&mut ctx, id, u % 4, 4))
            })
            .collect();
        let mut topk = TopK::new(k);
        union_topk(
            &mut ctx,
            streams,
            et,
            &mut topk,
            &mut BulkScratch::default(),
        )
        .unwrap();
        (topk.into_hits(), ctx.eval)
    }

    fn reference_hits(index: &InvertedIndex, terms: &[&str], k: usize) -> Vec<SearchHit> {
        let expr = QueryExpr::or(terms.iter().map(|t| QueryExpr::term(*t)));
        reference::evaluate(index, &expr, k).unwrap()
    }

    #[test]
    fn all_modes_match_reference_small_k() {
        let idx = corpus();
        let terms = ["alpha", "beta", "gamma", "delta"];
        let expect = reference_hits(&idx, &terms, 10);
        for et in [EtMode::Exhaustive, EtMode::BlockOnly, EtMode::Full] {
            let (hits, _) = run_union(&idx, &terms, et, 10);
            assert_eq!(hits, expect, "{et:?}");
        }
    }

    #[test]
    fn all_modes_match_reference_large_k() {
        let idx = corpus();
        let terms = ["beta", "delta"];
        let expect = reference_hits(&idx, &terms, 500);
        for et in [EtMode::Exhaustive, EtMode::BlockOnly, EtMode::Full] {
            let (hits, _) = run_union(&idx, &terms, et, 500);
            assert_eq!(hits, expect, "{et:?}");
        }
    }

    #[test]
    fn exhaustive_scores_everything() {
        let idx = corpus();
        let (_, eval) = run_union(&idx, &["alpha", "beta"], EtMode::Exhaustive, 10);
        let expr = QueryExpr::or([QueryExpr::term("alpha"), QueryExpr::term("beta")]);
        let cand = reference::candidates(&idx, &expr).unwrap();
        assert_eq!(eval.docs_scored, cand.len() as u64);
        assert_eq!(eval.docs_skipped_wand + eval.docs_skipped_block, 0);
    }

    #[test]
    fn full_et_scores_fewer_docs_with_small_k() {
        let idx = corpus();
        let (_, exhaustive) = run_union(
            &idx,
            &["alpha", "beta", "gamma", "delta"],
            EtMode::Exhaustive,
            10,
        );
        let (_, full) = run_union(&idx, &["alpha", "beta", "gamma", "delta"], EtMode::Full, 10);
        assert!(
            full.docs_scored < exhaustive.docs_scored,
            "ET should skip: {} vs {}",
            full.docs_scored,
            exhaustive.docs_scored
        );
        assert!(full.docs_skipped_wand + full.docs_skipped_block > 0);
    }

    #[test]
    fn eval_totals_conserved() {
        // scored + skipped == total candidate postings... at the document
        // level: every document consumed from a stream is either scored or
        // skipped, so totals match the exhaustive candidate count.
        let idx = corpus();
        let terms = ["alpha", "gamma"];
        let (_, full) = run_union(&idx, &terms, EtMode::Full, 5);
        let (_, ex) = run_union(&idx, &terms, EtMode::Exhaustive, 5);
        assert_eq!(
            ex.docs_scored,
            full.docs_total(),
            "every doc accounted in Full mode"
        );
    }

    #[test]
    fn single_stream_union_is_term_query() {
        let idx = corpus();
        let expect = reference_hits(&idx, &["delta"], 7);
        for et in [EtMode::Exhaustive, EtMode::Full] {
            let (hits, _) = run_union(&idx, &["delta"], et, 7);
            assert_eq!(hits, expect, "{et:?}");
        }
    }

    #[test]
    fn cannot_beat_is_conservative() {
        assert!(!cannot_beat(5.0, f32::NEG_INFINITY));
        assert!(!cannot_beat(5.0, 5.0));
        assert!(
            !cannot_beat(4.9999, 5.0),
            "within slack: not provably worse"
        );
        assert!(cannot_beat(4.99, 5.0));
        assert!(cannot_beat(0.0, 5.0));
    }

    #[test]
    fn mat_stream_in_union() {
        let idx = corpus();
        // Materialized stream mimicking an intersection output; union it
        // with a live cursor and check against manual evaluation.
        let cfg = BossConfig::default().with_k(1000);
        let image = IndexImage::new(&idx);
        let mut ctx = ExecCtx::new(&idx, &image, &cfg);
        let a = idx.term_id("alpha").unwrap();
        let g = idx.term_id("gamma").unwrap();
        let (adocs, atfs) = idx.list(a).decode_all().unwrap();
        let mat = MatStream::new(
            adocs.clone(),
            adocs
                .iter()
                .zip(&atfs)
                .map(|(_, &tf)| vec![(a, tf)])
                .collect(),
            idx.list(a).max_score(),
        );
        let cursor = ListCursor::new(&mut ctx, g, 0, 4);
        let mut topk = TopK::new(1000);
        union_topk(
            &mut ctx,
            vec![UnionStream::Mat(mat), UnionStream::List(cursor)],
            EtMode::Full,
            &mut topk,
            &mut BulkScratch::default(),
        )
        .unwrap();
        let expect = reference_hits(&idx, &["alpha", "gamma"], 1000);
        assert_eq!(topk.into_hits(), expect);
    }

    #[test]
    fn bulk_path_changes_nothing_observable() {
        // The block-at-a-time drain is wall-clock only: hits, every eval
        // counter, and all simulated traffic must be bit-identical with
        // the bulk path on or off, in every ET mode, for single-stream
        // queries (drain from the start) and multi-stream unions (drain
        // engages for the surviving tail stream).
        let idx = corpus();
        let image = IndexImage::new(&idx);
        let cases: &[&[&str]] = &[
            &["delta"],
            &["alpha"],
            &["alpha", "delta"],
            &["alpha", "beta", "gamma", "delta"],
        ];
        for et in [EtMode::Exhaustive, EtMode::BlockOnly, EtMode::Full] {
            for terms in cases {
                for k in [3usize, 50, 2000] {
                    let run_with = |bulk_on: bool| {
                        let cfg = BossConfig::default().with_k(k).with_bulk_score(bulk_on);
                        let mut ctx = ExecCtx::new(&idx, &image, &cfg);
                        let streams: Vec<UnionStream> = terms
                            .iter()
                            .enumerate()
                            .map(|(u, t)| {
                                let id = idx.term_id(t).unwrap();
                                UnionStream::List(ListCursor::new(&mut ctx, id, u % 4, 4))
                            })
                            .collect();
                        let mut topk = TopK::new(k);
                        union_topk(
                            &mut ctx,
                            streams,
                            et,
                            &mut topk,
                            &mut BulkScratch::default(),
                        )
                        .unwrap();
                        (topk.into_hits(), ctx.eval, ctx.scored, ctx.mem.take_stats())
                    };
                    let (h0, e0, s0, m0) = run_with(false);
                    let (h1, e1, s1, m1) = run_with(true);
                    let label = format!("{et:?} {terms:?} k={k}");
                    assert_eq!(h0, h1, "hits {label}");
                    assert_eq!(e0, e1, "eval {label}");
                    assert_eq!(s0, s1, "scored {label}");
                    assert_eq!(m0, m1, "mem {label}");
                }
            }
        }
    }

    #[test]
    fn bulk_path_with_cache_changes_nothing_observable() {
        // Bulk + prefetch + decoded-block cache together must still leave
        // every simulated number untouched.
        use boss_index::BlockCache;
        let idx = corpus();
        let image = IndexImage::new(&idx);
        let cache = BlockCache::new(64);
        let run_with = |bulk_on: bool, cache: Option<&BlockCache>| {
            let cfg = BossConfig::default().with_k(10).with_bulk_score(bulk_on);
            let mut ctx = ExecCtx::with_cache(&idx, &image, &cfg, cache);
            let id = idx.term_id("alpha").unwrap();
            let streams = vec![UnionStream::List(ListCursor::new(&mut ctx, id, 0, 4))];
            let mut topk = TopK::new(10);
            union_topk(
                &mut ctx,
                streams,
                EtMode::Full,
                &mut topk,
                &mut BulkScratch::default(),
            )
            .unwrap();
            (topk.into_hits(), ctx.eval, ctx.mem.take_stats())
        };
        let base = run_with(false, None);
        for _ in 0..3 {
            // Repeat so prefetched blocks and cache hits interleave.
            assert_eq!(run_with(true, Some(&cache)), base);
        }
    }

    #[test]
    fn block_cache_changes_nothing_observable() {
        // The decoded-block cache is wall-clock only: hits, eval counters
        // and memory traffic must be bit-identical with and without it,
        // and across repeated runs that turn misses into hits.
        use boss_index::BlockCache;
        let idx = corpus();
        let image = IndexImage::new(&idx);
        let terms = ["alpha", "beta", "gamma", "delta"];
        let k = 10;
        let run_with = |cache: Option<&BlockCache>| {
            let cfg = BossConfig::default().with_k(k);
            let mut ctx = ExecCtx::with_cache(&idx, &image, &cfg, cache);
            let streams: Vec<UnionStream> = terms
                .iter()
                .enumerate()
                .map(|(u, t)| {
                    let id = idx.term_id(t).unwrap();
                    UnionStream::List(ListCursor::new(&mut ctx, id, u % 4, 4))
                })
                .collect();
            let mut topk = TopK::new(k);
            union_topk(
                &mut ctx,
                streams,
                EtMode::Full,
                &mut topk,
                &mut BulkScratch::default(),
            )
            .unwrap();
            (topk.into_hits(), ctx.eval, ctx.mem.take_stats())
        };
        let (hits0, eval0, mem0) = run_with(None);
        let cache = BlockCache::new(256);
        let (hits1, eval1, mem1) = run_with(Some(&cache));
        let first = cache.stats();
        assert!(first.misses > 0, "cold cache misses");
        let (hits2, eval2, mem2) = run_with(Some(&cache));
        let second = cache.stats();
        assert!(second.hits > first.hits, "warm cache hits");
        assert_eq!(hits0, hits1);
        assert_eq!(hits0, hits2);
        assert_eq!(eval0, eval1);
        assert_eq!(eval0, eval2);
        assert_eq!(mem0, mem1);
        assert_eq!(mem0, mem2);
    }
}

#[cfg(test)]
mod lut_tests {
    use super::ScoreLut;

    #[test]
    fn subset_sums_match_manual_addition() {
        let maxes = [1.5f32, 2.25, 0.5, 4.0];
        let lut = ScoreLut::new(&maxes);
        for mask in 0usize..16 {
            let manual: f64 = (0..4)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| f64::from(maxes[i]))
                .sum();
            assert!((lut.upper_bound(mask) - manual).abs() < 1e-9, "mask {mask}");
        }
    }

    #[test]
    fn sixteen_entries_for_four_streams() {
        let lut = ScoreLut::new(&[1.0, 1.0, 1.0, 1.0]);
        assert!((lut.upper_bound(0b1111) - 4.0).abs() < 1e-12);
        assert_eq!(lut.upper_bound(0), 0.0);
    }

    #[test]
    fn single_stream_lut() {
        let lut = ScoreLut::new(&[3.25]);
        assert!((lut.upper_bound(1) - 3.25).abs() < 1e-9);
    }
}
