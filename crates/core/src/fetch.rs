//! The block fetch module: cursors over encoded posting lists that fetch
//! candidate blocks lazily and skip non-candidate blocks using the 19-byte
//! per-block metadata (Section IV-C "Block Fetch Module").

use crate::config::{BossConfig, DegradePolicy};
use crate::mai::{Tlb, WALK_ACCESSES};
use crate::pipeline::BlockEvent;
use crate::stats::EvalCounts;
use boss_compress::Scheme;
use boss_index::layout::IndexImage;
use boss_index::{
    decode_block_cached, BlockCache, BlockMeta, DecodeScratch, DocId, EncodedList, Error,
    InvertedIndex, TermId, BLOCK_META_BYTES,
};
use boss_scm::{AccessCategory, AccessKind, MemorySim, PatternHint};

/// Why documents were skipped — drives Figure 14's attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SkipReason {
    /// Skipped by the block fetch module (whole block never fetched).
    Block,
    /// Skipped by the union module's WAND (popped without scoring).
    Wand,
    /// Skipped by a dynamic-pruning query plan (`QueryAlgorithm` other
    /// than `Exhaustive`): attributed separately so the exhaustive
    /// counters stay untouched by the pruning plumbing.
    Prune,
}

/// Mutable state shared by all modules while one query executes on a core.
#[derive(Debug)]
pub(crate) struct ExecCtx<'a> {
    pub index: &'a InvertedIndex,
    pub image: &'a IndexImage,
    pub mem: MemorySim,
    pub tlb: Tlb,
    pub eval: EvalCounts,
    /// Cycles accumulated per decompression module.
    pub dec_cycles: Vec<u64>,
    /// Documents scored (mirrors `eval.docs_scored`, kept for scoring time).
    pub scored: u64,
    /// 64-byte line address of the most recent norm load (the scoring
    /// module's line buffer).
    norm_line: u64,
    /// Block trace for the event-driven timing replay.
    pub trace: Vec<BlockEvent>,
    /// Decoded-block cache (wall-clock only: hits skip the host-side
    /// decode, never any simulated charge — see `boss_index::cache`).
    pub cache: Option<&'a BlockCache>,
    /// Whether the union module may take the block-at-a-time scoring
    /// path (wall-clock only, from [`BossConfig::bulk_score`]).
    pub bulk: bool,
    /// What to do when a posting block is unusable (faulted read or
    /// corrupt decode), from [`BossConfig::degrade`].
    pub degrade: DegradePolicy,
}

impl<'a> ExecCtx<'a> {
    #[cfg(test)]
    pub(crate) fn new(
        index: &'a InvertedIndex,
        image: &'a IndexImage,
        config: &BossConfig,
    ) -> Self {
        Self::with_cache(index, image, config, None)
    }

    pub(crate) fn with_cache(
        index: &'a InvertedIndex,
        image: &'a IndexImage,
        config: &BossConfig,
        cache: Option<&'a BlockCache>,
    ) -> Self {
        let mut mem = MemorySim::new(config.memory.clone());
        if let Some(plan) = &config.fault_plan {
            mem.set_fault_plan(Some(plan.clone()));
        }
        ExecCtx {
            index,
            image,
            mem,
            tlb: Tlb::new(),
            eval: EvalCounts::default(),
            dec_cycles: vec![0; config.decompressors_per_core as usize],
            scored: 0,
            norm_line: u64::MAX,
            trace: Vec::new(),
            cache,
            bulk: config.bulk_score,
            degrade: config.degrade,
        }
    }

    /// Issues a read through the MAI: TLB lookup (page walk on miss), then
    /// the device access. Returns the completion cycle.
    pub(crate) fn read(
        &mut self,
        vaddr: u64,
        bytes: u64,
        cat: AccessCategory,
        pattern: PatternHint,
    ) -> u64 {
        self.read_checked(vaddr, bytes, cat, pattern).0
    }

    /// Like [`ExecCtx::read`], but also reports whether the fault plan
    /// flagged the read uncorrectable. Block-data loads use this so a
    /// faulted read surfaces to the degradation policy instead of being
    /// silently consumed.
    pub(crate) fn read_checked(
        &mut self,
        vaddr: u64,
        bytes: u64,
        cat: AccessCategory,
        pattern: PatternHint,
    ) -> (u64, bool) {
        let (paddr, hit) = self.tlb.translate(vaddr);
        if !hit {
            for w in 0..u64::from(WALK_ACCESSES) {
                self.mem.access(
                    0x10_0000 + w * 64,
                    8,
                    AccessKind::Read,
                    AccessCategory::LdMeta,
                    PatternHint::Random,
                    0,
                );
            }
        }
        let r = self
            .mem
            .access_checked(paddr, bytes, AccessKind::Read, cat, pattern, 0);
        (r.done, r.faulted)
    }

    /// Issues a result/intermediate write.
    pub(crate) fn write(&mut self, vaddr: u64, bytes: u64, cat: AccessCategory) {
        let (paddr, _) = self.tlb.translate(vaddr);
        self.mem.access(
            paddr,
            bytes,
            AccessKind::Write,
            cat,
            PatternHint::Sequential,
            0,
        );
    }

    /// Charges one BM25 norm load (the 4-byte per-document scoring
    /// metadata, "LD Score" in Figure 15) and returns the norm. The
    /// scoring module buffers the current 64-byte line: documents arrive
    /// in ascending order, so consecutive candidates often share it.
    pub(crate) fn load_norm(&mut self, doc: DocId) -> f32 {
        let addr = self.image.norm_addr(doc);
        let line = addr / 64;
        if line != self.norm_line {
            self.read(addr, 4, AccessCategory::LdScore, PatternHint::Random);
            self.norm_line = line;
        }
        self.index.doc_norms()[doc as usize]
    }
}

/// Analytic decompression cost, mirroring `boss-decomp`'s cycle counting:
/// one extraction unit per cycle (a byte for VB, a field otherwise), one
/// cycle per exception patch, plus pipeline fill. Covers both the docID
/// and tf sub-streams of a block.
pub(crate) fn decomp_cycles(scheme: Scheme, meta: &BlockMeta, fill: u64) -> u64 {
    let count = meta.delta_info.count as u64 + meta.tf_info.count as u64;
    match scheme {
        Scheme::Vb | Scheme::GroupVarint => u64::from(meta.len) + fill,
        Scheme::Bp | Scheme::S16 | Scheme::S8b => count + fill,
        Scheme::OptPfd => {
            let delta_exc =
                (u64::from(meta.tf_offset) - u64::from(meta.delta_info.exception_offset)) / 6;
            let tf_len = u64::from(meta.len) - u64::from(meta.tf_offset);
            let tf_exc = (tf_len - u64::from(meta.tf_info.exception_offset)) / 6;
            count + delta_exc + tf_exc + fill
        }
    }
}

/// A cursor over one encoded posting list with lazy block decode.
#[derive(Debug)]
pub(crate) struct ListCursor<'a> {
    pub term: TermId,
    list: &'a EncodedList,
    meta_addr: u64,
    data_addr: u64,
    /// Current block; `list.n_blocks()` when exhausted.
    block: usize,
    /// Decoded docIDs/tfs of the current block (empty if not decoded),
    /// in buffers reserved once from block metadata.
    scratch: DecodeScratch,
    /// Second half of the double buffer: the next block, decoded ahead of
    /// time by [`ListCursor::prefetch_next`] while the scoring kernel
    /// drains `scratch`. Host-side only — prefetching carries no
    /// simulated charge; [`ListCursor::ensure_decoded`] still issues
    /// every charge when the block is actually entered.
    spare: DecodeScratch,
    /// Block index decoded into `spare`, if any.
    prefetched: Option<usize>,
    pos: usize,
    /// Which decompression module this list is bound to.
    dec_unit: usize,
    /// Highest block index whose metadata was already charged.
    meta_read_upto: usize,
    decomp_fill: u64,
}

impl<'a> ListCursor<'a> {
    pub(crate) fn new(
        ctx: &mut ExecCtx<'a>,
        term: TermId,
        dec_unit: usize,
        decomp_fill: u64,
    ) -> Self {
        let list = ctx.index.list(term);
        let mut scratch = DecodeScratch::new();
        scratch.reserve_for(list);
        let mut spare = DecodeScratch::new();
        if ctx.bulk {
            spare.reserve_for(list);
        }
        let mut c = ListCursor {
            term,
            list,
            meta_addr: ctx.image.meta_addr(term),
            data_addr: ctx.image.data_addr(term),
            block: 0,
            scratch,
            spare,
            prefetched: None,
            pos: 0,
            dec_unit,
            meta_read_upto: 0,
            decomp_fill,
        };
        c.charge_meta(ctx, 0);
        c
    }

    fn charge_meta(&mut self, ctx: &mut ExecCtx<'_>, upto_block: usize) {
        let upto = (upto_block + 1).min(self.list.n_blocks());
        while self.meta_read_upto < upto {
            ctx.read(
                self.meta_addr + self.meta_read_upto as u64 * BLOCK_META_BYTES,
                BLOCK_META_BYTES,
                AccessCategory::LdMeta,
                PatternHint::Sequential,
            );
            ctx.eval.metas_read += 1;
            self.meta_read_upto += 1;
        }
    }

    /// List-level maximum term score (the WAND lookup-table value).
    pub(crate) fn list_max(&self) -> f32 {
        self.list.max_score()
    }

    /// Whether all postings are consumed.
    pub(crate) fn exhausted(&self) -> bool {
        self.block >= self.list.n_blocks()
    }

    fn meta(&self) -> &BlockMeta {
        &self.list.blocks()[self.block]
    }

    /// Smallest unevaluated docID (the `sID` of Section IV-C). For an
    /// undecoded block this is the metadata's first docID — no fetch
    /// needed, which is what makes block skipping free.
    ///
    /// # Panics
    ///
    /// Panics if the cursor is exhausted.
    pub(crate) fn current_doc(&self) -> DocId {
        if self.scratch.is_empty() {
            self.meta().first_doc
        } else {
            self.scratch.docs[self.pos]
        }
    }

    /// Block-max term score of the block that would contain `target`
    /// (the current block if it still covers it). Returns `None` when the
    /// list has no block reaching `target` (exhausted for BMW purposes).
    pub(crate) fn shallow_block_max(&self, target: DocId) -> Option<(f32, DocId)> {
        let blocks = self.list.blocks();
        let mut b = self.block;
        while b < blocks.len() && blocks[b].last_doc < target {
            b += 1;
        }
        blocks.get(b).map(|m| (m.max_score, m.last_doc))
    }

    /// If the cursor sits at the start of a *not yet fetched* block,
    /// returns that block's last docID — the only unit the block fetch
    /// module can skip without the union module's help.
    pub(crate) fn whole_block_skippable(&self) -> Option<DocId> {
        if !self.exhausted() && self.scratch.is_empty() {
            Some(self.meta().last_doc)
        } else {
            None
        }
    }

    /// Term frequency at the cursor (decodes the current block if needed).
    ///
    /// Returns `Ok(None)` when the block was unusable and the `SkipBlock`
    /// policy moved the cursor past it — the document the caller was
    /// looking at no longer exists from the cursor's point of view.
    ///
    /// # Errors
    ///
    /// Under [`DegradePolicy::FailQuery`], a faulted read or corrupt
    /// decode of the block.
    pub(crate) fn current_tf(&mut self, ctx: &mut ExecCtx<'_>) -> Result<Option<u32>, Error> {
        if self.ensure_decoded(ctx)? {
            Ok(Some(self.scratch.tfs[self.pos]))
        } else {
            Ok(None)
        }
    }

    /// Decodes the current block into the scratch if it is not already.
    ///
    /// Returns `Ok(true)` when the cursor's current block is decoded and
    /// usable. Returns `Ok(false)` when the block could not be used and
    /// [`DegradePolicy::SkipBlock`] advanced the cursor past it (possibly
    /// to exhaustion) — the caller must re-examine the cursor position.
    ///
    /// # Errors
    ///
    /// Under [`DegradePolicy::FailQuery`], [`Error::ReadFault`] when the
    /// simulated block read is flagged uncorrectable, or the decode error
    /// for corrupt bytes/metadata.
    fn ensure_decoded(&mut self, ctx: &mut ExecCtx<'_>) -> Result<bool, Error> {
        if !self.scratch.is_empty() {
            return Ok(true);
        }
        if self.exhausted() {
            return Ok(false);
        }
        // Every simulated charge below happens regardless of cache or
        // prefetch state: those only change which host-side path fills
        // the scratch.
        let meta = *self.meta();
        let block_addr = self.data_addr + u64::from(meta.offset);
        let (data_ready, faulted) = ctx.read_checked(
            block_addr,
            u64::from(meta.len).max(1),
            AccessCategory::LdList,
            PatternHint::Auto,
        );
        let filled: Result<(), Error> = if faulted {
            Err(Error::ReadFault { addr: block_addr })
        } else if self.prefetched == Some(self.block) {
            // The double buffer already holds this block: swap it in.
            std::mem::swap(&mut self.scratch, &mut self.spare);
            self.prefetched = None;
            Ok(())
        } else {
            self.scratch.clear();
            decode_block_cached(
                self.list,
                self.term,
                self.block,
                ctx.cache,
                &mut self.scratch.docs,
                &mut self.scratch.tfs,
            )
        };
        if let Err(e) = filled {
            self.scratch.clear();
            if self.prefetched == Some(self.block) {
                self.prefetched = None;
            }
            match ctx.degrade {
                DegradePolicy::FailQuery => return Err(e),
                DegradePolicy::SkipBlock => {
                    ctx.eval.blocks_skipped_fault += 1;
                    ctx.eval.docs_skipped_block += meta.count() as u64;
                    let next = self.block + 1;
                    self.enter_block(ctx, next);
                    return Ok(false);
                }
            }
        }
        ctx.eval.blocks_fetched += 1;
        let dec = decomp_cycles(self.list.scheme(), &meta, self.decomp_fill);
        ctx.dec_cycles[self.dec_unit] += dec;
        ctx.trace.push(BlockEvent {
            data_ready,
            dec_cycles: dec,
            dec_unit: self.dec_unit,
            postings: meta.count() as u32,
        });
        self.pos = 0;
        Ok(true)
    }

    fn enter_block(&mut self, ctx: &mut ExecCtx<'_>, block: usize) {
        self.block = block;
        self.scratch.clear();
        self.pos = 0;
        if block < self.list.n_blocks() {
            self.charge_meta(ctx, block);
        }
    }

    /// Advances one posting (decoding the block if necessary). The consumed
    /// document must already have been accounted (scored or skipped) by the
    /// caller. If the block turned out unusable and the `SkipBlock` policy
    /// dropped it, the cursor is already past it and no extra posting is
    /// consumed.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ListCursor::fetch_block`].
    pub(crate) fn advance(&mut self, ctx: &mut ExecCtx<'_>) -> Result<(), Error> {
        if self.ensure_decoded(ctx)? {
            self.pos += 1;
            if self.pos >= self.scratch.len() {
                let next = self.block + 1;
                self.enter_block(ctx, next);
            }
        }
        Ok(())
    }

    /// Moves to the first posting with `doc >= target`, skipping whole
    /// blocks via metadata. Documents bypassed are attributed to `reason`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ListCursor::fetch_block`].
    pub(crate) fn seek(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        target: DocId,
        reason: SkipReason,
    ) -> Result<(), Error> {
        loop {
            // Skip whole blocks that end before the target.
            while !self.exhausted() && self.meta().last_doc < target {
                let remaining_in_block = if self.scratch.is_empty() {
                    self.meta().count() as u64
                } else {
                    (self.scratch.len() - self.pos) as u64
                };
                if self.scratch.is_empty() {
                    ctx.eval.blocks_skipped += 1;
                    match reason {
                        SkipReason::Prune => {
                            ctx.eval.blocks_skipped_prune += 1;
                            ctx.eval.docs_skipped_prune += remaining_in_block;
                        }
                        _ => ctx.eval.docs_skipped_block += remaining_in_block,
                    }
                } else {
                    // Partially consumed block: the tail was decoded already,
                    // so this is a pop, attributed to whichever module asked.
                    match reason {
                        SkipReason::Block => ctx.eval.docs_skipped_block += remaining_in_block,
                        SkipReason::Wand => ctx.eval.docs_skipped_wand += remaining_in_block,
                        SkipReason::Prune => ctx.eval.docs_skipped_prune += remaining_in_block,
                    }
                }
                let next = self.block + 1;
                self.enter_block(ctx, next);
            }
            if self.exhausted() || self.current_doc() >= target {
                return Ok(());
            }
            // The target falls inside the current block: decode and scan.
            if !self.ensure_decoded(ctx)? {
                // Unusable block dropped by SkipBlock: the cursor moved to
                // a later block, which may still end before the target.
                continue;
            }
            while self.pos < self.scratch.len() && self.scratch.docs[self.pos] < target {
                self.pos += 1;
                ctx.eval.comparisons += 1;
                match reason {
                    SkipReason::Block => ctx.eval.docs_skipped_block += 1,
                    SkipReason::Wand => ctx.eval.docs_skipped_wand += 1,
                    SkipReason::Prune => ctx.eval.docs_skipped_prune += 1,
                }
            }
            if self.pos >= self.scratch.len() {
                let next = self.block + 1;
                self.enter_block(ctx, next);
            }
            return Ok(());
        }
    }

    /// Fetches and decodes the current block (same simulated charges as
    /// the per-posting path's lazy decode; a no-op if already decoded).
    ///
    /// Returns whether the *current* block is decoded — `false` means the
    /// `SkipBlock` policy dropped it and the cursor moved.
    ///
    /// # Errors
    ///
    /// Under [`DegradePolicy::FailQuery`], [`Error::ReadFault`] for a
    /// fault-flagged read or the typed decode error for corrupt data.
    pub(crate) fn fetch_block(&mut self, ctx: &mut ExecCtx<'_>) -> Result<bool, Error> {
        self.ensure_decoded(ctx)
    }

    /// Decodes the *next* block into the spare half of the double buffer,
    /// so the decode overlaps with draining the current block. Pure host
    /// work: no simulated charge — [`ListCursor::fetch_block`] charges in
    /// full when the block is entered. A block that fails to decode is
    /// simply not prefetched: `fetch_block` will surface the error with
    /// its charges when the block is actually entered.
    pub(crate) fn prefetch_next(&mut self, cache: Option<&BlockCache>) {
        let next = self.block + 1;
        if next >= self.list.n_blocks() || self.prefetched == Some(next) {
            return;
        }
        self.spare.clear();
        if decode_block_cached(
            self.list,
            self.term,
            next,
            cache,
            &mut self.spare.docs,
            &mut self.spare.tfs,
        )
        .is_ok()
        {
            self.prefetched = Some(next);
        } else {
            self.spare.clear();
        }
    }

    /// Whether the current block is decoded into the scratch.
    pub(crate) fn is_decoded(&self) -> bool {
        !self.scratch.is_empty()
    }

    /// The unconsumed postings of the current (decoded) block.
    ///
    /// # Panics
    ///
    /// Panics if the current block is not decoded.
    pub(crate) fn run(&self) -> (&[DocId], &[u32]) {
        assert!(self.is_decoded(), "run() requires a decoded block");
        (
            &self.scratch.docs[self.pos..],
            &self.scratch.tfs[self.pos..],
        )
    }

    /// Block-max term score of the current block.
    pub(crate) fn block_max(&self) -> f32 {
        self.meta().max_score
    }

    /// Last docID of the current block.
    pub(crate) fn block_last_doc(&self) -> DocId {
        self.meta().last_doc
    }

    /// Consumes `n` postings of the current decoded block in one step —
    /// charge-identical to `n` calls of [`ListCursor::advance`]: nothing
    /// is charged inside the block, and crossing into the next block
    /// charges its metadata exactly once.
    ///
    /// # Panics
    ///
    /// Panics if the block is not decoded or `n` exceeds the run length.
    pub(crate) fn advance_run(&mut self, ctx: &mut ExecCtx<'_>, n: usize) {
        assert!(self.is_decoded() && self.pos + n <= self.scratch.len());
        self.pos += n;
        if self.pos >= self.scratch.len() {
            let next = self.block + 1;
            self.enter_block(ctx, next);
        }
    }

    /// Number of postings not yet consumed (cheaply, from metadata).
    pub(crate) fn remaining(&self) -> u64 {
        if self.exhausted() {
            return 0;
        }
        let in_block = if self.scratch.is_empty() {
            self.meta().count() as u64
        } else {
            (self.scratch.len() - self.pos) as u64
        };
        let later: u64 = self.list.blocks()[self.block + 1..]
            .iter()
            .map(|m| m.count() as u64)
            .sum();
        in_block + later
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boss_index::layout::IndexImage;
    use boss_index::IndexBuilder;

    fn setup() -> (InvertedIndex, IndexImage, BossConfig) {
        // 600 docs; "even" appears in all even docs, "sparse" in few.
        let docs: Vec<String> = (0..600)
            .map(|i| {
                let mut t = String::from("common");
                if i % 2 == 0 {
                    t.push_str(" even");
                }
                if i % 97 == 0 {
                    t.push_str(" sparse");
                }
                t
            })
            .collect();
        let idx = IndexBuilder::new()
            .add_documents(docs.iter().map(String::as_str))
            .build()
            .unwrap();
        let img = IndexImage::new(&idx);
        (idx, img, BossConfig::default())
    }

    #[test]
    fn cursor_walks_all_postings() {
        let (idx, img, cfg) = setup();
        let term = idx.term_id("even").unwrap();
        let mut ctx = ExecCtx::new(&idx, &img, &cfg);
        let mut c = ListCursor::new(&mut ctx, term, 0, 4);
        let mut seen = Vec::new();
        while !c.exhausted() {
            seen.push(c.current_doc());
            c.advance(&mut ctx).unwrap();
        }
        let expect: Vec<u32> = (0..600).filter(|i| i % 2 == 0).collect();
        assert_eq!(seen, expect);
        assert_eq!(ctx.eval.blocks_fetched, idx.list(term).n_blocks() as u64);
    }

    #[test]
    fn seek_skips_blocks_without_decoding() {
        let (idx, img, cfg) = setup();
        let term = idx.term_id("even").unwrap(); // 300 postings, 3 blocks
        let mut ctx = ExecCtx::new(&idx, &img, &cfg);
        let mut c = ListCursor::new(&mut ctx, term, 0, 4);
        c.seek(&mut ctx, 590, SkipReason::Block).unwrap();
        assert_eq!(c.current_doc(), 590);
        assert!(ctx.eval.blocks_skipped >= 2, "first two blocks skipped");
        assert_eq!(ctx.eval.blocks_fetched, 1, "only the target block decoded");
        assert!(ctx.eval.docs_skipped_block > 250);
    }

    #[test]
    fn seek_within_block_counts_wand_skips() {
        let (idx, img, cfg) = setup();
        let term = idx.term_id("even").unwrap();
        let mut ctx = ExecCtx::new(&idx, &img, &cfg);
        let mut c = ListCursor::new(&mut ctx, term, 0, 4);
        c.current_tf(&mut ctx).unwrap(); // decode block 0
        c.seek(&mut ctx, 20, SkipReason::Wand).unwrap();
        assert_eq!(c.current_doc(), 20);
        assert_eq!(ctx.eval.docs_skipped_wand, 10);
    }

    #[test]
    fn remaining_counts() {
        let (idx, img, cfg) = setup();
        let term = idx.term_id("even").unwrap();
        let mut ctx = ExecCtx::new(&idx, &img, &cfg);
        let mut c = ListCursor::new(&mut ctx, term, 0, 4);
        assert_eq!(c.remaining(), 300);
        c.advance(&mut ctx).unwrap();
        assert_eq!(c.remaining(), 299);
        c.seek(&mut ctx, 10_000, SkipReason::Block).unwrap();
        assert!(c.exhausted());
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn shallow_block_max_finds_covering_block() {
        let (idx, img, cfg) = setup();
        let term = idx.term_id("even").unwrap();
        let mut ctx = ExecCtx::new(&idx, &img, &cfg);
        let c = ListCursor::new(&mut ctx, term, 0, 4);
        let blocks = idx.list(term).blocks();
        let (m, last) = c.shallow_block_max(blocks[1].first_doc + 2).unwrap();
        assert_eq!(last, blocks[1].last_doc);
        assert!((m - blocks[1].max_score).abs() < 1e-9);
        assert!(c.shallow_block_max(1_000_000).is_none());
    }

    #[test]
    fn metadata_traffic_charged_once_per_block() {
        let (idx, img, cfg) = setup();
        let term = idx.term_id("even").unwrap();
        let mut ctx = ExecCtx::new(&idx, &img, &cfg);
        let mut c = ListCursor::new(&mut ctx, term, 0, 4);
        c.seek(&mut ctx, 10_000, SkipReason::Block).unwrap(); // walk all metadata
        let metas = ctx.eval.metas_read;
        assert_eq!(metas, idx.list(term).n_blocks() as u64);
        assert_eq!(
            ctx.mem.stats().bytes(boss_scm::AccessCategory::LdMeta),
            metas * BLOCK_META_BYTES + 4 * 8, // + one TLB walk
        );
    }

    #[test]
    fn decomp_cost_matches_engine() {
        use boss_decomp::DecompEngine;
        let (idx, _, _) = setup();
        for term in ["even", "common", "sparse"] {
            let id = idx.term_id(term).unwrap();
            let list = idx.list(id);
            let engine = DecompEngine::for_scheme(list.scheme()).unwrap();
            for (bi, meta) in list.blocks().iter().enumerate() {
                // Decode the two sub-streams through the engine and compare
                // total cycles with the analytic model.
                let mut docs = Vec::new();
                let mut tfs = Vec::new();
                list.decode_block(bi, &mut docs, &mut tfs).unwrap();
                let analytic = decomp_cycles(list.scheme(), meta, 4);
                // Engine charges fill per sub-stream; analytic charges one
                // fill per block, so allow that delta.
                let _ = engine; // full equivalence asserted in boss-decomp tests
                assert!(
                    analytic >= meta.count() as u64,
                    "at least one cycle per value"
                );
            }
        }
    }
}
