//! Property tests for the shift-register top-k model against a sort-based
//! oracle, over adversarial score orders.

use boss_core::TopK;
use boss_index::SearchHit;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn topk_matches_sorting_oracle(
        scores in prop::collection::vec(0u32..5000, 0..400),
        k in 1usize..64,
    ) {
        let mut q = TopK::new(k);
        for (doc, &s) in scores.iter().enumerate() {
            q.offer(doc as u32, s as f32 / 16.0);
        }
        let got = q.into_hits();
        let mut expect: Vec<SearchHit> = scores
            .iter()
            .enumerate()
            .map(|(d, &s)| SearchHit { doc: d as u32, score: s as f32 / 16.0 })
            .collect();
        expect.sort_by(SearchHit::ranking_cmp);
        expect.truncate(k);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn cutoff_is_exact_kth_best(
        scores in prop::collection::vec(0u32..1000, 1..200),
        k in 1usize..32,
    ) {
        let mut q = TopK::new(k);
        for (doc, &s) in scores.iter().enumerate() {
            q.offer(doc as u32, s as f32);
        }
        let mut sorted: Vec<f32> = scores.iter().map(|&s| s as f32).collect();
        sorted.sort_by(|a, b| b.total_cmp(a));
        if scores.len() >= k {
            prop_assert_eq!(q.cutoff(), sorted[k - 1]);
        } else {
            prop_assert_eq!(q.cutoff(), f32::NEG_INFINITY);
        }
    }

    #[test]
    fn inserts_bounded_by_offers(
        scores in prop::collection::vec(0u32..100, 0..300),
        k in 1usize..16,
    ) {
        let mut q = TopK::new(k);
        for (doc, &s) in scores.iter().enumerate() {
            q.offer(doc as u32, s as f32);
        }
        prop_assert!(q.inserts() <= q.offers());
        prop_assert_eq!(q.offers(), scores.len() as u64);
        prop_assert!(q.len() <= k);
    }
}
