//! Property tests for the block scoring kernel and the block top-k sift:
//! bit-identity with the scalar paths over tf widths 0–32, block lengths
//! 1–128, and randomized heap thresholds (including exact-tie scores).

use boss_core::TopK;
use boss_index::{Bm25, Bm25Params, ScoreScratch};
use proptest::prelude::*;

fn mask(width: u32) -> u32 {
    if width == 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    }
}

fn model() -> Bm25 {
    Bm25::new(Bm25Params::default(), 100_000, 320.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn score_block_matches_term_score_bitwise_for_all_widths(
        raw in prop::collection::vec(any::<u32>(), 1..129),
        lens in prop::collection::vec(1u32..5_000, 200),
        df in 1u32..50_000,
    ) {
        let bm25 = model();
        let idf = bm25.idf(df);
        let norms: Vec<f32> = lens.iter().map(|&l| bm25.doc_norm(l)).collect();
        let docs: Vec<u32> = raw.iter().map(|&v| v % norms.len() as u32).collect();
        let mut scratch = ScoreScratch::new();
        for width in 0..=32u32 {
            let tfs: Vec<u32> = raw.iter().map(|&v| v & mask(width)).collect();
            bm25.score_block(idf, &docs, &tfs, &norms, &mut scratch);
            prop_assert_eq!(scratch.len(), docs.len(), "width {}", width);
            for (j, (&d, &tf)) in docs.iter().zip(&tfs).enumerate() {
                let expect = bm25.term_score(idf, tf, norms[d as usize]);
                prop_assert_eq!(
                    scratch.scores()[j].to_bits(),
                    expect.to_bits(),
                    "width {} value {}", width, j
                );
            }
        }
    }

    #[test]
    fn sift_block_equals_sequential_offers_at_random_thresholds(
        pre in prop::collection::vec(0u32..2_000, 0..200),
        scores in prop::collection::vec(0u32..2_000, 1..129),
        k in 1usize..64,
    ) {
        // Pre-fill establishes an arbitrary heap state (possibly not yet
        // full, possibly with tied scores at the cutoff).
        let mut sift = TopK::new(k);
        for (d, &s) in pre.iter().enumerate() {
            sift.offer(d as u32, s as f32 / 8.0);
        }
        let mut scalar = sift.clone();
        // Block docIDs continue after the prefill, ascending.
        let docs: Vec<u32> = (0..scores.len() as u32).map(|i| 10_000 + i).collect();
        let fs: Vec<f32> = scores.iter().map(|&s| s as f32 / 8.0).collect();
        sift.sift_block(&docs, &fs);
        for (&d, &s) in docs.iter().zip(&fs) {
            scalar.offer(d, s);
        }
        prop_assert_eq!(sift.hits(), scalar.hits());
        prop_assert_eq!(sift.inserts(), scalar.inserts());
        prop_assert_eq!(sift.offers(), scalar.offers());
        prop_assert_eq!(sift.cutoff().to_bits(), scalar.cutoff().to_bits());
    }

    #[test]
    fn kernel_plus_sift_equals_scalar_pipeline(
        raw in prop::collection::vec(any::<u32>(), 1..129),
        lens in prop::collection::vec(1u32..5_000, 200),
        df in 1u32..50_000,
        width in 0u32..33,
        k in 1usize..32,
    ) {
        // End-to-end: score a block with the kernel and sift it, versus
        // scoring per value and offering per value — same bits, same
        // counters, at whatever threshold the earlier values establish.
        let bm25 = model();
        let idf = bm25.idf(df);
        let norms: Vec<f32> = lens.iter().map(|&l| bm25.doc_norm(l)).collect();
        let docs: Vec<u32> = (0..raw.len() as u32).collect();
        let tfs: Vec<u32> = raw.iter().map(|&v| v & mask(width)).collect();

        let mut scratch = ScoreScratch::new();
        bm25.score_block(idf, &docs, &tfs, &norms, &mut scratch);
        let mut bulk = TopK::new(k);
        bulk.sift_block(&docs, scratch.scores());

        let mut scalar = TopK::new(k);
        for (&d, &tf) in docs.iter().zip(&tfs) {
            scalar.offer(d, bm25.term_score(idf, tf, norms[d as usize]));
        }

        prop_assert_eq!(bulk.hits(), scalar.hits());
        prop_assert_eq!(bulk.inserts(), scalar.inserts());
        prop_assert_eq!(bulk.offers(), scalar.offers());
    }
}
