//! The load-bearing property of the accelerator model: BOSS's hits equal
//! the exhaustive reference for every query shape, every early-termination
//! mode, and randomized corpora. Early termination must be *safe* pruning.

use boss_core::{BossConfig, BossDevice, EtMode};
use boss_index::{reference, IndexBuilder, InvertedIndex, QueryExpr};
use boss_workload::corpus::{CorpusSpec, Scale};
use boss_workload::queries::{QuerySampler, ALL_QUERY_TYPES};
use proptest::prelude::*;

/// A small synthetic corpus driven by proptest-chosen parameters.
fn build_corpus(n_docs: u32, seed: u32) -> InvertedIndex {
    let docs: Vec<String> = (0..n_docs)
        .map(|i| {
            let h = i.wrapping_mul(2654435761).wrapping_add(seed);
            let mut t = String::new();
            for (term, m) in [("t0", 2u32), ("t1", 3), ("t2", 5), ("t3", 7), ("t4", 11)] {
                if h % m == 0 {
                    for _ in 0..=(h % 3) {
                        t.push(' ');
                        t.push_str(term);
                    }
                }
            }
            t.push_str(" base");
            t
        })
        .collect();
    IndexBuilder::new()
        .add_documents(docs.iter().map(String::as_str))
        .build()
        .unwrap()
}

fn expr_strategy() -> impl Strategy<Value = QueryExpr> {
    let term = prop_oneof![
        Just(QueryExpr::term("t0")),
        Just(QueryExpr::term("t1")),
        Just(QueryExpr::term("t2")),
        Just(QueryExpr::term("t3")),
        Just(QueryExpr::term("t4")),
        Just(QueryExpr::term("base")),
    ];
    term.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(QueryExpr::And),
            prop::collection::vec(inner, 1..4).prop_map(QueryExpr::Or),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn boss_matches_reference_on_random_queries(
        expr in expr_strategy(),
        n_docs in 200u32..800,
        seed in 0u32..50,
        k in prop::sample::select(vec![1usize, 3, 10, 100]),
        et in prop::sample::select(vec![EtMode::Exhaustive, EtMode::BlockOnly, EtMode::Full]),
    ) {
        let index = build_corpus(n_docs, seed);
        let cfg = BossConfig::default().with_et(et).with_k(k);
        let mut device = BossDevice::new(&index, cfg.clone());
        match boss_core::QueryPlan::from_expr(&index, &expr, &cfg) {
            Ok(_) => {
                let got = device.search_expr(&expr, k).unwrap();
                let expect = reference::evaluate(&index, &expr, k).unwrap();
                prop_assert_eq!(got.hits, expect, "{} k={} {:?}", expr, k, et);
            }
            Err(_) => {
                // Plans can exceed hardware limits (e.g. 5-term AND);
                // rejection is the correct behaviour, not a failure.
            }
        }
    }

    #[test]
    fn et_modes_monotone_in_scored_docs(
        n_docs in 300u32..800,
        seed in 0u32..30,
    ) {
        let index = build_corpus(n_docs, seed);
        let expr = QueryExpr::or([
            QueryExpr::term("t0"),
            QueryExpr::term("t1"),
            QueryExpr::term("t2"),
            QueryExpr::term("t3"),
        ]);
        let run = |et: EtMode| {
            let cfg = BossConfig::default().with_et(et).with_k(10);
            BossDevice::new(&index, cfg).search_expr(&expr, 10).unwrap()
        };
        let ex = run(EtMode::Exhaustive);
        let block = run(EtMode::BlockOnly);
        let full = run(EtMode::Full);
        prop_assert!(block.eval.docs_scored <= ex.eval.docs_scored);
        prop_assert!(full.eval.docs_scored <= block.eval.docs_scored,
            "WAND on top of block skipping never scores more: {} vs {}",
            full.eval.docs_scored, block.eval.docs_scored);
        // And all three agree on the answer.
        prop_assert_eq!(&ex.hits, &block.hits);
        prop_assert_eq!(&ex.hits, &full.hits);
    }
}

#[test]
fn boss_matches_reference_on_trec_mix_over_synthetic_corpus() {
    let index = CorpusSpec::ccnews_like(Scale::Smoke).build().unwrap();
    let mut sampler = QuerySampler::new(&index, 99).unwrap();
    let cfg = BossConfig::default().with_k(100);
    let mut device = BossDevice::new(&index, cfg);
    for tq in sampler.trec_like_mix(24).unwrap() {
        let got = device.search_expr(&tq.expr, 100).unwrap();
        let expect = reference::evaluate(&index, &tq.expr, 100).unwrap();
        assert_eq!(got.hits, expect, "{:?} {}", tq.qtype, tq.expr);
    }
}

#[test]
fn all_query_types_on_synthetic_corpus_all_modes() {
    let index = CorpusSpec::clueweb12_like(Scale::Smoke).build().unwrap();
    let mut sampler = QuerySampler::new(&index, 7).unwrap();
    for qt in ALL_QUERY_TYPES {
        let tq = sampler.sample(qt).unwrap();
        let expect = reference::evaluate(&index, &tq.expr, 1000).unwrap();
        for et in [EtMode::Exhaustive, EtMode::BlockOnly, EtMode::Full] {
            let cfg = BossConfig::default().with_et(et).with_k(1000);
            let mut device = BossDevice::new(&index, cfg);
            let got = device.search_expr(&tq.expr, 1000).unwrap();
            assert_eq!(got.hits, expect, "{qt:?} {et:?}");
        }
    }
}

#[test]
fn timing_fidelities_agree_functionally_and_order_sanely() {
    use boss_core::TimingFidelity;
    let index = CorpusSpec::ccnews_like(Scale::Smoke).build().unwrap();
    let mut sampler = QuerySampler::new(&index, 55).unwrap();
    for tq in sampler.trec_like_mix(12).unwrap() {
        let mut roof = BossDevice::new(
            &index,
            BossConfig::default().with_fidelity(TimingFidelity::Roofline),
        );
        let mut pipe = BossDevice::new(
            &index,
            BossConfig::default().with_fidelity(TimingFidelity::Pipelined),
        );
        let a = roof.search_expr(&tq.expr, 100).unwrap();
        let b = pipe.search_expr(&tq.expr, 100).unwrap();
        assert_eq!(
            a.hits, b.hits,
            "fidelity must not change results: {}",
            tq.expr
        );
        assert_eq!(a.mem, b.mem, "fidelity must not change traffic");
        // The event-driven replay accounts inter-stage dependencies the
        // roofline's max() cannot, so it is never more optimistic by more
        // than the constant fill/overhead terms.
        assert!(
            b.cycles + 250 >= a.cycles,
            "pipelined {} vs roofline {} for {}",
            b.cycles,
            a.cycles,
            tq.expr
        );
    }
}
