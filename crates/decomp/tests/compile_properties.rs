//! Compiler ⇔ interpreter equivalence on *random* stage-2 programs.
//!
//! The generator builds arbitrary valid programs — wire rebinding, `Mux`
//! paths, register updates, reset signals (including register-sourced
//! ones), shadowed `Output` writes, missing `Output.valid` — and asserts
//! that the compiled plan produces exactly the interpreter's output
//! sequence for every input stream.

use boss_compress::{codec_for, Scheme};
use boss_decomp::{CompiledProgram, DecompEngine, Op, Operand, Program, RegDecl, Statement};
use proptest::prelude::*;

const OPS: [Op; 9] = [
    Op::Shr,
    Op::Shl,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Add,
    Op::Sub,
    Op::Mux,
    Op::Id,
];

#[derive(Debug, Clone)]
struct StmtSpec {
    op: u8,
    dest: u8,
    picks: [u16; 3],
    lits: [u32; 3],
}

fn arb_stmt_spec() -> impl Strategy<Value = StmtSpec> {
    (
        any::<u8>(),
        any::<u8>(),
        prop::collection::vec(any::<u16>(), 3),
        prop::collection::vec(
            prop_oneof![
                3 => any::<u32>(),
                // Small literals hit the fold/fuse paths (shifts < 32, masks).
                2 => 0u32..40,
            ],
            3,
        ),
    )
        .prop_map(|(op, dest, picks, lits)| StmtSpec {
            op,
            dest,
            picks: [picks[0], picks[1], picks[2]],
            lits: [lits[0], lits[1], lits[2]],
        })
}

/// Deterministically builds a *valid-by-construction* program from specs:
/// operands only ever reference `Input`, literals, registers, or wires
/// assigned earlier.
fn build_program(
    n_regs: usize,
    inits: Vec<u32>,
    resets: Vec<u16>,
    specs: Vec<StmtSpec>,
) -> Program {
    let regs: Vec<String> = (0..n_regs).map(|i| format!("r{i}")).collect();
    let mut wires: Vec<String> = Vec::new();
    let mut statements = Vec::new();
    let mut has_output = false;
    for (si, spec) in specs.iter().enumerate() {
        let op = OPS[spec.op as usize % OPS.len()];
        let mut args = Vec::new();
        for k in 0..op.arity() {
            let pool = 2 + n_regs + wires.len();
            let pick = spec.picks[k] as usize % pool;
            args.push(match pick {
                0 => Operand::Literal(spec.lits[k]),
                1 => Operand::Name("Input".into()),
                p if p < 2 + n_regs => Operand::Name(regs[p - 2].clone()),
                p => Operand::Name(wires[p - 2 - n_regs].clone()),
            });
        }
        let dest = match spec.dest % 8 {
            4 if n_regs > 0 => regs[spec.picks[0] as usize % n_regs].clone(),
            5 => {
                has_output = true;
                "Output".into()
            }
            6 => "Output.valid".into(),
            _ => {
                let w = format!("w{si}");
                wires.push(w.clone());
                w
            }
        };
        statements.push(Statement { dest, op, args });
    }
    if !has_output {
        // Keep most generated programs observable; ~never-valid and
        // no-output cases are still covered when `dest % 8 == 6` shadows
        // validity with zero, and by the dedicated engine stall tests.
        statements.push(Statement {
            dest: "Output".into(),
            op: Op::Id,
            args: vec![wires
                .last()
                .map(|w| Operand::Name(w.clone()))
                .unwrap_or(Operand::Name("Input".into()))],
        });
    }
    let reg_decls = (0..n_regs)
        .map(|i| {
            let pool = 1 + n_regs + wires.len();
            let pick = resets[i] as usize % pool;
            let reset_signal = match pick {
                0 => String::new(),
                p if p < 1 + n_regs => regs[p - 1].clone(),
                p => wires[p - 1 - n_regs].clone(),
            };
            RegDecl {
                name: regs[i].clone(),
                init: inits[i],
                reset_signal,
            }
        })
        .collect();
    Program {
        regs: reg_decls,
        statements,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Core property: for any valid program and input stream, the
    /// compiled plan's per-cycle outputs equal the interpreter's.
    #[test]
    fn compiled_plan_matches_interpreter_on_random_programs(
        n_regs in 0usize..3,
        inits in prop::collection::vec(any::<u32>(), 3),
        resets in prop::collection::vec(any::<u16>(), 3),
        specs in prop::collection::vec(arb_stmt_spec(), 1..14),
        inputs in prop::collection::vec(any::<u32>(), 1..128),
    ) {
        let program = build_program(n_regs, inits, resets.iter().map(|&r| r).collect(), specs);
        program.validate().expect("generated programs are valid by construction");
        let plan = CompiledProgram::compile(&program).expect("validated programs compile");
        let mut interp_state = program.fresh_state();
        let mut comp_state = plan.new_state();
        for (i, &x) in inputs.iter().enumerate() {
            let interpreted = program.step(x, &mut interp_state).expect("validated programs cannot fault");
            let compiled = plan.step(x, &mut comp_state);
            prop_assert_eq!(interpreted, compiled, "cycle {} of {:?}", i, program);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The shipped scheme configurations decode bit-equal (values *and*
    /// cycles) interpreted vs compiled across widths 0–32 and block
    /// lengths 1–128.
    #[test]
    fn scheme_configs_decode_bit_equal_across_widths(
        raw in prop::collection::vec(any::<u32>(), 1..129),
        base in any::<u32>(),
    ) {
        for width in 0..=32u32 {
            let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
            let values: Vec<u32> = raw.iter().map(|&v| v & mask).collect();
            for scheme in [Scheme::Bp, Scheme::OptPfd, Scheme::Vb] {
                let codec = codec_for(scheme);
                let mut data = Vec::new();
                let info = codec.encode(&values, &mut data).unwrap();
                let engine = DecompEngine::for_scheme(scheme).unwrap();
                let oracle = engine.clone().with_interpreter(true);
                let compiled = engine.decode(&data, &info).unwrap();
                let interpreted = oracle.decode(&data, &info).unwrap();
                prop_assert_eq!(&compiled, &interpreted, "scheme {} width {}", scheme, width);
                let c_docs = engine.decode_docids(&data, &info, base).unwrap();
                let i_docs = oracle.decode_docids(&data, &info, base).unwrap();
                prop_assert_eq!(c_docs, i_docs, "docids, scheme {} width {}", scheme, width);
            }
        }
    }
}

/// Register reset via the VB flush signal, driven through both paths over
/// a long stream (registers carry state across every unit).
#[test]
fn vb_register_resets_match_over_long_streams() {
    let values: Vec<u32> = (0..4096u32)
        .map(|i| i.wrapping_mul(2654435761) >> (i % 27))
        .collect();
    let codec = codec_for(Scheme::Vb);
    let mut data = Vec::new();
    let info = codec.encode(&values, &mut data).unwrap();
    let engine = DecompEngine::for_scheme(Scheme::Vb).unwrap();
    let compiled = engine.decode(&data, &info).unwrap();
    let interpreted = engine
        .clone()
        .with_interpreter(true)
        .decode(&data, &info)
        .unwrap();
    assert_eq!(compiled, interpreted);
    assert_eq!(compiled.values, values);
}
