//! The load-bearing property of the programmable decompression module:
//! for every scheme, the configured datapath decodes *bit-identically* to
//! the software codec.

use boss_compress::{codec_for, Scheme, ALL_SCHEMES};
use boss_decomp::DecompEngine;
use proptest::prelude::*;

fn check_equivalence(scheme: Scheme, values: &[u32]) {
    let codec = codec_for(scheme);
    let mut data = Vec::new();
    let Ok(info) = codec.encode(values, &mut data) else {
        return; // S16 range limits: nothing to compare.
    };
    let engine = DecompEngine::for_scheme(scheme).unwrap();
    let decoded = engine.decode(&data, &info).unwrap();
    let mut expect = Vec::new();
    codec.decode(&data, &info, &mut expect).unwrap();
    assert_eq!(decoded.values, expect, "scheme {scheme}");
    // The compiled plan (the default path above) must match the
    // interpreter oracle bit-for-bit, including the cycle charge.
    let oracle = engine.clone().with_interpreter(true);
    let interpreted = oracle.decode(&data, &info).unwrap();
    assert_eq!(decoded, interpreted, "compiled vs interpreted, {scheme}");
}

fn gap_stream() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(
        prop_oneof![
            4 => 0u32..16,
            3 => 0u32..256,
            2 => 0u32..65536,
            1 => 0u32..(1 << 27),
        ],
        0..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn engine_matches_codec_on_gap_streams(values in gap_stream()) {
        for s in ALL_SCHEMES {
            check_equivalence(s, &values);
        }
    }

    #[test]
    fn engine_matches_codec_on_arbitrary_u32(values in prop::collection::vec(any::<u32>(), 0..200)) {
        for s in ALL_SCHEMES {
            check_equivalence(s, &values);
        }
    }

    #[test]
    fn stage4_matches_manual_prefix_sum(values in gap_stream(), base in 0u32..1000) {
        let codec = codec_for(Scheme::Vb);
        let mut data = Vec::new();
        let info = codec.encode(&values, &mut data).unwrap();
        let engine = DecompEngine::for_scheme(Scheme::Vb).unwrap();
        let got = engine.decode_docids(&data, &info, base).unwrap();
        let mut prev = base;
        let expect: Vec<u32> = values.iter().map(|&g| { prev = prev.wrapping_add(g); prev }).collect();
        prop_assert_eq!(got.values, expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Width sweep for the word-level kernel reroute: the netlist
    /// interpreter must stay bit-equal to the `boss-compress` decoders for
    /// every bit width 0–32 and block lengths 1–128, including through the
    /// stage-4 delta path.
    #[test]
    fn netlist_matches_codecs_across_all_bit_widths(
        raw in prop::collection::vec(any::<u32>(), 1..129),
        base in any::<u32>(),
    ) {
        for width in 0..=32u32 {
            let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
            let values: Vec<u32> = raw.iter().map(|&v| v & mask).collect();
            for s in [Scheme::Bp, Scheme::OptPfd] {
                check_equivalence(s, &values);
                // decode_docids (netlist stage 4) vs the codec's fused /
                // two-pass decode_d1.
                let codec = codec_for(s);
                let mut data = Vec::new();
                let info = codec.encode(&values, &mut data).unwrap();
                let engine = DecompEngine::for_scheme(s).unwrap();
                let got = engine.decode_docids(&data, &info, base).unwrap();
                let mut expect = Vec::new();
                codec.decode_d1(&data, &info, base, &mut expect).unwrap();
                prop_assert_eq!(&got.values, &expect, "scheme {} width {}", s, width);
                let oracle = engine.clone().with_interpreter(true);
                let interpreted = oracle.decode_docids(&data, &info, base).unwrap();
                prop_assert_eq!(got, interpreted, "compiled vs interpreted, {} width {}", s, width);
            }
        }
    }
}

#[test]
fn cycle_counts_scale_with_encoded_size() {
    // VB charges one cycle per byte; BP one per field.
    let values = vec![1_000_000u32; 128]; // 3 bytes each in VB
    let mut data = Vec::new();
    let info = codec_for(Scheme::Vb).encode(&values, &mut data).unwrap();
    let vb = DecompEngine::for_scheme(Scheme::Vb).unwrap();
    let d = vb.decode(&data, &info).unwrap();
    assert!(d.cycles >= 3 * 128, "one unit per byte: {}", d.cycles);

    let mut data_bp = Vec::new();
    let info_bp = codec_for(Scheme::Bp).encode(&values, &mut data_bp).unwrap();
    let bp = DecompEngine::for_scheme(Scheme::Bp).unwrap();
    let d_bp = bp.decode(&data_bp, &info_bp).unwrap();
    assert!(d_bp.cycles < d.cycles, "BP extracts one field per cycle");
}

#[test]
fn engine_rejects_corrupt_pfd_exceptions() {
    let mut values = vec![1u32; 64];
    values[10] = 1 << 25;
    let mut data = Vec::new();
    let info = codec_for(Scheme::OptPfd)
        .encode(&values, &mut data)
        .unwrap();
    // Break the patch area alignment.
    data.push(0xEE);
    let engine = DecompEngine::for_scheme(Scheme::OptPfd).unwrap();
    assert!(engine.decode(&data, &info).is_err());
}

#[test]
fn custom_scheme_via_config_text() {
    // A user-defined scheme: fixed-width fields with every payload XORed
    // with 0b1010 — exercising the "new decompression scheme by composing
    // primitives" claim of Section III-B.
    let config = "
Extractor[0].use = 1
x := XOR(Input, 0xA)
Output := x
Output.valid := 1
UseDelta = 0
";
    let engine = DecompEngine::from_config_text(config).unwrap();
    // Encode with BP, expect XORed output.
    let values = [0u32, 1, 2, 15];
    let mut data = Vec::new();
    let info = codec_for(Scheme::Bp).encode(&values, &mut data).unwrap();
    let out = engine.decode(&data, &info).unwrap();
    assert_eq!(out.values, vec![10, 11, 8, 5]);
}

#[test]
fn group_varint_extension_end_to_end() {
    // The sixth scheme added after the fact: encoder in boss-compress,
    // extractor flavor + config in boss-decomp, bit-equal decode.
    use boss_decomp::ExtractorKind;
    let values: Vec<u32> = (0..300u32)
        .map(|i| {
            let h = i.wrapping_mul(2654435761);
            h % [1u32 << 7, 1 << 14, 1 << 22, 1 << 31][(h % 4) as usize]
        })
        .collect();
    check_equivalence(Scheme::GroupVarint, &values);
    let engine = DecompEngine::for_scheme(Scheme::GroupVarint).unwrap();
    assert_eq!(engine.config().extractor.kind, ExtractorKind::GroupVarint);
    // And stage 4 works for it like any other scheme.
    let codec = codec_for(Scheme::GroupVarint);
    let gaps = [5u32, 0, 3];
    let mut data = Vec::new();
    let info = codec.encode(&gaps, &mut data).unwrap();
    let out = engine.decode_docids(&data, &info, 100).unwrap();
    assert_eq!(out.values, vec![105, 105, 108]);
}
