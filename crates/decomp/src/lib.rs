//! Programmable decompression module model (Sections IV-C/IV-D of the
//! BOSS paper).
//!
//! BOSS decompresses posting blocks with a *programmable* four-stage
//! datapath instead of hard-wiring one scheme:
//!
//! 1. **Extract** — payload units are cut out of the serialized bitstream
//!    (fixed-width fields, byte groups with continuation headers, or
//!    selector-described words). Fixed datapath, configurable parameters.
//! 2. **Manipulate** — a *programmable* network of primitive units (SHR,
//!    SHL, AND, OR, ADD, ... plus registers) wired up by a structural
//!    config file, exactly like the paper's Figure 8 example for
//!    VariableByte.
//! 3. **Exceptions** — OptPFD-style patching of values that did not fit
//!    the packed width.
//! 4. **Delta** — optional prefix-sum to turn d-gaps back into docIDs.
//!
//! The [`DecompEngine`] interprets such a configuration. The shipped
//! configurations in [`schemes`] decode all five schemes of
//! `boss-compress` *bit-identically* (equivalence is enforced by tests),
//! which is the property that lets BOSS pick the best scheme per posting
//! list without extra hardware.
//!
//! # Example
//!
//! ```
//! use boss_compress::{codec_for, Scheme, Codec};
//! use boss_decomp::DecompEngine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let gaps = [5u32, 0, 130, 7];
//! let mut data = Vec::new();
//! let info = codec_for(Scheme::Vb).encode(&gaps, &mut data)?;
//!
//! let engine = DecompEngine::for_scheme(Scheme::Vb)?;
//! let out = engine.decode(&data, &info)?;
//! assert_eq!(out.values, gaps);
//! # Ok(())
//! # }
//! ```

mod compile;
mod config;
mod engine;
mod extract;
mod program;
pub mod schemes;

pub use compile::{compile_count, CompiledProgram, CompiledState, PlanStats};
pub use config::{DeltaConfig, EngineConfig, ExceptionConfig, ExtractorConfig, ParseError};
pub use engine::{Decoded, DecompEngine, EngineError};
pub use extract::ExtractorKind;
pub use program::{ExecError, Op, Operand, Program, RegDecl, Statement};
