//! The textual configuration language of the decompression module
//! (Figure 8 of the paper), and its parsed form.
//!
//! A configuration file has four sections, one per pipeline stage. Stage 1
//! and stages 3/4 are parameter assignments; stage 2 is a structural
//! netlist in `wire := OP(a, b)` form. Comments start with `//`. Example
//! (the paper's VariableByte configuration, adapted to the LSB-first VB
//! layout of `boss-compress`):
//!
//! ```text
//! // Stage 1
//! Extractor[0].use = 0
//! Extractor[1].use = 1
//! Extractor[2].use = 0
//! // Stage 2
//! RegInit( Acc, 0, flush )
//! RegInit( Shift, 0, flush )
//! flush := SHR(Input, 0x7)
//! pay := AND(Input, 0x7F)
//! shifted := SHL(pay, Shift)
//! sum := ADD(Acc, shifted)
//! Acc := sum
//! Shift := ADD(Shift, 0x7)
//! Output := sum
//! Output.valid := flush
//! // Stage 3
//! UseExceptions = 0
//! // Stage 4
//! UseDelta = 1
//! ```

use crate::program::{Op, Operand, Program, RegDecl, Statement};
use crate::ExtractorKind;
use serde::{Deserialize, Serialize};

/// Stage-1 configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtractorConfig {
    /// The active extractor flavor.
    pub kind: ExtractorKind,
}

/// Stage-3 configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ExceptionConfig {
    /// Whether the exception patch area is consulted.
    pub enabled: bool,
}

/// Stage-4 configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DeltaConfig {
    /// Whether decoded values are d-gaps to prefix-sum.
    pub use_delta: bool,
}

/// A full four-stage configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Stage 1.
    pub extractor: ExtractorConfig,
    /// Stage 2.
    pub program: Program,
    /// Stage 3.
    pub exceptions: ExceptionConfig,
    /// Stage 4.
    pub delta: DeltaConfig,
}

/// A configuration parse error with its line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending text (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "config parse error at line {}: {}",
            self.line, self.reason
        )
    }
}

impl std::error::Error for ParseError {}

fn parse_int(s: &str, line: usize) -> Result<u32, ParseError> {
    let s = s.trim();
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| ParseError {
        line,
        reason: format!("invalid integer {s:?}"),
    })
}

fn parse_operand(s: &str, line: usize) -> Result<Operand, ParseError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(ParseError {
            line,
            reason: "empty operand".into(),
        });
    }
    if s.starts_with(|c: char| c.is_ascii_digit()) {
        Ok(Operand::Literal(parse_int(s, line)?))
    } else {
        Ok(Operand::Name(s.to_owned()))
    }
}

impl EngineConfig {
    /// Parses a configuration file.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] with the offending line on malformed input,
    /// including stage-2 netlist faults found by
    /// [`Program::validate`].
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut extractor_use = [false; 4];
        let mut selector_word_bits = 32u32;
        let mut program = Program::default();
        let mut exceptions = ExceptionConfig::default();
        let mut delta = DeltaConfig::default();

        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = match raw.find("//") {
                Some(p) => &raw[..p],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }

            // RegInit( name, init, reset )
            if let Some(rest) = line.strip_prefix("RegInit") {
                let inner = rest
                    .trim()
                    .strip_prefix('(')
                    .and_then(|r| r.strip_suffix(')'))
                    .ok_or_else(|| ParseError {
                        line: line_no,
                        reason: "malformed RegInit".into(),
                    })?;
                let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
                if parts.len() != 3 {
                    return Err(ParseError {
                        line: line_no,
                        reason: "RegInit takes (name, init, reset)".into(),
                    });
                }
                program.regs.push(RegDecl {
                    name: parts[0].to_owned(),
                    init: parse_int(parts[1], line_no)?,
                    reset_signal: if parts[2] == "0" || parts[2].eq_ignore_ascii_case("none") {
                        String::new()
                    } else {
                        parts[2].to_owned()
                    },
                });
                continue;
            }

            // Netlist statement: dest := expr
            if let Some((dest, expr)) = line.split_once(":=") {
                let dest = dest.trim().to_owned();
                let expr = expr.trim();
                let stmt = if let Some(paren) = expr.find('(') {
                    let opname = expr[..paren].trim();
                    let op = Op::parse(opname).ok_or_else(|| ParseError {
                        line: line_no,
                        reason: format!("unknown primitive {opname:?}"),
                    })?;
                    let inner = expr[paren + 1..]
                        .strip_suffix(')')
                        .ok_or_else(|| ParseError {
                            line: line_no,
                            reason: "missing )".into(),
                        })?;
                    let args: Vec<Operand> = inner
                        .split(',')
                        .map(|a| parse_operand(a, line_no))
                        .collect::<Result<_, _>>()?;
                    Statement { dest, op, args }
                } else {
                    // Alias: dest := wire-or-literal
                    Statement {
                        dest,
                        op: Op::Id,
                        args: vec![parse_operand(expr, line_no)?],
                    }
                };
                program.statements.push(stmt);
                continue;
            }

            // Parameter assignment(s): possibly chained `A = B = 0`.
            if line.contains('=') {
                let parts: Vec<&str> = line.split('=').map(str::trim).collect();
                let value = parse_int(parts[parts.len() - 1], line_no)?;
                for key in &parts[..parts.len() - 1] {
                    match *key {
                        "UseDelta" => delta.use_delta = value != 0,
                        "UseExceptions" => exceptions.enabled = value != 0,
                        // The paper's Figure 8 disables exceptions by
                        // zeroing these two; treat them as that switch.
                        "ExceptionValue" | "ExceptionIndex" => exceptions.enabled = value != 0,
                        k if k.starts_with("Extractor[") => {
                            let idx: usize = k
                                .strip_prefix("Extractor[")
                                .and_then(|r| r.split(']').next())
                                .and_then(|n| n.parse().ok())
                                .ok_or_else(|| ParseError {
                                    line: line_no,
                                    reason: format!("bad extractor index in {k:?}"),
                                })?;
                            if idx > 3 {
                                return Err(ParseError {
                                    line: line_no,
                                    reason: format!("extractor index {idx} out of range"),
                                });
                            }
                            if k.ends_with(".use") {
                                extractor_use[idx] = value != 0;
                            } else if k.ends_with(".wordBits") {
                                selector_word_bits = value;
                            } else if k.ends_with(".headerLength") {
                                // Accepted for fidelity with Figure 8; the
                                // byte extractor's header is fixed at 1 bit.
                            } else {
                                return Err(ParseError {
                                    line: line_no,
                                    reason: format!("unknown extractor parameter {k:?}"),
                                });
                            }
                        }
                        other => {
                            return Err(ParseError {
                                line: line_no,
                                reason: format!("unknown parameter {other:?}"),
                            });
                        }
                    }
                }
                continue;
            }

            return Err(ParseError {
                line: line_no,
                reason: format!("unparseable line {line:?}"),
            });
        }

        let kind = match extractor_use {
            [true, false, false, false] => ExtractorKind::FixedWidth,
            [false, true, false, false] => ExtractorKind::ByteHeader,
            [false, false, true, false] => {
                if selector_word_bits == 64 {
                    ExtractorKind::Selector8b
                } else {
                    ExtractorKind::Selector16
                }
            }
            [false, false, false, true] => ExtractorKind::GroupVarint,
            _ => {
                return Err(ParseError {
                    line: 0,
                    reason: "exactly one extractor must have .use = 1".into(),
                })
            }
        };

        if program.statements.is_empty() {
            program = Program::identity();
        }
        program.validate().map_err(|e| ParseError {
            line: 0,
            reason: e.reason,
        })?;

        Ok(EngineConfig {
            extractor: ExtractorConfig { kind },
            program,
            exceptions,
            delta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VB_CONFIG: &str = r"
// Stage 1
Extractor[0].use = 0
Extractor[1].use = 1
Extractor[2].use = 0
// Stage 2
RegInit( Acc, 0, flush )
RegInit( Shift, 0, flush )
flush := SHR(Input, 0x7)
pay := AND(Input, 0x7F)
shifted := SHL(pay, Shift)
sum := ADD(Acc, shifted)
Acc := sum
Shift := ADD(Shift, 0x7)
Output := sum
Output.valid := flush
// Stage 3
UseExceptions = 0
// Stage 4
UseDelta = 1
";

    #[test]
    fn parses_vb_config() {
        let cfg = EngineConfig::parse(VB_CONFIG).unwrap();
        assert_eq!(cfg.extractor.kind, ExtractorKind::ByteHeader);
        assert_eq!(cfg.program.regs.len(), 2);
        assert_eq!(cfg.program.statements.len(), 8);
        assert!(!cfg.exceptions.enabled);
        assert!(cfg.delta.use_delta);
    }

    #[test]
    fn chained_assignment_like_figure8() {
        let cfg = EngineConfig::parse(
            "Extractor[0].use = 1\nExtractor[1].use = 0\nExtractor[2].use = 0\nExceptionValue = ExceptionIndex = 0\nUseDelta = 1\n",
        )
        .unwrap();
        assert!(!cfg.exceptions.enabled);
        assert_eq!(cfg.extractor.kind, ExtractorKind::FixedWidth);
        // No stage-2 statements -> identity program.
        assert_eq!(cfg.program, crate::Program::identity());
    }

    #[test]
    fn selector_word_bits() {
        let cfg =
            EngineConfig::parse("Extractor[2].use = 1\nExtractor[2].wordBits = 64\n").unwrap();
        assert_eq!(cfg.extractor.kind, ExtractorKind::Selector8b);
        let cfg = EngineConfig::parse("Extractor[2].use = 1\n").unwrap();
        assert_eq!(cfg.extractor.kind, ExtractorKind::Selector16);
    }

    #[test]
    fn rejects_no_extractor() {
        let err = EngineConfig::parse("UseDelta = 1\n").unwrap_err();
        assert!(err.reason.contains("extractor"));
    }

    #[test]
    fn rejects_two_extractors() {
        let err = EngineConfig::parse("Extractor[0].use = 1\nExtractor[1].use = 1\n").unwrap_err();
        assert!(err.reason.contains("extractor"));
    }

    #[test]
    fn rejects_unknown_primitive() {
        let err = EngineConfig::parse("Extractor[0].use = 1\nx := FROB(Input, 1)\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("FROB"));
    }

    #[test]
    fn rejects_unknown_parameter() {
        let err = EngineConfig::parse("Extractor[0].use = 1\nBogus = 3\n").unwrap_err();
        assert!(err.reason.contains("Bogus"));
    }

    #[test]
    fn rejects_undefined_wire_via_validation() {
        let err =
            EngineConfig::parse("Extractor[0].use = 1\nOutput := ADD(ghost, 1)\n").unwrap_err();
        assert!(err.reason.contains("ghost"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let cfg = EngineConfig::parse("// hello\n\nExtractor[0].use = 1 // inline\n").unwrap();
        assert_eq!(cfg.extractor.kind, ExtractorKind::FixedWidth);
    }

    #[test]
    fn parse_error_display() {
        let err = EngineConfig::parse("Extractor[0].use = zebra\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }
}
